"""The three generated task families: shape, determinism, paradigm parity."""

import pytest

from repro.errors import GenSpecError
from repro.gen import FAMILIES, family_catalogue, family_spec, run_family
from repro.workflow.spec import WorkflowSpec


def test_catalogue_names_every_family():
    text = family_catalogue()
    for name in ("stream", "smallsteps", "raster"):
        assert name in FAMILIES
        assert name in text


def test_unknown_family_raises_with_the_catalogue():
    with pytest.raises(GenSpecError, match="stream"):
        family_spec("nope")


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_specs_validate(family):
    spec = WorkflowSpec.from_json(family_spec(family, seed=3))
    assert spec.operators and spec.links


def test_smallsteps_is_a_deep_chain():
    spec = WorkflowSpec.from_json(family_spec("smallsteps"))
    assert len(spec.operators) >= 30
    # A chain: every operator has at most one consumer.
    consumers = [link.producer_id for link in spec.links]
    assert len(consumers) == len(set(consumers))


def test_stream_uses_micro_batch_source():
    spec = WorkflowSpec.from_json(family_spec("stream"))
    assert any(op.type == "micro_batch_source" for op in spec.operators)


def test_raster_uses_raster_source_and_drops_blobs():
    spec = WorkflowSpec.from_json(family_spec("raster"))
    assert any(op.type == "raster_source" for op in spec.operators)
    assert any(op.type == "projection" for op in spec.operators)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_paradigms_agree_per_family(family):
    workflow = run_family(family, paradigm="workflow")
    script = run_family(family, paradigm="script")
    assert workflow.rows == script.rows
    assert len(workflow.rows) > 0


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_runs_are_deterministic(family):
    first = run_family(family, paradigm="workflow")
    second = run_family(family, paradigm="workflow")
    assert first == second


def test_scale_grows_the_workload():
    small = WorkflowSpec.from_json(family_spec("smallsteps", scale=1.0))
    large = WorkflowSpec.from_json(family_spec("smallsteps", scale=2.0))
    assert len(large.operators) > len(small.operators)


def test_unknown_paradigm_is_rejected():
    with pytest.raises(GenSpecError, match="paradigm"):
        run_family("stream", paradigm="notebook")
