"""The ``repro gen`` spec grammar: parsing, defaults, errors."""

import pytest

from repro.errors import GenSpecError
from repro.gen import GenConfig, GenRequest, describe_gen, parse_gen_spec


def test_empty_spec_is_all_defaults():
    assert parse_gen_spec("") == GenRequest()


def test_full_spec_round_trips_every_field():
    request = parse_gen_spec(
        "seed=3,count=5,family=raster,scale=2.5,run=off,emit=/tmp/x.json"
    )
    assert request.seed == 3
    assert request.count == 5
    assert request.family == "raster"
    assert request.scale == 2.5
    assert request.run is False
    assert request.emit == "/tmp/x.json"


def test_knobs_land_in_the_config():
    request = parse_gen_spec(
        "seed=2,depth=6,sources=2,fanout=0.1,selectivity=0.9,rows=20"
    )
    assert request.config == GenConfig(
        seed=2, depth=6, max_sources=2, fan_out=0.1, selectivity=0.9, rows=20
    )


def test_whitespace_and_empty_parts_are_tolerated():
    assert parse_gen_spec(" seed = 4 , , count = 2 ").seed == 4


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("seed=x", "integer"),
        ("count=0", ">= 1"),
        ("family=zzz", "unknown family"),
        ("scale=0", "> 0"),
        ("run=maybe", "on or off"),
        ("emit=", "file path"),
        ("nonsense=1", "unknown key"),
        ("flagonly", "key=value"),
        ("depth=0", "depth"),
    ],
)
def test_malformed_specs_raise_gen_spec_error(spec, fragment):
    with pytest.raises(GenSpecError, match=fragment):
        parse_gen_spec(spec)


def test_describe_names_the_source_and_seeds():
    text = describe_gen(parse_gen_spec("family=stream,count=3,seed=2"))
    assert "stream" in text
    assert "2..4" in text
    text = describe_gen(parse_gen_spec("depth=6"))
    assert "random" in text and "depth=6" in text
