"""The seeded random-workflow generator: validity, determinism, knobs.

The acceptance bar: 25 distinct seeds must each produce a document
that validates, compiles to both paradigms and collects identical row
multisets — the same contract the ``gen-smoke`` CI job and
``BENCH_scenarios.json`` enforce.
"""

import pytest

from repro.cluster import build_cluster
from repro.errors import GenSpecError
from repro.gen import GenConfig, generate_spec, random_spec
from repro.rayx import compile_script_plan
from repro.sim import Environment
from repro.workflow import run_workflow
from repro.workflow.spec import WorkflowSpec, build_workflow


def rows_of(table):
    return sorted(tuple(map(str, row.values)) for row in table)


def test_same_seed_same_document():
    assert random_spec(7) == random_spec(7)
    assert generate_spec(GenConfig(seed=7)) == generate_spec(GenConfig(seed=7))


def test_different_seeds_differ():
    docs = [random_spec(seed) for seed in range(10)]
    assert len({str(doc) for doc in docs}) > 1


def test_knobs_steer_the_shape():
    # Stage count per spec is drawn in [1, depth], so compare totals
    # over a seed range rather than one draw.
    def total_ops(depth):
        return sum(
            len(generate_spec(GenConfig(seed=s, depth=depth))["operators"])
            for s in range(10)
        )

    assert total_ops(7) > total_ops(1)
    wide = generate_spec(GenConfig(seed=0, max_sources=4, fan_out=0.0))
    sources = [
        op for op in wide["operators"] if op["type"] == "jsonl_source"
    ]
    assert 1 <= len(sources) <= 4


@pytest.mark.parametrize(
    "bad",
    [
        {"depth": 0},
        {"max_sources": 0},
        {"fan_out": 1.5},
        {"fan_out": -0.1},
        {"selectivity": 2.0},
        {"rows": 2},
        {"languages": ()},
    ],
)
def test_bad_knobs_raise_gen_spec_error(bad):
    with pytest.raises(GenSpecError):
        GenConfig(seed=0, **bad)


def test_twenty_five_seeds_validate_compile_and_row_agree():
    """The acceptance sweep: every seed, both paradigms, identical rows."""
    for seed in range(25):
        spec = WorkflowSpec.from_json(random_spec(seed))
        workflow_rows = rows_of(
            run_workflow(
                build_cluster(Environment()), build_workflow(spec)
            ).table()
        )
        tables = compile_script_plan(build_workflow(spec)).run(
            cluster=build_cluster(Environment())
        )
        (script_rows,) = [rows_of(table) for table in tables.values()]
        assert script_rows == workflow_rows, f"seed {seed} disagrees"


def test_generated_documents_serialize_strictly():
    for seed in range(5):
        text = WorkflowSpec.from_json(random_spec(seed)).to_json_text()
        assert "NaN" not in text and "Infinity" not in text
