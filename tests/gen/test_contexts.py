"""Families under the orthogonal subsystems: faults, memory, cache, jobs.

Each generated family must compose with the installed-context
subsystems exactly like the four paper tasks do: same rows as the
plain run, every context restored afterwards, nothing left over on
the cluster (no waiters, no spilled partitions, no cache state leaking
into the next test).
"""

import pytest

from repro.cache import ResultCache, cached, current_cache, parse_cache_spec
from repro.config import JobsConfig
from repro.faults import FaultSchedule, current_injector, faults_injected
from repro.gen import FAMILIES, run_family
from repro.jobs import JobService, JobSpec
from repro.mem import current_memory_config, memory_managed

BASELINES = {
    family: run_family(family, paradigm="workflow") for family in FAMILIES
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_families_survive_fault_injection(family):
    schedule = FaultSchedule.from_spec("seed=5,tasks=2,horizon=30")
    with faults_injected(schedule) as injector:
        run = run_family(family, paradigm="workflow")
    assert run.rows == BASELINES[family].rows
    assert injector.injected >= 0  # schedule consumed without error
    assert current_injector() is not injector  # context restored


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_families_survive_memory_pressure(family):
    with memory_managed("on,ram=1gib,spill=0.6"):
        run = run_family(family, paradigm="workflow")
    assert run.rows == BASELINES[family].rows
    assert current_memory_config() is None  # context restored


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_families_hit_the_cache_on_reruns(family):
    cache = ResultCache(parse_cache_spec("on"))
    with cached(cache):
        first = run_family(family, paradigm="workflow")
        second = run_family(family, paradigm="workflow")
    assert first.rows == second.rows == BASELINES[family].rows
    assert cache.hits > 0, "warm rerun never hit the cache"
    assert current_cache() is None  # nothing leaks into later tests


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_families_run_as_jobs(family):
    service = JobService(JobsConfig(enabled=True))
    job = service.run_job(JobSpec(tenant="t", body=f"gen/{family}/script"))
    assert job.state == "completed", job.error
    assert job.result.value.rows == run_family(family, paradigm="script").rows
    assert service.queue.drained
