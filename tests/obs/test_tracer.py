"""Tests for virtual-clock span tracing."""

import pytest

from repro.obs import (
    NULL_TRACER,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)
from repro.sim import Environment


def test_span_lifecycle_reads_virtual_clock():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env, "t")

    def proc(env):
        span = tracer.start("work", category="compute", node="n0", cores=2)
        yield env.timeout(1.5)
        tracer.end(span, status="ok")

    env.process(proc(env))
    env.run()
    (span,) = tracer.finished_spans()
    assert span.start_s == 0.0
    assert span.end_s == 1.5
    assert span.duration_s == 1.5
    assert span.attrs == {"cores": 2, "status": "ok"}
    assert span.node == "n0"


def test_double_end_raises():
    tracer = Tracer()
    span = tracer.start("x")
    tracer.end(span)
    with pytest.raises(ValueError):
        tracer.end(span)


def test_open_span_reports_zero_duration_and_is_not_finished():
    tracer = Tracer()
    span = tracer.start("open")
    assert not span.finished
    assert span.duration_s == 0.0
    assert tracer.finished_spans() == []


def test_parent_threading_keeps_concurrent_processes_apart():
    """Interleaved processes must not steal each other's children.

    Two simulated workers run concurrently with overlapping child
    spans; explicit parent threading (rather than a global "current
    span" stack) must attribute each child to its own worker.
    """
    env = Environment()
    tracer = Tracer()
    tracer.attach(env, "t")

    def worker(env, name, delay):
        parent = tracer.start(name, category="task")
        yield env.timeout(delay)
        child = tracer.start(f"{name}.inner", category="step", parent=parent)
        yield env.timeout(1.0)
        tracer.end(child)
        tracer.end(parent)

    env.process(worker(env, "a", 0.25))
    env.process(worker(env, "b", 0.75))
    env.run()

    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["a.inner"].parent_id == spans["a"].span_id
    assert spans["b.inner"].parent_id == spans["b"].span_id
    # The children genuinely overlapped in virtual time.
    assert spans["a.inner"].start_s < spans["b.inner"].start_s < spans["a.inner"].end_s
    assert [c.name for c in tracer.children_of(spans["a"])] == ["a.inner"]
    assert [c.name for c in tracer.children_of(spans["b"])] == ["b.inner"]


def test_span_ordering_is_start_time_ordered_per_run():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env, "t")

    def proc(env, name, at):
        yield env.timeout(at)
        with tracer.span(name, category="c"):
            yield env.timeout(0.1)

    for name, at in (("late", 2.0), ("early", 0.0), ("mid", 1.0)):
        env.process(proc(env, name, at))
    env.run()
    starts = [s.start_s for s in tracer.spans if s.category == "c"]
    assert starts == sorted(starts)


def test_attach_starts_new_runs_and_label_run_renames():
    tracer = Tracer()
    env1, env2 = Environment(), Environment()
    tracer.attach(env1)
    tracer.label_run("first/script")
    s1 = tracer.start("a")
    tracer.end(s1)
    tracer.attach(env2, "second")
    s2 = tracer.start("b")
    tracer.end(s2)
    assert [r.label for r in tracer.runs] == ["first/script", "second"]
    assert s1.run_id == 0
    assert s2.run_id == 1
    assert [s.name for s in tracer.finished_spans(run_id=1)] == ["b"]


def test_clear_resets_spans_metrics_and_runs():
    tracer = Tracer()
    tracer.attach(Environment(), "r")
    tracer.end(tracer.start("a"))
    tracer.metrics.counter("c").inc()
    tracer.clear()
    assert tracer.spans == []
    assert tracer.runs == []
    assert tracer.metrics.total("c") == 0
    assert tracer.start("b").span_id == 0


def test_install_uninstall_and_tracing_restore():
    assert current_tracer() is NULL_TRACER
    outer = Tracer()
    install_tracer(outer)
    try:
        assert current_tracer() is outer
        with tracing() as inner:
            assert inner is not outer
            assert current_tracer() is inner
        assert current_tracer() is outer
        with tracing(outer) as again:
            assert again is outer
    finally:
        uninstall_tracer()
    assert current_tracer() is NULL_TRACER


def test_tracing_restores_previous_even_on_error():
    with pytest.raises(RuntimeError):
        with tracing():
            raise RuntimeError("boom")
    assert current_tracer() is NULL_TRACER


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    span = NULL_TRACER.start("anything", category="x")
    NULL_TRACER.end(span)
    NULL_TRACER.end(span)  # double-end is fine on the null tracer
    with NULL_TRACER.span("ctx"):
        pass
    assert NULL_TRACER.finished_spans() == []
    assert NULL_TRACER.now == 0.0
    NULL_TRACER.attach(Environment())
    assert NULL_TRACER.runs == []
