"""Tracing must never change simulated timings.

Two guarantees, both load-bearing for the paper reproduction:

* with the default null tracer, every task accumulates virtual time
  **bit-identical** to the pre-observability seed (the constants below
  were recorded before the instrumentation existed);
* enabling a tracer changes *nothing* — recording is bookkeeping only,
  so traced and untraced runs agree to the last bit as well.
"""

import pytest

from repro.datasets.fsqa import generate_fsqa
from repro.datasets.maccrobat import generate_maccrobat
from repro.datasets.wildfire import generate_wildfire_tweets
from repro.obs import Tracer, tracing
from repro.tasks.base import fresh_cluster
from repro.tasks.dice.script import run_dice_script
from repro.tasks.dice.workflow import run_dice_workflow
from repro.tasks.gotta.script import run_gotta_script
from repro.tasks.gotta.workflow import run_gotta_workflow
from repro.tasks.kge.common import make_kge_dataset
from repro.tasks.kge.script import run_kge_script
from repro.tasks.kge.workflow import run_kge_workflow
from repro.tasks.wef.script import run_wef_script
from repro.tasks.wef.workflow import run_wef_workflow

#: Virtual timings recorded at the seed, before repro.obs existed.
#: Exact float equality is intentional: the simulation is
#: deterministic, and any drift means instrumentation leaked time.
SEED_TIMINGS = {
    "gotta/script-1": 144.76202222480745,
    "gotta/workflow-1": 63.28371245803674,
    "gotta/script-4": 394.96291672400747,
    "dice/script-4": 6.1191600006,
    "dice/workflow-4": 8.091464697066668,
    "kge/script": 20.96539552413334,
    "kge/workflow": 14.958064386766669,
    "wef/script": 268.78335006426664,
    "wef/workflow": 258.2124729179,
}


def _run_all(each=None):
    """Every pinned task's virtual elapsed time, by key.

    ``each``, if given, is a zero-argument callable returning a context
    manager entered around every individual task run — subsystem pin
    suites use it to give each task a fresh isolated installation
    (e.g. ``tests/cache`` runs each task under its own empty cache,
    since a *shared* cache legitimately hits across tasks).
    """
    from contextlib import nullcontext

    if each is None:
        each = nullcontext
    paras1 = generate_fsqa(1)
    paras4 = generate_fsqa(4)
    reports = generate_maccrobat(4)
    kge = make_kge_dataset(300, universe_size=1000)
    tweets = generate_wildfire_tweets(40)
    runners = {
        "gotta/script-1": lambda: run_gotta_script(fresh_cluster(), paras1),
        "gotta/workflow-1": lambda: run_gotta_workflow(fresh_cluster(), paras1),
        "gotta/script-4": lambda: run_gotta_script(fresh_cluster(), paras4),
        "dice/script-4": lambda: run_dice_script(fresh_cluster(), reports),
        "dice/workflow-4": lambda: run_dice_workflow(fresh_cluster(), reports),
        "kge/script": lambda: run_kge_script(fresh_cluster(), kge),
        "kge/workflow": lambda: run_kge_workflow(fresh_cluster(), kge),
        "wef/script": lambda: run_wef_script(fresh_cluster(), tweets),
        "wef/workflow": lambda: run_wef_workflow(fresh_cluster(), tweets),
    }
    timings = {}
    for key, run in runners.items():
        with each():
            timings[key] = run().elapsed_s
    return timings


def test_null_tracer_timings_bit_identical_to_seed():
    assert _run_all() == SEED_TIMINGS


def test_enabled_tracer_does_not_perturb_timings():
    with tracing(Tracer()):
        traced = _run_all()
    assert traced == SEED_TIMINGS


def test_capture_timeouts_does_not_perturb_timings():
    # The noisiest possible tracer setting still charges zero time.
    with tracing(Tracer(capture_timeouts=True)):
        key = "gotta/script-1"
        elapsed = run_gotta_script(fresh_cluster(), generate_fsqa(1)).elapsed_s
    assert elapsed == SEED_TIMINGS[key]


@pytest.mark.parametrize("paradigm", ["script", "workflow"])
def test_traced_output_rows_match_untraced(paradigm):
    dataset = make_kge_dataset(120, universe_size=600)
    runner = run_kge_script if paradigm == "script" else run_kge_workflow
    plain = runner(fresh_cluster(), dataset)
    with tracing(Tracer()):
        traced = runner(fresh_cluster(), dataset)
    assert traced.output.rows == plain.output.rows


def test_installed_empty_fault_schedule_timings_bit_identical():
    """An armed injector with nothing to inject charges zero time.

    ``faults_injected(FaultSchedule.empty())`` installs a real injector
    whose ``active`` flag is False — every engine checkpoint must
    short-circuit before touching the virtual clock, keeping all task
    timings bit-identical to the pre-faults seed.
    """
    from repro.faults import FaultSchedule, faults_injected

    with faults_injected(FaultSchedule.empty()) as injector:
        timings = _run_all()
    assert timings == SEED_TIMINGS
    assert injector.injected == 0
    assert injector.retries == 0
