"""Tests for the Chrome trace exporter and the text breakdown."""

import json

from repro.obs import (
    Tracer,
    breakdown,
    chrome_trace,
    chrome_trace_events,
    format_breakdown,
    write_chrome_trace,
)
from repro.sim import Environment


def _sample_tracer():
    """Two runs: a parent/child pair, plus a second-run solo span."""
    tracer = Tracer()
    env1 = Environment()
    tracer.attach(env1, "alpha/script")

    def first(env):
        parent = tracer.start("outer", category="rayx.task", node="node-0")
        yield env.timeout(2.0)
        child = tracer.start(
            "put", category="objectstore", node="node-0", parent=parent, nbytes=64
        )
        yield env.timeout(1.0)
        tracer.end(child)
        tracer.end(parent)

    env1.process(first(env1))
    env1.run()

    env2 = Environment()
    tracer.attach(env2, "alpha/workflow")

    def second(env):
        with tracer.span("op[0]", category="workflow.operator", node="node-1"):
            yield env.timeout(4.0)

    env2.process(second(env2))
    env2.run()
    tracer.metrics.counter("objectstore.put.bytes").add(64)
    return tracer


def test_chrome_events_have_required_fields_and_microsecond_times():
    tracer = _sample_tracer()
    events = chrome_trace_events(tracer)
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "expected X events"
    for event in complete:
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            assert key in event
    put = next(e for e in complete if e["name"] == "put")
    assert put["ts"] == 2.0 * 1e6
    assert put["dur"] == 1.0 * 1e6
    assert put["args"]["nbytes"] == 64
    assert "parent_span" in put["args"]


def test_chrome_metadata_names_runs_and_lanes():
    tracer = _sample_tracer()
    events = chrome_trace_events(tracer)
    meta = [e for e in events if e["ph"] == "M"]
    process_names = {
        e["pid"]: e["args"]["name"] for e in meta if e["name"] == "process_name"
    }
    assert process_names == {0: "alpha/script", 1: "alpha/workflow"}
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in meta
        if e["name"] == "thread_name"
    }
    assert "node-0" in thread_names.values()
    assert "node-1" in thread_names.values()


def test_runs_map_to_distinct_pids():
    tracer = _sample_tracer()
    complete = [e for e in chrome_trace_events(tracer) if e["ph"] == "X"]
    pids = {e["pid"] for e in complete}
    assert pids == {0, 1}


def test_chrome_trace_document_is_valid_json(tmp_path):
    tracer = _sample_tracer()
    path = write_chrome_trace(tracer, tmp_path / "trace.json")
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["displayTimeUnit"] == "ms"
    assert isinstance(document["traceEvents"], list)
    assert document["otherData"]["clock"] == "virtual"
    assert document["otherData"]["runs"] == {
        "0": "alpha/script",
        "1": "alpha/workflow",
    }
    assert document["otherData"]["metrics"]["counters"][
        "objectstore.put.bytes"
    ] == 64
    assert document == chrome_trace(tracer)


def test_unfinished_spans_are_excluded_from_export():
    tracer = Tracer()
    tracer.attach(Environment(), "r")
    tracer.start("never-ends", category="x")
    assert [e for e in chrome_trace_events(tracer) if e["ph"] == "X"] == []


def test_breakdown_wall_time_and_category_totals():
    tracer = _sample_tracer()
    first, second = breakdown(tracer)
    assert first.label == "alpha/script"
    assert first.wall_s == 3.0
    assert first.category_total("rayx.task") == 3.0
    assert first.category_total("objectstore") == 1.0
    assert first.store_and_serialization_fraction == 1.0 / 3.0
    assert second.wall_s == 4.0
    assert second.category_total("workflow.operator") == 4.0
    assert second.store_and_serialization_fraction == 0.0


def test_format_breakdown_mentions_runs_categories_and_headline():
    text = format_breakdown(_sample_tracer())
    assert "alpha/script" in text
    assert "alpha/workflow" in text
    assert "objectstore" in text
    assert "object-store + serialization: 33.3% of wall time" in text


def test_format_breakdown_excludes_kernel_categories_by_default():
    tracer = Tracer()
    env = Environment()
    tracer.attach(env, "only-kernel")
    env.tracer = tracer  # what Cluster.__init__ does for real runs

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    # Only sim.process spans recorded -> excluded -> no runs to print.
    assert all(s.category == "sim.process" for s in tracer.finished_spans())
    assert format_breakdown(tracer) == "(no finished spans recorded)"
    assert "only-kernel" in format_breakdown(tracer, exclude_categories=())


def test_empty_tracer_formats_placeholder():
    assert format_breakdown(Tracer()) == "(no finished spans recorded)"
