"""Tests for the ``trace`` CLI subcommand and ``--trace`` output."""

import json

from repro.cli import main
from repro.obs import NULL_TRACER, current_tracer


def test_trace_subcommand_prints_breakdown(capsys):
    assert main(["trace", "fig13a", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "fig13a" in out  # the experiment report itself
    assert "wall" in out and "virtual" in out  # the breakdown follows
    assert "dice/script" in out
    assert "dice/workflow" in out


def test_trace_flag_writes_chrome_json(tmp_path, capsys):
    target = tmp_path / "out.json"
    assert main(["trace", "fig13a", "--quick", "--trace", str(target)]) == 0
    out = capsys.readouterr().out
    assert str(target) in out
    document = json.loads(target.read_text(encoding="utf-8"))
    events = document["traceEvents"]
    assert any(e.get("ph") == "X" for e in events)
    categories = {e.get("cat") for e in events if e.get("ph") == "X"}
    assert any(c.startswith("rayx") for c in categories)
    assert any(c.startswith("workflow") for c in categories)


def test_trace_flag_without_subcommand_also_traces(tmp_path):
    target = tmp_path / "out.json"
    assert main(["fig13a", "--quick", "--trace", str(target)]) == 0
    assert target.exists()


def test_trace_subcommand_rejects_unknown_ids(capsys):
    assert main(["trace", "nope", "--quick"]) == 2
    assert "nope" in capsys.readouterr().err


def test_trace_flag_fails_fast_on_missing_directory(capsys):
    # Before any experiment runs: a bad target must not cost a full run.
    assert main(["fig13a", "--quick", "--trace", "/no-such-dir/out.json"]) == 2
    assert "--trace" in capsys.readouterr().err


def test_cli_uninstalls_tracer_afterwards(tmp_path):
    main(["trace", "fig13a", "--quick"])
    assert current_tracer() is NULL_TRACER
