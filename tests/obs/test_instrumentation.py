"""Integration tests: tracer wired through both simulated engines."""

import pytest

from repro.cluster.serialization import estimate_bytes
from repro.obs import Tracer, breakdown, tracing
from repro.tasks.base import fresh_cluster
from repro.tasks.kge.common import make_kge_dataset
from repro.tasks.kge.workflow import run_kge_workflow


@pytest.fixture()
def kge_dataset():
    return make_kge_dataset(120, universe_size=600)


def test_rayx_objectstore_counters_match_estimate_bytes():
    payloads = [list(range(50)), "x" * 2000, {"k": 1.5}]

    def driver(rt):
        refs = []
        for payload in payloads:
            ref = yield from rt.put(payload)
            refs.append(ref)
        for ref in refs:
            yield from rt.get(ref)
        return None

    from repro.rayx import run_script

    with tracing() as tracer:
        run_script(fresh_cluster(), driver)

    expected = sum(estimate_bytes(p) for p in payloads)
    metrics = tracer.metrics
    assert metrics.total("objectstore.put.bytes") == expected
    assert metrics.total("objectstore.get.bytes") == expected
    assert metrics.total("objectstore.put.count") == len(payloads)
    assert metrics.total("objectstore.get.count") == len(payloads)
    # Span-level attributes agree with the counters.
    put_bytes = sum(
        s.attrs["nbytes"] for s in tracer.finished_spans(category="objectstore")
        if s.name == "put"
    )
    assert put_bytes == expected


def test_workflow_channel_counters_match_estimate_bytes(kge_dataset):
    with tracing() as tracer:
        run = run_kge_workflow(fresh_cluster(), kge_dataset)

    assert run.trace is tracer
    metrics = tracer.metrics
    # Every encoded batch records its estimate_bytes size both in the
    # per-link counters and on its serialization span; the independent
    # sums must agree exactly.
    encode_span_bytes = sum(
        s.attrs["nbytes"]
        for s in tracer.finished_spans(category="serialization")
        if s.name.startswith("encode:")
    )
    assert metrics.total("workflow.bytes") == encode_span_bytes
    assert metrics.total("workflow.bytes") > 0
    assert metrics.value(
        "serialize.bytes", codec="python", direction="encode"
    ) == pytest.approx(metrics.total("workflow.bytes"))
    # One batch counter tick per encode span.
    n_encodes = len(
        [
            s
            for s in tracer.finished_spans(category="serialization")
            if s.name.startswith("encode:")
        ]
    )
    assert metrics.total("workflow.batches") == n_encodes
    # Output rows all flowed through the sink link's tuple counter.
    assert metrics.total("workflow.tuples") > 0


def test_workflow_run_produces_operator_and_controller_spans(kge_dataset):
    with tracing() as tracer:
        run_kge_workflow(fresh_cluster(), kge_dataset)
    (run,) = [b for b in breakdown(tracer) if b.label == "kge/workflow"]
    assert run.category_total("workflow.controller") == pytest.approx(run.wall_s)
    assert run.category_total("workflow.operator") > 0
    assert run.category_total("workflow.deploy") > 0


def test_one_tracer_observes_both_engines(kge_dataset):
    from repro.tasks.kge.script import run_kge_script

    with tracing() as tracer:
        run_kge_script(fresh_cluster(), kge_dataset)
        run_kge_workflow(fresh_cluster(), kge_dataset)

    labels = [r.label for r in tracer.runs]
    assert labels == ["kge/script", "kge/workflow"]
    categories = {s.category for s in tracer.finished_spans()}
    assert {"rayx.task", "rayx.driver", "objectstore"} <= categories
    assert {"workflow.controller", "workflow.operator"} <= categories


def test_node_busy_counter_accumulates(kge_dataset):
    with tracing() as tracer:
        run_kge_workflow(fresh_cluster(), kge_dataset)
    assert tracer.metrics.total("node.busy_s") > 0


def test_untraced_run_records_nothing(kge_dataset):
    tracer = Tracer()  # never installed
    run = run_kge_workflow(fresh_cluster(), kge_dataset)
    assert run.trace is None
    assert tracer.spans == []
