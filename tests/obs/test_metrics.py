"""Tests for the observability metrics registry."""

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry


def test_counter_accumulates_and_is_labelled():
    metrics = MetricsRegistry()
    metrics.counter("net.bytes", link="a->b").add(100)
    metrics.counter("net.bytes", link="a->b").add(50)
    metrics.counter("net.bytes", link="b->c").add(7)
    assert metrics.value("net.bytes", link="a->b") == 150
    assert metrics.value("net.bytes", link="b->c") == 7
    assert metrics.total("net.bytes") == 157


def test_counter_rejects_negative_increments():
    metrics = MetricsRegistry()
    with pytest.raises(ValueError):
        metrics.counter("n").add(-1)


def test_counter_inc_defaults_to_one():
    metrics = MetricsRegistry()
    metrics.counter("calls").inc()
    metrics.counter("calls").inc()
    assert metrics.total("calls") == 2


def test_label_order_does_not_matter():
    metrics = MetricsRegistry()
    metrics.counter("x", a=1, b=2).add(3)
    metrics.counter("x", b=2, a=1).add(4)
    assert metrics.value("x", a=1, b=2) == 7
    assert len(metrics.counters("x")) == 1


def test_gauge_tracks_last_and_max():
    metrics = MetricsRegistry()
    gauge = metrics.gauge("depth")
    gauge.set(3)
    gauge.set(9)
    gauge.set(1)
    assert gauge.value == 1
    assert gauge.max_value == 9


def test_histogram_summary_stats():
    metrics = MetricsRegistry()
    hist = metrics.histogram("queue")
    for v in (1.0, 2.0, 3.0):
        hist.record(v)
    assert hist.count == 3
    assert hist.total == 6.0
    assert hist.min == 1.0
    assert hist.max == 3.0
    assert hist.mean == pytest.approx(2.0)


def test_snapshot_is_json_friendly_and_keyed_by_labels():
    metrics = MetricsRegistry()
    metrics.counter("bytes", codec="python").add(10)
    metrics.gauge("depth", link="a->b").set(4)
    metrics.histogram("lat").record(0.5)
    snap = metrics.snapshot()
    assert snap["counters"]["bytes{codec=python}"] == 10
    assert snap["gauges"]["depth{link=a->b}"]["value"] == 4
    assert snap["histograms"]["lat"]["count"] == 1


def test_clear_resets_everything():
    metrics = MetricsRegistry()
    metrics.counter("a").inc()
    metrics.clear()
    assert metrics.total("a") == 0
    assert metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_null_registry_is_inert():
    NULL_METRICS.counter("x").add(5)
    NULL_METRICS.gauge("y").set(2)
    NULL_METRICS.histogram("z").record(1.0)
    assert NULL_METRICS.total("x") == 0
    assert NULL_METRICS.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
