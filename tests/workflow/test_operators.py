"""Unit tests for operators not fully covered by the engine tests."""

import pytest

from repro.cluster import build_cluster
from repro.config import default_config
from repro.errors import InvalidWorkflow
from repro.relational import FieldType, Schema, Table
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import (
    AggregationFunction,
    GroupByOperator,
    JsonlSource,
    MapOperator,
    ModelApplyOperator,
    ProjectionOperator,
    SinkOperator,
    TableSource,
    TopKOperator,
    TrainOperator,
    UnionOperator,
    VisualizationOperator,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def run_simple(wf):
    return run_workflow(build_cluster(Environment()), wf)


def make_table(n=40):
    return Table.from_rows(SCHEMA, [[i, (i % 10) / 10.0] for i in range(n)])


# -- JsonlSource ----------------------------------------------------------------


def test_jsonl_source_extracts_fields():
    records = [{"id": 1, "score": 0.5, "extra": "ignored"}, {"id": 2}]
    wf = Workflow("jsonl")
    src = wf.add_operator(JsonlSource("src", records, SCHEMA))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, sink)
    result = run_simple(wf)
    assert result.table().to_dicts() == [
        {"id": 1, "score": 0.5},
        {"id": 2, "score": None},
    ]


# -- Union ------------------------------------------------------------------------


def test_union_merges_all_inputs():
    wf = Workflow("union")
    a = wf.add_operator(TableSource("a", make_table(5)))
    b = wf.add_operator(TableSource("b", make_table(7)))
    union = wf.add_operator(UnionOperator("union"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(a, union, input_port=0)
    wf.link(b, union, input_port=1)
    wf.link(union, sink)
    result = run_simple(wf)
    assert len(result.table()) == 12


def test_union_three_way():
    wf = Workflow("union3")
    sources = [wf.add_operator(TableSource(f"s{i}", make_table(3))) for i in range(3)]
    union = wf.add_operator(UnionOperator("union", num_inputs=3))
    sink = wf.add_operator(SinkOperator("sink"))
    for port, source in enumerate(sources):
        wf.link(source, union, input_port=port)
    wf.link(union, sink)
    assert len(run_simple(wf).table()) == 9


def test_union_rejects_mismatched_schemas():
    wf = Workflow("union-bad")
    a = wf.add_operator(TableSource("a", make_table(2)))
    b = wf.add_operator(
        TableSource("b", Table.from_rows(Schema.of(x=FieldType.INT), [[1]]))
    )
    union = wf.add_operator(UnionOperator("union"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(a, union, input_port=0)
    wf.link(b, union, input_port=1)
    wf.link(union, sink)
    with pytest.raises(InvalidWorkflow, match="mismatched"):
        wf.compile_schemas()


def test_union_requires_two_inputs():
    with pytest.raises(InvalidWorkflow):
        UnionOperator("u", num_inputs=1)


# -- TopK --------------------------------------------------------------------------


def test_topk_keeps_largest():
    wf = Workflow("topk")
    src = wf.add_operator(TableSource("src", make_table(40)))
    top = wf.add_operator(TopKOperator("top", key="id", k=3))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, top)
    wf.link(top, sink)
    assert run_simple(wf).table().column("id") == [39, 38, 37]


def test_topk_reverse_false_keeps_smallest():
    wf = Workflow("bottomk")
    src = wf.add_operator(TableSource("src", make_table(40)))
    top = wf.add_operator(TopKOperator("top", key="id", k=2, reverse=False))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, top)
    wf.link(top, sink)
    assert run_simple(wf).table().column("id") == [0, 1]


def test_topk_validation():
    with pytest.raises(InvalidWorkflow):
        TopKOperator("t", key="id", k=0)


# -- GroupBy variants -----------------------------------------------------------------


@pytest.mark.parametrize(
    "fn,expected",
    [
        (AggregationFunction.SUM, 4.5),
        (AggregationFunction.AVG, 0.45),
        (AggregationFunction.MIN, 0.0),
        (AggregationFunction.MAX, 0.9),
    ],
)
def test_groupby_aggregations(fn, expected):
    table = Table.from_rows(SCHEMA, [[i, i / 10] for i in range(10)])
    wf = Workflow("agg")
    src = wf.add_operator(TableSource("src", table))
    agg = wf.add_operator(
        GroupByOperator(
            "agg",
            group_key="id",
            aggregation=fn,
            value_field="score",
        )
    )
    # Group by a constant to aggregate everything into one group.
    const = wf.add_operator(
        MapOperator(
            "const",
            Schema.of(id=FieldType.INT, score=FieldType.FLOAT),
            lambda row: [0, row["score"]],
        )
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, const)
    wf.link(const, agg)
    wf.link(agg, sink)
    (row,) = run_simple(wf).table()
    assert row["result"] == pytest.approx(expected)


def test_groupby_requires_value_field_for_sum():
    with pytest.raises(InvalidWorkflow):
        GroupByOperator("g", group_key="id", aggregation=AggregationFunction.SUM)


# -- projections / maps ------------------------------------------------------------------


def test_projection_requires_columns():
    with pytest.raises(InvalidWorkflow):
        ProjectionOperator("p", [])


def test_map_constant_flops_accepted():
    op = MapOperator("m", SCHEMA, lambda r: list(r.values), flops_per_tuple=100.0)
    assert op.flops_fn(None) == 100.0


# -- visualization ---------------------------------------------------------------------------


def test_visualization_rejects_unknown_chart():
    with pytest.raises(InvalidWorkflow):
        VisualizationOperator("v", "sunburst", "id")


def test_visualization_validates_fields_at_compile():
    wf = Workflow("viz")
    src = wf.add_operator(TableSource("src", make_table(3)))
    viz = wf.add_operator(VisualizationOperator("viz", "bar", "missing"))
    wf.link(src, viz)
    # Wrapped at compile time so the message names the operator and port.
    with pytest.raises(InvalidWorkflow, match=r"'viz'.*port 0.*'missing'"):
        wf.compile_schemas()


# -- ModelApply / Train -------------------------------------------------------------------------


class _TinyModel:
    def predict(self, x):
        return x * 2


def test_model_apply_loads_once_and_applies():
    out_schema = Schema.of(id=FieldType.INT, doubled=FieldType.FLOAT)
    loads = []

    def loader():
        loads.append(1)
        return _TinyModel()

    wf = Workflow("apply")
    src = wf.add_operator(TableSource("src", make_table(20)))
    apply_op = wf.add_operator(
        ModelApplyOperator(
            "apply",
            out_schema,
            loader=loader,
            apply_fn=lambda model, row: [row["id"], model.predict(row["score"])],
            flops_fn=lambda model, row: 1e6,
            load_seconds=2.0,
        )
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, apply_op)
    wf.link(apply_op, sink)
    result = run_simple(wf)
    assert len(loads) == 1
    assert result.table().column("doubled")[3] == pytest.approx(0.6)
    assert result.elapsed_s > 2.0  # load charged


def test_model_apply_load_seconds_validation():
    with pytest.raises(InvalidWorkflow):
        ModelApplyOperator(
            "m",
            SCHEMA,
            loader=lambda: None,
            apply_fn=lambda m, r: [],
            flops_fn=lambda m, r: 0,
            load_seconds=-1.0,
        )


def test_train_operator_trains_and_emits_epochs():
    from repro.ml import SimBertClassifier

    tweets = Table.from_rows(
        Schema.of(text=FieldType.STRING, label=FieldType.INT),
        [[f"wildfire climate {i}", 1] for i in range(10)]
        + [[f"recipe puppy {i}", 0] for i in range(10)],
    )
    wf = Workflow("train")
    src = wf.add_operator(TableSource("src", tweets))
    train = wf.add_operator(
        TrainOperator(
            "train",
            loader=lambda: SimBertClassifier("m", default_config().models),
            epochs=2,
        )
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, train)
    wf.link(train, sink)
    result = run_simple(wf)
    assert len(result.table()) == 2  # one row per epoch
    assert train.trained_model is not None
    assert train.trained_model.fitted
    assert train.framework_cores == 1


def test_train_operator_validation():
    with pytest.raises(InvalidWorkflow):
        TrainOperator("t", loader=lambda: None, epochs=0)


# -- CsvSource -------------------------------------------------------------------------


def test_csv_source_parses_and_streams():
    from repro.workflow.operators import CsvSource

    content = "id,score\n1,0.5\n2,0.9\n"
    wf = Workflow("csv")
    src = wf.add_operator(CsvSource("src", content, SCHEMA))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, sink)
    result = run_simple(wf)
    assert result.table().to_dicts() == [
        {"id": 1, "score": 0.5},
        {"id": 2, "score": 0.9},
    ]


def test_csv_source_rejects_bad_content_eagerly():
    from repro.errors import StorageError
    from repro.workflow.operators import CsvSource

    with pytest.raises(StorageError):
        CsvSource("src", "wrong,header\n1,2\n", SCHEMA)
