"""Tests for runtime-adaptive batch sizing (paper Section III-B)."""

import dataclasses

from repro.cluster import build_cluster
from repro.config import default_config
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sim import Environment
from repro.workflow import Workflow, WorkflowController
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource


def auto_config(target_bytes=64 * 1024):
    config = default_config()
    workflow = dataclasses.replace(
        config.workflow,
        auto_tune_batch_size=True,
        auto_batch_target_bytes=target_bytes,
    )
    return dataclasses.replace(config, workflow=workflow)


def run_with(config, table):
    wf = Workflow("auto")
    src = wf.add_operator(TableSource("src", table))
    keep = wf.add_operator(FilterOperator("keep", column_greater("id", -1)))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    cluster = build_cluster(Environment(), config)
    controller = WorkflowController(cluster, wf)
    result = cluster.env.run(until=cluster.env.process(controller.execute()))
    outbound = controller._instances["src"][0].outbound[0]
    return result, outbound


def wide_table(blob_bytes, n=300):
    schema = Schema.of(id=FieldType.INT, blob=FieldType.STRING)
    return Table.from_rows(schema, [[i, "x" * blob_bytes] for i in range(n)])


def narrow_table(n=300):
    schema = Schema.of(id=FieldType.INT, blob=FieldType.STRING)
    return Table.from_rows(schema, [[i, "y"] for i in range(n)])


def test_heavy_tuples_get_small_batches():
    result, outbound = run_with(auto_config(), wide_table(32 * 1024))
    assert len(result.table()) == 300
    # ~32 KiB tuples against a 64 KiB target -> batches of ~2.
    assert outbound.batch_size <= 4


def test_light_tuples_get_large_batches():
    result, outbound = run_with(auto_config(), narrow_table())
    assert len(result.table()) == 300
    # Tiny tuples -> the tuner opens the batch up toward the max.
    assert outbound.batch_size > 256


def test_tuner_respects_clamp():
    config = auto_config(target_bytes=10**9)
    _result, outbound = run_with(config, narrow_table())
    assert outbound.batch_size <= config.workflow.max_batch_size


def test_auto_tuning_off_by_default():
    _result, outbound = run_with(default_config(), wide_table(32 * 1024))
    assert outbound.auto_tune is None
    assert outbound.batch_size == default_config().workflow.default_batch_size


def test_explicit_batch_size_wins_over_auto():
    config = auto_config()
    wf = Workflow("explicit")
    src = wf.add_operator(
        TableSource("src", narrow_table()).with_output_batch_size(5)
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, sink)
    cluster = build_cluster(Environment(), config)
    controller = WorkflowController(cluster, wf)
    cluster.env.run(until=cluster.env.process(controller.execute()))
    outbound = controller._instances["src"][0].outbound[0]
    assert outbound.auto_tune is None
    assert outbound.batch_size == 5


def test_results_identical_with_and_without_auto():
    table = wide_table(1024, n=123)
    with_auto, _ = run_with(auto_config(), table)
    without, _ = run_with(default_config(), table)
    assert with_auto.table().to_dicts() == without.table().to_dicts()
