"""Tests for stream operators, operator stats and ray.wait."""

import pytest

from repro.cluster import build_cluster
from repro.errors import InvalidWorkflow
from repro.relational import FieldType, Schema, Table
from repro.rayx import run_script
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import (
    DistinctOperator,
    FilterOperator,
    LimitOperator,
    SampleOperator,
    SinkOperator,
    TableSource,
)

SCHEMA = Schema.of(id=FieldType.INT, bucket=FieldType.INT)


def make_table(n=100):
    return Table.from_rows(SCHEMA, [[i, i % 7] for i in range(n)])


def run_chain(*operators, table=None):
    wf = Workflow("chain")
    src = wf.add_operator(TableSource("src", table or make_table()))
    sink = wf.add_operator(SinkOperator("sink"))
    previous = src
    for op in operators:
        wf.add_operator(op)
        wf.link(previous, op)
        previous = op
    wf.link(previous, sink)
    return run_workflow(build_cluster(Environment()), wf)


# -- limit --------------------------------------------------------------------


def test_limit_keeps_first_k():
    result = run_chain(LimitOperator("limit", 7))
    assert result.table().column("id") == list(range(7))


def test_limit_zero_yields_empty():
    result = run_chain(LimitOperator("limit", 0))
    assert result.table().is_empty()


def test_limit_larger_than_input_passes_all():
    result = run_chain(LimitOperator("limit", 10_000))
    assert len(result.table()) == 100


def test_limit_validation():
    with pytest.raises(InvalidWorkflow):
        LimitOperator("l", -1)


# -- distinct -----------------------------------------------------------------------


def test_distinct_by_key_keeps_first_occurrence():
    result = run_chain(DistinctOperator("distinct", key="bucket"))
    assert result.table().column("bucket") == list(range(7))
    assert result.table().column("id") == list(range(7))


def test_distinct_whole_row():
    table = Table.from_rows(SCHEMA, [[1, 1], [1, 1], [2, 2]])
    result = run_chain(DistinctOperator("distinct"), table=table)
    assert len(result.table()) == 2


def test_distinct_whole_row_rejects_parallelism():
    wf = Workflow("bad")
    src = wf.add_operator(TableSource("src", make_table()))
    distinct = wf.add_operator(DistinctOperator("distinct", num_workers=2))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, distinct)
    wf.link(distinct, sink)
    with pytest.raises(InvalidWorkflow, match="single worker"):
        wf.compile_schemas()


def test_distinct_by_key_parallel_is_correct():
    result = run_chain(DistinctOperator("distinct", key="bucket", num_workers=3))
    assert sorted(result.table().column("bucket")) == list(range(7))


# -- sample ----------------------------------------------------------------------------


def test_systematic_sample_rate():
    result = run_chain(SampleOperator("sample", one_in=4))
    assert len(result.table()) == 25
    assert result.table().column("id")[:3] == [0, 4, 8]


def test_keyed_sample_is_deterministic_per_key():
    a = run_chain(SampleOperator("sample", one_in=3, key="bucket"))
    b = run_chain(SampleOperator("sample", one_in=3, key="bucket"))
    assert a.table().to_dicts() == b.table().to_dicts()
    kept_buckets = set(a.table().column("bucket"))
    dropped = set(range(7)) - kept_buckets
    assert dropped  # some buckets entirely dropped -> key-consistency


def test_sample_validation():
    with pytest.raises(InvalidWorkflow):
        SampleOperator("s", one_in=0)


# -- operator stats -----------------------------------------------------------------------


def test_operator_stats_account_busy_time():
    from repro.relational import column_greater

    result = run_chain(
        FilterOperator("work", column_greater("id", -1), per_tuple_work_s=0.01)
    )
    stats = result.operator_stats
    assert set(stats) == {"src", "work", "sink"}
    assert stats["work"]["instances"] == 1
    # 100 tuples x ~10ms of declared work dominate its busy time.
    assert stats["work"]["busy_s"] >= 1.0
    assert stats["work"]["busy_s"] < result.elapsed_s
    assert stats["work"]["nodes"][0].startswith("worker-")


def test_stats_split_across_instances():
    from repro.relational import column_greater

    wf = Workflow("mw")
    src = wf.add_operator(TableSource("src", make_table(200)))
    work = wf.add_operator(
        FilterOperator(
            "work", column_greater("id", -1), num_workers=4, per_tuple_work_s=0.01
        )
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, work)
    wf.link(work, sink)
    result = run_workflow(build_cluster(Environment()), wf)
    stats = result.operator_stats["work"]
    assert stats["instances"] == 4
    assert len(stats["nodes"]) == 4


# -- ray.wait ----------------------------------------------------------------------------------


def test_wait_returns_fastest_first():
    def job(ctx, delay):
        yield from ctx.compute(delay)
        return delay

    def driver(rt):
        slow = rt.submit(job, 30.0)
        fast = rt.submit(job, 1.0)
        ready, not_ready = yield from rt.wait([slow, fast], num_returns=1)
        first = yield from rt.get(ready[0])
        rest = yield from rt.get(not_ready[0])
        return first, rest

    assert run_script(build_cluster(Environment()), driver, num_cpus=2) == (1.0, 30.0)


def test_wait_num_returns_all():
    def job(ctx, delay):
        yield from ctx.compute(delay)
        return delay

    def driver(rt):
        refs = [rt.submit(job, d) for d in (3.0, 1.0, 2.0)]
        ready, not_ready = yield from rt.wait(refs, num_returns=3)
        assert not not_ready
        values = yield from rt.get_all(ready)
        return sorted(values)

    assert run_script(build_cluster(Environment()), driver, num_cpus=3) == [
        1.0,
        2.0,
        3.0,
    ]


def test_wait_validates_num_returns():
    def job(ctx):
        return 1

    def driver(rt):
        refs = [rt.submit(job)]
        with pytest.raises(ValueError):
            yield from rt.wait(refs, num_returns=2)
        yield from rt.get_all(refs)
        return True

    assert run_script(build_cluster(Environment()), driver)


def test_wait_counts_failed_refs_as_ready():
    def bad(ctx):
        yield from ctx.compute(0.5)
        raise RuntimeError("dead")

    def good(ctx):
        yield from ctx.compute(10.0)
        return "ok"

    def driver(rt):
        refs = [rt.submit(bad), rt.submit(good)]
        ready, not_ready = yield from rt.wait(refs, num_returns=1)
        assert len(ready) == 1
        try:
            yield from rt.get(ready[0])
        except RuntimeError:
            pass
        value = yield from rt.get(not_ready[0])
        return value

    assert run_script(build_cluster(Environment()), driver, num_cpus=2) == "ok"
