"""Tests for pause/resume and broadcast-build joins."""

import pytest

from repro.cluster import build_cluster
from repro.relational import FieldType, Schema, Table, column_greater, hash_join
from repro.sim import Environment
from repro.workflow import OperatorState, Workflow, WorkflowController
from repro.workflow.operators import (
    FilterOperator,
    HashJoinOperator,
    SinkOperator,
    TableSource,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def make_table(n=200):
    return Table.from_rows(SCHEMA, [[i, (i % 10) / 10.0] for i in range(n)])


def slow_workflow():
    wf = Workflow("pausable")
    src = wf.add_operator(TableSource("src", make_table(200)))
    slow = wf.add_operator(
        FilterOperator("slow", column_greater("score", -1), per_tuple_work_s=0.01)
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, slow)
    wf.link(slow, sink)
    return wf


# -- pause / resume ----------------------------------------------------------------


def test_pause_freezes_progress_and_resume_completes():
    cluster = build_cluster(Environment())
    env = cluster.env
    controller = WorkflowController(cluster, slow_workflow())
    main = env.process(controller.execute())

    observations = {}

    def supervisor():
        yield env.timeout(6.0)  # mid-execution (startup ~4.9s)
        controller.pause()
        observations["paused_state"] = controller.progress.of("slow").state
        pause_started = env.now
        inputs_at_pause = controller.progress.of("slow").input_tuples
        yield env.timeout(50.0)
        observations["inputs_during_pause"] = (
            controller.progress.of("slow").input_tuples - inputs_at_pause
        )
        controller.resume()
        observations["resumed_state"] = controller.progress.of("slow").state
        observations["pause_duration"] = env.now - pause_started

    env.process(supervisor())
    result = env.run(until=main)

    assert observations["paused_state"] is OperatorState.PAUSED
    # At most one in-flight batch drains after the pause request.
    assert observations["inputs_during_pause"] <= 64
    assert observations["resumed_state"] is OperatorState.RUNNING
    assert len(result.table()) == 200
    # The 50s pause shows up in the makespan.
    assert result.elapsed_s > 50.0


def test_pause_and_resume_are_idempotent():
    cluster = build_cluster(Environment())
    env = cluster.env
    controller = WorkflowController(cluster, slow_workflow())
    main = env.process(controller.execute())

    def supervisor():
        yield env.timeout(6.0)
        controller.pause()
        controller.pause()  # second pause is a no-op
        assert controller.is_paused
        yield env.timeout(1.0)
        controller.resume()
        controller.resume()  # second resume is a no-op
        assert not controller.is_paused

    env.process(supervisor())
    result = env.run(until=main)
    assert result.progress.all_completed()


def test_resume_without_pause_is_noop():
    cluster = build_cluster(Environment())
    controller = WorkflowController(cluster, slow_workflow())
    controller.resume()  # nothing to release
    result = cluster.env.run(until=cluster.env.process(controller.execute()))
    assert len(result.table()) == 200


# -- broadcast-build joins ------------------------------------------------------------


LEFT = Schema.of(k=FieldType.INT, a=FieldType.STRING)
RIGHT = Schema.of(k=FieldType.INT, b=FieldType.STRING)


def join_workflow(broadcast_build):
    build = Table.from_rows(LEFT, [[i % 5, f"a{i}"] for i in range(20)])
    probe = Table.from_rows(RIGHT, [[i % 5, f"b{i}"] for i in range(100)])
    wf = Workflow("bcast")
    b = wf.add_operator(TableSource("build", build))
    p = wf.add_operator(TableSource("probe", probe))
    join = wf.add_operator(
        HashJoinOperator(
            "join",
            build_key="k",
            probe_key="k",
            num_workers=4,
            broadcast_build=broadcast_build,
        )
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(b, join, input_port=0)
    wf.link(p, join, input_port=1)
    wf.link(join, sink)
    return wf, build, probe


@pytest.mark.parametrize("broadcast_build", [False, True])
def test_multiworker_join_correct_with_either_strategy(broadcast_build):
    wf, build, probe = join_workflow(broadcast_build)
    cluster = build_cluster(Environment())
    controller = WorkflowController(cluster, wf)
    result = cluster.env.run(until=cluster.env.process(controller.execute()))
    expected = hash_join(probe, build, "k", "k")
    got = sorted(tuple(r.values) for r in result.table())
    want = sorted(tuple(r.values) for r in expected)
    assert got == want


def test_broadcast_replicates_build_to_every_worker():
    wf, build, probe = join_workflow(True)
    cluster = build_cluster(Environment())
    controller = WorkflowController(cluster, wf)
    result = cluster.env.run(until=cluster.env.process(controller.execute()))
    # Each of the 4 workers received the full 20-row build side.
    progress = result.progress.of("join")
    assert progress.input_tuples == 4 * len(build) + len(probe)


def test_hash_strategy_partitions_build():
    wf, build, probe = join_workflow(False)
    cluster = build_cluster(Environment())
    controller = WorkflowController(cluster, wf)
    result = cluster.env.run(until=cluster.env.process(controller.execute()))
    progress = result.progress.of("join")
    assert progress.input_tuples == len(build) + len(probe)
