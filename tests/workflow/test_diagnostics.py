"""Every DAG validation failure names the offending operator and port.

The paper's Section III-A credits the GUI paradigm with surfacing
configuration errors *at editing time, at the operator level*.  These
tests pin the diagnostics contract: cycle, dangling link, duplicate
link into an input port, and schema mismatch all identify the operator
id (and where meaningful, the port) in the exception message, so a
spec author never has to bisect the DAG by hand.
"""

import pytest

from repro.errors import InvalidWorkflow
from repro.relational import FieldType, Schema, Table
from repro.workflow import Workflow
from repro.workflow.operators import (
    FilterOperator,
    HashJoinOperator,
    MapOperator,
    ProjectionOperator,
    SinkOperator,
    TableSource,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def small_table():
    return Table.from_rows(SCHEMA, [[1, 0.5], [2, 1.5]])


def _identity(row):
    return list(row.values)


def test_cycle_error_names_operators_and_links():
    wf = Workflow("cyclic")
    a = wf.add_operator(MapOperator("map-a", SCHEMA, _identity))
    b = wf.add_operator(MapOperator("map-b", SCHEMA, _identity))
    wf.add_operator(SinkOperator("sink"))
    wf.link(a, b)
    wf.link(b, a)
    with pytest.raises(InvalidWorkflow) as exc:
        wf.topological_order()
    message = str(exc.value)
    assert "map-a" in message and "map-b" in message
    assert "map-a[0] -> map-b[0]" in message
    assert "map-b[0] -> map-a[0]" in message


def test_dangling_link_names_missing_operator_and_ports():
    wf = Workflow()
    src = wf.add_operator(TableSource("scan", small_table()))
    orphan = SinkOperator("orphan-sink")  # never added
    with pytest.raises(InvalidWorkflow) as exc:
        wf.link(src, orphan)
    message = str(exc.value)
    assert "dangling link" in message
    assert "'orphan-sink'" in message
    assert "scan[0] -> orphan-sink[0]" in message


def test_out_of_range_output_port_names_operator_and_range():
    wf = Workflow()
    src = wf.add_operator(TableSource("scan", small_table()))
    sink = wf.add_operator(SinkOperator("sink"))
    with pytest.raises(
        InvalidWorkflow, match=r"'scan' has no output port 3.*0\.\.0"
    ):
        wf.link(src, sink, output_port=3)


def test_out_of_range_input_port_names_operator_and_range():
    wf = Workflow()
    src = wf.add_operator(TableSource("scan", small_table()))
    sink = wf.add_operator(SinkOperator("sink"))
    with pytest.raises(InvalidWorkflow, match=r"'sink' has no input port 2"):
        wf.link(src, sink, input_port=2)


def test_link_into_source_reports_it_has_no_input_ports():
    wf = Workflow()
    a = wf.add_operator(TableSource("scan-a", small_table()))
    b = wf.add_operator(TableSource("scan-b", small_table()))
    with pytest.raises(InvalidWorkflow, match="no input ports"):
        wf.link(a, b)


def test_duplicate_input_port_link_names_port_and_both_links():
    wf = Workflow()
    a = wf.add_operator(TableSource("scan-a", small_table()))
    b = wf.add_operator(TableSource("scan-b", small_table()))
    join = wf.add_operator(HashJoinOperator("join", "id", "id"))
    wf.link(a, join, input_port=0)
    with pytest.raises(InvalidWorkflow) as exc:
        wf.link(b, join, input_port=0)
    message = str(exc.value)
    assert "duplicate link into input port 0" in message
    assert "'join'" in message
    assert "scan-a[0] -> join[0]" in message  # the existing link
    assert "scan-b[0] -> join[0]" in message  # the conflicting link


def test_unconnected_input_ports_name_operator_and_ports():
    wf = Workflow()
    a = wf.add_operator(TableSource("scan-a", small_table()))
    join = wf.add_operator(HashJoinOperator("join", "id", "id"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(a, join, input_port=0)
    wf.link(join, sink)
    with pytest.raises(InvalidWorkflow, match=r"'join' input ports \[1\]"):
        wf.validate()


def test_schema_mismatch_names_operator_port_and_producer():
    wf = Workflow()
    src = wf.add_operator(TableSource("scan", small_table()))
    proj = wf.add_operator(ProjectionOperator("narrow", ["missing_col"]))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, proj)
    wf.link(proj, sink)
    with pytest.raises(InvalidWorkflow) as exc:
        wf.compile_schemas()
    message = str(exc.value)
    assert "operator 'narrow'" in message
    assert "port 0" in message
    assert "from 'scan'" in message
    assert "'missing_col'" in message


def test_operator_scoped_invalid_workflow_passes_through_unwrapped():
    # Join key errors are already operator-scoped; the compile wrapper
    # must not double-wrap them.
    wf = Workflow()
    a = wf.add_operator(TableSource("scan-a", small_table()))
    b = wf.add_operator(TableSource("scan-b", small_table()))
    join = wf.add_operator(HashJoinOperator("join", "nope", "id"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(a, join, input_port=0)
    wf.link(b, join, input_port=1)
    wf.link(join, sink)
    with pytest.raises(InvalidWorkflow) as exc:
        wf.compile_schemas()
    message = str(exc.value)
    assert "join" in message and "build key" in message
    assert "schema mismatch" not in message


def test_filter_keeps_schema_and_errors_stay_scoped():
    wf = Workflow()
    src = wf.add_operator(TableSource("scan", small_table()))
    keep = wf.add_operator(FilterOperator("keep", _never))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    schemas = wf.compile_schemas()
    assert schemas["keep"] == SCHEMA


def _never(row):
    return False
