"""Tuple-routing contracts: repro.workflow.partitioning.

Co-locating hash-partition peers (the ``locality`` placement policy)
only works if routing itself is stable: the same key must map to the
same instance index on every run, process and Python version.
"""

import zlib

import pytest

from repro.relational import FieldType, Schema, Tuple
from repro.workflow.partitioning import (
    BroadcastPartitioner,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    stable_hash,
)

SCHEMA = Schema.of(id=FieldType.INT, name=FieldType.STRING)


def row(id_, name):
    return Tuple(SCHEMA, [id_, name])


# -- stable_hash -------------------------------------------------------------


def test_stable_hash_is_deterministic_and_unsalted():
    # CRC32 of repr: reproducible across processes, unlike builtin hash.
    for value in (42, "item-7", ("a", 1), None, 3.5):
        assert stable_hash(value) == stable_hash(value)
        assert stable_hash(value) == zlib.crc32(repr(value).encode("utf-8"))
        assert stable_hash(value) >= 0


def test_stable_hash_distinguishes_values():
    assert stable_hash("item-1") != stable_hash("item-2")


# -- HashPartitioner ---------------------------------------------------------


def test_hash_partitioner_routes_equal_keys_together():
    partitioner = HashPartitioner(4, key="name")
    first = partitioner.route(row(1, "alpha"))
    second = partitioner.route(row(2, "alpha"))
    assert first == second
    assert len(first) == 1
    assert 0 <= first[0] < 4


def test_hash_partitioner_is_stable_across_instances():
    # Two independent partitioners (e.g. on two producer instances)
    # must agree, or a keyed consumer would see a split key space.
    a, b = HashPartitioner(3, key="id"), HashPartitioner(3, key="id")
    for i in range(50):
        assert a.route(row(i, f"n{i}")) == b.route(row(i, f"n{i}"))


def test_hash_partitioner_matches_stable_hash_arithmetic():
    partitioner = HashPartitioner(5, key="name")
    t = row(9, "gamma")
    assert partitioner.route(t) == [stable_hash("gamma") % 5]


# -- BroadcastPartitioner ----------------------------------------------------


def test_broadcast_fans_out_to_every_instance():
    partitioner = BroadcastPartitioner(4)
    assert partitioner.route(row(1, "a")) == [0, 1, 2, 3]
    # Every tuple, not just the first.
    assert partitioner.route(row(2, "b")) == [0, 1, 2, 3]


# -- RoundRobinPartitioner ---------------------------------------------------


def test_round_robin_cycles_deterministically():
    partitioner = RoundRobinPartitioner(3)
    routes = [partitioner.route(row(i, "x"))[0] for i in range(7)]
    assert routes == [0, 1, 2, 0, 1, 2, 0]


# -- degenerate single consumer ----------------------------------------------


@pytest.mark.parametrize(
    "partitioner",
    [
        RoundRobinPartitioner(1),
        HashPartitioner(1, key="id"),
        BroadcastPartitioner(1),
    ],
    ids=["round_robin", "hash", "broadcast"],
)
def test_single_consumer_always_routes_to_zero(partitioner):
    for i in range(5):
        assert partitioner.route(row(i, f"n{i}")) == [0]


def test_partitioner_rejects_non_positive_consumers():
    for cls in (RoundRobinPartitioner, BroadcastPartitioner):
        with pytest.raises(ValueError):
            cls(0)
    with pytest.raises(ValueError):
        HashPartitioner(0, key="id")
    assert issubclass(HashPartitioner, Partitioner)
