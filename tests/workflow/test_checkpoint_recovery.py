"""Workflow-engine recovery: operator checkpoint/restart at epoch boundaries.

Texera-style fault tolerance: each instance snapshots its executor
state before consuming a batch (one batch == one epoch); an injected
operator fault crashes the instance mid-batch, the snapshot is
restored, and the batch replays.  Outputs are emitted only after a
batch completes, so downstream operators see every tuple exactly once
and results match the clean run bit for bit.
"""

from repro.cluster import build_cluster
from repro.faults import FaultEvent, FaultSchedule, faults_injected
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def make_workflow(rows=400):
    table = Table.from_rows(SCHEMA, [[i, i / 100] for i in range(rows)])
    wf = Workflow("recovery-demo")
    src = wf.add_operator(TableSource("scan", table))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 1.0)))
    sink = wf.add_operator(SinkOperator("results"))
    wf.link(src, keep)
    wf.link(keep, sink)
    return wf


def run_once(schedule=None):
    cluster = build_cluster(Environment())
    if schedule is None:
        result = run_workflow(cluster, make_workflow())
        return result, None
    with faults_injected(schedule) as injector:
        cluster = build_cluster(Environment())
        result = run_workflow(cluster, make_workflow())
    return result, injector


def rows_of(result):
    return sorted(tuple(row.values) for row in result.table().rows)


def test_operator_restart_preserves_output():
    clean, _ = run_once()
    schedule = FaultSchedule(
        events=(FaultEvent(0.01, "operator", target="keep"),)
    )
    faulted, injector = run_once(schedule)
    assert rows_of(faulted) == rows_of(clean)
    assert injector.injected == 1
    assert injector.retries == 1  # one checkpoint restore
    assert faulted.elapsed_s > clean.elapsed_s  # wasted half-batch + restart


def test_repeated_faults_on_same_operator_all_recover():
    clean, _ = run_once()
    schedule = FaultSchedule(
        events=tuple(FaultEvent(0.01, "operator", target="keep") for _ in range(3))
    )
    faulted, injector = run_once(schedule)
    assert rows_of(faulted) == rows_of(clean)
    assert injector.injected == 3
    assert injector.retries == 3


def test_fault_on_unmatched_operator_changes_nothing():
    clean, _ = run_once()
    schedule = FaultSchedule(
        events=(FaultEvent(0.01, "operator", target="no-such-operator"),)
    )
    faulted, injector = run_once(schedule)
    assert rows_of(faulted) == rows_of(clean)
    assert injector.injected == 0
    assert injector.retries == 0
    # The checkpoint cost is charged while faults are armed, so the
    # run is slower than clean — but the *data* is untouched.
    assert faulted.elapsed_s >= clean.elapsed_s


def test_recovery_timeline_is_deterministic():
    schedule = FaultSchedule(
        events=(
            FaultEvent(0.01, "operator", target="keep"),
            FaultEvent(0.05, "operator", target="results"),
        )
    )
    first, first_injector = run_once(schedule)
    second, second_injector = run_once(schedule)
    assert first.elapsed_s == second.elapsed_s
    assert rows_of(first) == rows_of(second)
    assert first_injector.injected == second_injector.injected == 2
    assert first_injector.retries == second_injector.retries


def test_every_operator_state_completes_after_recovery():
    schedule = FaultSchedule(
        events=(FaultEvent(0.01, "operator", target="keep"),)
    )
    faulted, _ = run_once(schedule)
    description = "\n".join(faulted.progress.describe())
    assert description.count("completed") == 3
    assert "failed" not in description
