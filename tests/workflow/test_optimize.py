"""The logical optimizer: fusion, dead-column pruning, placement.

Contract under test: ``optimize_workflow`` may change the *physical*
plan — fewer operators, narrower rows on the wire, co-located language
groups — but never the collected rows; and with the optimizer off the
plan is untouched, so calibrated timings and cache lineage keys stay
exactly as pinned.  Fault recovery composes: a fused operator is one
checkpointing instance, and an injected crash replays it like any
hand-built operator.
"""

from dataclasses import replace

from repro.cache import ResultCache, cached
from repro.cluster import build_cluster
from repro.config import default_config
from repro.errors import InvalidWorkflow  # noqa: F401  (re-exported surface)
from repro.faults import FaultEvent, FaultSchedule, faults_injected
from repro.relational import (
    FieldType,
    Schema,
    Table,
    column_greater,
    udf_predicate,
)
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.language import OperatorLanguage
from repro.workflow.operators import (
    FilterOperator,
    ProjectionOperator,
    SinkOperator,
    TableSource,
)
from repro.workflow.optimize import (
    FusedOperator,
    fuse_adjacent,
    optimize_workflow,
    placement_groups,
    prune_dead_columns,
)

WIDE = Schema.of(
    id=FieldType.INT,
    score=FieldType.FLOAT,
    note=FieldType.STRING,
    blob=FieldType.STRING,
)


def wide_table(rows=300):
    return Table.from_rows(
        WIDE, [[i, i / 100, f"note-{i}", "x" * 50] for i in range(rows)]
    )


def make_workflow(predicate=None, project=("id", "score"), languages=None):
    """scan -> keep -> keep2 -> columns -> results, all single-worker."""
    languages = languages or {}
    wf = Workflow("optimizer-demo")
    src = wf.add_operator(TableSource("scan", wide_table()))
    keep = wf.add_operator(
        FilterOperator(
            "keep",
            predicate or column_greater("score", 0.5),
            language=languages.get("keep", OperatorLanguage.PYTHON),
        )
    )
    keep2 = wf.add_operator(
        FilterOperator(
            "keep2",
            column_greater("score", 1.0),
            language=languages.get("keep2", OperatorLanguage.PYTHON),
        )
    )
    columns = wf.add_operator(ProjectionOperator("columns", list(project)))
    sink = wf.add_operator(SinkOperator("results"))
    wf.link(src, keep)
    wf.link(keep, keep2)
    wf.link(keep2, columns)
    wf.link(columns, sink)
    return wf


def run_once(workflow, config=None, cache=None, schedule=None):
    from contextlib import ExitStack

    with ExitStack() as stack:
        injector = None
        if schedule is not None:
            injector = stack.enter_context(faults_injected(schedule))
        if cache is not None:
            stack.enter_context(cached(cache))
        cluster = build_cluster(Environment())
        result = run_workflow(cluster, workflow, config)
    return result, injector


def rows_of(result):
    return sorted(tuple(map(str, row.values)) for row in result.table().rows)


# -- fusion --------------------------------------------------------------------


def test_adjacent_same_language_operators_fuse():
    wf = fuse_adjacent(make_workflow())
    assert "keep+keep2+columns" in wf.operators
    fused = wf.operators["keep+keep2+columns"]
    assert isinstance(fused, FusedOperator)
    assert wf.num_operators == 3  # scan, fused chain, results
    baseline, _ = run_once(make_workflow())
    fused_run, _ = run_once(wf)
    assert rows_of(fused_run) == rows_of(baseline)
    # fewer instances deployed, same rows out
    assert fused_run.num_worker_instances < baseline.num_worker_instances


def test_fusion_stops_at_language_boundaries():
    wf = fuse_adjacent(
        make_workflow(languages={"keep2": OperatorLanguage.SCALA})
    )
    # keep (python) cannot fuse into keep2 (scala); keep2 stays alone
    # because its consumer is python again.
    assert "keep" in wf.operators
    assert "keep2" in wf.operators
    assert "keep+keep2" not in wf.operators


def test_fused_chain_output_schema_matches_tail():
    wf = fuse_adjacent(make_workflow())
    schemas = wf.compile_schemas()
    assert schemas["keep+keep2+columns"].names == ["id", "score"]


# -- dead-column pruning -------------------------------------------------------


def test_pruning_inserts_projection_after_the_source():
    wf = prune_dead_columns(make_workflow())
    pruners = [op_id for op_id in wf.operators if op_id.startswith("prune:")]
    assert pruners == ["prune:scan->keep"]
    baseline, _ = run_once(make_workflow())
    pruned, _ = run_once(wf)
    assert rows_of(pruned) == rows_of(baseline)
    # the pruner drops note/blob before they ever cross the wire
    assert wf.compile_schemas()["prune:scan->keep"].names == ["id", "score"]


def test_udf_predicate_blocks_pruning_upstream_of_itself():
    opaque = udf_predicate(lambda row: row["score"] > 0.5, "udf")
    wf = prune_dead_columns(make_workflow(predicate=opaque))
    pruners = [op for op in wf.operators if op.startswith("prune:")]
    # The UDF reads unknown columns, so nothing may be dropped before
    # it — but the stream still narrows right after it.
    assert pruners == ["prune:keep->keep2"]
    baseline, _ = run_once(make_workflow(predicate=opaque))
    pruned, _ = run_once(
        prune_dead_columns(make_workflow(predicate=opaque))
    )
    assert rows_of(pruned) == rows_of(baseline)


def test_pruning_noop_when_everything_is_needed():
    wf = prune_dead_columns(
        make_workflow(project=("id", "score", "note", "blob"))
    )
    assert not [op for op in wf.operators if op.startswith("prune:")]


# -- placement hints -----------------------------------------------------------


def test_cross_language_links_form_one_colocation_group():
    wf = make_workflow(languages={"keep2": OperatorLanguage.SCALA})
    hints = placement_groups(wf)
    assert hints["keep"] == hints["keep2"] == hints["columns"]
    assert "scan" not in hints  # same-language neighbours stay unhinted


def test_colocated_operators_share_a_node():
    wf = make_workflow(languages={"keep2": OperatorLanguage.SCALA})
    wf.placement_hints = placement_groups(wf)
    result, _ = run_once(wf)
    stats = result.operator_stats
    assert stats["keep"]["nodes"] == stats["keep2"]["nodes"] == stats["columns"]["nodes"]


# -- the config switch ---------------------------------------------------------


def optimizing_config():
    config = default_config()
    return replace(config, workflow=replace(config.workflow, optimize=True))


def test_config_optimize_rewrites_plan_and_preserves_rows():
    baseline, _ = run_once(make_workflow())
    optimized, _ = run_once(make_workflow(), config=optimizing_config())
    assert rows_of(optimized) == rows_of(baseline)
    fused_ids = [op for op in optimized.workflow.operators if "+" in op]
    assert fused_ids == ["prune:scan->keep+keep+keep2+columns"]
    assert optimized.elapsed_s < baseline.elapsed_s


def test_optimizer_off_keeps_plan_and_timing_identical():
    first, _ = run_once(make_workflow())
    second, _ = run_once(make_workflow())
    assert second.elapsed_s == first.elapsed_s
    assert sorted(second.workflow.operators) == sorted(first.workflow.operators)


# -- faults: fused operators checkpoint and replay -----------------------------


def test_fused_operator_replays_from_checkpoint():
    clean, _ = run_once(optimize_workflow(make_workflow()))
    (fused_id,) = [op for op in clean.workflow.operators if "+" in op]
    schedule = FaultSchedule(
        events=(FaultEvent(0.01, "operator", target=fused_id),)
    )
    faulted, injector = run_once(optimize_workflow(make_workflow()), schedule=schedule)
    assert injector.injected == 1
    assert injector.retries == 1  # one checkpoint restore
    assert rows_of(faulted) == rows_of(clean)
    assert faulted.elapsed_s > clean.elapsed_s


def test_optimized_plan_recovers_from_fault_with_pruning_in_place():
    wf = optimize_workflow(make_workflow())
    pruner_or_fused = [op for op in wf.operators if op != "scan" and op != "results"]
    assert pruner_or_fused
    schedule = FaultSchedule(
        events=(FaultEvent(0.01, "operator", target=pruner_or_fused[0]),)
    )
    clean, _ = run_once(optimize_workflow(make_workflow()))
    faulted, injector = run_once(optimize_workflow(make_workflow()), schedule=schedule)
    assert injector.injected == 1
    assert rows_of(faulted) == rows_of(clean)


# -- cache: lineage keys are stable with the optimizer off ---------------------


def test_cache_lineage_keys_stable_across_runs_optimizer_off():
    cache = ResultCache("on")
    first, _ = run_once(make_workflow(), cache=cache)
    cold = (cache.hits, cache.misses)
    second, _ = run_once(make_workflow(), cache=cache)
    assert rows_of(second) == rows_of(first)
    assert cache.misses == cold[1]  # warm run added no new entries
    assert cache.hits > cold[0]  # every batch key matched the cold run


def test_optimized_runs_use_their_own_cache_keys():
    """Fused plans must not collide with unoptimized lineage keys."""
    cache = ResultCache("on")
    plain, _ = run_once(make_workflow(), cache=cache)
    misses_after_plain = cache.misses
    fused, _ = run_once(optimize_workflow(make_workflow()), cache=cache)
    assert rows_of(fused) == rows_of(plain)
    # the fused operator's work is new lineage, not a false hit
    assert cache.misses > misses_after_plain
