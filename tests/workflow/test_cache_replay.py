"""Result caching x workflow fault replay: stats, transfers, outputs.

Three guarantees around the batch-is-an-epoch recovery model:

* a batch's cache key is looked up exactly once per epoch — an
  injected operator crash replays the batch from its checkpoint
  without touching the cache again, so hit/miss/insert statistics are
  identical with and without the fault;
* the workflow engine never touches the rayx object store — replayed
  batches must not bump ``objectstore.transfer.count`` (the
  double-count this PR's issue called out);
* a warm cache never masks an injected fault: the crash still fires,
  the checkpoint still restores, and the output still matches.
"""

from repro.cache import ResultCache, cached
from repro.cluster import build_cluster
from repro.faults import FaultEvent, FaultSchedule, faults_injected
from repro.obs import Tracer, tracing
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)

KEEP_FAULT = FaultSchedule(events=(FaultEvent(0.01, "operator", target="keep"),))


def make_workflow(rows=400):
    table = Table.from_rows(SCHEMA, [[i, i / 100] for i in range(rows)])
    wf = Workflow("cache-replay")
    src = wf.add_operator(TableSource("scan", table))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 1.0)))
    sink = wf.add_operator(SinkOperator("results"))
    wf.link(src, keep)
    wf.link(keep, sink)
    return wf


def rows_of(result):
    return sorted(tuple(row.values) for row in result.table().rows)


def run_once(schedule=None, cache=None, tracer=None):
    from contextlib import ExitStack

    with ExitStack() as stack:
        injector = None
        if schedule is not None:
            injector = stack.enter_context(faults_injected(schedule))
        if tracer is not None:
            stack.enter_context(tracing(tracer))
        if cache is not None:
            stack.enter_context(cached(cache))
        cluster = build_cluster(Environment())
        result = run_workflow(cluster, make_workflow())
    return result, injector


def test_replayed_batches_count_cache_stats_once():
    """Fault replay must not re-probe the cache (stats stay identical)."""
    clean_cache = ResultCache("on")
    clean, _ = run_once(cache=clean_cache)

    faulted_cache = ResultCache("on")
    faulted, injector = run_once(schedule=KEEP_FAULT, cache=faulted_cache)

    assert injector.injected == 1
    assert rows_of(faulted) == rows_of(clean)
    assert faulted_cache.stats() == clean_cache.stats()
    assert faulted_cache.misses == faulted_cache.inserts  # cold: no hits


def test_replayed_batches_do_not_touch_objectstore_transfers():
    """The workflow engine has no object store — replays must not
    inflate ``objectstore.transfer.count`` (the reported double-count)."""
    tracer = Tracer()
    _, injector = run_once(schedule=KEEP_FAULT, tracer=tracer)
    assert injector.injected == 1
    assert tracer.metrics.value("objectstore.transfer.count") == 0
    # The replay is visible where it should be: recovery bookkeeping.
    assert tracer.metrics.total("faults.injected") >= 1


def test_warm_hits_do_not_mask_operator_faults():
    """A fully warm cache still takes (and recovers from) the crash."""
    cache = ResultCache("on")
    clean, _ = run_once(cache=cache)  # populates the cache
    warm, injector = run_once(schedule=KEEP_FAULT, cache=cache)
    assert injector.injected == 1
    assert injector.retries == 1
    assert rows_of(warm) == rows_of(clean)
    assert cache.hits > 0


def test_warm_replay_under_fault_matches_clean_output():
    """Warm + fault + warm again: every combination stays correct."""
    cache = ResultCache("on")
    baseline, _ = run_once()
    for schedule in (None, KEEP_FAULT, None):
        result, _ = run_once(schedule=schedule, cache=cache)
        assert rows_of(result) == rows_of(baseline)
