"""Unit tests for workflow DAG construction and validation."""

import pytest

from repro.errors import InvalidWorkflow
from repro.relational import FieldType, Schema, Table, column_greater
from repro.workflow import Workflow
from repro.workflow.operators import (
    FilterOperator,
    HashJoinOperator,
    ProjectionOperator,
    SinkOperator,
    TableSource,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def small_table():
    return Table.from_rows(SCHEMA, [[1, 0.5], [2, 0.9]])


def linear_workflow():
    wf = Workflow("linear")
    src = wf.add_operator(TableSource("src", small_table()))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 0.6)))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    return wf


def test_duplicate_operator_id_rejected():
    wf = Workflow()
    wf.add_operator(TableSource("src", small_table()))
    with pytest.raises(InvalidWorkflow):
        wf.add_operator(SinkOperator("src"))


def test_link_requires_added_operators():
    wf = Workflow()
    src = TableSource("src", small_table())
    sink = SinkOperator("sink")
    wf.add_operator(src)
    with pytest.raises(InvalidWorkflow):
        wf.link(src, sink)


def test_link_validates_port_numbers():
    wf = Workflow()
    src = wf.add_operator(TableSource("src", small_table()))
    sink = wf.add_operator(SinkOperator("sink"))
    with pytest.raises(InvalidWorkflow):
        wf.link(src, sink, output_port=1)
    with pytest.raises(InvalidWorkflow):
        wf.link(src, sink, input_port=1)


def test_input_port_single_link():
    wf = Workflow()
    a = wf.add_operator(TableSource("a", small_table()))
    b = wf.add_operator(TableSource("b", small_table()))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(a, sink)
    with pytest.raises(InvalidWorkflow):
        wf.link(b, sink)


def test_validate_requires_sink():
    wf = Workflow()
    wf.add_operator(TableSource("src", small_table()))
    with pytest.raises(InvalidWorkflow, match="no sink"):
        wf.validate()


def test_validate_requires_connected_inputs():
    wf = Workflow()
    wf.add_operator(TableSource("src", small_table()))
    wf.add_operator(SinkOperator("sink"))
    with pytest.raises(InvalidWorkflow, match="unconnected"):
        wf.validate()


def test_validate_empty_workflow():
    with pytest.raises(InvalidWorkflow, match="no operators"):
        Workflow().validate()


def test_topological_order_linear():
    wf = linear_workflow()
    assert [op.operator_id for op in wf.topological_order()] == [
        "src",
        "keep",
        "sink",
    ]


def test_cycle_detected():
    wf = Workflow()
    f1 = wf.add_operator(FilterOperator("f1", column_greater("score", 0)))
    f2 = wf.add_operator(FilterOperator("f2", column_greater("score", 0)))
    wf.add_operator(SinkOperator("sink"))
    wf.link(f1, f2)
    wf.link(f2, f1)
    with pytest.raises(InvalidWorkflow, match="cycle"):
        wf.topological_order()


def test_compile_schemas_propagates():
    wf = Workflow()
    src = wf.add_operator(TableSource("src", small_table()))
    proj = wf.add_operator(ProjectionOperator("proj", ["id"]))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, proj)
    wf.link(proj, sink)
    schemas = wf.compile_schemas()
    assert schemas["src"].names == ["id", "score"]
    assert schemas["proj"].names == ["id"]
    assert schemas["sink"].names == ["id"]


def test_compile_schemas_surfaces_bad_projection():
    wf = Workflow()
    src = wf.add_operator(TableSource("src", small_table()))
    proj = wf.add_operator(ProjectionOperator("proj", ["nope"]))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, proj)
    wf.link(proj, sink)
    # The failure is wrapped so the message names the operator and port.
    with pytest.raises(InvalidWorkflow, match=r"'proj'.*port 0.*'nope'"):
        wf.compile_schemas()


def test_join_schema_compile():
    left = Table.from_rows(Schema.of(k=FieldType.INT, a=FieldType.STRING), [[1, "x"]])
    right = Table.from_rows(Schema.of(k=FieldType.INT, b=FieldType.STRING), [[1, "y"]])
    wf = Workflow()
    l = wf.add_operator(TableSource("l", left))
    r = wf.add_operator(TableSource("r", right))
    join = wf.add_operator(HashJoinOperator("join", build_key="k", probe_key="k"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(l, join, input_port=0)  # build
    wf.link(r, join, input_port=1)  # probe
    wf.link(join, sink)
    schemas = wf.compile_schemas()
    # probe-side first, build side suffixed on collision
    assert schemas["join"].names == ["k", "b", "k_right", "a"]


def test_join_compile_rejects_bad_keys():
    left = Table.from_rows(Schema.of(k=FieldType.INT), [[1]])
    wf = Workflow()
    l = wf.add_operator(TableSource("l", left))
    r = wf.add_operator(TableSource("r", left))
    join = wf.add_operator(HashJoinOperator("join", build_key="zz", probe_key="k"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(l, join, input_port=0)
    wf.link(r, join, input_port=1)
    wf.link(join, sink)
    with pytest.raises(InvalidWorkflow, match="build key"):
        wf.compile_schemas()


def test_num_operators_metric():
    assert linear_workflow().num_operators == 3


def test_sources_and_sinks_listed():
    wf = linear_workflow()
    assert [op.operator_id for op in wf.sources()] == ["src"]
    assert [op.operator_id for op in wf.sinks()] == ["sink"]
