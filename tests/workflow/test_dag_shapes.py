"""Structural edge cases: diamonds, fan-out with blocking branches,
join chains — shapes where pipelined engines typically deadlock or
drop data."""

from repro.cluster import build_cluster
from repro.relational import (
    FieldType,
    Schema,
    Table,
    column_greater,
    udf_predicate,
)
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import (
    FilterOperator,
    HashJoinOperator,
    MapOperator,
    SinkOperator,
    SortOperator,
    TableSource,
    UnionOperator,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def make_table(n=120):
    return Table.from_rows(SCHEMA, [[i, (i % 10) / 10.0] for i in range(n)])


def run_simple(wf):
    return run_workflow(build_cluster(Environment()), wf)


def test_diamond_split_and_union():
    """src fans out to two filters that rejoin: classic diamond."""
    wf = Workflow("diamond")
    src = wf.add_operator(TableSource("src", make_table()))
    evens = wf.add_operator(
        FilterOperator("evens", udf_predicate(lambda r: r["id"] % 2 == 0, "even"))
    )
    odds = wf.add_operator(
        FilterOperator("odds", udf_predicate(lambda r: r["id"] % 2 == 1, "odd"))
    )
    union = wf.add_operator(UnionOperator("union"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, evens)
    wf.link(src, odds)
    wf.link(evens, union, input_port=0)
    wf.link(odds, union, input_port=1)
    wf.link(union, sink)
    result = run_simple(wf)
    assert sorted(result.table().column("id")) == list(range(120))


def test_self_join_diamond():
    """One source feeds BOTH ports of a join (the deadlock-bait shape)."""
    wf = Workflow("self-join")
    src = wf.add_operator(TableSource("src", make_table(60)))
    join = wf.add_operator(HashJoinOperator("join", build_key="id", probe_key="id"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, join, input_port=0)
    wf.link(src, join, input_port=1)
    wf.link(join, sink)
    result = run_simple(wf)
    # Equi-self-join on a unique key: one row per input row.
    assert len(result.table()) == 60


def test_fan_out_to_streaming_and_blocking_branches():
    """One branch sorts (blocking), the other streams; both complete."""
    wf = Workflow("mixed")
    src = wf.add_operator(TableSource("src", make_table()))
    stream = wf.add_operator(FilterOperator("stream", column_greater("score", 0.5)))
    block = wf.add_operator(SortOperator("block", key="score", reverse=True))
    stream_sink = wf.add_operator(SinkOperator("stream-sink"))
    block_sink = wf.add_operator(SinkOperator("block-sink"))
    wf.link(src, stream)
    wf.link(src, block)
    wf.link(stream, stream_sink)
    wf.link(block, block_sink)
    result = run_simple(wf)
    assert len(result.table("stream-sink")) == 48
    sorted_scores = result.table("block-sink").column("score")
    assert sorted_scores == sorted(sorted_scores, reverse=True)


def test_join_chain_two_levels():
    """join(join(a, b), c): output of a join probes a second join."""
    a = Table.from_rows(Schema.of(k=FieldType.INT, a=FieldType.INT), [[i, i] for i in range(20)])
    b = Table.from_rows(Schema.of(k=FieldType.INT, b=FieldType.INT), [[i, 10 * i] for i in range(20)])
    c = Table.from_rows(Schema.of(k=FieldType.INT, c=FieldType.INT), [[i, 100 * i] for i in range(0, 20, 2)])
    wf = Workflow("join-chain")
    sa = wf.add_operator(TableSource("a", a))
    sb = wf.add_operator(TableSource("b", b))
    sc = wf.add_operator(TableSource("c", c))
    j1 = wf.add_operator(HashJoinOperator("j1", build_key="k", probe_key="k"))
    # The second join needs its own suffix: j1's output already carries
    # a "k_right" column from the first join.
    j2 = wf.add_operator(
        HashJoinOperator("j2", build_key="k", probe_key="k", suffix="_c")
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(sb, j1, input_port=0)  # build: b
    wf.link(sa, j1, input_port=1)  # probe: a
    wf.link(sc, j2, input_port=0)  # build: c
    wf.link(j1, j2, input_port=1)  # probe: j1's output
    wf.link(j2, sink)
    result = run_simple(wf)
    assert len(result.table()) == 10  # only even keys survive j2
    row = next(r for r in result.table() if r["k"] == 4)
    assert row["a"] == 4 and row["b"] == 40 and row["c"] == 400


def test_shared_build_side_feeds_two_joins():
    """One operator's output is the build side of two separate joins."""
    dims = Table.from_rows(
        Schema.of(k=FieldType.INT, label=FieldType.STRING),
        [[i, f"L{i}"] for i in range(10)],
    )
    facts = Table.from_rows(
        Schema.of(k=FieldType.INT, v=FieldType.INT), [[i % 10, i] for i in range(50)]
    )
    wf = Workflow("shared-build")
    dim_src = wf.add_operator(TableSource("dims", dims))
    facts_a = wf.add_operator(TableSource("facts-a", facts))
    facts_b = wf.add_operator(TableSource("facts-b", facts))
    ja = wf.add_operator(HashJoinOperator("ja", build_key="k", probe_key="k"))
    jb = wf.add_operator(HashJoinOperator("jb", build_key="k", probe_key="k"))
    sink_a = wf.add_operator(SinkOperator("sink-a"))
    sink_b = wf.add_operator(SinkOperator("sink-b"))
    wf.link(dim_src, ja, input_port=0)
    wf.link(dim_src, jb, input_port=0)
    wf.link(facts_a, ja, input_port=1)
    wf.link(facts_b, jb, input_port=1)
    wf.link(ja, sink_a)
    wf.link(jb, sink_b)
    result = run_simple(wf)
    assert len(result.table("sink-a")) == 50
    assert len(result.table("sink-b")) == 50


def test_deep_chain_of_maps():
    """A 12-stage chain completes and composes correctly."""
    wf = Workflow("deep")
    src = wf.add_operator(TableSource("src", make_table(30)))
    previous = src
    for index in range(12):
        op = wf.add_operator(
            MapOperator(
                f"inc-{index}",
                SCHEMA,
                lambda row: [row["id"] + 1, row["score"]],
            )
        )
        wf.link(previous, op)
        previous = op
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(previous, sink)
    result = run_simple(wf)
    assert result.table().column("id") == [i + 12 for i in range(30)]
