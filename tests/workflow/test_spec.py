"""The spec layer: grammar round-trip, resolution, registry.

The GUI paradigm's defining property is that a pipeline is *data* — a
versioned JSON document validated at editing time.  These tests pin
the grammar surface: ``to_json``/``from_json`` round-trip exactly,
structural errors name the offending element, resolution forms import
and bind correctly, and unknown anything (version, key, type,
language, param) fails with the catalogue on screen.
"""

import json

import pytest

from repro.errors import WorkflowSpecError
from repro.relational import FieldType, Schema, Table
from repro.workflow.spec import (
    SPEC_VERSION,
    WorkflowSpec,
    build_workflow,
    callable_form,
    import_callable,
    load_workflow_json,
    operator_factory,
    operator_types,
    param_form,
    read_spec,
    register_operator_type,
    schema_form,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def minimal_doc():
    return {
        "spec": SPEC_VERSION,
        "name": "minimal",
        "operators": [
            {
                "id": "scan",
                "type": "table_source",
                "config": {"table": {"$param": "rows"}},
            },
            {
                "id": "keep",
                "type": "filter",
                "config": {
                    "predicate": {
                        "$predicate": {"op": "greater", "column": "score", "value": 0.5}
                    }
                },
            },
            {"id": "view", "type": "sink", "config": {}},
        ],
        "links": [
            {"from": "scan", "to": "keep"},
            {"from": "keep", "to": "view"},
        ],
    }


def bindings():
    table = Table.from_rows(SCHEMA, [[i, i / 4] for i in range(8)])
    return {"rows": table}


# -- model: parse + round-trip -------------------------------------------------


def test_round_trip_is_exact():
    spec = WorkflowSpec.from_json(minimal_doc())
    again = WorkflowSpec.from_json(spec.to_json())
    assert again == spec
    assert again.to_json() == spec.to_json()
    # and the canonical document survives a JSON text cycle
    assert WorkflowSpec.from_json(json.loads(json.dumps(spec.to_json()))) == spec


def test_nan_config_value_fails_serialization_with_grammar_error():
    # Regression: json.dumps emits the non-standard NaN/Infinity tokens
    # by default, producing a document strict parsers reject — a spec
    # that "saved fine" but could never be loaded back.
    doc = minimal_doc()
    doc["operators"][1]["config"]["threshold"] = float("nan")
    spec = WorkflowSpec.from_json(doc)
    with pytest.raises(WorkflowSpecError, match="non-finite"):
        spec.to_json_text()


@pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
def test_infinities_fail_serialization_too(bad):
    doc = minimal_doc()
    doc["operators"][1]["config"]["limit"] = bad
    with pytest.raises(WorkflowSpecError, match="non-finite"):
        WorkflowSpec.from_json(doc).to_json_text()


@pytest.mark.parametrize("token", ["NaN", "Infinity", "-Infinity"])
def test_nan_tokens_are_rejected_at_parse_time(token):
    # The parse side of the same contract: Python's json module accepts
    # these non-standard tokens by default, which would let a broken
    # document round-trip silently.
    text = json.dumps(minimal_doc())
    text = text.replace('"config": {}', f'"config": {{"x": {token}}}')
    assert token in text
    with pytest.raises(WorkflowSpecError, match="non-standard JSON token"):
        load_workflow_json(text)


def test_non_ascii_operator_ids_round_trip_losslessly():
    doc = minimal_doc()
    doc["operators"][1]["id"] = "garde-café-π"
    doc["links"] = [
        {"from": "scan", "to": "garde-café-π"},
        {"from": "garde-café-π", "to": "view"},
    ]
    spec = WorkflowSpec.from_json(doc)
    text = spec.to_json_text()
    assert "garde-café-π" in text  # not \u-escaped
    assert WorkflowSpec.from_json(json.loads(text)) == spec


def test_params_are_discovered_recursively():
    doc = minimal_doc()
    doc["operators"][1]["config"]["extra"] = [{"nested": {"$param": "knob"}}]
    assert WorkflowSpec.from_json(doc).params() == ["knob", "rows"]


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d.update(spec="repro/workflow-spec@99"), "unsupported spec version"),
        (lambda d: d.update(bogus=1), "unknown top-level keys"),
        (lambda d: d.update(name=""), "'name' must be a non-empty string"),
        (lambda d: d.update(operators=[]), "'operators' must be a non-empty array"),
        (lambda d: d["operators"][0].pop("id"), "'id' must be a non-empty string"),
        (lambda d: d["operators"][0].update(extra=1), "unknown keys"),
        (
            lambda d: d["operators"].append(dict(d["operators"][0])),
            "duplicate operator id 'scan'",
        ),
        (
            lambda d: d["links"].append({"from": "ghost", "to": "view"}),
            "references unknown operator 'ghost'",
        ),
        (
            lambda d: d["links"].append({"from": "scan", "to": "keep"}),
            "duplicate link into input port 0 of operator 'keep'",
        ),
    ],
)
def test_structural_errors_name_the_element(mutate, fragment):
    doc = minimal_doc()
    mutate(doc)
    with pytest.raises(WorkflowSpecError) as excinfo:
        WorkflowSpec.from_json(doc)
    assert fragment in str(excinfo.value)


def test_cycles_are_rejected_at_spec_level():
    doc = minimal_doc()
    doc["operators"][0] = {"id": "scan", "type": "filter", "config": {}}
    doc["links"].append({"from": "keep", "to": "scan"})
    with pytest.raises(WorkflowSpecError) as excinfo:
        WorkflowSpec.from_json(doc)
    assert "cycle" in str(excinfo.value)
    assert "'keep'" in str(excinfo.value) and "'scan'" in str(excinfo.value)


# -- loader: resolution + document order ---------------------------------------


def test_build_workflow_preserves_document_order():
    wf = build_workflow(WorkflowSpec.from_json(minimal_doc()), bindings())
    assert list(wf.operators) == ["scan", "keep", "view"]
    assert [(l.producer_id, l.consumer_id) for l in wf.links] == [
        ("scan", "keep"),
        ("keep", "view"),
    ]


def test_load_workflow_json_accepts_text_and_runs():
    wf = load_workflow_json(json.dumps(minimal_doc()), bindings())
    schemas = wf.compile_schemas()
    assert schemas["view"].names == ["id", "score"]


def test_unbound_param_names_the_operator_and_known_bindings():
    with pytest.raises(WorkflowSpecError) as excinfo:
        build_workflow(WorkflowSpec.from_json(minimal_doc()), {"wrong": 1})
    message = str(excinfo.value)
    assert "operator 'scan' (table_source).table" in message
    assert "unbound $param 'rows'" in message
    assert "'wrong'" in message


def test_unknown_operator_type_names_the_catalogue():
    doc = minimal_doc()
    doc["operators"][1]["type"] = "filtr"
    with pytest.raises(WorkflowSpecError) as excinfo:
        build_workflow(WorkflowSpec.from_json(doc), bindings())
    assert "unknown operator type 'filtr'" in str(excinfo.value)
    assert "filter" in str(excinfo.value)  # the catalogue is on screen


def test_unknown_language_and_bad_kwarg_are_scoped():
    doc = minimal_doc()
    doc["operators"][1]["config"]["language"] = "rust"
    with pytest.raises(WorkflowSpecError, match="unknown language 'rust'"):
        build_workflow(WorkflowSpec.from_json(doc), bindings())
    doc = minimal_doc()
    doc["operators"][1]["config"]["wibble"] = 3
    with pytest.raises(WorkflowSpecError) as excinfo:
        build_workflow(WorkflowSpec.from_json(doc), bindings())
    assert "operator 'keep' (filter): bad config" in str(excinfo.value)


@pytest.mark.parametrize(
    "ref, fragment",
    [
        ("no-colon", "must be a 'module:qualname' string"),
        ("no.such.module:fn", "cannot import module"),
        ("json:no_such_attr", "has no attribute"),
        ("json:__version__", "is not callable"),
    ],
)
def test_callable_resolution_errors(ref, fragment):
    with pytest.raises(WorkflowSpecError) as excinfo:
        import_callable(ref, "operator 'x' (map).fn")
    assert fragment in str(excinfo.value)
    assert "operator 'x' (map).fn" in str(excinfo.value)


def test_bad_schema_type_and_bad_predicate_op():
    doc = minimal_doc()
    doc["operators"][1]["config"]["shape"] = {"$schema": {"id": "integer"}}
    with pytest.raises(WorkflowSpecError, match="unknown type 'integer'"):
        build_workflow(WorkflowSpec.from_json(doc), bindings())
    doc = minimal_doc()
    doc["operators"][1]["config"]["predicate"] = {"$predicate": {"op": "gte"}}
    with pytest.raises(WorkflowSpecError) as excinfo:
        build_workflow(WorkflowSpec.from_json(doc), bindings())
    assert "gte" in str(excinfo.value)


# -- forms: authoring helpers round-trip through the loader --------------------


def test_forms_round_trip():
    assert param_form("rows") == {"$param": "rows"}
    assert callable_form(json.loads) == {"$callable": "json:loads"}
    assert import_callable(callable_form(json.loads)["$callable"], "t") is json.loads
    form = schema_form(SCHEMA)
    assert form == {"$schema": {"id": "int", "score": "float"}}


# -- registry ------------------------------------------------------------------


def test_registry_rejects_duplicates_and_supports_replace():
    marker = lambda operator_id, **config: None  # noqa: E731
    register_operator_type("test_spec_dummy", marker, replace=True)
    assert operator_factory("test_spec_dummy") is marker
    with pytest.raises(WorkflowSpecError, match="already registered"):
        register_operator_type("test_spec_dummy", marker)
    assert "test_spec_dummy" in operator_types()
    assert operator_types() == sorted(operator_types())


def test_builtin_palette_is_registered():
    for name in ("table_source", "filter", "projection", "map", "hash_join", "sink"):
        assert name in operator_types()


# -- committed example files ---------------------------------------------------


def test_committed_examples_parse(repo_examples=None):
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "examples" / "workflows"
    files = sorted(root.glob("*.json"))
    assert files, "examples/workflows/ must hold the task specs"
    for path in files:
        spec = read_spec(path)
        assert spec.version == SPEC_VERSION
        again = WorkflowSpec.from_json(spec.to_json())
        assert again == spec
