"""Integration tests for the pipelined workflow engine."""

import pytest

from repro.cluster import build_cluster
from repro.errors import OperatorError
from repro.relational import FieldType, Schema, Table, column_greater, udf_predicate
from repro.sim import Environment
from repro.workflow import OperatorLanguage, OperatorState, Workflow, run_workflow
from repro.workflow.operators import (
    AggregationFunction,
    FilterOperator,
    FlatMapOperator,
    GroupByOperator,
    HashJoinOperator,
    MapOperator,
    ProjectionOperator,
    SinkOperator,
    SortOperator,
    TableSource,
    VisualizationOperator,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def make_table(n=100):
    return Table.from_rows(SCHEMA, [[i, (i % 10) / 10.0] for i in range(n)])


def fresh_cluster():
    return build_cluster(Environment())


def run_simple(workflow):
    return run_workflow(fresh_cluster(), workflow)


def test_scan_filter_sink_end_to_end():
    wf = Workflow("basic")
    src = wf.add_operator(TableSource("src", make_table(100)))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 0.5)))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    result = run_simple(wf)
    expected = make_table(100).filter(column_greater("score", 0.5))
    assert result.table().to_dicts() == expected.to_dicts()
    assert result.elapsed_s > 0


def test_progress_counts_match_figure9_semantics():
    wf = Workflow("progress")
    src = wf.add_operator(TableSource("src", make_table(100)))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 0.5)))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    result = run_simple(wf)
    snapshot = result.progress.snapshot()
    assert snapshot["src"]["output_tuples"] == 100
    assert snapshot["keep"]["input_tuples"] == 100
    assert snapshot["keep"]["output_tuples"] == 40
    assert snapshot["sink"]["input_tuples"] == 40
    assert all(entry["state"] == "completed" for entry in snapshot.values())
    assert result.progress.all_completed()


def test_projection_and_map():
    out_schema = Schema.of(id=FieldType.INT, doubled=FieldType.FLOAT)
    wf = Workflow("map")
    src = wf.add_operator(TableSource("src", make_table(10)))
    mapper = wf.add_operator(
        MapOperator("map", out_schema, lambda r: [r["id"], r["score"] * 2])
    )
    proj = wf.add_operator(ProjectionOperator("proj", ["doubled"]))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, mapper)
    wf.link(mapper, proj)
    wf.link(proj, sink)
    result = run_simple(wf)
    assert result.table().column("doubled") == pytest.approx(
        [2 * ((i % 10) / 10.0) for i in range(10)]
    )


def test_flatmap_fan_out():
    out_schema = Schema.of(id=FieldType.INT)
    wf = Workflow("flatmap")
    src = wf.add_operator(TableSource("src", make_table(5)))
    fm = wf.add_operator(
        FlatMapOperator("fm", out_schema, lambda r: [[r["id"]], [r["id"] + 1000]])
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, fm)
    wf.link(fm, sink)
    result = run_simple(wf)
    assert len(result.table()) == 10


def test_hash_join_matches_relational_join():
    left_schema = Schema.of(k=FieldType.INT, a=FieldType.STRING)
    right_schema = Schema.of(k=FieldType.INT, b=FieldType.STRING)
    build = Table.from_rows(left_schema, [[i % 7, f"a{i}"] for i in range(20)])
    probe = Table.from_rows(right_schema, [[i % 7, f"b{i}"] for i in range(30)])

    wf = Workflow("join")
    b = wf.add_operator(TableSource("build", build))
    p = wf.add_operator(TableSource("probe", probe))
    join = wf.add_operator(HashJoinOperator("join", build_key="k", probe_key="k"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(b, join, input_port=0)
    wf.link(p, join, input_port=1)
    wf.link(join, sink)
    result = run_simple(wf)

    from repro.relational import hash_join

    expected = hash_join(probe, build, "k", "k")
    got = sorted(tuple(r.values) for r in result.table())
    want = sorted(tuple(r.values) for r in expected)
    assert got == want


def test_group_by_aggregation():
    wf = Workflow("agg")
    src = wf.add_operator(TableSource("src", make_table(100)))
    agg = wf.add_operator(
        GroupByOperator(
            "agg",
            group_key="score",
            aggregation=AggregationFunction.COUNT,
            result_field="n",
        )
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, agg)
    wf.link(agg, sink)
    result = run_simple(wf)
    counts = {row["score"]: row["n"] for row in result.table()}
    assert counts == {(i % 10) / 10.0: 10 for i in range(10)}


def test_group_by_multi_worker_partitions_correctly():
    wf = Workflow("agg-mw")
    src = wf.add_operator(TableSource("src", make_table(200), num_workers=2))
    agg = wf.add_operator(
        GroupByOperator(
            "agg",
            group_key="score",
            aggregation=AggregationFunction.SUM,
            value_field="id",
            result_field="total",
            num_workers=4,
        )
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, agg)
    wf.link(agg, sink)
    result = run_simple(wf)
    expected = {}
    for i in range(200):
        expected[(i % 10) / 10.0] = expected.get((i % 10) / 10.0, 0) + i
    got = {row["score"]: row["total"] for row in result.table()}
    assert got == pytest.approx(expected)


def test_sort_operator_orders_output():
    wf = Workflow("sort")
    src = wf.add_operator(TableSource("src", make_table(50)))
    sort = wf.add_operator(SortOperator("sort", key="score", reverse=True))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, sort)
    wf.link(sort, sink)
    result = run_simple(wf)
    scores = result.table().column("score")
    assert scores == sorted(scores, reverse=True)


def test_visualization_sink_produces_chart_spec():
    wf = Workflow("viz")
    src = wf.add_operator(TableSource("src", make_table(10)))
    viz = wf.add_operator(VisualizationOperator("viz", "scatter", "id", "score"))
    wf.link(src, viz)
    result = run_simple(wf)
    spec = result.charts["viz"]
    assert spec["chart"] == "scatter"
    assert spec["x"]["values"] == list(range(10))
    assert len(spec["y"]["values"]) == 10


def test_operator_error_reported_at_operator_level():
    def boom(row):
        raise RuntimeError("udf failure")

    wf = Workflow("err")
    src = wf.add_operator(TableSource("src", make_table(5)))
    bad = wf.add_operator(FilterOperator("bad", udf_predicate(boom)))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, bad)
    wf.link(bad, sink)
    with pytest.raises(OperatorError) as excinfo:
        run_simple(wf)
    assert excinfo.value.operator_id == "bad"


def test_multi_worker_filter_preserves_row_set():
    wf = Workflow("mw")
    src = wf.add_operator(TableSource("src", make_table(101), num_workers=3))
    keep = wf.add_operator(
        FilterOperator("keep", column_greater("score", 0.2), num_workers=4)
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    result = run_simple(wf)
    expected = make_table(101).filter(column_greater("score", 0.2))
    assert sorted(result.table().column("id")) == sorted(expected.column("id"))


def test_more_workers_is_faster_for_heavy_operator():
    def heavy(n_workers):
        wf = Workflow("heavy")
        src = wf.add_operator(TableSource("src", make_table(500)))
        slow = wf.add_operator(
            FilterOperator(
                "slow",
                column_greater("score", -1),
                num_workers=n_workers,
                per_tuple_work_s=0.01,
            )
        )
        sink = wf.add_operator(SinkOperator("sink"))
        wf.link(src, slow)
        wf.link(slow, sink)
        return run_simple(wf).elapsed_s

    from repro.config import default_config

    startup = (
        default_config().workflow.startup_s
        + 3 * default_config().workflow.operator_deploy_s
    )
    one = heavy(1) - startup
    four = heavy(4) - startup
    assert four < one
    assert one / four > 2.0


def test_pipelining_beats_sequential_sum_of_stages():
    """Three equal-cost stages should overlap: makespan well below 3x."""

    def stage(op_id, workers=1):
        return FilterOperator(
            op_id, column_greater("score", -1), per_tuple_work_s=0.005
        )

    wf = Workflow("pipe")
    src = wf.add_operator(TableSource("src", make_table(400)))
    s1 = wf.add_operator(stage("s1"))
    s2 = wf.add_operator(stage("s2"))
    s3 = wf.add_operator(stage("s3"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, s1)
    wf.link(s1, s2)
    wf.link(s2, s3)
    wf.link(s3, sink)
    elapsed = run_simple(wf).elapsed_s

    from repro.config import default_config

    startup = (
        default_config().workflow.startup_s
        + 5 * default_config().workflow.operator_deploy_s
    )
    per_stage = 400 * 0.005  # 2s of work per stage
    pipelined = elapsed - startup
    # Three 2s stages sequentially would be 6s; pipelining should land
    # well below that and can never beat the bottleneck stage.
    assert pipelined < 0.75 * 3 * per_stage
    assert pipelined > per_stage


def test_scala_operator_faster_than_python():
    def timed(language):
        wf = Workflow("lang")
        src = wf.add_operator(TableSource("src", make_table(2000)))
        op = wf.add_operator(
            FilterOperator(
                "op",
                column_greater("score", -1),
                language=language,
                per_tuple_work_s=1e-3,
            )
        )
        sink = wf.add_operator(SinkOperator("sink"))
        wf.link(src, op)
        wf.link(op, sink)
        return run_simple(wf).elapsed_s

    python_time = timed(OperatorLanguage.PYTHON)
    scala_time = timed(OperatorLanguage.SCALA)
    assert scala_time < python_time


def test_cross_language_edge_costs_more_serialization():
    """python->scala->python chain pays the cross-language bridge."""

    def timed(mid_language):
        wf = Workflow("bridge")
        # Megabyte string payloads make serialization dominate the
        # (lower) per-tuple overhead of the Scala operator.
        schema = Schema.of(id=FieldType.INT, blob=FieldType.STRING)
        table = Table.from_rows(schema, [[i, "x" * 10**6] for i in range(200)])
        src = wf.add_operator(TableSource("src", table))
        mid = wf.add_operator(
            FilterOperator(
                "mid", column_greater("id", -1), language=mid_language
            )
        )
        sink = wf.add_operator(SinkOperator("sink"))
        wf.link(src, mid)
        wf.link(mid, sink)
        return run_simple(wf).elapsed_s

    same = timed(OperatorLanguage.PYTHON)
    cross = timed(OperatorLanguage.SCALA)
    assert cross > same


def test_num_worker_instances_reported():
    wf = Workflow("count")
    src = wf.add_operator(TableSource("src", make_table(10), num_workers=2))
    keep = wf.add_operator(
        FilterOperator("keep", column_greater("score", -1), num_workers=3)
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    result = run_simple(wf)
    assert result.num_worker_instances == 6


def test_result_table_requires_unambiguous_sink():
    wf = Workflow("two-sinks")
    src = wf.add_operator(TableSource("src", make_table(10)))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", -1)))
    s1 = wf.add_operator(SinkOperator("s1"))
    s2 = wf.add_operator(SinkOperator("s2"))
    wf.link(src, keep)
    wf.link(keep, s1)
    wf.link(src, s2)  # fan-out from source
    result = run_simple(wf)
    with pytest.raises(OperatorError):
        result.table()
    assert len(result.table("s1")) == 10
    assert len(result.table("s2")) == 10


def test_empty_source_completes_cleanly():
    wf = Workflow("empty")
    src = wf.add_operator(TableSource("src", Table(SCHEMA)))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 0)))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, sink)
    result = run_simple(wf)
    assert result.table().is_empty()
    assert result.progress.all_completed()


def test_blocking_operator_state_transitions():
    wf = Workflow("block")
    src = wf.add_operator(TableSource("src", make_table(10)))
    sort = wf.add_operator(SortOperator("sort", key="id"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, sort)
    wf.link(sort, sink)
    result = run_simple(wf)
    assert result.progress.of("sort").state is OperatorState.COMPLETED
    assert result.progress.of("sort").output_tuples == 10
