"""Tests for workflow inspection (spec export + ASCII rendering)."""

import json

from repro.relational import FieldType, Schema, Table, column_greater
from repro.workflow import OperatorLanguage, Workflow
from repro.workflow.inspect import describe_operator, render_dag, workflow_to_spec
from repro.workflow.operators import (
    FilterOperator,
    HashJoinOperator,
    ProjectionOperator,
    SinkOperator,
    SortOperator,
    TableSource,
)

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def sample_workflow():
    wf = Workflow("inspectable")
    src = wf.add_operator(TableSource("src", Table(SCHEMA)))
    keep = wf.add_operator(
        FilterOperator(
            "keep",
            column_greater("score", 0.5),
            language=OperatorLanguage.SCALA,
            num_workers=4,
        )
    )
    proj = wf.add_operator(ProjectionOperator("proj", ["id"]))
    sort = wf.add_operator(SortOperator("sort", key="id"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, keep)
    wf.link(keep, proj)
    wf.link(proj, sort)
    wf.link(sort, sink)
    return wf


def test_describe_operator_panel():
    wf = sample_workflow()
    panel = describe_operator(wf.operators["keep"])
    assert panel["id"] == "keep"
    assert panel["type"] == "FilterOperator"
    assert panel["language"] == "scala"
    assert panel["workers"] == 4
    assert panel["predicate"] == "score > 0.5"
    assert panel["blocking"] is False


def test_describe_projection_lists_columns():
    wf = sample_workflow()
    panel = describe_operator(wf.operators["proj"])
    assert panel["columns"] == ["id"]


def test_spec_is_json_serializable():
    spec = workflow_to_spec(sample_workflow())
    encoded = json.dumps(spec)
    decoded = json.loads(encoded)
    assert decoded["name"] == "inspectable"
    assert len(decoded["operators"]) == 5
    assert len(decoded["links"]) == 4


def test_spec_operators_in_topological_order():
    spec = workflow_to_spec(sample_workflow())
    ids = [op["id"] for op in spec["operators"]]
    assert ids.index("src") < ids.index("keep") < ids.index("sink")


def test_spec_links_carry_ports():
    left = Table.from_rows(Schema.of(k=FieldType.INT), [[1]])
    wf = Workflow("ports")
    a = wf.add_operator(TableSource("a", left))
    b = wf.add_operator(TableSource("b", left))
    join = wf.add_operator(HashJoinOperator("join", build_key="k", probe_key="k"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(a, join, input_port=0)
    wf.link(b, join, input_port=1)
    wf.link(join, sink)
    spec = workflow_to_spec(wf)
    ports = {(l["from"], l["to_port"]) for l in spec["links"]}
    assert ("a", 0) in ports
    assert ("b", 1) in ports


def test_render_dag_shows_operators_and_edges():
    text = render_dag(sample_workflow())
    assert "workflow 'inspectable'" in text
    assert "(keep) [scala, x4]" in text
    assert "(sort) [blocking]" in text
    assert "└─> (sink)" in text


def test_render_dag_marks_join_ports():
    left = Table.from_rows(Schema.of(k=FieldType.INT), [[1]])
    wf = Workflow("ports")
    a = wf.add_operator(TableSource("a", left))
    b = wf.add_operator(TableSource("b", left))
    join = wf.add_operator(HashJoinOperator("join", build_key="k", probe_key="k"))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(a, join, input_port=0)
    wf.link(b, join, input_port=1)
    wf.link(join, sink)
    text = render_dag(wf)
    assert "└─> (join)" in text  # port 0 unannotated
    assert "└─> (join:1)" in text  # probe port annotated


def test_task_workflows_are_inspectable():
    """The real task DAGs export cleanly (smoke)."""
    from repro.datasets import generate_maccrobat
    from repro.tasks.dice import build_dice_workflow

    wf = build_dice_workflow(generate_maccrobat(num_docs=2, seed=7))
    spec = workflow_to_spec(wf)
    json.dumps(spec)
    assert render_dag(wf)
