"""Unit tests for Tuple and Table."""

import pytest

from repro.errors import SchemaError, TypeMismatch
from repro.relational import FieldType, Schema, Table, Tuple, column_greater

SCHEMA = Schema.of(id=FieldType.INT, name=FieldType.STRING, score=FieldType.FLOAT)


def row(i, name, score):
    return Tuple(SCHEMA, [i, name, score])


def test_tuple_access_by_name_and_index():
    t = row(1, "a", 0.5)
    assert t["id"] == 1
    assert t[1] == "a"
    assert t.get("score") == 0.5
    assert t.get("missing", "dflt") == "dflt"


def test_tuple_immutable():
    t = row(1, "a", 0.5)
    with pytest.raises(AttributeError):
        t.values = (2,)


def test_tuple_schema_validation():
    with pytest.raises(TypeMismatch):
        Tuple(SCHEMA, ["not-int", "a", 0.5])


def test_tuple_from_dict_fills_missing_with_none():
    t = Tuple.from_dict(SCHEMA, {"id": 3})
    assert t["name"] is None


def test_tuple_project_and_with_value():
    t = row(1, "a", 0.5)
    p = t.project(["name", "id"])
    assert p.as_dict() == {"name": "a", "id": 1}
    assert t.with_value("score", 0.9)["score"] == 0.9


def test_tuple_concat_suffixes():
    other = Tuple(Schema.of(id=FieldType.INT), [7])
    merged = row(1, "a", 0.5).concat(other)
    assert merged["id_right"] == 7


def test_tuple_equality_and_hash():
    assert row(1, "a", 0.5) == row(1, "a", 0.5)
    assert hash(row(1, "a", 0.5)) == hash(row(1, "a", 0.5))
    assert row(1, "a", 0.5) != row(2, "a", 0.5)


def test_tuple_payload_bytes_positive():
    assert row(1, "abc", 0.5).payload_bytes() > 0


def make_table():
    return Table.from_rows(
        SCHEMA,
        [[1, "a", 0.9], [2, "b", 0.1], [3, "a", 0.5], [4, "c", 0.7]],
    )


def test_table_rejects_foreign_schema_rows():
    other = Tuple(Schema.of(x=FieldType.INT), [1])
    with pytest.raises(SchemaError):
        Table(SCHEMA, [other])


def test_table_filter_with_predicate():
    table = make_table().filter(column_greater("score", 0.4))
    assert table.column("id") == [1, 3, 4]


def test_table_project():
    table = make_table().project(["name"])
    assert table.schema.names == ["name"]
    assert table.column("name") == ["a", "b", "a", "c"]


def test_table_with_column():
    table = make_table().with_column("double", lambda r: r["score"] * 2)
    assert table.column("double") == pytest.approx([1.8, 0.2, 1.0, 1.4])


def test_table_sort_by_and_limit():
    table = make_table().sort_by("score", reverse=True).limit(2)
    assert table.column("id") == [1, 4]


def test_table_group_by():
    groups = make_table().group_by("name")
    assert sorted(groups) == ["a", "b", "c"]
    assert len(groups["a"]) == 2


def test_table_concat_rows_schema_checked():
    t = make_table()
    assert len(t.concat_rows(t)) == 8
    with pytest.raises(SchemaError):
        t.concat_rows(Table(Schema.of(x=FieldType.INT)))


def test_table_distinct_keeps_first():
    table = Table.from_rows(SCHEMA, [[1, "a", 0.5], [1, "a", 0.5], [2, "b", 0.1]])
    assert len(table.distinct()) == 2


def test_table_from_dicts_and_to_dicts_roundtrip():
    records = [{"id": 1, "name": "x", "score": 0.3}]
    table = Table.from_dicts(SCHEMA, records)
    assert table.to_dicts() == records


def test_table_map_rows_changes_schema():
    out_schema = Schema.of(label=FieldType.STRING)
    table = make_table().map_rows(out_schema, lambda r: [r["name"].upper()])
    assert table.column("label") == ["A", "B", "A", "C"]


def test_table_limit_rejects_negative():
    with pytest.raises(ValueError):
        make_table().limit(-1)


def test_table_head_and_is_empty():
    assert len(make_table().head(2)) == 2
    assert Table(SCHEMA).is_empty()
