"""Unit tests for Schema/Field/FieldType."""

import pytest

from repro.errors import DuplicateField, FieldNotFound, TypeMismatch
from repro.relational import Field, FieldType, Schema


def test_field_type_acceptance():
    assert FieldType.INT.accepts(5)
    assert not FieldType.INT.accepts(True)  # bools are not ints here
    assert not FieldType.INT.accepts(5.0)
    assert FieldType.FLOAT.accepts(5)  # ints widen to float
    assert FieldType.FLOAT.accepts(5.5)
    assert not FieldType.FLOAT.accepts("5")
    assert FieldType.STRING.accepts("x")
    assert not FieldType.STRING.accepts(5)
    assert FieldType.BOOL.accepts(True)
    assert not FieldType.BOOL.accepts(1)
    assert FieldType.ANY.accepts(object())


def test_all_types_accept_none():
    for ftype in FieldType:
        assert ftype.accepts(None)


def test_field_validation():
    with pytest.raises(ValueError):
        Field("")
    with pytest.raises(TypeError):
        Field("x", "int")


def test_schema_of_and_names():
    schema = Schema.of(id=FieldType.INT, text=FieldType.STRING)
    assert schema.names == ["id", "text"]
    assert len(schema) == 2
    assert "id" in schema
    assert "missing" not in schema


def test_untyped_schema():
    schema = Schema.untyped("a", "b")
    assert all(f.ftype is FieldType.ANY for f in schema.fields)


def test_duplicate_field_rejected():
    with pytest.raises(DuplicateField):
        Schema([Field("x"), Field("x")])


def test_index_of_and_field():
    schema = Schema.of(a=FieldType.INT, b=FieldType.STRING)
    assert schema.index_of("b") == 1
    assert schema.field("a").ftype is FieldType.INT
    with pytest.raises(FieldNotFound):
        schema.index_of("z")


def test_project_preserves_order_given():
    schema = Schema.untyped("a", "b", "c")
    assert schema.project(["c", "a"]).names == ["c", "a"]


def test_concat_suffixes_collisions():
    left = Schema.of(id=FieldType.INT, text=FieldType.STRING)
    right = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)
    joined = left.concat(right)
    assert joined.names == ["id", "text", "id_right", "score"]


def test_with_field_and_without():
    schema = Schema.untyped("a", "b")
    extended = schema.with_field(Field("c", FieldType.FLOAT))
    assert extended.names == ["a", "b", "c"]
    assert extended.without("b").names == ["a", "c"]
    with pytest.raises(FieldNotFound):
        extended.without("zz")


def test_validate_arity_and_types():
    schema = Schema.of(id=FieldType.INT, name=FieldType.STRING)
    schema.validate([1, "ok"])
    schema.validate([None, None])  # nullable
    with pytest.raises(TypeMismatch):
        schema.validate([1])
    with pytest.raises(TypeMismatch):
        schema.validate(["not-int", "ok"])


def test_schema_equality_and_hash():
    a = Schema.of(x=FieldType.INT)
    b = Schema.of(x=FieldType.INT)
    c = Schema.of(x=FieldType.FLOAT)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
