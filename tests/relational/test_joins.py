"""Unit tests for hash_join and StreamingHashJoin."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    FieldType,
    Schema,
    StreamingHashJoin,
    Table,
    hash_join,
)

LEFT = Schema.of(id=FieldType.INT, text=FieldType.STRING)
RIGHT = Schema.of(ref=FieldType.INT, tag=FieldType.STRING)
RIGHT_COLLIDE = Schema.of(id=FieldType.INT, tag=FieldType.STRING)


def left_table():
    return Table.from_rows(LEFT, [[1, "one"], [2, "two"], [3, "three"]])


def right_table():
    return Table.from_rows(RIGHT, [[1, "a"], [1, "b"], [3, "c"], [9, "z"]])


def test_inner_join_matches_pairs():
    out = hash_join(left_table(), right_table(), "id", "ref")
    assert out.schema.names == ["id", "text", "ref", "tag"]
    assert [(r["id"], r["tag"]) for r in out] == [(1, "a"), (1, "b"), (3, "c")]


def test_left_join_nulls_unmatched():
    out = hash_join(left_table(), right_table(), "id", "ref", how="left")
    rows = {(r["id"], r["tag"]) for r in out}
    assert (2, None) in rows
    assert len(out) == 4


def test_left_semi_and_anti():
    semi = hash_join(left_table(), right_table(), "id", "ref", how="left_semi")
    anti = hash_join(left_table(), right_table(), "id", "ref", how="left_anti")
    assert semi.column("id") == [1, 3]
    assert anti.column("id") == [2]
    assert semi.schema == LEFT  # semi/anti keep the left schema


def test_join_name_collision_suffixed():
    right = Table.from_rows(RIGHT_COLLIDE, [[1, "a"]])
    out = hash_join(left_table(), right, "id", "id")
    assert out.schema.names == ["id", "text", "id_right", "tag"]


def test_join_unknown_how_rejected():
    with pytest.raises(ValueError):
        hash_join(left_table(), right_table(), "id", "ref", how="outer")


def test_join_unknown_key_rejected():
    from repro.errors import FieldNotFound

    with pytest.raises(FieldNotFound):
        hash_join(left_table(), right_table(), "nope", "ref")


def test_empty_inputs():
    empty = Table(RIGHT)
    out = hash_join(left_table(), empty, "id", "ref")
    assert out.is_empty()
    out_left = hash_join(left_table(), empty, "id", "ref", how="left")
    assert len(out_left) == 3


def test_streaming_join_equals_batch_join():
    join = StreamingHashJoin(RIGHT, LEFT, "ref", "id")
    for row in right_table():
        join.add_build_tuple(row)
    join.finish_build()
    streamed = [out for row in left_table() for out in join.probe(row)]

    batch = hash_join(left_table(), right_table(), "id", "ref")
    assert [tuple(r.values) for r in streamed] == [tuple(r.values) for r in batch]


def test_streaming_join_left_emits_null_padded():
    join = StreamingHashJoin(RIGHT, LEFT, "ref", "id", how="left")
    join.finish_build()  # empty build side
    outs = list(join.probe(left_table()[0]))
    assert len(outs) == 1
    assert outs[0]["tag"] is None


def test_streaming_join_enforces_phases():
    join = StreamingHashJoin(RIGHT, LEFT, "ref", "id")
    with pytest.raises(SchemaError):
        list(join.probe(left_table()[0]))
    join.finish_build()
    with pytest.raises(SchemaError):
        join.add_build_tuple(right_table()[0])


def test_streaming_join_build_size():
    join = StreamingHashJoin(RIGHT, LEFT, "ref", "id")
    for row in right_table():
        join.add_build_tuple(row)
    assert join.build_size == 4
