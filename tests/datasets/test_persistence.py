"""Round-trip tests for on-disk corpus persistence."""

import pytest

from repro.datasets import (
    generate_catalog,
    generate_fsqa,
    generate_maccrobat,
    generate_wildfire_tweets,
    load_catalog,
    load_fsqa,
    load_maccrobat,
    load_tweets,
    save_catalog,
    save_fsqa,
    save_maccrobat,
    save_tweets,
)
from repro.errors import StorageError


def test_maccrobat_roundtrip(tmp_path):
    reports = generate_maccrobat(num_docs=6, seed=7)
    assert save_maccrobat(tmp_path, reports) == 6
    loaded = load_maccrobat(tmp_path)
    assert [r.doc_id for r in loaded] == [r.doc_id for r in reports]
    for original, again in zip(reports, loaded):
        assert again.text == original.text
        assert again.annotations.entities == original.annotations.entities
        assert again.annotations.events == original.annotations.events


def test_maccrobat_file_layout(tmp_path):
    save_maccrobat(tmp_path, generate_maccrobat(num_docs=2, seed=7))
    assert (tmp_path / "case-0000.txt").exists()
    assert (tmp_path / "case-0000.ann").exists()


def test_maccrobat_missing_ann_rejected(tmp_path):
    save_maccrobat(tmp_path, generate_maccrobat(num_docs=2, seed=7))
    (tmp_path / "case-0001.ann").unlink()
    with pytest.raises(StorageError, match="missing annotation"):
        load_maccrobat(tmp_path)


def test_maccrobat_empty_dir_rejected(tmp_path):
    with pytest.raises(StorageError, match="no .txt"):
        load_maccrobat(tmp_path)


def test_loaded_maccrobat_runs_through_dice(tmp_path):
    """Disk-loaded corpora drive the task exactly like generated ones."""
    from repro.tasks import fresh_cluster
    from repro.tasks.dice import reference_dice, run_dice_workflow

    reports = generate_maccrobat(num_docs=4, seed=7)
    save_maccrobat(tmp_path, reports)
    loaded = load_maccrobat(tmp_path)
    run = run_dice_workflow(fresh_cluster(), loaded)
    expected = sorted(map(repr, reference_dice(reports)))
    assert sorted(map(repr, run.output)) == expected


def test_tweets_roundtrip(tmp_path):
    tweets = generate_wildfire_tweets(25, seed=11)
    path = tmp_path / "tweets.jsonl"
    assert save_tweets(path, tweets) == 25
    assert load_tweets(path) == tweets


def test_tweets_bad_labels_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"tweet_id": "t", "text": "x", "labels": [1]}\n')
    with pytest.raises(StorageError, match="labels"):
        load_tweets(path)


def test_fsqa_roundtrip(tmp_path):
    paragraphs = generate_fsqa(num_paragraphs=3, seed=17)
    path = tmp_path / "fsqa.jsonl"
    assert save_fsqa(path, paragraphs) == 3
    loaded = load_fsqa(path)
    assert loaded == paragraphs


def test_catalog_roundtrip(tmp_path):
    products = generate_catalog(40, seed=23)
    path = tmp_path / "catalog.csv"
    assert save_catalog(path, products) == 40
    assert load_catalog(path) == products
