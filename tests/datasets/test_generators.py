"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.config import default_config
from repro.datasets import (
    FRAMINGS,
    build_kge_model,
    catalog_table,
    generate_catalog,
    generate_fsqa,
    generate_maccrobat,
    generate_wildfire_tweets,
    train_test_split,
    user_ids,
)
from repro.ml import SimBartGenerator, exact_match
from repro.storage import split_sentences


# -- MACCROBAT -----------------------------------------------------------------


def test_maccrobat_count_and_determinism():
    a = generate_maccrobat(num_docs=5, seed=7)
    b = generate_maccrobat(num_docs=5, seed=7)
    assert len(a) == 5
    assert [r.text for r in a] == [r.text for r in b]
    c = generate_maccrobat(num_docs=5, seed=8)
    assert [r.text for r in a] != [r.text for r in c]


def test_maccrobat_spans_slice_to_text():
    for report in generate_maccrobat(num_docs=10, seed=1):
        for entity in report.annotations.entities:
            assert report.text[entity.start : entity.end] == entity.text


def test_maccrobat_events_reference_entities():
    for report in generate_maccrobat(num_docs=10, seed=2):
        report.annotations.validate_references()  # raises on dangling refs


def test_maccrobat_has_event_and_non_event_entities():
    report = generate_maccrobat(num_docs=1, seed=3, min_sentences=12, max_sentences=12)[0]
    triggered = {e.trigger_ref for e in report.annotations.events}
    all_keys = {e.key for e in report.annotations.entities}
    assert triggered  # some events
    assert all_keys - triggered  # some entities not triggering events


def test_maccrobat_annotations_fit_in_sentences():
    report = generate_maccrobat(num_docs=1, seed=4)[0]
    sentences = split_sentences(report.doc_id, report.text)
    for entity in report.annotations.entities:
        assert any(s.contains_span(entity.start, entity.end) for s in sentences)


def test_maccrobat_validation():
    with pytest.raises(ValueError):
        generate_maccrobat(num_docs=0)
    with pytest.raises(ValueError):
        generate_maccrobat(num_docs=1, min_sentences=5, max_sentences=2)


# -- wildfire tweets ----------------------------------------------------------------


def test_wildfire_count_and_labels():
    tweets = generate_wildfire_tweets(num_tweets=100, seed=11)
    assert len(tweets) == 100
    for tweet in tweets:
        assert len(tweet.labels) == len(FRAMINGS)
        assert 1 <= sum(tweet.labels) <= 4
        assert tweet.text


def test_wildfire_determinism():
    a = generate_wildfire_tweets(50, seed=5)
    b = generate_wildfire_tweets(50, seed=5)
    assert [t.text for t in a] == [t.text for t in b]


def test_wildfire_every_framing_occurs():
    tweets = generate_wildfire_tweets(200, seed=11)
    for index in range(len(FRAMINGS)):
        assert any(t.labels[index] for t in tweets)


def test_wildfire_label_of():
    tweet = generate_wildfire_tweets(1, seed=1)[0]
    assert tweet.label_of(FRAMINGS[0]) == tweet.labels[0]


def test_train_test_split():
    tweets = generate_wildfire_tweets(100, seed=11)
    train, test = train_test_split(tweets, 0.8)
    assert len(train) == 80
    assert len(test) == 20
    with pytest.raises(ValueError):
        train_test_split(tweets, 1.0)


def test_wildfire_vocabulary_is_learnable():
    """A SimBERT classifier beats chance on framing 0."""
    from repro.ml import SimBertClassifier, accuracy

    tweets = generate_wildfire_tweets(400, seed=11)
    train, test = train_test_split(tweets)
    model = SimBertClassifier("f0", default_config().models)
    model.fit([(t.text, t.labels[0]) for t in train], epochs=4)
    truth = [t.labels[0] for t in test]
    predictions = [model.predict(t.text) for t in test]
    assert accuracy(truth, predictions) > 0.7


# -- FSQA ---------------------------------------------------------------------------------


def test_fsqa_shape_and_determinism():
    a = generate_fsqa(num_paragraphs=4, facts_per_paragraph=3, seed=17)
    b = generate_fsqa(num_paragraphs=4, facts_per_paragraph=3, seed=17)
    assert len(a) == 4
    assert all(len(p.examples) == 3 for p in a)
    assert [p.context for p in a] == [p.context for p in b]


def test_fsqa_answers_present_in_context():
    for paragraph in generate_fsqa(num_paragraphs=6, seed=17):
        for example in paragraph.examples:
            assert example.answer in paragraph.context
            assert "[MASK]" in example.cloze
            assert example.answer not in example.cloze


def test_fsqa_simbart_answers_exactly():
    model = SimBartGenerator("bart", default_config().models)
    paragraphs = generate_fsqa(num_paragraphs=8, seed=17)
    truth, predictions = [], []
    for paragraph in paragraphs:
        for example in paragraph.examples:
            truth.append(example.answer)
            predictions.append(model.generate(example.question, paragraph.context))
    assert exact_match(truth, predictions) == 1.0


def test_fsqa_simbart_fills_cloze_exactly():
    model = SimBartGenerator("bart", default_config().models)
    paragraph = generate_fsqa(num_paragraphs=1, seed=17)[0]
    for example in paragraph.examples:
        assert (
            model.generate(example.cloze, paragraph.context).lower()
            == example.answer.lower()
        )


def test_fsqa_validation():
    with pytest.raises(ValueError):
        generate_fsqa(num_paragraphs=0)
    with pytest.raises(ValueError):
        generate_fsqa(facts_per_paragraph=0)


# -- Amazon catalog -----------------------------------------------------------------------------


def test_catalog_shape_and_determinism():
    a = generate_catalog(num_products=100, seed=23)
    b = generate_catalog(num_products=100, seed=23)
    assert len(a) == 100
    assert a == b
    assert len({p.product_id for p in a}) == 100


def test_catalog_out_of_stock_fraction_roughly_respected():
    products = generate_catalog(num_products=2000, seed=23, out_of_stock_fraction=0.2)
    fraction = sum(1 for p in products if not p.in_stock) / len(products)
    assert 0.15 < fraction < 0.25


def test_catalog_table_schema():
    table = catalog_table(generate_catalog(10, seed=1))
    assert table.schema.names == ["product_id", "name", "category", "price", "in_stock"]
    assert len(table) == 10


def test_build_kge_model_covers_entities():
    products = generate_catalog(50, seed=23)
    users = user_ids(4)
    model = build_kge_model(products, users)
    assert model.num_entities == 54
    assert model.has_entity("U0003")
    assert model.has_entity(products[0].product_id)


def test_catalog_validation():
    with pytest.raises(ValueError):
        generate_catalog(0)
    with pytest.raises(ValueError):
        generate_catalog(1, out_of_stock_fraction=1.0)
    with pytest.raises(ValueError):
        user_ids(0)
