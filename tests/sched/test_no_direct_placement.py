"""Repo-wide guard: all placement decisions go through repro.sched.

The refactor's contract is that no engine code picks a node by itself.
The deprecated ``Cluster.worker_round_robin`` shim is gone, so *any*
reference to it — or any resurrected private placement counter —
inside ``src/`` is a placement decision bypassing the scheduler.
"""

import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

def allowed(path):
    """The scheduler package itself."""
    return path.is_relative_to(SRC / "sched")


BANNED_TOKENS = ("worker_round_robin", "_placement_counter", "_task_counter")


def test_src_tree_exists():
    assert SRC.is_dir()


def test_no_placement_outside_the_scheduler():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if allowed(path):
            continue
        text = path.read_text(encoding="utf-8")
        for token in BANNED_TOKENS:
            if token in text:
                offenders.append(f"{path.relative_to(SRC)}: {token}")
    assert not offenders, (
        "placement decisions bypassing repro.sched.Scheduler:\n"
        + "\n".join(offenders)
    )
