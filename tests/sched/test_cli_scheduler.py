"""CLI surface of the scheduling layer."""

from repro.cli import main
from repro.sched import POLICIES


def test_sched_subcommand_prints_catalogue(capsys):
    assert main(["sched"]) == 0
    out = capsys.readouterr().out
    for name in POLICIES:
        assert name in out
    assert "--scheduler" in out


def test_sched_subcommand_rejects_extra_args(capsys):
    assert main(["sched", "round_robin"]) == 2
    assert "usage: repro sched" in capsys.readouterr().err


def test_unknown_scheduler_exits_2_with_catalogue(capsys):
    assert main(["--scheduler", "fifo", "fig12a", "--quick"]) == 2
    err = capsys.readouterr().err
    assert "unknown policy 'fifo'" in err
    for name in POLICIES:
        assert name in err


def test_scheduler_flag_runs_experiment(capsys):
    assert main(["--quick", "--scheduler", "least_loaded", "fig12a"]) == 0
    assert "fig12a" in capsys.readouterr().out


def test_scheduler_flag_composes_with_trace(tmp_path, capsys):
    trace_file = tmp_path / "kge.json"
    assert main(
        ["--quick", "--scheduler", "locality", "fig12a", "--trace", str(trace_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "fig12a" in out
    assert trace_file.exists()


def test_parser_help_mentions_scheduler():
    from repro.cli import build_parser

    assert "--scheduler" in build_parser().format_help()
