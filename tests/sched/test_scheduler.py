"""Scheduler accounting, policy resolution and observability."""

import pytest

from repro.cluster import build_cluster
from repro.config import ReproConfig
from repro.errors import UnknownPolicy
from repro.obs import Tracer, tracing
from repro.sched import (
    PlacementRequest,
    RoundRobinPolicy,
    Scheduler,
    current_policy_name,
    install_policy,
    scheduling,
    uninstall_policy,
)
from repro.sim import Environment


def make_scheduler(policy=None, config=None, tracer=None):
    cluster = build_cluster(Environment(), config=config, tracer=tracer)
    return Scheduler(cluster, policy=policy, config=config)


# -- accounting --------------------------------------------------------------


def test_place_and_release_track_outstanding_and_total():
    sched = make_scheduler()
    node = sched.place(PlacementRequest(kind="task"))
    account = sched.accounts[node.name]
    assert (account.outstanding, account.total) == (1, 1)
    sched.release(node.name)
    assert (account.outstanding, account.total) == (0, 1)
    assert sched.placements == 1


def test_release_never_goes_negative():
    sched = make_scheduler()
    sched.release("worker-0")
    assert sched.accounts["worker-0"].outstanding == 0
    sched.release("not-a-node")  # unknown nodes are ignored


def test_replacements_counted_separately():
    sched = make_scheduler()
    sched.place(PlacementRequest(kind="task"))
    sched.place(PlacementRequest(kind="retry", prev_node="worker-0"))
    sched.place(PlacementRequest(kind="reconstruction"))
    assert sched.placements == 3
    assert sched.replacements == 2


def test_counter_advances_only_for_counted_kinds():
    sched = make_scheduler()
    request = PlacementRequest(kind="task")
    sched.place(request)
    assert request.index == 0
    retry = PlacementRequest(kind="retry", prev_node="worker-0")
    sched.place(retry)
    assert retry.index == 0  # untouched: replacements do not advance it
    second = PlacementRequest(kind="operator")
    sched.place(second)
    assert second.index == 1


# -- policy resolution -------------------------------------------------------


def test_explicit_policy_instance_wins():
    policy = RoundRobinPolicy()
    sched = make_scheduler(policy=policy)
    assert sched.policy is policy


def test_policy_resolution_order():
    assert make_scheduler().policy.name == "round_robin"
    assert make_scheduler(policy="packed").policy.name == "packed"
    config = ReproConfig(scheduler="spread")
    assert make_scheduler(config=config).policy.name == "spread"
    # Explicit name beats the config.
    assert make_scheduler(policy="packed", config=config).policy.name == "packed"
    with scheduling("least_loaded"):
        assert make_scheduler().policy.name == "least_loaded"
        # Config beats the global install.
        assert make_scheduler(config=config).policy.name == "spread"
    assert make_scheduler().policy.name == "round_robin"


def test_install_uninstall_and_context_restore():
    assert current_policy_name() is None
    install_policy("locality")
    try:
        assert current_policy_name() == "locality"
        with scheduling("packed"):
            assert current_policy_name() == "packed"
        assert current_policy_name() == "locality"
    finally:
        uninstall_policy()
    assert current_policy_name() is None


def test_install_validates_eagerly():
    with pytest.raises(UnknownPolicy):
        install_policy("fifo")
    assert current_policy_name() is None
    with pytest.raises(UnknownPolicy):
        make_scheduler(policy="fifo")


# -- observability -----------------------------------------------------------


def test_placement_emits_spans_counters_and_gauges():
    tracer = Tracer()
    with tracing(tracer):
        sched = make_scheduler(tracer=tracer)
        node = sched.place(PlacementRequest(kind="task", label="score"))
        sched.place(PlacementRequest(kind="retry", prev_node=node.name))
        sched.release(node.name)
    spans = [s for s in tracer.spans if s.category == "sched.place"]
    assert [s.name for s in spans] == ["place:score", "place:retry"]
    assert spans[0].attrs["policy"] == "round_robin"
    assert spans[0].node == node.name
    assert (
        tracer.metrics.value(
            "sched.placements", policy="round_robin", node=node.name
        )
        == 2
    )
    assert tracer.metrics.value("sched.replacement", kind="retry") == 1
    gauge = tracer.metrics.gauge("sched.node_load", node=node.name)
    assert gauge.value == 1  # two placed, one released
    assert gauge.max_value == 2


def test_null_tracer_records_nothing():
    sched = make_scheduler()
    sched.place(PlacementRequest(kind="task"))
    assert sched.env.tracer.enabled is False
