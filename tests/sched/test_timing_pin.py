"""The default policy must not merely default — it must pin the seed.

``tests/obs/test_timing_regression.py`` already proves that runs with
*no* policy installed reproduce the pre-``repro.sched`` timings
bit-identically.  This adds the explicit-install case: selecting
``round_robin`` by name (as ``--scheduler round_robin`` does) routes
every placement through the scheduler's accounting and yet changes no
timing by one bit.
"""

from repro.sched import scheduling
from tests.obs.test_timing_regression import SEED_TIMINGS, _run_all


def test_installed_round_robin_timings_bit_identical_to_seed():
    with scheduling("round_robin"):
        assert _run_all() == SEED_TIMINGS
