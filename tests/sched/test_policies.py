"""Unit tests for the placement-policy catalogue."""

import pytest

from repro.cluster import build_cluster
from repro.errors import UnknownPolicy
from repro.sched import (
    DEFAULT_POLICY,
    POLICIES,
    PlacementRequest,
    Scheduler,
    make_policy,
    policy_catalogue,
    valid_policy,
)
from repro.sim import Environment


class FakeFaults:
    """Deterministic injector stand-in: named nodes are down."""

    def __init__(self, down=()):
        self.active = True
        self.down = set(down)

    def node_down(self, name, now):
        return name in self.down


class FakeStore:
    def __init__(self, replicas=None):
        self.replicas = replicas or {}

    def replicas_of(self, ref):
        return set(self.replicas.get(ref.ref_id, ()))


class FakeRef:
    def __init__(self, ref_id, nbytes):
        self.ref_id = ref_id
        self.nbytes = nbytes


def make_scheduler(policy, down=(), replicas=None):
    cluster = build_cluster(Environment())
    sched = Scheduler(cluster, policy=policy)
    if down:
        cluster.env.faults = FakeFaults(down)
    sched.store = FakeStore(replicas)
    return sched


def names(nodes):
    return [node.name for node in nodes]


# -- registry ----------------------------------------------------------------


def test_registry_and_default():
    assert DEFAULT_POLICY == "round_robin"
    assert set(POLICIES) == {
        "round_robin",
        "least_loaded",
        "locality",
        "packed",
        "spread",
        "drf",
    }
    for name in POLICIES:
        assert valid_policy(name)
        assert make_policy(name).name == name
    assert not valid_policy("fifo")


def test_make_policy_unknown_raises():
    with pytest.raises(UnknownPolicy, match="fifo"):
        make_policy("fifo")


def test_catalogue_lists_every_policy():
    text = policy_catalogue()
    for name, cls in POLICIES.items():
        assert name in text
        assert cls.description in text
    assert "--scheduler" in text


def test_request_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown placement kind"):
        PlacementRequest(kind="gang")


def test_largest_ref_picks_biggest_fulfilled():
    big, small = FakeRef("b", 100), FakeRef("s", 10)
    pending = FakeRef("p", 0)
    assert PlacementRequest(kind="task", refs=(small, big)).largest_ref() is big
    assert PlacementRequest(kind="task", refs=(pending,)).largest_ref() is None
    assert PlacementRequest(kind="task").largest_ref() is None


# -- round_robin (the seed behaviour) ----------------------------------------


def test_round_robin_cycles_all_workers():
    sched = make_scheduler("round_robin")
    chosen = [
        sched.place(PlacementRequest(kind="task")).name for _ in range(6)
    ]
    assert chosen == [
        "worker-0", "worker-1", "worker-2", "worker-3", "worker-0", "worker-1",
    ]


def test_round_robin_counter_shared_across_kinds():
    # The seed used one counter for tasks and actors alike.
    sched = make_scheduler("round_robin")
    first = sched.place(PlacementRequest(kind="task")).name
    second = sched.place(PlacementRequest(kind="actor")).name
    third = sched.place(PlacementRequest(kind="operator")).name
    assert [first, second, third] == ["worker-0", "worker-1", "worker-2"]


def test_round_robin_retry_stays_put_and_skips_counter():
    sched = make_scheduler("round_robin")
    sched.place(PlacementRequest(kind="task"))  # worker-0
    retry = sched.place(PlacementRequest(kind="retry", prev_node="worker-3"))
    assert retry.name == "worker-3"
    # The retry must not advance the shared counter.
    assert sched.place(PlacementRequest(kind="task")).name == "worker-1"


def test_round_robin_reconstruction_first_healthy():
    sched = make_scheduler("round_robin", down={"worker-0", "worker-1"})
    node = sched.place(PlacementRequest(kind="reconstruction"))
    assert node.name == "worker-2"


def test_round_robin_fresh_placement_ignores_faults():
    # Seed semantics: submission cycles over all workers, down or not.
    sched = make_scheduler("round_robin", down={"worker-0"})
    assert sched.place(PlacementRequest(kind="task")).name == "worker-0"


# -- least_loaded ------------------------------------------------------------


def test_least_loaded_prefers_idle_node():
    sched = make_scheduler("least_loaded")
    first = sched.place(PlacementRequest(kind="task"))
    second = sched.place(PlacementRequest(kind="task"))
    assert first.name == "worker-0"
    assert second.name == "worker-1"  # worker-0 now has outstanding=1
    sched.release(first.name)
    sched.release(second.name)
    # All idle again: totals break the tie, so worker-2 is next.
    assert sched.place(PlacementRequest(kind="task")).name == "worker-2"


def test_least_loaded_skips_down_nodes():
    sched = make_scheduler("least_loaded", down={"worker-0"})
    assert sched.place(PlacementRequest(kind="task")).name == "worker-1"


# -- locality ----------------------------------------------------------------


def test_locality_follows_existing_replica():
    ref = FakeRef("model", 1000)
    sched = make_scheduler("locality", replicas={"model": ["worker-2"]})
    node = sched.place(PlacementRequest(kind="task", refs=(ref,)))
    assert node.name == "worker-2"


def test_locality_burst_converges_on_planned_replica():
    # No replica on any worker yet (driver put it on the controller):
    # the first placement plans one, the rest of the burst follow it.
    ref = FakeRef("model", 1000)
    sched = make_scheduler("locality", replicas={"model": ["controller"]})
    chosen = {
        sched.place(PlacementRequest(kind="task", refs=(ref,))).name
        for _ in range(4)
    }
    assert chosen == {"worker-0"}


def test_locality_spills_when_local_node_is_full():
    ref = FakeRef("model", 1000)
    sched = make_scheduler("locality", replicas={"model": ["worker-0"]})
    num_cpus = sched.workers[0].num_cpus
    for _ in range(num_cpus):
        assert sched.place(
            PlacementRequest(kind="task", refs=(ref,))
        ).name == "worker-0"
    spilled = sched.place(PlacementRequest(kind="task", refs=(ref,)))
    assert spilled.name != "worker-0"


def test_locality_without_hints_falls_back_to_least_loaded():
    sched = make_scheduler("locality")
    assert sched.place(PlacementRequest(kind="task")).name == "worker-0"
    assert sched.place(PlacementRequest(kind="task")).name == "worker-1"


def test_locality_aligns_operator_peers():
    # Instance k of every operator lands on worker k % N.
    sched = make_scheduler("locality")
    layout = [
        sched.place(
            PlacementRequest(
                kind="operator", operator_id=op, worker_index=k, num_workers=2
            )
        ).name
        for op in ("scan", "join")
        for k in range(2)
    ]
    assert layout == ["worker-0", "worker-1", "worker-0", "worker-1"]


def test_locality_operator_avoids_down_node():
    sched = make_scheduler("locality", down={"worker-0"})
    node = sched.place(
        PlacementRequest(
            kind="operator", operator_id="scan", worker_index=0, num_workers=1
        )
    )
    assert node.name != "worker-0"


# -- packed / spread ---------------------------------------------------------


def test_packed_fills_first_node_then_spills():
    sched = make_scheduler("packed")
    num_cpus = sched.workers[0].num_cpus
    chosen = [
        sched.place(PlacementRequest(kind="task")).name
        for _ in range(num_cpus + 2)
    ]
    assert chosen[:num_cpus] == ["worker-0"] * num_cpus
    assert chosen[num_cpus:] == ["worker-1", "worker-1"]


def test_spread_balances_cumulative_totals():
    sched = make_scheduler("spread")
    chosen = [sched.place(PlacementRequest(kind="task")).name for _ in range(8)]
    assert chosen == [f"worker-{i % 4}" for i in range(8)]


def test_spread_skips_down_nodes():
    sched = make_scheduler("spread", down={"worker-1"})
    chosen = [sched.place(PlacementRequest(kind="task")).name for _ in range(3)]
    assert chosen == ["worker-0", "worker-2", "worker-3"]


# -- drf ---------------------------------------------------------------------


def test_drf_without_resource_pressure_is_position_stable():
    # Idle cluster, zero RAM demand: every node's dominant share ties,
    # so outstanding then worker position decide — worker-0 first.
    sched = make_scheduler("drf")
    first = sched.place(PlacementRequest(kind="job", cpus=1))
    second = sched.place(PlacementRequest(kind="job", cpus=1))
    assert first.name == "worker-0"
    # worker-0 now has 1 outstanding, so the tie moves to worker-1.
    assert second.name == "worker-1"


def test_drf_avoids_the_ram_loaded_node():
    sched = make_scheduler("drf")
    half = sched.workers[0].ram_limit // 2
    sched.workers[0].allocate_ram(half)  # worker-0: RAM share 0.5
    node = sched.place(
        PlacementRequest(kind="job", cpus=1, ram_bytes=1)
    )
    assert node.name == "worker-1"


def test_drf_dominant_share_weighs_cpu_against_ram():
    # worker-0 is RAM-heavy (0.5 RAM share); worker-1..3 get CPU load
    # heavier than that, so the RAM-loaded node becomes the minimum
    # again: DRF compares the *larger* of the two shares per node.
    sched = make_scheduler("drf")
    sched.workers[0].allocate_ram(sched.workers[0].ram_limit // 2)
    for worker in sched.workers[1:]:
        worker.env.process(worker.compute(1.0, cores=6))
    sched.cluster.env.run(until=0.5)  # mid-compute: 6/8 vCPUs in use
    node = sched.place(PlacementRequest(kind="job", cpus=1, ram_bytes=1))
    assert node.name == "worker-0"


def test_drf_skips_down_nodes():
    sched = make_scheduler("drf", down={"worker-0"})
    assert sched.place(PlacementRequest(kind="job")).name == "worker-1"
