"""Cache semantics inside the engines: hits, faults, affinity.

The subtle invariants that unit tests on :class:`ResultCache` cannot
see — hit tasks must still produce *real* values (the free replay),
injected faults must still fire on hit submissions, lineage
reconstruction must hit the cache, and the locality policy must steer
warm tasks back to the node holding their result.
"""

from repro.cache import ResultCache, cached
from repro.cluster import build_cluster
from repro.faults import FaultEvent, FaultSchedule, faults_injected
from repro.sched import PlacementRequest, Scheduler
from repro.sched.policy import LocalityPolicy
from repro.sim import Environment
from repro.rayx import run_script


def fresh_cluster():
    return build_cluster(Environment())


def square(ctx, x):
    yield from ctx.compute(0.4)
    return x * x


def driver(rt):
    refs = [rt.submit(square, i, label=f"square-{i}") for i in range(5)]
    values = yield from rt.get_all(refs)
    return values


def run_once():
    cluster = fresh_cluster()
    values = run_script(cluster, driver, num_cpus=4)
    return cluster, values


# -- hit semantics -------------------------------------------------------------


def test_warm_run_returns_real_values_via_adoption():
    from repro.obs import Tracer, tracing

    cache = ResultCache("on")
    with cached(cache):
        _, cold_values = run_once()
        with tracing(Tracer()) as tracer:
            _, warm_values = run_once()
    assert warm_values == cold_values == [0, 1, 4, 9, 16]
    assert cache.hits == 5
    # Hits bypass put-time but the store holds real adopted objects —
    # the values above came out of it.
    assert tracer.metrics.value("objectstore.adopt.count") == 5
    assert tracer.metrics.total("cache.hit") == 5


def test_warm_run_is_faster_and_cold_matches_dormant():
    base_cluster, _ = run_once()
    cache = ResultCache("on")
    with cached(cache):
        cold_cluster, _ = run_once()
        warm_cluster, _ = run_once()
    assert cold_cluster.env.now == base_cluster.env.now
    assert warm_cluster.env.now < cold_cluster.env.now


def test_distinct_arguments_do_not_collide():
    def driver_b(rt):
        refs = [rt.submit(square, i, label=f"square-{i}") for i in range(5, 10)]
        values = yield from rt.get_all(refs)
        return values

    cache = ResultCache("on")
    with cached(cache):
        run_once()
        cluster = fresh_cluster()
        values = run_script(cluster, driver_b, num_cpus=4)
    assert values == [25, 36, 49, 64, 81]
    assert cache.hits == 0  # different args -> different lineage keys


def test_epoch_bump_invalidates_everything():
    with cached(ResultCache("on,epoch=0")):
        _, cold = run_once()
    cache = ResultCache("on,epoch=1")
    with cached(cache):
        _, values = run_once()
    assert values == cold
    assert cache.hits == 0


# -- fault interplay -----------------------------------------------------------


def test_hits_do_not_mask_injected_task_faults():
    """A warm submission that would hit still takes its injected crash
    (and the retry), exactly like a cold one."""
    cache = ResultCache("on")
    with cached(cache):
        run_once()  # warm the cache
        schedule = FaultSchedule(
            events=(FaultEvent(0.0, "task", target="square-*"),)
        )
        with faults_injected(schedule) as injector:
            cluster = fresh_cluster()
            values = run_script(cluster, driver, num_cpus=4)
    assert values == [0, 1, 4, 9, 16]
    assert injector.injected == 1
    assert injector.retries == 1


def test_lineage_reconstruction_hits_the_cache():
    """Losing every replica forces a rebuild; the reconstructed ref
    keeps its fingerprint, so the rebuild replays at lookup cost.

    That holds even on the *first* enabled run — the rebuild hits
    entries inserted moments earlier in the same run — so under a
    replica fault an enabled cache legitimately beats dormant from
    run one.  (Fault-free cold runs stay bit-identical to the seed;
    ``test_timing_pin`` pins that.)
    """

    def late_get_driver(rt):
        refs = [rt.submit(square, i, label=f"square-{i}") for i in range(5)]
        yield from rt.wait(refs, num_returns=5)
        yield rt.env.timeout(1.0)  # loss window: the replica fault lands here
        values = yield from rt.get_all(refs)
        return values

    schedule = FaultSchedule(
        events=(FaultEvent(3.0, "replica", target="square-*"),)
    )

    def run_faulted():
        with faults_injected(schedule) as injector:
            cluster = fresh_cluster()
            values = run_script(cluster, late_get_driver, num_cpus=4)
        return cluster.env.now, values, injector

    dormant_elapsed, dormant_values, dormant_injector = run_faulted()
    cache = ResultCache("on")
    with cached(cache):
        first_elapsed, first_values, _ = run_faulted()
        warm_elapsed, warm_values, warm_injector = run_faulted()
    assert dormant_values == first_values == warm_values
    assert first_elapsed < dormant_elapsed  # recovery replayed, not re-run
    assert warm_elapsed < first_elapsed  # and warm skips the compute too
    assert dormant_injector.injected == warm_injector.injected >= 1
    assert cache.hits > len(dormant_values)  # submissions *and* rebuilds hit


# -- scheduler affinity --------------------------------------------------------


def test_locality_policy_honours_cache_node_hint():
    cluster = fresh_cluster()
    sched = Scheduler(cluster)
    policy = LocalityPolicy()
    request = PlacementRequest(kind="task", label="t", cache_node="worker-1")
    assert policy.choose(request, sched).name == "worker-1"
    # Without the hint the same request goes to the least-loaded node.
    bare = PlacementRequest(kind="task", label="t")
    assert policy.choose(bare, sched).name == "worker-0"


def test_round_robin_ignores_cache_node_hint():
    """The default policy must stay seed-identical, hint or not."""
    from repro.sched.policy import RoundRobinPolicy

    cluster = fresh_cluster()
    sched = Scheduler(cluster)
    policy = RoundRobinPolicy()
    hinted = PlacementRequest(kind="task", label="t", cache_node="worker-1")
    bare = PlacementRequest(kind="task", label="t")
    assert policy.choose(hinted, sched).name == policy.choose(bare, sched).name
