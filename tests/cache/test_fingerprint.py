"""Fingerprints must be structural, deterministic and address-free.

The cache's whole correctness story rests on one property: two
submissions fingerprint equal **iff** they would compute the same
thing.  That means re-created lambdas (fresh ``id()``, same code) must
collide, closures over different values must not, and nothing may leak
``repr`` memory addresses or per-interpreter ``hash()`` salt into a
key.
"""

import functools

from repro.cache.fingerprint import combine, fingerprint_function, fingerprint_value
from repro.obs import tracing


def test_combine_is_deterministic_and_order_sensitive():
    assert combine("a", 1, 2.5) == combine("a", 1, 2.5)
    assert combine("a", "b") != combine("b", "a")
    assert combine("ab") != combine("a", "b")  # parts are delimited


def test_atoms_distinguish_type_and_value():
    assert fingerprint_value(1) != fingerprint_value(1.0)
    assert fingerprint_value(True) != fingerprint_value(1)
    assert fingerprint_value("1") != fingerprint_value(1)
    assert fingerprint_value(None) == fingerprint_value(None)


def test_recreated_lambda_fingerprints_equal():
    def make():
        return lambda x: x * 2

    assert make() is not make()
    assert fingerprint_function(make()) == fingerprint_function(make())


def test_closure_values_differentiate():
    def make(n):
        return lambda x: x * n

    assert fingerprint_function(make(2)) == fingerprint_function(make(2))
    assert fingerprint_function(make(2)) != fingerprint_function(make(3))


def test_containers_recurse_into_callables():
    def make(n):
        return [1, {"fn": lambda x: x + n}]

    assert fingerprint_value(make(1)) == fingerprint_value(make(1))
    assert fingerprint_value(make(1)) != fingerprint_value(make(2))


def test_dict_fingerprint_is_insertion_order_insensitive():
    assert fingerprint_value({"a": 1, "b": 2}) == fingerprint_value(
        {"b": 2, "a": 1}
    )


def test_set_fingerprint_is_order_insensitive():
    assert fingerprint_value({3, 1, 2}) == fingerprint_value({2, 3, 1})


def test_sequence_type_matters_but_not_identity():
    assert fingerprint_value([1, 2]) != fingerprint_value((1, 2))
    assert fingerprint_value([1, 2]) == fingerprint_value([1, 2])


def test_partial_fingerprints_by_parts():
    def f(a, b):
        return a + b

    assert fingerprint_function(functools.partial(f, 1)) == fingerprint_function(
        functools.partial(f, 1)
    )
    assert fingerprint_function(functools.partial(f, 1)) != fingerprint_function(
        functools.partial(f, 2)
    )


def test_bound_methods_include_instance_state():
    class Counter:
        def __init__(self, n):
            self.n = n

        def bump(self):
            return self.n + 1

    assert fingerprint_function(Counter(1).bump) == fingerprint_function(
        Counter(1).bump
    )
    assert fingerprint_function(Counter(1).bump) != fingerprint_function(
        Counter(2).bump
    )


class _Unpicklable:
    def __init__(self, n):
        self.n = n
        self.fn = lambda: n  # defeats pickle

    def __reduce__(self):
        raise TypeError("nope")


def test_unpicklable_objects_fingerprint_structurally():
    """No ``repr`` fallback: two equal-state instances at different
    addresses must collide, different state must not."""
    a, b = _Unpicklable(1), _Unpicklable(1)
    assert fingerprint_value(a) == fingerprint_value(b)
    assert fingerprint_value(a) != fingerprint_value(_Unpicklable(2))


def test_fingerprint_never_embeds_memory_addresses():
    value = _Unpicklable(7)
    fp = fingerprint_value(value)
    assert hex(id(value))[2:] not in fp
    assert fp == fingerprint_value(value)


class _SlottedUnpicklable:
    __slots__ = ("n", "tag")

    def __init__(self, n, tag="x"):
        self.n = n
        self.tag = tag

    def __reduce__(self):
        raise TypeError("nope")


class _SlottedChild(_SlottedUnpicklable):
    __slots__ = ("extra",)

    def __init__(self, n, extra):
        super().__init__(n)
        self.extra = extra


def test_slotted_unpicklable_objects_do_not_collide():
    """Regression: the fallback only read ``__dict__``, so every
    ``__slots__`` instance digested to the same "opaque" value and two
    objects with *different* state collided — the cache could then
    serve one submission's result for the other."""
    assert fingerprint_value(_SlottedUnpicklable(1)) != fingerprint_value(
        _SlottedUnpicklable(2)
    )
    assert fingerprint_value(_SlottedUnpicklable(1)) == fingerprint_value(
        _SlottedUnpicklable(1)
    )


def test_slot_state_is_collected_across_the_mro():
    assert fingerprint_value(_SlottedChild(1, "a")) != fingerprint_value(
        _SlottedChild(1, "b")
    )
    assert fingerprint_value(_SlottedChild(1, "a")) != fingerprint_value(
        _SlottedChild(2, "a")
    )
    assert fingerprint_value(_SlottedChild(1, "a")) == fingerprint_value(
        _SlottedChild(1, "a")
    )


def test_unassigned_slot_does_not_break_fingerprinting():
    obj = _SlottedUnpicklable.__new__(_SlottedUnpicklable)
    obj.n = 1  # tag deliberately left unset
    full = _SlottedUnpicklable(1)
    assert fingerprint_value(obj) == fingerprint_value(obj)
    assert fingerprint_value(obj) != fingerprint_value(full)


def test_fallback_counter_emitted_when_traced():
    with tracing() as tracer:
        fingerprint_value(_Unpicklable(1))
        fingerprint_value(_SlottedUnpicklable(1))
    counters = tracer.metrics.counters("cache.fingerprint.fallback")
    assert sum(c.value for c in counters) == 2


def test_no_fallback_counter_for_picklable_values():
    with tracing() as tracer:
        fingerprint_value([1, 2, {"a": 3}])
        fingerprint_function(lambda x: x + 1)
    assert tracer.metrics.counters("cache.fingerprint.fallback") == []


def test_cyclic_structures_terminate():
    loop = []
    loop.append(loop)
    assert fingerprint_value(loop) == fingerprint_value(loop)


def test_deep_nesting_hits_depth_limit_not_recursion_error():
    deep = [1]
    for _ in range(50):
        deep = [deep]
    assert fingerprint_value(deep) == fingerprint_value(deep)
