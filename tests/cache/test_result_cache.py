"""ResultCache mechanics: LRU eviction, stats, specs, installation."""

import pytest

from repro.cache import (
    CacheConfig,
    ResultCache,
    cached,
    current_cache,
    describe_cache,
    install_cache,
    parse_cache_spec,
    uninstall_cache,
)
from repro.cluster import build_cluster
from repro.config import ReproConfig
from repro.errors import CacheSpecError
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _no_leftover_install():
    yield
    uninstall_cache()


# -- spec parsing -------------------------------------------------------------


def test_spec_defaults_and_flags():
    assert parse_cache_spec("on").enabled
    assert not parse_cache_spec("off").enabled
    config = parse_cache_spec("on,cap=1kib,lookup=0.5,epoch=3")
    assert config.capacity_bytes == 1024
    assert config.lookup_s == 0.5
    assert config.epoch == 3


@pytest.mark.parametrize(
    "spec",
    ["", "bogus", "cap=banana", "lookup=fast", "epoch=x", "cap=-1", "lookup=-1"],
)
def test_bad_specs_raise_cache_spec_error(spec):
    with pytest.raises(CacheSpecError):
        parse_cache_spec(spec)


def test_describe_mentions_state_and_capacity():
    text = describe_cache(parse_cache_spec("on,cap=1gib"))
    assert "ON" in text and "1GiB" in text
    assert "dormant" in describe_cache(CacheConfig())


# -- lookup / insert / eviction -----------------------------------------------


def test_lookup_miss_then_hit_updates_stats():
    cache = ResultCache("on")
    assert cache.lookup("fp1") is None
    cache.insert("fp1", nbytes=10, node="worker-0")
    entry = cache.lookup("fp1")
    assert entry is not None and entry.nbytes == 10
    assert cache.stats() == {
        "hits": 1,
        "misses": 1,
        "inserts": 1,
        "evictions": 0,
        "entries": 1,
        "bytes": 10,
    }
    assert cache.hit_rate == 0.5


def test_capacity_evicts_lru_per_node():
    cache = ResultCache("on,cap=1kib")
    cache.insert("x", nbytes=600, node="worker-0")
    cache.insert("y", nbytes=600, node="worker-0")  # 1200 > 1024: x goes
    assert "x" not in cache
    assert "y" in cache
    assert cache.evictions == 1
    assert cache.node_bytes("worker-0") == 600


def test_eviction_is_per_node_not_global():
    cache = ResultCache("on,cap=1kib")
    cache.insert("a", nbytes=700, node="worker-0")
    cache.insert("b", nbytes=700, node="worker-1")
    assert "a" in cache and "b" in cache  # different nodes, both fit
    assert cache.total_bytes == 1400


def test_hit_refreshes_lru_position():
    cache = ResultCache("on,cap=1kib")
    cache.insert("old", nbytes=500, node="worker-0")
    cache.insert("mid", nbytes=400, node="worker-0")
    assert cache.lookup("old") is not None  # refresh: now "mid" is coldest
    cache.insert("new", nbytes=400, node="worker-0")
    assert "mid" not in cache
    assert "old" in cache and "new" in cache


def test_oversized_entry_never_evicts_itself():
    cache = ResultCache("on,cap=1kib")
    cache.insert("huge", nbytes=5000, node="worker-0")
    assert "huge" in cache  # kept: evicting the only entry helps nothing


def test_peek_node_does_not_perturb_stats_or_lru():
    cache = ResultCache("on")
    cache.insert("fp", nbytes=1, node="worker-2")
    hits_before = cache.hits
    assert cache.peek_node("fp") == "worker-2"
    assert cache.peek_node("absent") is None
    assert cache.hits == hits_before


def test_invalidate_and_clear():
    cache = ResultCache("on")
    cache.insert("fp", nbytes=5, node="n")
    cache.invalidate("fp")
    assert "fp" not in cache
    cache.insert("fp2", nbytes=5, node="n")
    cache.clear()
    assert len(cache) == 0
    assert cache.inserts == 2  # stats survive clear


def test_dormant_cache_is_inactive():
    assert not ResultCache(CacheConfig()).active
    assert ResultCache("on").active


# -- installation precedence --------------------------------------------------


def test_explicit_argument_beats_installed_cache():
    explicit = ResultCache("on")
    with cached("on"):
        cluster = build_cluster(Environment(), cache=explicit)
    assert cluster.cache is explicit


def test_installed_instance_survives_cluster_rebuilds():
    installed = install_cache("on")
    try:
        first = build_cluster(Environment())
        second = build_cluster(Environment())
        assert first.cache is installed
        assert second.cache is installed
    finally:
        uninstall_cache()
    assert current_cache() is None


def test_config_field_builds_fresh_instance_per_cluster():
    config = ReproConfig(cache=CacheConfig(enabled=True))
    first = build_cluster(Environment(), config)
    second = build_cluster(Environment(), config)
    assert first.cache.active and second.cache.active
    assert first.cache is not second.cache


def test_default_is_dormant():
    cluster = build_cluster(Environment())
    assert not cluster.cache.active


def test_cached_context_restores_previous():
    outer = install_cache("on")
    try:
        with cached("on,cap=1kib") as inner:
            assert current_cache() is inner
        assert current_cache() is outer
    finally:
        uninstall_cache()
