"""The cache must be invisible until it hits.

Three timing guarantees, in escalating order:

* **dormant** (the default config): every task timing bit-identical to
  the pre-``repro.cache`` seed — same constants ``repro.obs``,
  ``repro.faults``, ``repro.sched`` and ``repro.mem`` pin;
* **enabled but cold**: still bit-identical — misses charge nothing,
  and fingerprinting happens in free real Python;
* **warm**: strictly faster on every task, under both engines, with
  outputs identical to the seed run.
"""

from repro.cache import ResultCache, cached
from tests.obs.test_timing_regression import SEED_TIMINGS, _run_all


def test_dormant_cache_timings_bit_identical_to_seed():
    assert _run_all() == SEED_TIMINGS


def test_enabled_cold_cache_timings_bit_identical_to_seed():
    """An installed-but-empty cache only ever misses — and misses are
    bookkeeping, not virtual time.

    Each task gets its *own* fresh cache: a cache shared across tasks
    legitimately hits (GOTTA's 1- and 4-CPU runs put the same model),
    which is reuse, not drift.
    """
    caches = []

    def fresh():
        cache = ResultCache("on")
        caches.append(cache)
        return cached(cache)

    timings = _run_all(each=fresh)
    assert timings == SEED_TIMINGS
    assert all(cache.hits == 0 for cache in caches)
    assert sum(cache.misses for cache in caches) > 0  # really consulted


def test_warm_cache_strictly_faster_everywhere():
    cache = ResultCache("on")
    with cached(cache):
        cold = _run_all()
        warm = _run_all()
    for key, warm_elapsed in warm.items():
        assert warm_elapsed < cold[key], f"{key} did not speed up warm"
    assert cold["gotta/script-1"] == SEED_TIMINGS["gotta/script-1"]
    assert cache.hits > 0
