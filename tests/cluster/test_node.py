"""Unit tests for the simulated cluster node."""

import pytest

from repro.config import MachineConfig
from repro.errors import InsufficientResources
from repro.sim import Environment


def make_node(env, cpus=8, ram=64 * 2**30):
    from repro.cluster import Node

    return Node(env, "n0", MachineConfig(num_cpus=cpus, ram_bytes=ram))


def test_compute_advances_clock():
    env = Environment()
    node = make_node(env)

    def proc():
        yield env.process(node.compute(3.0))

    env.run(until=env.process(proc()))
    assert env.now == 3.0
    assert node.busy_seconds == 3.0


def test_compute_contends_for_cores():
    env = Environment()
    node = make_node(env, cpus=2)
    finished = []

    def job(tag):
        yield env.process(node.compute(10.0, cores=1))
        finished.append((tag, env.now))

    for tag in range(4):
        env.process(job(tag))
    env.run()
    # 2 cores: two jobs finish at t=10, two more queue and finish at t=20.
    assert [t for _, t in finished] == [10, 10, 20, 20]


def test_multicore_compute_occupies_whole_node():
    env = Environment()
    node = make_node(env, cpus=4)
    finished = []

    def big():
        yield env.process(node.compute(5.0, cores=4))
        finished.append(("big", env.now))

    def small():
        yield env.process(node.compute(1.0, cores=1))
        finished.append(("small", env.now))

    env.process(big())
    env.process(small())
    env.run()
    assert finished == [("big", 5.0), ("small", 6.0)]


def test_compute_rejects_more_cores_than_node_has():
    env = Environment()
    node = make_node(env, cpus=2)
    with pytest.raises(InsufficientResources):
        env.run(until=env.process(node.compute(1.0, cores=3)))


def test_compute_rejects_negative_duration():
    env = Environment()
    node = make_node(env)
    with pytest.raises(ValueError):
        env.run(until=env.process(node.compute(-1.0)))


def test_ram_accounting_and_peak():
    env = Environment()
    node = make_node(env, ram=1000)
    node.allocate_ram(600)
    node.allocate_ram(300)
    assert node.ram_used == 900
    assert node.ram_free == 100
    node.free_ram(500)
    assert node.ram_used == 400
    assert node.ram_peak == 900


def test_ram_overallocation_raises():
    env = Environment()
    node = make_node(env, ram=100)
    node.allocate_ram(90)
    with pytest.raises(InsufficientResources):
        node.allocate_ram(11)


def test_ram_overfree_raises():
    env = Environment()
    node = make_node(env, ram=100)
    node.allocate_ram(10)
    with pytest.raises(ValueError):
        node.free_ram(11)


def test_busy_seconds_counts_core_seconds():
    env = Environment()
    node = make_node(env, cpus=8)

    def proc():
        yield env.process(node.compute(2.0, cores=4))

    env.run(until=env.process(proc()))
    assert node.busy_seconds == 8.0
