"""Unit tests for payload sizing and codecs."""

import numpy as np
import pytest

from repro.cluster import Sized, estimate_bytes, make_codecs
from repro.config import SerializationConfig


class Blob(Sized):
    def __init__(self, nbytes):
        self._nbytes = nbytes

    def payload_bytes(self):
        return self._nbytes


def test_primitive_sizes():
    assert estimate_bytes(None) == 4
    assert estimate_bytes(True) == 4
    assert estimate_bytes(7) == 8
    assert estimate_bytes(3.14) == 8
    assert estimate_bytes("abcd") == 16 + 4
    assert estimate_bytes(b"abcd") == 16 + 4


def test_container_sizes_grow_with_content():
    small = estimate_bytes([1, 2])
    big = estimate_bytes([1, 2, 3, 4, 5, 6])
    assert big > small


def test_dict_counts_keys_and_values():
    assert estimate_bytes({"k": 1}) == 16 + 8 + (16 + 1) + 8


def test_numpy_arrays_use_nbytes():
    arr = np.zeros(1000, dtype=np.float64)
    assert estimate_bytes(arr) == 16 + 8000


def test_sized_protocol_wins():
    assert estimate_bytes(Blob(12345)) == 12345


def test_plain_object_sizes_its_fields():
    class Point:
        def __init__(self):
            self.x = 1.0
            self.y = 2.0

    assert estimate_bytes(Point()) > 16


def test_estimate_is_deterministic():
    payload = {"a": [1, 2, 3], "b": ("x", 2.0), "c": {"nested": None}}
    assert estimate_bytes(payload) == estimate_bytes(payload)


def test_codec_times():
    codecs = make_codecs(SerializationConfig(base_s=0.001, python_bytes_per_s=1e6))
    assert codecs.python.encode_time(1000) == pytest.approx(0.002)
    assert codecs.python.round_trip_time(1000) == pytest.approx(0.004)


def test_codec_rejects_negative_size():
    codecs = make_codecs(SerializationConfig())
    with pytest.raises(ValueError):
        codecs.python.encode_time(-1)


def test_boundary_codec_selection():
    codecs = make_codecs(SerializationConfig())
    assert codecs.for_boundary("python", "python").name == "python"
    assert codecs.for_boundary("scala", "scala").name == "jvm"
    assert codecs.for_boundary("scala", "java").name == "jvm"
    assert codecs.for_boundary("python", "scala").name == "cross-language"
    assert codecs.for_boundary("java", "python").name == "cross-language"


def test_cross_language_is_slowest():
    codecs = make_codecs(SerializationConfig())
    nbytes = 10**6
    assert codecs.cross_language.encode_time(nbytes) > codecs.python.encode_time(nbytes)
    assert codecs.python.encode_time(nbytes) > codecs.jvm.encode_time(nbytes)
