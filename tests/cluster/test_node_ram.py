"""Node RAM accounting: validation, peak tracking, ceiling, gauges."""

from dataclasses import replace

import pytest

from repro.cluster import build_cluster
from repro.config import MachineConfig, MemoryConfig, default_config
from repro.errors import InsufficientResources
from repro.obs import Tracer
from repro.sim import Environment


def make_node(ram_bytes=1000):
    from repro.cluster.node import Node

    env = Environment()
    return Node(env, "worker-0", MachineConfig(num_cpus=8, ram_bytes=ram_bytes))


# -- validation ---------------------------------------------------------------


def test_allocate_rejects_negative_and_overflow():
    node = make_node(ram_bytes=1000)
    with pytest.raises(ValueError, match="negative allocation"):
        node.allocate_ram(-1)
    with pytest.raises(InsufficientResources, match="exceeds free RAM"):
        node.allocate_ram(1001)
    node.allocate_ram(600)
    with pytest.raises(InsufficientResources):
        node.allocate_ram(500)  # only 400 free
    assert node.ram_used == 600  # failed allocations change nothing


def test_free_rejects_negative_and_underflow():
    node = make_node(ram_bytes=1000)
    node.allocate_ram(100)
    with pytest.raises(ValueError, match="negative free"):
        node.free_ram(-1)
    with pytest.raises(ValueError, match="only 100 are allocated"):
        node.free_ram(200)
    node.free_ram(100)
    assert node.ram_used == 0


# -- peak + largest-allocation tracking ---------------------------------------


def test_peak_and_largest_alloc_track_high_water():
    node = make_node(ram_bytes=1000)
    node.allocate_ram(300)
    node.allocate_ram(400)
    node.free_ram(600)
    node.allocate_ram(100)
    assert node.ram_used == 200
    assert node.ram_peak == 700  # high water, not current usage
    assert node.largest_alloc == 400  # biggest single admission


def test_ram_limit_is_the_mutable_ceiling():
    node = make_node(ram_bytes=1000)
    assert node.ram_bytes == 1000
    node.ram_limit = 500
    assert node.ram_bytes == 500
    assert node.ram_free == 500
    with pytest.raises(InsufficientResources):
        node.allocate_ram(501)
    node.allocate_ram(500)
    assert node.ram_free == 0


# -- gauges (repro.obs) -------------------------------------------------------


def test_ram_gauges_report_rss_and_high_water():
    tracer = Tracer()
    cluster = build_cluster(Environment(), tracer=tracer)
    node = cluster.node("worker-0")
    node.allocate_ram(5000)
    node.allocate_ram(2000)
    node.free_ram(4000)
    rss = tracer.metrics.gauge("mem.node_rss", node="worker-0")
    high = tracer.metrics.gauge("mem.high_water", node="worker-0")
    assert rss.value == 3000
    assert rss.max_value == 7000
    assert high.value == 7000
    node.free_ram(3000)
    assert rss.value == 0
    assert high.value == 7000  # high water never comes back down


def test_gauges_stay_silent_without_a_tracer():
    cluster = build_cluster(Environment())
    node = cluster.node("worker-0")
    node.allocate_ram(5000)
    node.free_ram(5000)  # no tracer enabled: pure arithmetic, no errors
    assert node.ram_peak == 5000


# -- peak under spill/backpressure (repro.mem) --------------------------------


def test_peak_respects_ceiling_under_spilling():
    config = replace(
        default_config(),
        memory=MemoryConfig(enabled=True, node_ram_bytes=10_000),
    )
    cluster = build_cluster(Environment(), config)
    env = cluster.env
    memory = cluster.memory
    node = cluster.node("worker-0")

    def scenario():
        for index in range(5):
            yield from memory.allocate("worker-0", 4_000, key=f"obj-{index}")
        return True

    assert env.run(until=env.process(scenario()))
    # 20k bytes admitted through a 10k node: spilling kept every
    # instantaneous reading - and therefore the peak - under the limit.
    assert node.ram_peak <= node.ram_limit == 10_000
    assert memory.spill_count >= 3
    assert node.ram_used == sum(
        memory._states["worker-0"].resident.values()
    )


def test_node_ram_bytes_override_clamps_every_node():
    config = replace(default_config(), memory=MemoryConfig(node_ram_bytes=123))
    cluster = build_cluster(Environment(), config)
    for name in cluster.node_names():
        assert cluster.node(name).ram_limit == 123
    # Dormant policy: the clamp alone makes allocations fail hard.
    with pytest.raises(InsufficientResources):
        cluster.node("worker-0").allocate_ram(124)
