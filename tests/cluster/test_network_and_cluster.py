"""Unit tests for the network model and cluster topology."""

import pytest

from repro.cluster import build_cluster
from repro.config import NetworkConfig, default_config
from repro.errors import UnknownNode
from repro.sim import Environment


def test_transfer_time_formula():
    net = NetworkConfig(latency_s=0.001, bandwidth_bytes_per_s=1e9)
    assert net.transfer_time(1e9) == pytest.approx(1.001)
    assert net.transfer_time(0) == pytest.approx(0.001)


def test_transfer_time_rejects_negative():
    with pytest.raises(ValueError):
        NetworkConfig().transfer_time(-1)


def test_loopback_transfer_is_free():
    env = Environment()
    cluster = build_cluster(env)

    def proc():
        yield env.process(cluster.transfer("worker-0", "worker-0", 10**9))

    env.run(until=env.process(proc()))
    assert env.now == 0.0
    assert cluster.network.bytes_moved == 0


def test_cross_node_transfer_charges_time_and_counts_bytes():
    env = Environment()
    cluster = build_cluster(env)
    net = default_config().topology.network

    def proc():
        yield env.process(cluster.transfer("controller", "worker-1", 10**8))

    env.run(until=env.process(proc()))
    assert env.now == pytest.approx(net.transfer_time(10**8))
    assert cluster.network.bytes_moved == 10**8
    assert cluster.network.transfers == 1


def test_topology_matches_paper():
    env = Environment()
    cluster = build_cluster(env)
    assert cluster.num_workers == 4
    assert cluster.controller.num_cpus == 8
    assert cluster.workers[0].ram_bytes == 64 * 2**30
    assert sorted(cluster.node_names()) == [
        "controller",
        "worker-0",
        "worker-1",
        "worker-2",
        "worker-3",
    ]


def test_unknown_node_lookup_raises():
    env = Environment()
    cluster = build_cluster(env)
    with pytest.raises(UnknownNode):
        cluster.node("worker-9")


def test_broadcast_time_scales_with_destinations():
    env = Environment()
    cluster = build_cluster(env)
    one = cluster.network.broadcast_time("controller", 1, 10**6)
    four = cluster.network.broadcast_time("controller", 4, 10**6)
    assert four == pytest.approx(4 * one)


def test_broadcast_time_applies_link_degradation():
    """Regression: broadcasts must slow down inside a link window."""
    from repro.faults import FaultEvent, FaultInjector, FaultSchedule

    schedule = FaultSchedule(
        events=(FaultEvent(5.0, "link", duration_s=10.0, factor=3.0),)
    )
    env = Environment()
    cluster = build_cluster(env, faults=FaultInjector(schedule))
    clean = cluster.network.broadcast_time("controller", 4, 10**6)

    def proc():
        yield env.timeout(6.0)  # inside the window

    env.run(until=env.process(proc()))
    degraded = cluster.network.broadcast_time("controller", 4, 10**6)
    assert degraded == pytest.approx(3.0 * clean)


def test_compute_killed_mid_timeout_charges_elapsed_busy_seconds():
    """Regression: a kill mid-compute must bill the slice it burned."""
    env = Environment()
    cluster = build_cluster(env)
    node = cluster.node("worker-0")
    gen = node.compute(5.0, cores=2)
    env.process(gen)

    def killer():
        yield env.timeout(2.0)
        gen.close()

    env.run(until=env.process(killer()))
    # 2 s of wall time on 2 vCPUs before the kill landed.
    assert node.busy_seconds == pytest.approx(4.0)
    assert node.cpus.in_use == 0  # the vCPUs were still released


def test_total_busy_seconds_aggregates_nodes():
    env = Environment()
    cluster = build_cluster(env)

    def proc():
        yield env.process(cluster.node("worker-0").compute(2.0, cores=2))
        yield env.process(cluster.node("worker-1").compute(1.0, cores=1))

    env.run(until=env.process(proc()))
    assert cluster.total_busy_seconds() == pytest.approx(5.0)
