"""Shared test fixtures and generators (not collected as tests)."""
