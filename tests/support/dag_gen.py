"""Seeded random workflow-spec generator for property tests.

Produces *valid-by-construction* ``repro/workflow-spec@1`` documents:
every spec is self-contained (declarative configs only — no ``$param``
bindings, no ``$callable`` UDFs), so it can be loaded, optimized, and
executed under either paradigm without any runtime context.

Determinism guarantees baked into the generation:

* Record ``id`` values are unique per source and per spec, so
  ``distinct`` keyed on ``id`` selects the same surviving rows
  regardless of arrival order.
* ``score`` values come from ``random.Random.random()`` — ties are
  vanishingly unlikely, so ``sort``/``top_k`` boundaries don't depend
  on arrival order either.
* Order-*sensitive* operators (``limit``, counter-based ``sample``)
  are deliberately absent from the palette: their output rows depend
  on tuple arrival order, which legitimately differs between the
  pipelined engine and the script plan.

Knobs: ``depth`` bounds the number of unary stages, ``max_sources``
the fan-in, and every eligible operator gets a random language
(Python/Scala/Java mix) and worker count.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

__all__ = ["random_spec", "CATEGORIES"]

CATEGORIES = ["sign", "symptom", "disorder", "medication"]

#: Unary schema-preserving stages the generator draws from.  Each entry
#: is (type, config builder); builders receive (rng, next worker count).
_STAGES = ("filter", "distinct", "sort", "top_k", "sample")


def _records(rng: random.Random, start_id: int, count: int) -> List[Dict[str, Any]]:
    return [
        {
            "id": f"r{start_id + i:04d}",
            "category": rng.choice(CATEGORIES),
            "score": round(rng.random(), 9),
            "count": rng.randint(0, 50),
        }
        for i in range(count)
    ]


def _language(rng: random.Random) -> str:
    return rng.choice(["python", "python", "scala", "java"])


def _predicate(rng: random.Random) -> Dict[str, Any]:
    choice = rng.randrange(4)
    if choice == 0:
        return {"op": "greater", "column": "score", "value": round(rng.uniform(0.0, 0.6), 3)}
    if choice == 1:
        return {"op": "less", "column": "count", "value": rng.randint(10, 50)}
    if choice == 2:
        return {"op": "in", "column": "category", "values": rng.sample(CATEGORIES, rng.randint(1, 3))}
    return {
        "op": "not",
        "of": {"op": "equals", "column": "category", "value": rng.choice(CATEGORIES)},
    }


def _stage(rng: random.Random, op_id: str) -> Dict[str, Any]:
    kind = rng.choice(_STAGES)
    if kind == "filter":
        config: Dict[str, Any] = {
            "predicate": {"$predicate": _predicate(rng)},
            "language": _language(rng),
            "num_workers": rng.randint(1, 2),
        }
    elif kind == "distinct":
        # Keyed on the unique id field: deterministic under any order.
        config = {"key": "id", "num_workers": rng.randint(1, 2)}
    elif kind == "sort":
        config = {"key": "score", "reverse": rng.random() < 0.5}
    elif kind == "top_k":
        config = {"key": "score", "k": rng.randint(1, 12)}
    else:  # sample, keyed: stable hash of id, order-independent
        config = {"one_in": rng.randint(1, 3), "key": "id"}
    return {"id": op_id, "type": kind, "config": config}


def random_spec(seed: int, depth: int = 4, max_sources: int = 3) -> Dict[str, Any]:
    """One random self-contained spec document for ``seed``."""
    rng = random.Random(seed)
    operators: List[Dict[str, Any]] = []
    links: List[Dict[str, Any]] = []
    counter = 0

    def next_id(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    num_sources = rng.randint(1, max_sources)
    frontier: List[str] = []
    next_record = 0
    for _ in range(num_sources):
        count = rng.randint(3, 12)
        op_id = next_id("src")
        operators.append(
            {
                "id": op_id,
                "type": "jsonl_source",
                "config": {
                    "records": _records(rng, next_record, count),
                    "schema": {
                        "$schema": {
                            "id": "string",
                            "category": "string",
                            "score": "float",
                            "count": "int",
                        }
                    },
                    "num_workers": rng.randint(1, 2),
                },
            }
        )
        next_record += count
        frontier.append(op_id)

    for _ in range(rng.randint(1, depth)):
        if len(frontier) >= 2 and rng.random() < 0.35:
            left = frontier.pop(rng.randrange(len(frontier)))
            right = frontier.pop(rng.randrange(len(frontier)))
            op_id = next_id("merge")
            operators.append(
                {"id": op_id, "type": "union", "config": {"num_inputs": 2}}
            )
            links.append({"from": left, "to": op_id, "in": 0})
            links.append({"from": right, "to": op_id, "in": 1})
            frontier.append(op_id)
        else:
            index = rng.randrange(len(frontier))
            upstream = frontier[index]
            op_id = next_id("op")
            operators.append(_stage(rng, op_id))
            links.append({"from": upstream, "to": op_id})
            frontier[index] = op_id

    while len(frontier) >= 2:
        left = frontier.pop()
        right = frontier.pop()
        op_id = next_id("merge")
        operators.append({"id": op_id, "type": "union", "config": {"num_inputs": 2}})
        links.append({"from": left, "to": op_id, "in": 0})
        links.append({"from": right, "to": op_id, "in": 1})
        frontier.append(op_id)

    (tail,) = frontier
    if rng.random() < 0.5:
        names = ["id", "category", "score", "count"]
        keep = sorted(
            rng.sample(names, rng.randint(1, len(names))), key=names.index
        )
        op_id = next_id("project")
        operators.append(
            {"id": op_id, "type": "projection", "config": {"columns": keep}}
        )
        links.append({"from": tail, "to": op_id})
        tail = op_id
    sink_id = next_id("view")
    operators.append({"id": sink_id, "type": "sink", "config": {}})
    links.append({"from": tail, "to": sink_id})

    return {
        "spec": "repro/workflow-spec@1",
        "name": f"generated-{seed}",
        "operators": operators,
        "links": links,
    }
