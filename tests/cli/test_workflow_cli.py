"""The workflow-spec CLI surfaces: ``compile`` and ``--workflow``.

Same contract as every other spec surface: good inputs produce the
report, bad inputs exit 2 with the grammar on stderr and never a
traceback.  ``--workflow`` additionally runs the spec through both
paradigms and must report identical rows.
"""

import json
from pathlib import Path

import pytest

from repro.cli import WORKFLOW_SPEC_HELP, main

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples" / "workflows"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- compile -------------------------------------------------------------------


def test_compile_reports_param_bound_task_spec(capsys):
    code, out, err = run_cli(capsys, "compile", str(EXAMPLES / "dice.json"))
    assert code == 0
    assert "workflow 'dice'" in out
    assert "operators: 8" in out
    assert "params: ann_files, num_workers, text_files" in out
    assert "structural OK" in out


def test_compile_reports_both_paradigms_for_self_contained_spec(capsys):
    code, out, err = run_cli(capsys, "compile", str(EXAMPLES / "demo.json"))
    assert code == 0
    assert "workflow plan: 5 operators" in out
    assert "script plan: 7 tasks" in out
    assert "both paradigms compile" in out


@pytest.mark.parametrize(
    "filename",
    ["dice.json", "dice_relational.json", "gotta.json", "kge.json", "wef.json", "demo.json"],
)
def test_compile_accepts_every_committed_spec(capsys, filename):
    code, out, err = run_cli(capsys, "compile", str(EXAMPLES / filename))
    assert code == 0, err


def test_compile_without_file_prints_usage(capsys):
    code, out, err = run_cli(capsys, "compile")
    assert code == 2
    assert "usage: repro compile FILE" in err


def test_compile_missing_file_exits_2_with_grammar(capsys):
    code, out, err = run_cli(capsys, "compile", "/no/such/spec.json")
    assert code == 2
    assert "repro: compile:" in err
    assert WORKFLOW_SPEC_HELP in err
    assert "Traceback" not in err


def test_compile_bad_spec_exits_2_with_scoped_error(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(
        json.dumps(
            {
                "spec": "repro/workflow-spec@1",
                "name": "bad",
                "operators": [{"id": "x", "type": "no_such_type", "config": {}}],
                "links": [],
            }
        ),
        encoding="utf-8",
    )
    code, out, err = run_cli(capsys, "compile", str(bad))
    assert code == 2
    assert "unknown operator type 'no_such_type'" in err
    assert WORKFLOW_SPEC_HELP in err


def test_compile_dangling_link_exits_2_with_diagnostic(capsys, tmp_path):
    doc = json.loads((EXAMPLES / "demo.json").read_text(encoding="utf-8"))
    doc["links"][0]["from"] = "ghost"
    bad = tmp_path / "dangling.json"
    bad.write_text(json.dumps(doc), encoding="utf-8")
    code, out, err = run_cli(capsys, "compile", str(bad))
    assert code == 2
    assert "ghost" in err
    assert "Traceback" not in err


# -- --workflow ----------------------------------------------------------------


def test_workflow_flag_runs_both_paradigms_and_diffs_rows(capsys):
    code, out, err = run_cli(capsys, "--workflow", str(EXAMPLES / "demo.json"))
    assert code == 0
    assert "workflow paradigm:" in out
    assert "script paradigm:" in out
    assert "identical" in out
    assert "MISMATCH" not in out


def test_workflow_flag_rejects_param_bound_specs(capsys):
    code, out, err = run_cli(capsys, "--workflow", str(EXAMPLES / "kge.json"))
    assert code == 2
    assert "repro: --workflow:" in err
    assert "self-contained" in err
    assert WORKFLOW_SPEC_HELP in err


def test_workflow_flag_missing_file_exits_2(capsys):
    code, out, err = run_cli(capsys, "--workflow", "/no/such/spec.json")
    assert code == 2
    assert WORKFLOW_SPEC_HELP in err
    assert "Traceback" not in err
