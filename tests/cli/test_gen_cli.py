"""The ``repro gen`` CLI surface: generate, run, diff, emit, exit 2.

Same contract as every other spec surface: good specs produce the
report, bad specs exit 2 with the grammar on stderr and never a
traceback.  Emitted documents must be strict JSON that ``compile``
and ``--workflow`` read back.
"""

import json

import pytest

from repro.cli import GEN_SPEC_HELP, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_bare_gen_prints_catalogue_and_grammar(capsys):
    code, out, err = run_cli(capsys, "gen")
    assert code == 0
    for family in ("stream", "smallsteps", "raster"):
        assert family in out
    assert "spec grammar" in out


def test_gen_runs_seeds_and_diffs_rows(capsys):
    code, out, err = run_cli(capsys, "gen", "count=2")
    assert code == 0, err
    assert "seed 0:" in out and "seed 1:" in out
    assert out.count("identical") == 2
    assert "MISMATCH" not in out


def test_gen_family_validate_only(capsys):
    code, out, err = run_cli(capsys, "gen", "family=smallsteps,run=off")
    assert code == 0, err
    assert "both paradigms compile" in out


def test_gen_emit_writes_strict_json_compile_reads_back(capsys, tmp_path):
    target = tmp_path / "spec.json"
    code, out, err = run_cli(capsys, "gen", f"family=raster,run=off,emit={target}")
    assert code == 0, err
    doc = json.loads(target.read_text(encoding="utf-8"))
    assert doc["spec"] == "repro/workflow-spec@1"
    code, out, err = run_cli(capsys, "compile", str(target))
    assert code == 0, err
    assert "both paradigms compile" in out


def test_gen_emit_count_appends_seed(capsys, tmp_path):
    target = tmp_path / "spec.json"
    code, out, err = run_cli(
        capsys, "gen", f"count=2,run=off,emit={target}"
    )
    assert code == 0, err
    assert (tmp_path / "spec-0.json").exists()
    assert (tmp_path / "spec-1.json").exists()


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("family=nope", "unknown family"),
        ("count=0", "count"),
        ("depth=0", "depth"),
        ("bogus=1", "unknown key"),
        ("justaflag", "key=value"),
        ("fanout=2.0", "fan_out"),
    ],
)
def test_bad_gen_specs_exit_2_with_grammar(capsys, spec, fragment):
    code, out, err = run_cli(capsys, "gen", spec)
    assert code == 2
    assert fragment in err
    assert GEN_SPEC_HELP.splitlines()[0] in err


def test_gen_emit_to_unwritable_path_exits_2(capsys, tmp_path):
    target = tmp_path / "missing-dir" / "spec.json"
    code, out, err = run_cli(capsys, "gen", f"run=off,emit={target}")
    assert code == 2
    assert "cannot write" in err
