"""Every bad spec exits 2 with the relevant grammar on stderr.

One matrix over the five installable subsystems (``--faults``,
``--scheduler``, ``--mem``, ``--cache``, ``--jobs``) and their
inspection subcommands: a typo'd spec must never produce a traceback
or a bare one-line error — the user gets exit code 2 plus the spec
grammar (or the policy catalogue) so the fix is on screen.
"""

import pytest

from repro.cli import (
    CACHE_SPEC_HELP,
    FAULT_SPEC_HINT,
    JOBS_SPEC_HELP,
    MEM_SPEC_HELP,
    main,
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- option errors ------------------------------------------------------------


@pytest.mark.parametrize(
    "option, spec, hint",
    [
        ("--mem", "banana", MEM_SPEC_HELP),
        ("--mem", "ram=lots", MEM_SPEC_HELP),
        ("--cache", "banana", CACHE_SPEC_HELP),
        ("--cache", "cap=lots", CACHE_SPEC_HELP),
        ("--faults", "seed=banana", FAULT_SPEC_HINT),
        ("--faults", "bogus=1", FAULT_SPEC_HINT),
        ("--jobs", "banana", JOBS_SPEC_HELP),
        ("--jobs", "rate=lots", JOBS_SPEC_HELP),
        ("--jobs", "quota_ram=lots", JOBS_SPEC_HELP),
        ("--jobs", "placement=banana", JOBS_SPEC_HELP),
    ],
)
def test_bad_option_spec_exits_2_with_grammar(capsys, option, spec, hint):
    code, out, err = run_cli(capsys, option, spec, "fig13d", "--quick")
    assert code == 2
    assert option in err
    assert hint in err
    assert "Traceback" not in err


def test_unknown_scheduler_exits_2_with_catalogue(capsys):
    code, out, err = run_cli(capsys, "--scheduler", "banana", "fig13d")
    assert code == 2
    assert "banana" in err
    # the catalogue names the valid policies so the fix is on screen
    assert "round_robin" in err and "locality" in err


# -- subcommand errors --------------------------------------------------------


@pytest.mark.parametrize(
    "subcommand, spec, hint",
    [
        ("mem", "banana", MEM_SPEC_HELP),
        ("cache", "banana", CACHE_SPEC_HELP),
        ("faults", "seed=banana", FAULT_SPEC_HINT),
        ("jobs", "banana", JOBS_SPEC_HELP),
        ("jobs", "policy=sjf", JOBS_SPEC_HELP),
    ],
)
def test_bad_subcommand_spec_exits_2_with_grammar(capsys, subcommand, spec, hint):
    code, out, err = run_cli(capsys, subcommand, spec)
    assert code == 2
    assert f"repro: {subcommand}:" in err
    assert hint in err


def test_faults_json_file_with_bad_json_exits_2(tmp_path, capsys):
    """A fault schedule file holding invalid JSON is a spec error, not
    a traceback (regression: json.JSONDecodeError used to escape)."""
    path = tmp_path / "schedule.json"
    path.write_text("{not json", encoding="utf-8")
    code, out, err = run_cli(capsys, "faults", str(path))
    assert code == 2
    assert "not valid JSON" in err
    assert FAULT_SPEC_HINT in err


def test_faults_missing_file_exits_2(tmp_path, capsys):
    code, out, err = run_cli(capsys, "--faults", str(tmp_path / "nope.json"), "fig13d")
    assert code == 2
    assert FAULT_SPEC_HINT in err


# -- healthy paths stay healthy ----------------------------------------------


@pytest.mark.parametrize(
    "argv, expect",
    [
        (("mem",), "dormant"),
        (("cache",), "dormant"),
        (("cache", "on,cap=1gib"), "ON"),
        (("sched",), "round_robin"),
        (("faults", "seed=7,tasks=1"), "seed"),
        (("jobs",), "dormant"),
        (("jobs", "off,rate=50"), "dormant"),
    ],
)
def test_good_subcommand_specs_exit_0(capsys, argv, expect):
    code, out, err = run_cli(capsys, *argv)
    assert code == 0
    assert expect in out
    assert err == ""


def test_unknown_experiment_exits_2_with_ids(capsys):
    code, out, err = run_cli(capsys, "bogus-experiment")
    assert code == 2
    assert "bogus-experiment" in err
    assert "caching" in err  # the catalogue lists valid ids
