"""The autoscaler against the job service: scale up, drain down."""

from dataclasses import replace

import pytest

from repro.cluster import build_cluster
from repro.config import ElasticConfig, JobsConfig, default_config
from repro.elastic import Autoscaler, elastic_enabled
from repro.jobs import Arrival, JobService, JobSpec
from repro.obs import tracing
from repro.sim import Environment

#: A fast-reacting policy so tests stay short in virtual time.
POLICY = ElasticConfig(
    enabled=True,
    min_nodes=1,
    max_nodes=6,
    interval_s=0.25,
    provision_s=1.0,
    up_queue_per_node=2.0,
    idle_s=0.5,
    cooldown_s=0.5,
    step=2,
)


def small_cluster(num_workers=1):
    base = default_config()
    config = replace(
        base, topology=replace(base.topology, num_workers=num_workers)
    )
    return build_cluster(Environment(), config=config)


def burst(n=20, duration_s=0.5, cpus=4, spacing_s=0.05):
    """An arrival list flooding the queue from t=0."""
    return [
        Arrival(
            i * spacing_s,
            JobSpec(cpus=cpus, duration_s=duration_s, tenant=f"t{i % 2}"),
        )
        for i in range(n)
    ]


def burst_then_tail(n=20, tail=10, tail_start_s=6.0, tail_spacing_s=1.0):
    """A flood from t=0 plus a sparse tail that keeps the clock moving.

    The tail is what lets scale-downs happen inside ``simulate`` — the
    run ends when the queue drains, so without late arrivals there is
    no idle period for the autoscaler to observe.
    """
    return burst(n=n) + [
        Arrival(
            tail_start_s + i * tail_spacing_s,
            JobSpec(cpus=1, duration_s=0.05, tenant="tail"),
        )
        for i in range(tail)
    ]


def test_flood_scales_up_then_back_down():
    service = JobService(
        JobsConfig(enabled=True), cluster=small_cluster(1), elastic=POLICY
    )
    summary = service.simulate(arrivals=burst_then_tail())
    assert service.queue.drained
    assert summary["counts"]["completed"] == 30
    es = summary["elastic"]
    assert es["scale_ups"] > 0
    assert es["peak_nodes"] > 1
    # The sparse tail drains the flood-era fleet back down.
    assert es["scale_downs"] > 0
    assert es["final_nodes"] < es["peak_nodes"]
    assert summary["node_seconds"] > 0


def test_fleet_never_exceeds_max_nodes():
    policy = replace(POLICY, max_nodes=3)
    service = JobService(
        JobsConfig(enabled=True), cluster=small_cluster(1), elastic=policy
    )
    service.simulate(arrivals=burst(n=40))
    assert service.cluster.peak_workers <= 3


def test_static_service_has_no_autoscaler():
    service = JobService(JobsConfig(enabled=True))
    assert service.autoscaler is None
    summary = service.simulate(arrivals=burst(n=4))
    assert "elastic" not in summary
    assert summary["node_seconds"] > 0  # billed even when static


def test_installed_config_attaches_the_autoscaler():
    with elastic_enabled("on,min=1,max=4,provision=0.5,interval=0.25"):
        service = JobService(JobsConfig(enabled=True), cluster=small_cluster(1))
    assert service.autoscaler is not None
    assert service.autoscaler.config.max_nodes == 4


def test_request_capacity_rescues_a_too_big_job():
    """A job too big for the current fleet waits for a provisioned node."""
    policy = replace(POLICY, shape="fast")  # 16 vCPU
    service = JobService(
        JobsConfig(enabled=True), cluster=small_cluster(1), elastic=policy
    )
    # 12 vCPUs exceed the 8-vCPU seed worker but fit the 'fast' shape.
    summary = service.simulate(arrivals=[Arrival(0.0, JobSpec(cpus=12, duration_s=0.5))])
    assert summary["counts"]["completed"] == 1
    assert summary["counts"]["failed"] == 0
    assert service.autoscaler.scale_ups >= 1


def test_oversized_job_still_fails_fast():
    """Bigger than even the autoscaler's shape: never admissible."""
    service = JobService(
        JobsConfig(enabled=True), cluster=small_cluster(1), elastic=POLICY
    )
    summary = service.simulate(arrivals=[Arrival(0.0, JobSpec(cpus=64, duration_s=0.5))])
    assert summary["counts"]["failed"] == 1


def test_decisions_emit_metrics_when_traced():
    with tracing() as tracer:
        service = JobService(
            JobsConfig(enabled=True), cluster=small_cluster(1), elastic=POLICY
        )
        service.simulate(arrivals=burst_then_tail())
    metrics = tracer.metrics
    assert metrics.total("elastic.scale_up") > 0
    assert metrics.total("elastic.scale_down") > 0
    # The gauge tracks the live worker count through every change.
    gauge = metrics.gauge("cluster.nodes")
    assert gauge.value == len(service.cluster.workers)
    assert gauge.max_value == service.cluster.peak_workers


def test_autoscaler_summary_shape():
    cluster = small_cluster(2)
    service = JobService(JobsConfig(enabled=True), cluster=cluster, elastic=POLICY)
    scaler = service.autoscaler
    assert isinstance(scaler, Autoscaler)
    summary = scaler.summary()
    assert summary == {
        "scale_ups": 0,
        "scale_downs": 0,
        "provisioning": 0,
        "final_nodes": 2,
        "peak_nodes": 2,
        "shape": "default",
    }


def test_elastic_run_is_deterministic():
    def run():
        service = JobService(
            JobsConfig(enabled=True), cluster=small_cluster(1), elastic=POLICY
        )
        return service.simulate(arrivals=burst())

    assert run() == run()


def test_equal_completions_with_and_without_elasticity():
    jobs = burst(n=12)
    static = JobService(JobsConfig(enabled=True)).simulate(arrivals=list(jobs))
    elastic = JobService(
        JobsConfig(enabled=True), cluster=small_cluster(1), elastic=POLICY
    ).simulate(arrivals=list(jobs))
    assert (
        static["counts"]["completed"]
        == elastic["counts"]["completed"]
        == 12
    )


def test_spec_string_accepted_directly():
    service = JobService(
        JobsConfig(enabled=True),
        cluster=small_cluster(1),
        elastic="on,min=1,max=4,provision=0.5,interval=0.25,idle=0.5,cooldown=0.5",
    )
    assert service.autoscaler is not None
    summary = service.simulate(arrivals=burst(n=6))
    assert summary["counts"]["completed"] == 6


def test_bad_shape_fails_at_construction():
    from repro.errors import ElasticSpecError

    with pytest.raises(ElasticSpecError):
        JobService(
            JobsConfig(enabled=True),
            cluster=small_cluster(1),
            elastic="on,shape=warp9",
        )
