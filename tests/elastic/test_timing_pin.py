"""Elasticity must be invisible until an autoscaler is attached.

Two dormancy guarantees:

* **dormant layer**: installing an elastic config (``elastic_enabled``)
  changes nothing about direct engine runs — every pinned task timing
  stays bit-identical to the seed (direct runs have no job service, so
  no autoscaler ever attaches);
* **membership machinery is free**: the bookkeeping added to
  ``Cluster`` (listeners, join times, draining set) costs no virtual
  time and changes no placement until someone actually calls
  ``add_node``/``remove_node``.
"""

from repro.elastic import elastic_enabled
from tests.obs.test_timing_regression import SEED_TIMINGS, _run_all


def test_installed_elastic_config_does_not_perturb_direct_runs():
    with elastic_enabled("on,min=1,max=8,provision=3,interval=0.5"):
        timings = _run_all()
    assert timings == SEED_TIMINGS


def test_default_run_all_still_matches_seed():
    assert _run_all() == SEED_TIMINGS
