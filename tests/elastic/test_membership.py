"""Dynamic cluster membership: add, provision, drain, migrate, retire."""

import pytest

from repro.cluster import build_cluster
from repro.elastic import machine_shape
from repro.errors import DrainError, UnknownNode
from repro.rayx import ObjectRef, RayxRuntime
from repro.sim import Environment


def make_cluster():
    return build_cluster(Environment())


# -- add / provision ---------------------------------------------------------------


def test_add_node_joins_immediately():
    cluster = make_cluster()
    node = cluster.add_node("elastic-0")
    assert node.name == "elastic-0"
    assert cluster.num_workers == 5
    assert cluster.node("elastic-0") is node
    assert cluster.joined_at("elastic-0") == 0.0
    assert cluster.peak_workers == 5


def test_add_node_rejects_duplicates():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.add_node("worker-0")


def test_add_node_heterogeneous_shape():
    cluster = make_cluster()
    node = cluster.add_node("big", machine=machine_shape("highmem"))
    assert node.num_cpus == 8
    assert node.ram_bytes == 256 * 2**30
    # Default shape matches the topology's homogeneous machines.
    assert cluster.add_node("plain").num_cpus == cluster.workers[0].num_cpus


def test_provision_node_pays_boot_latency():
    cluster = make_cluster()
    env = cluster.env

    def proc():
        node = yield from cluster.provision_node("elastic-0", latency_s=7.5)
        return node

    node = env.run(until=env.process(proc()))
    assert env.now == 7.5
    assert node.name == "elastic-0"
    assert cluster.joined_at("elastic-0") == 7.5


def test_membership_listeners_see_joins_and_leaves():
    cluster = make_cluster()
    env = cluster.env
    events = []
    cluster.add_membership_listener(
        lambda action, node: events.append((action, node.name))
    )
    cluster.add_node("elastic-0")

    def proc():
        yield from cluster.remove_node("elastic-0", drain=True)

    env.run(until=env.process(proc()))
    assert events == [("add", "elastic-0"), ("remove", "elastic-0")]


# -- remove / drain ----------------------------------------------------------------


def test_remove_node_validation():
    cluster = make_cluster()
    with pytest.raises(UnknownNode):
        cluster.remove_node("worker-9")
    with pytest.raises(ValueError):
        cluster.remove_node("controller")


def test_cannot_remove_last_active_worker():
    env = Environment()
    from dataclasses import replace

    from repro.config import default_config

    base = default_config()
    cluster = build_cluster(
        env, config=replace(base, topology=replace(base.topology, num_workers=1))
    )
    with pytest.raises(DrainError):
        cluster.remove_node("worker-0")


def test_draining_is_marked_synchronously():
    cluster = make_cluster()
    gen = cluster.remove_node("worker-3", drain=True)
    assert "worker-3" in cluster.draining  # before the process ever runs
    with pytest.raises(ValueError):
        cluster.remove_node("worker-3")  # already draining
    cluster.env.run(until=cluster.env.process(gen))
    assert not cluster.draining
    assert "worker-3" not in cluster.node_names()


def test_drain_waits_for_outstanding_compute():
    cluster = make_cluster()
    env = cluster.env
    node = cluster.node("worker-3")

    def work():
        yield from node.compute(2.0, cores=2)

    env.process(work())

    def drainer():
        yield env.timeout(0.5)
        yield from cluster.remove_node("worker-3", drain=True)

    env.run(until=env.process(drainer()))
    assert env.now >= 2.0  # the drain outlived the compute
    assert node.busy_seconds == pytest.approx(4.0)
    # Busy time of the retired node stays on the cluster's bill.
    assert cluster.total_busy_seconds() == pytest.approx(4.0)


def test_drain_migrates_sole_replicas_and_drops_redundant_ones():
    cluster = make_cluster()
    env = cluster.env
    runtime = RayxRuntime(cluster)
    store = runtime.store

    def scenario():
        sole = ObjectRef(env, label="sole")
        yield from store.put(sole, list(range(4_000)), "worker-3")
        extra = ObjectRef(env, label="extra")
        yield from store.put(extra, list(range(2_000)), "worker-3")
        yield env.process(store.get(extra, "worker-0"))  # second replica
        before = store.bytes_live
        start = env.now
        yield from cluster.remove_node("worker-3", drain=True)
        return sole, extra, before, start

    sole, extra, before, start = env.run(until=env.process(scenario()))
    # The sole replica moved to a survivor; the redundant one was
    # dropped for free.
    assert store.migrations == 1
    assert store.migrated_bytes == store.nbytes_of(sole)
    assert store.replicas_of(sole) == {"worker-0"}
    assert store.replicas_of(extra) == {"worker-0"}
    # One copy of each object stays live; the redundant copy is gone.
    assert store.bytes_live == before - store.nbytes_of(extra)
    assert env.now > start  # the migration transfer charged virtual time
    # The drained node's RAM reservations moved with the replicas.
    assert cluster.node("worker-0").ram_used == store.nbytes_of(
        sole
    ) + store.nbytes_of(extra)


def test_crash_evict_skips_migration():
    cluster = make_cluster()
    env = cluster.env
    runtime = RayxRuntime(cluster)
    store = runtime.store

    def scenario():
        ref = ObjectRef(env, label="doomed")
        yield from store.put(ref, list(range(2_000)), "worker-3")
        start = env.now
        yield from cluster.remove_node("worker-3", drain=False)
        return start

    start = env.run(until=env.process(scenario()))
    assert store.migrations == 0
    assert env.now == start  # no transfers, no waiting
    assert "worker-3" not in cluster.node_names()


def test_node_seconds_bills_join_to_retirement():
    cluster = make_cluster()
    env = cluster.env

    def scenario():
        yield env.timeout(2.0)
        cluster.add_node("elastic-0")
        yield env.timeout(3.0)
        yield from cluster.remove_node("elastic-0", drain=True)
        yield env.timeout(5.0)

    env.run(until=env.process(scenario()))
    # Four seed workers for 10s each, plus 3s of elastic-0.
    assert cluster.node_seconds() == pytest.approx(4 * 10.0 + 3.0)
