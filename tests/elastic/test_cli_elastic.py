"""CLI surface of elasticity: ``repro elastic`` and ``--elastic SPEC``."""

import pytest

from repro.cli import ELASTIC_SPEC_HELP, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_bare_elastic_prints_dormant_default_and_grammar(capsys):
    code, out, err = run_cli(capsys, "elastic")
    assert code == 0
    assert "dormant" in out
    assert ELASTIC_SPEC_HELP in out
    assert err == ""


def test_elastic_spec_describes_the_policy(capsys):
    code, out, err = run_cli(capsys, "elastic", "on,min=2,max=6,shape=fast")
    assert code == 0
    assert "autoscaler ON" in out
    assert "2..6 workers" in out
    assert "fast" in out


@pytest.mark.parametrize(
    "spec",
    ["banana", "min=lots", "bogus=1", "shape=warp9", "", "on,,off"],
)
def test_bad_elastic_spec_exits_2_with_grammar(capsys, spec):
    code, out, err = run_cli(capsys, "elastic", spec)
    assert code == 2
    assert "repro: elastic:" in err
    assert ELASTIC_SPEC_HELP in err
    assert "Traceback" not in err


def test_elastic_option_composes_with_jobs(capsys):
    code, out, err = run_cli(
        capsys,
        "jobs",
        "on,rate=30,horizon=3,cpus=2,duration=0.5",
        "--elastic",
        "on,min=1,max=6,provision=0.5,interval=0.25,idle=0.5,cooldown=0.5",
    )
    assert code == 0
    assert "elastic" in out
    assert "node-seconds" in out
    assert err == ""


def test_bad_elastic_option_exits_2_before_running(capsys):
    code, out, err = run_cli(
        capsys, "--elastic", "banana", "fig12a", "--quick"
    )
    assert code == 2
    assert "--elastic" in err
    assert ELASTIC_SPEC_HELP in err


def test_elastic_option_off_is_inert(capsys):
    code, out, err = run_cli(
        capsys, "jobs", "on,rate=20,horizon=2", "--elastic", "off"
    )
    assert code == 0
    assert "elastic " not in out  # no autoscaler summary line


def test_elasticity_experiment_runs_quick(capsys):
    code, out, err = run_cli(capsys, "elasticity", "--quick")
    assert code == 0
    assert "node-seconds" in out
    assert "static-4" in out and "elastic" in out
    assert "scale-ups" in out
