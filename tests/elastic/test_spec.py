"""Spec grammar, shape catalogue and the install pattern of repro.elastic."""

import pytest

from repro.config import ElasticConfig
from repro.elastic import (
    MACHINE_SHAPES,
    current_elastic_config,
    describe_elastic,
    elastic_config_from_json,
    elastic_config_to_json,
    elastic_enabled,
    install_elastic,
    machine_shape,
    parse_elastic_spec,
    uninstall_elastic,
)
from repro.errors import ElasticSpecError


def test_defaults_are_dormant():
    config = ElasticConfig()
    assert not config.enabled
    assert parse_elastic_spec("off") == config


def test_parse_all_keys():
    config = parse_elastic_spec(
        "on,min=2,max=16,interval=0.5,provision=3,up=6,load=0.8,ram=0.7,"
        "idle=2,cooldown=4,step=3,shape=fast,drain=off"
    )
    assert config.enabled
    assert config.min_nodes == 2
    assert config.max_nodes == 16
    assert config.interval_s == 0.5
    assert config.provision_s == 3.0
    assert config.up_queue_per_node == 6.0
    assert config.up_load == 0.8
    assert config.up_ram == 0.7
    assert config.idle_s == 2.0
    assert config.cooldown_s == 4.0
    assert config.step == 3
    assert config.shape == "fast"
    assert not config.drain


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "maybe",
        "on,,max=4",
        "on,max=nope",
        "on,bogus=1",
        "on,shape=warp9",
        "on,drain=perhaps",
        "on,min=3,max=2",  # config validation surfaces as a spec error
    ],
)
def test_bad_specs_raise(bad):
    with pytest.raises(ElasticSpecError):
        parse_elastic_spec(bad)


def test_shape_catalogue():
    assert set(MACHINE_SHAPES) == {"default", "fast", "slow", "highmem"}
    assert machine_shape("fast").num_cpus == 16
    with pytest.raises(ElasticSpecError):
        machine_shape("warp9")


def test_json_round_trip():
    config = parse_elastic_spec("on,min=2,max=6,shape=highmem")
    assert elastic_config_from_json(elastic_config_to_json(config)) == config


def test_describe_mentions_the_bounds_and_shape():
    text = describe_elastic(parse_elastic_spec("on,min=2,max=6,shape=fast"))
    assert "2..6 workers" in text
    assert "fast" in text
    assert "autoscaler ON" in text
    assert "dormant" in describe_elastic(ElasticConfig())


def test_install_pattern():
    assert current_elastic_config() is None
    try:
        installed = install_elastic("on,max=6")
        assert current_elastic_config() is installed
        assert installed.max_nodes == 6
    finally:
        uninstall_elastic()
    assert current_elastic_config() is None


def test_context_manager_restores_previous():
    with elastic_enabled("on,max=4") as outer:
        assert current_elastic_config() is outer
        with elastic_enabled(ElasticConfig(enabled=True, max_nodes=2)) as inner:
            assert current_elastic_config() is inner
        assert current_elastic_config() is outer
    assert current_elastic_config() is None


def test_context_manager_validates_eagerly():
    with pytest.raises(ElasticSpecError):
        with elastic_enabled("on,shape=warp9"):
            raise AssertionError("spec typo must fail before the body runs")
