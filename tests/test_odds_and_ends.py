"""Coverage for small public APIs not exercised elsewhere."""

import pytest

from repro.cluster import build_cluster
from repro.errors import ObjectNotFound, WorkflowError
from repro.rayx import ObjectStore, RayxRuntime
from repro.sim import Environment
from repro.sim.resources import acquire
from repro.workflow.progress import OperatorState, ProgressTracker


def test_acquire_helper_grants_and_returns_request():
    from repro.sim import Resource

    env = Environment()
    cpus = Resource(env, capacity=2)

    def proc():
        request = yield from acquire(cpus, 2)
        assert request.amount == 2
        assert cpus.available == 0
        cpus.release(2)
        return "done"

    assert env.run(until=env.process(proc())) == "done"


def test_object_store_contains_and_nbytes():
    cluster = build_cluster(Environment())
    runtime = RayxRuntime(cluster)
    store = runtime.store

    def proc():
        ref = yield from runtime.put([1, 2, 3])
        assert store.contains(ref)
        assert store.nbytes_of(ref) > 0
        return ref

    cluster.env.run(until=cluster.env.process(proc()))


def test_object_store_nbytes_of_unknown_ref():
    cluster = build_cluster(Environment())
    store = ObjectStore(cluster, cluster.config.object_store)
    from repro.rayx import ObjectRef

    with pytest.raises(ObjectNotFound):
        store.nbytes_of(ObjectRef(cluster.env))


def test_progress_tracker_guards():
    tracker = ProgressTracker()
    tracker.register("op", num_workers=1)
    with pytest.raises(WorkflowError, match="already registered"):
        tracker.register("op", num_workers=1)
    with pytest.raises(WorkflowError, match="not registered"):
        tracker.of("missing")


def test_progress_illegal_transition_rejected():
    tracker = ProgressTracker()
    progress = tracker.register("op", num_workers=1)
    progress.transition(OperatorState.READY)
    progress.transition(OperatorState.COMPLETED)
    with pytest.raises(WorkflowError, match="illegal"):
        progress.transition(OperatorState.RUNNING)


def test_progress_describe_line_format():
    tracker = ProgressTracker()
    tracker.register("scan", num_workers=1)
    tracker.record_input("scan", 5)
    tracker.record_output("scan", 3)
    (line,) = tracker.describe()
    assert line == "scan: running (in=5, out=3)"


def test_operator_progress_multi_worker_completion():
    tracker = ProgressTracker()
    progress = tracker.register("op", num_workers=3)
    progress.transition(OperatorState.READY)
    progress.worker_completed()
    progress.worker_completed()
    assert progress.state is not OperatorState.COMPLETED
    progress.worker_completed()
    assert progress.state is OperatorState.COMPLETED


def test_cluster_and_node_reprs():
    cluster = build_cluster(Environment())
    assert "Cluster" in repr(cluster)
    assert "worker-0" in repr(cluster.workers[0])


def test_tuple_and_table_reprs():
    from repro.relational import FieldType, Schema, Table, Tuple

    schema = Schema.of(x=FieldType.INT)
    row = Tuple(schema, [1])
    assert "x=1" in repr(row)
    assert "1 rows" in repr(Table(schema, [row]))


def test_predicate_combinator_descriptions():
    from repro.relational import all_of, any_of, column_equals, negate

    p = column_equals("x", 1)
    q = column_equals("y", 2)
    assert "and" in all_of([p, q]).describe()
    assert "or" in any_of([p, q]).describe()
    assert negate(p).describe().startswith("not")
    assert all_of([]).describe() == "true"
    assert any_of([]).describe() == "false"


def test_workflow_repr_and_link_repr():
    from repro.relational import FieldType, Schema, Table
    from repro.workflow import Workflow
    from repro.workflow.operators import SinkOperator, TableSource

    wf = Workflow("r")
    src = wf.add_operator(TableSource("s", Table(Schema.of(x=FieldType.INT))))
    sink = wf.add_operator(SinkOperator("k"))
    link = wf.link(src, sink)
    assert "2 operators" in repr(wf)
    assert "s[0] -> k[0]" in repr(link)


def test_actor_repr():
    from repro.rayx import run_script

    class Noop:
        def ping(self, ctx):
            return "pong"

    def driver(rt):
        actor = rt.create_actor(Noop)
        yield from rt.get(actor.call("ping"))
        text = repr(actor)
        actor.kill()
        return text

    text = run_script(build_cluster(Environment()), driver)
    assert "Noop@worker-0" in text
    assert "1 calls" in text
