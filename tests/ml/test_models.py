"""Unit tests for the ML substrate (tokenizer, models, trainer, metrics)."""

import numpy as np
import pytest

from repro.config import default_config
from repro.errors import MLError, NotFittedError
from repro.ml import (
    DataLoader,
    HashingTokenizer,
    SimBartGenerator,
    SimBertClassifier,
    TextDataset,
    Trainer,
    TransEModel,
    accuracy,
    exact_match,
    f1_score,
    multilabel_scores,
    precision,
    recall,
)

MODELS = default_config().models


# -- tokenizer ----------------------------------------------------------------


def test_tokenizer_deterministic():
    tok = HashingTokenizer()
    assert tok.tokenize("Hello, World!") == tok.tokenize("hello world")


def test_tokenizer_vocab_bounds():
    tok = HashingTokenizer(vocab_size=128)
    ids = tok.tokenize("a quick brown fox jumps over lazy dogs")
    assert ids
    assert all(0 <= i < 128 for i in ids)


def test_tokenizer_empty_text():
    assert HashingTokenizer().tokenize("") == []
    assert HashingTokenizer().num_tokens("...") == 0


def test_tokenizer_rejects_tiny_vocab():
    with pytest.raises(ValueError):
        HashingTokenizer(vocab_size=1)


# -- data loader -----------------------------------------------------------------


def test_dataloader_batches():
    loader = DataLoader(TextDataset(list(range(10))), batch_size=4)
    batches = list(loader)
    assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    assert len(loader) == 3


def test_dataloader_rejects_zero_batch():
    with pytest.raises(ValueError):
        DataLoader(TextDataset([1]), batch_size=0)


# -- SimBERT ------------------------------------------------------------------------


def separable_examples(n=60):
    positive = [(f"wildfire climate warming blaze {i}", 1) for i in range(n // 2)]
    negative = [(f"recipe concert puppy vacation {i}", 0) for i in range(n // 2)]
    return positive + negative


def test_bert_unfitted_predict_raises():
    model = SimBertClassifier("m", MODELS)
    with pytest.raises(NotFittedError):
        model.predict_proba("text")


def test_bert_learns_separable_data():
    model = SimBertClassifier("m", MODELS)
    examples = separable_examples()
    losses = model.fit(examples, epochs=5)
    assert losses[-1] < losses[0]
    predictions = [model.predict(text) for text, _ in examples]
    truth = [label for _, label in examples]
    assert accuracy(truth, predictions) > 0.9


def test_bert_cost_reporting():
    model = SimBertClassifier("m", MODELS)
    assert model.payload_bytes() == MODELS.bert_bytes
    short = model.forward_flops("one two")
    long = model.forward_flops(" ".join(["word"] * 50))
    assert long > short
    assert model.train_step_flops("one two") == pytest.approx(
        short * (1 + MODELS.bert_train_backward_multiplier)
    )


def test_bert_empty_epoch_rejected():
    with pytest.raises(ValueError):
        SimBertClassifier("m", MODELS).train_epoch([])


def test_bert_encode_empty_text_is_zero_vector():
    model = SimBertClassifier("m", MODELS)
    assert np.allclose(model.encode("..."), 0.0)


# -- Trainer --------------------------------------------------------------------------


def test_trainer_tracks_loss_and_flops():
    model = SimBertClassifier("m", MODELS)
    run = Trainer(epochs=3).fit(model, separable_examples(20))
    assert run.epochs == 3
    assert run.converged
    assert run.total_flops > 0


def test_trainer_validation():
    with pytest.raises(ValueError):
        Trainer(epochs=0)
    with pytest.raises(ValueError):
        Trainer(learning_rate=0)
    with pytest.raises(MLError):
        Trainer().fit(SimBertClassifier("m", MODELS), [])


# -- SimBART ------------------------------------------------------------------------------


def test_bart_extracts_answer():
    model = SimBartGenerator("bart", MODELS)
    context = (
        "The capital of Freedonia is Zembla. "
        "The river Osmo flows into lake Vantar."
    )
    assert model.generate("What is the capital of Freedonia?", context) == "zembla"
    assert (
        model.generate("Which lake does the river Osmo flow into?", context)
        == "vantar"
    )


def test_bart_cloze_filling():
    from repro.ml import MASK_TOKEN

    model = SimBartGenerator("bart", MODELS)
    context = "The founder of Kelvar was Dorim."
    cloze = f"The founder of Kelvar was {MASK_TOKEN}."
    assert model.generate(cloze, context) == "dorim"


def test_bart_no_match_returns_empty():
    model = SimBartGenerator("bart", MODELS)
    assert model.generate("What is x?", "") == ""


def test_bart_cost_reporting():
    model = SimBartGenerator("bart", MODELS)
    assert model.payload_bytes() == MODELS.bart_bytes
    assert model.generation_flops("q", "c" * 10) > 0


def test_bart_batch_generate():
    model = SimBartGenerator("bart", MODELS)
    context = "The capital of Freedonia is Zembla."
    answers = model.batch_generate(
        [("What is the capital of Freedonia?", context)] * 3
    )
    assert answers == ["zembla"] * 3


# -- TransE -----------------------------------------------------------------------------------


def make_kge():
    return TransEModel(
        [f"P{i}" for i in range(50)] + ["U0"], ["buys"], MODELS, seed=3
    )


def test_kge_embedding_lookup_and_table():
    model = make_kge()
    table = dict(model.embedding_table())
    assert set(table) == {f"P{i}" for i in range(50)} | {"U0"}
    assert np.allclose(table["P7"], model.embedding_of("P7"))


def test_kge_unknown_entity_and_relation():
    model = make_kge()
    with pytest.raises(MLError):
        model.embedding_of("nope")
    with pytest.raises(MLError):
        model.score("U0", "nope", np.zeros(32))


def test_kge_rank_orders_by_score():
    model = make_kge()
    candidates = [(f"P{i}", model.embedding_of(f"P{i}")) for i in range(50)]
    ranked = model.rank("U0", "buys", candidates, top_k=10)
    assert len(ranked) == 10
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)
    # The best tail minimizes ||u + r - t||: verify directly.
    best_id, best_score = ranked[0]
    direct = {
        pid: model.score("U0", "buys", emb) for pid, emb in candidates
    }
    assert best_score == pytest.approx(max(direct.values()))
    assert direct[best_id] == pytest.approx(best_score)


def test_kge_reverse_lookup_roundtrip():
    model = make_kge()
    assert model.reverse_lookup(model.embedding_of("P13")) == "P13"


def test_kge_validation():
    with pytest.raises(MLError):
        TransEModel([], ["r"], MODELS)
    with pytest.raises(MLError):
        TransEModel(["a", "a"], ["r"], MODELS)


def test_kge_cost_reporting():
    model = make_kge()
    assert model.payload_bytes() == MODELS.kge_bytes
    assert model.score_flops() == MODELS.kge_flops_per_score


# -- metrics --------------------------------------------------------------------------------------


def test_basic_metrics():
    truth = [1, 1, 0, 0]
    pred = [1, 0, 1, 0]
    assert accuracy(truth, pred) == 0.5
    assert precision(truth, pred) == 0.5
    assert recall(truth, pred) == 0.5
    assert f1_score(truth, pred) == 0.5


def test_metrics_degenerate_cases():
    assert precision([0, 0], [0, 0]) == 0.0
    assert recall([0, 0], [1, 1]) == 0.0
    assert f1_score([0], [0]) == 0.0


def test_metrics_length_checks():
    with pytest.raises(ValueError):
        accuracy([1], [1, 0])
    with pytest.raises(ValueError):
        accuracy([], [])


def test_exact_match_normalizes():
    assert exact_match(["Zembla "], ["zembla"]) == 1.0
    assert exact_match(["a", "b"], ["a", "x"]) == 0.5


def test_multilabel_scores_shape():
    truth = [[1, 0], [0, 1], [1, 1]]
    pred = [[1, 0], [0, 0], [1, 1]]
    scores = multilabel_scores(truth, pred)
    assert len(scores["accuracy"]) == 2
    assert scores["accuracy"][0] == 1.0
    with pytest.raises(ValueError):
        multilabel_scores([[1, 0]], [[1]])
