"""Regression tests for object-store behaviour under memory pressure.

Pins three fixed bugs plus the live-bytes telemetry and the spilling
integration:

* an interrupted ``put`` (fault kill between the RAM reservation and
  the copy finishing) used to leak the reservation for the run;
* an in-flight ``_fetch_replica`` whose object was overwritten mid-
  transfer used to add its replica to the *old* entry, double-charging
  node RAM forever;
* ``restore`` of an object missing from the store raised a bare
  ``KeyError`` instead of :class:`ObjectNotFound`.
"""

from dataclasses import replace

import pytest

from repro.cluster import build_cluster, estimate_bytes
from repro.config import MemoryConfig, default_config
from repro.errors import InjectedFault, ObjectNotFound
from repro.rayx import ObjectRef, RayxRuntime
from repro.sim import Environment


def make_runtime(config=None):
    cluster = build_cluster(Environment(), config)
    return cluster, RayxRuntime(cluster)


# -- interrupted put releases its reservation (leak fix) ----------------------


def test_interrupted_put_releases_ram():
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    node = cluster.node("worker-0")
    ref = ObjectRef(env, label="doomed")
    gen = store.put(ref, list(range(5_000)), "worker-0")
    # Step the process manually: the first yield is the copy timeout,
    # reached only after the RAM was reserved.
    next(gen)
    nbytes = estimate_bytes(list(range(5_000)))
    assert node.ram_used == nbytes
    # A fault kill interrupts the copy mid-flight.
    with pytest.raises(InjectedFault):
        gen.throw(InjectedFault("killed mid-copy"))
    assert node.ram_used == 0, "interrupted put leaked its RAM reservation"
    assert not store.contains(ref)
    assert store.bytes_live == 0


def test_interrupted_put_close_also_releases():
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    node = cluster.node("worker-0")
    ref = ObjectRef(env, label="doomed")
    gen = store.put(ref, list(range(5_000)), "worker-0")
    next(gen)
    assert node.ram_used > 0
    gen.close()  # GeneratorExit is a BaseException, not an Exception
    assert node.ram_used == 0


# -- overwrite during in-flight fetch (stale-entry fix) -----------------------


def _overwrite_mid_transfer_scenario():
    """Re-``put`` an object while a cross-node fetch of it is on the wire."""
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    # The original must be big enough that its cross-node transfer
    # (~1.8ms) outlasts the replacement's put (~1.2ms) started 1us in.
    payload = list(range(200_000))
    replacement_payload = list(range(1_000))
    out = {}

    def scenario():
        ref = yield from runtime.put(payload, label="state")
        out["ref"] = ref
        getter = env.process(store.get(ref, "worker-1"))

        def overwriter():
            # Land inside the transfer window: the fetch is already in
            # flight when the new copy replaces the entry.
            yield env.timeout(1e-6)
            replacement = ObjectRef(env, label="state")
            replacement.ref_id = ref.ref_id
            yield from store.put(replacement, replacement_payload, "worker-2")

        writer = env.process(overwriter())
        value = yield getter
        yield writer
        out["value"] = value

    env.run(until=env.process(scenario()))
    return cluster, store, out


def test_overwrite_mid_transfer_discards_stale_replica():
    cluster, store, out = _overwrite_mid_transfer_scenario()
    assert store.stale_fetches == 1
    nbytes = store.nbytes_of(out["ref"])
    # worker-1 holds exactly one live replica's worth of RAM — the
    # stale transfer's copy was discarded, not charged to the old entry.
    assert cluster.node("worker-1").ram_used == nbytes
    assert store.replicas_of(out["ref"]) >= {"worker-1", "worker-2"}


def test_overwrite_mid_transfer_serves_the_new_value():
    _, _, out = _overwrite_mid_transfer_scenario()
    # The getter re-resolves after the stale fetch and dereferences the
    # replacement object, never the overwritten one.
    assert out["value"] == list(range(1_000))


def test_overwrite_mid_transfer_keeps_bytes_live_consistent():
    cluster, store, out = _overwrite_mid_transfer_scenario()
    replicas = store.replicas_of(out["ref"])
    assert store.bytes_live == len(replicas) * store.nbytes_of(out["ref"])


# -- restore of a missing object (error-type fix) -----------------------------


def test_restore_missing_object_raises_object_not_found():
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    ref = ObjectRef(env, label="ghost")
    gen = store.restore(ref, [1, 2, 3], "worker-0")
    with pytest.raises(ObjectNotFound, match="ghost"):
        next(gen)


# -- bytes_live telemetry -----------------------------------------------------


def test_bytes_live_tracks_replicas_not_history():
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env

    def scenario():
        ref = yield from runtime.put(list(range(5_000)), label="a")
        nbytes = store.nbytes_of(ref)
        assert store.bytes_live == nbytes
        yield from store.get(ref, "worker-1")  # second replica
        assert store.bytes_live == 2 * nbytes
        store.drop_replica("a")  # eviction decrements
        assert store.bytes_live == nbytes
        replacement = ObjectRef(env, label="a")
        replacement.ref_id = ref.ref_id
        yield from store.put(replacement, list(range(20_000)), "worker-2")
        # Overwrite released the old copy; only the new one is live.
        assert store.bytes_live == store.nbytes_of(replacement)
        # bytes_stored stays monotonic (throughput, not residency).
        assert store.bytes_stored == nbytes + store.nbytes_of(replacement)
        return True

    assert env.run(until=env.process(scenario()))


# -- spilling integration (repro.mem enabled) ---------------------------------


def _tiny_ram_config(ram_bytes):
    return replace(
        default_config(),
        memory=MemoryConfig(enabled=True, node_ram_bytes=ram_bytes),
    )


def test_put_under_pressure_spills_lru_and_get_restores():
    payload_a = list(range(30_000))
    payload_b = list(range(30_000, 60_000))
    nbytes = estimate_bytes(payload_a)
    # Room for ~1.5 objects: the second put must spill the first.
    cluster, runtime = make_runtime(_tiny_ram_config(int(nbytes * 1.5)))
    store = runtime.store
    env = cluster.env
    memory = cluster.memory

    def scenario():
        ref_a = yield from runtime.put(payload_a, label="cold")
        ref_b = yield from runtime.put(payload_b, label="hot")
        assert memory.spill_count == 1
        assert memory.is_spilled("controller", ref_a.ref_id)
        before = env.now
        value = yield from store.get(ref_a, "controller")
        assert value == payload_a
        # The restore paid real virtual disk time on top of mapping.
        assert env.now - before > cluster.config.object_store.get_time(nbytes)
        assert memory.restore_count == 1
        assert not memory.is_spilled("controller", ref_a.ref_id)
        # Restoring A pushed B out (LRU), RAM stays under the ceiling.
        assert cluster.node("controller").ram_used <= int(nbytes * 1.5)
        yield ref_b.ready
        return True

    assert env.run(until=env.process(scenario()))
    assert memory.spill_bytes >= nbytes
    assert memory.spill_seconds > 0


def test_spilled_replica_eviction_forgets_the_spill():
    payload = list(range(30_000))
    nbytes = estimate_bytes(payload)
    cluster, runtime = make_runtime(_tiny_ram_config(int(nbytes * 1.5)))
    store = runtime.store
    env = cluster.env
    memory = cluster.memory

    def scenario():
        ref_a = yield from runtime.put(payload, label="cold")
        yield from runtime.put(list(range(30_000, 60_000)), label="hot")
        assert memory.is_spilled("controller", ref_a.ref_id)
        # free_all (runtime shutdown) must clear spilled entries too.
        store.free_all()
        assert not memory.is_spilled("controller", ref_a.ref_id)
        assert memory.resident_keys("controller") == []
        return True

    assert env.run(until=env.process(scenario()))


# -- free_all during an in-flight fetch (bare-KeyError fix) -------------------


def test_free_all_mid_fetch_raises_objectnotfound_not_keyerror():
    """Freeing the store while a cross-node fetch is on the wire.

    The runtime tears the store down (``free_all``) whenever a driver
    finishes; a getter whose transfer was still in flight then resumed
    into ``del self._inflight[key]`` on a cleared dict and died with a
    bare ``KeyError`` instead of the documented
    :class:`ObjectNotFound`.  Callers matching on ObjectNotFound (the
    lineage-reconstruction path among them) never saw the real story.
    """
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    out = {}

    def scenario():
        # Big enough that the cross-node transfer outlasts the freer.
        ref = yield from runtime.put(list(range(200_000)), label="state")
        getter = env.process(store.get(ref, "worker-1"))

        def freer():
            yield env.timeout(1e-6)  # land inside the transfer window
            store.free_all()

        env.process(freer())
        try:
            yield getter
        except ObjectNotFound:
            out["raised"] = "object-not-found"
        except KeyError:  # pragma: no cover - the regression
            out["raised"] = "bare-keyerror"
        return True

    assert env.run(until=env.process(scenario()))
    assert out["raised"] == "object-not-found"
    assert store.bytes_live == 0


def test_free_all_mid_rebuild_raises_objectnotfound_not_keyerror():
    """Same race through the lineage-rebuild path (`_rebuild`)."""
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    out = {}

    def scenario():
        def producer(context):
            yield from context.compute(0.01)
            return list(range(50_000))

        ref = runtime.submit(producer, label="built")
        yield ref.ready
        # Lineage is only auto-recorded under fault injection; record
        # it by hand so the bare get() below takes the rebuild path.
        store.lineage[ref.ref_id] = (producer, ())
        # Drop every replica so the next get must rebuild from lineage.
        stored = store._objects[ref.ref_id]
        for node_name in list(stored.replicas):
            store._evict(ref.ref_id, stored, node_name)
        getter = env.process(store.get(ref, "worker-1"))

        def freer():
            yield env.timeout(1e-6)  # land inside the rebuild window
            store.free_all()

        env.process(freer())
        try:
            yield getter
        except ObjectNotFound:
            out["raised"] = "object-not-found"
        except KeyError:  # pragma: no cover - the regression
            out["raised"] = "bare-keyerror"
        return True

    assert env.run(until=env.process(scenario()))
    assert out["raised"] == "object-not-found"
