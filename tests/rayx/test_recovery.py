"""Script-runtime recovery under deterministic fault injection.

Ray-style fault tolerance at simulation scale: transient task faults
are retried with exponential backoff, node outages kill and re-run
in-flight work, lost replicas fail over to survivors, and objects with
no surviving replica are rebuilt from lineage.  Real exceptions (bugs)
are never retried.
"""

import pytest

from repro.cluster import build_cluster
from repro.config import default_config
from repro.errors import InjectedFault
from repro.faults import FaultEvent, FaultSchedule, faults_injected
from repro.rayx import run_script
from repro.sim import Environment

MAX_RETRIES = default_config().rayx.max_task_retries
BACKOFF = default_config().rayx.retry_backoff_base_s


def fresh_cluster():
    return build_cluster(Environment())


def schedule_of(*events, seed=None):
    return FaultSchedule(events=tuple(events), seed=seed)


#: A schedule whose only event can never fire — keeps the injector
#: active (lineage recording on) without perturbing the run.
ARMED_BUT_QUIET = schedule_of(FaultEvent(1e9, "task", target="no-such-task"))


def compute_task(ctx, x):
    yield from ctx.compute(1.0)
    return x * x


def squares_driver(rt):
    refs = [rt.submit(compute_task, i) for i in range(4)]
    values = yield from rt.get_all(refs)
    return values


def test_injected_task_fault_is_retried_to_success():
    cluster = fresh_cluster()
    clean_values = run_script(cluster, squares_driver, num_cpus=4)
    clean_elapsed = cluster.env.now

    schedule = schedule_of(FaultEvent(0.01, "task", target="compute_task"))
    with faults_injected(schedule) as injector:
        cluster = fresh_cluster()
        values = run_script(cluster, squares_driver, num_cpus=4)
    assert values == clean_values
    assert injector.injected == 1
    assert injector.retries == 1
    assert cluster.env.now > clean_elapsed  # backoff + re-execution charged


def test_task_fault_delay_charges_progress_before_crashing():
    schedule = schedule_of(
        FaultEvent(0.01, "task", target="compute_task", delay_s=0.75)
    )
    with faults_injected(schedule) as injector:
        cluster = fresh_cluster()
        run_script(cluster, squares_driver, num_cpus=4)
    no_delay = schedule_of(FaultEvent(0.01, "task", target="compute_task"))
    with faults_injected(no_delay):
        other = fresh_cluster()
        run_script(other, squares_driver, num_cpus=4)
    assert injector.injected == 1
    assert cluster.env.now > other.env.now


def test_real_exceptions_are_not_retried():
    def buggy(ctx):
        yield from ctx.compute(0.1)
        raise ValueError("genuine bug")

    def driver(rt):
        value = yield from rt.get(rt.submit(buggy))
        return value

    with faults_injected(ARMED_BUT_QUIET) as injector:
        with pytest.raises(ValueError, match="genuine bug"):
            run_script(fresh_cluster(), driver)
    assert injector.retries == 0


def test_retries_exhausted_propagates_injected_fault():
    events = tuple(
        FaultEvent(0.01, "task", target="doomed") for _ in range(MAX_RETRIES + 1)
    )
    schedule = schedule_of(*events)

    def doomed(ctx):
        yield from ctx.compute(0.1)
        return "unreachable"

    def driver(rt):
        value = yield from rt.get(rt.submit(doomed, label="doomed"))
        return value

    with faults_injected(schedule) as injector:
        with pytest.raises(InjectedFault):
            run_script(fresh_cluster(), driver)
    assert injector.injected == MAX_RETRIES + 1
    assert injector.retries == MAX_RETRIES


def test_node_outage_mid_compute_is_retried():
    def long_task(ctx):
        yield from ctx.compute(5.0)
        return ctx.node_name

    def driver(rt):
        value = yield from rt.get(rt.submit(long_task))
        return value

    # Dispatch happens after the ~2 s runtime startup; the outage at
    # t=4 lands mid-compute, so the crash is detected at the compute
    # boundary and the task re-runs once the window has closed.
    schedule = schedule_of(FaultEvent(4.0, "node", target="worker-0", duration_s=1.0))
    with faults_injected(schedule) as injector:
        cluster = fresh_cluster()
        node_name = run_script(cluster, driver)
    assert node_name == "worker-0"  # re-ran after the window closed
    assert injector.injected == 1  # the outage itself
    assert injector.retries == 1
    assert cluster.env.now > 2.0 + 5.0 + 5.0  # both executions charged


def test_replica_failover_reads_from_survivor():
    def driver(rt):
        ref = yield from rt.put([1, 2, 3], label="shared")
        store = rt.store
        # Materialize a second replica, then lose the owner's copy.
        first = yield from store.get(ref, "worker-0")
        owner = ref.owner_node
        assert store.replicas_of(ref) == {owner, "worker-0"}
        store.evict_node(owner)
        assert store.replicas_of(ref) == {"worker-0"}
        # A third node must fetch from the surviving replica.
        second = yield from store.get(ref, "worker-1")
        assert second == first == [1, 2, 3]
        assert store.replicas_of(ref) == {"worker-0", "worker-1"}
        return store.replicas_lost

    assert run_script(fresh_cluster(), driver) == 1


def test_lineage_reconstruction_rebuilds_lost_object():
    def make_payload(ctx):
        yield from ctx.compute(0.5)
        return {"rows": list(range(8))}

    def driver(rt):
        ref = rt.submit(make_payload, label="payload")
        first = yield from rt.get(ref)
        store = rt.store
        before = rt.env.now
        for node_name in sorted(store.replicas_of(ref)):
            store.evict_node(node_name)
        assert store.replicas_of(ref) == set()  # all copies gone
        second = yield from rt.get(ref)
        assert second == first == {"rows": list(range(8))}
        assert store.reconstructions == 1
        assert rt.env.now > before  # re-execution + re-store charged
        return True

    with faults_injected(ARMED_BUT_QUIET):
        assert run_script(fresh_cluster(), driver)


def test_reconstruction_requires_lineage():
    from repro.errors import ReconstructionError

    def driver(rt):
        # Faults are inactive here, so no lineage is recorded and
        # evict_node refuses to drop the last copy of the result.
        ref = rt.submit(compute_task, 3)
        yield from rt.get(ref)
        store = rt.store
        replicas = set(store.replicas_of(ref))
        for node_name in sorted(replicas):
            store.evict_node(node_name)
        assert store.replicas_of(ref)  # the final copy survived
        value = yield from rt.get(ref)
        return value

    assert run_script(fresh_cluster(), driver) == 9
    assert ReconstructionError is not None  # imported for documentation


def test_link_degradation_slows_transfers():
    def driver(rt):
        ref = yield from rt.put(list(range(50_000)), label="bulk")
        yield from rt.store.get(ref, "worker-0")  # one cross-node transfer
        return rt.env.now

    clean = run_script(fresh_cluster(), driver)
    schedule = schedule_of(
        FaultEvent(0.0, "link", duration_s=1e6, factor=8.0)
    )
    with faults_injected(schedule):
        degraded = run_script(fresh_cluster(), driver)
    assert degraded > clean


def test_fixed_seed_recovery_timeline_is_reproducible():
    schedule = FaultSchedule.generate(
        seed=5, horizon_s=3.0, tasks=2, links=1, task_target="compute_task"
    )

    def one_run():
        with faults_injected(schedule) as injector:
            cluster = fresh_cluster()
            values = run_script(cluster, squares_driver, num_cpus=2)
        return (
            cluster.env.now,
            values,
            injector.injected,
            injector.retries,
            injector.skipped,
        )

    assert one_run() == one_run()
