"""Unit tests for the script runtime's actors."""

import pytest

from repro.cluster import build_cluster
from repro.errors import RayxError
from repro.rayx import run_script
from repro.sim import Environment


def fresh_cluster():
    return build_cluster(Environment())


class Counter:
    def __init__(self, start=0):
        self.total = start

    def add(self, ctx, amount):
        yield from ctx.compute(0.5)
        self.total += amount
        return self.total

    def snapshot(self, ctx):
        return self.total

    def explode(self, ctx):
        raise RuntimeError("actor method failed")


def test_actor_keeps_state_across_calls():
    def driver(rt):
        counter = rt.create_actor(Counter, 100)
        refs = [counter.call("add", i) for i in range(1, 4)]
        values = yield from rt.get_all(refs)
        counter.kill()
        return values

    assert run_script(fresh_cluster(), driver) == [101, 103, 106]


def test_actor_calls_execute_serially():
    """Three 0.5s calls take >= 1.5s even with spare CPUs."""

    def driver(rt):
        counter = rt.create_actor(Counter)
        start = rt.env.now
        refs = [counter.call("add", 1) for _ in range(3)]
        yield from rt.get_all(refs)
        return rt.env.now - start

    elapsed = run_script(fresh_cluster(), driver, num_cpus=4)
    assert elapsed >= 1.5


def test_plain_methods_supported():
    def driver(rt):
        counter = rt.create_actor(Counter, 7)
        value = yield from rt.get(counter.call("snapshot"))
        return value

    assert run_script(fresh_cluster(), driver) == 7


def test_actor_method_error_propagates_to_caller():
    def driver(rt):
        counter = rt.create_actor(Counter)
        try:
            yield from rt.get(counter.call("explode"))
        except RuntimeError as exc:
            return str(exc)

    assert run_script(fresh_cluster(), driver) == "actor method failed"


def test_error_does_not_kill_the_actor():
    def driver(rt):
        counter = rt.create_actor(Counter)
        try:
            yield from rt.get(counter.call("explode"))
        except RuntimeError:
            pass
        value = yield from rt.get(counter.call("add", 5))
        return value

    assert run_script(fresh_cluster(), driver) == 5


def test_unknown_method_rejected_eagerly():
    def driver(rt):
        counter = rt.create_actor(Counter)
        with pytest.raises(RayxError, match="no method"):
            counter.call("nope")
        yield rt.env.timeout(0)
        return True

    assert run_script(fresh_cluster(), driver)


def test_killed_actor_rejects_new_calls():
    def driver(rt):
        counter = rt.create_actor(Counter)
        ref = counter.call("add", 1)
        counter.kill()
        value = yield from rt.get(ref)  # queued call still completes
        with pytest.raises(RayxError, match="killed"):
            counter.call("add", 2)
        return value

    assert run_script(fresh_cluster(), driver) == 1


def test_constructor_failure_raises():
    class Broken:
        def __init__(self):
            raise ValueError("bad init")

    def driver(rt):
        with pytest.raises(RayxError, match="failed to construct"):
            rt.create_actor(Broken)
        yield rt.env.timeout(0)
        return True

    assert run_script(fresh_cluster(), driver)


def test_object_ref_arguments_resolved():
    import numpy as np

    class Scorer:
        def __init__(self):
            self.model = None

        def load(self, ctx, model):
            self.model = model
            return True

        def score(self, ctx, x):
            return float(self.model[x])

    def driver(rt):
        model_ref = yield from rt.put(np.arange(10.0))
        scorer = rt.create_actor(Scorer)
        yield from rt.get(scorer.call("load", model_ref))
        value = yield from rt.get(scorer.call("score", 3))
        return value

    assert run_script(fresh_cluster(), driver) == 3.0


def test_actors_place_round_robin():
    def driver(rt):
        actors = [rt.create_actor(Counter) for _ in range(4)]
        yield rt.env.timeout(0)
        return sorted(actor.node.name for actor in actors)

    names = run_script(fresh_cluster(), driver)
    assert names == ["worker-0", "worker-1", "worker-2", "worker-3"]
