"""Dual-paradigm compilation: one spec, two runtimes, one answer.

``compile_script_plan`` turns a workflow spec into a Ray-like task
graph — one task per (operator, worker), partitioning done inside the
consuming task.  The rows collected at the sinks must equal the
pipelined engine's rows as multisets for *any* spec; the virtual
timings legitimately differ (that difference is the paper's subject).
"""

import pytest

from repro.cluster import build_cluster
from repro.errors import InvalidWorkflow, WorkflowSpecError
from repro.rayx import ScriptPlan, compile_script_plan
from repro.relational import FieldType, Schema, Table
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import (
    FilterOperator,
    HashJoinOperator,
    SinkOperator,
    TableSource,
)
from repro.workflow.optimize import optimize_workflow
from repro.workflow.spec import WorkflowSpec, build_workflow
from repro.relational import column_greater

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def spec_doc():
    return {
        "spec": "repro/workflow-spec@1",
        "name": "compile-demo",
        "operators": [
            {
                "id": "scan",
                "type": "table_source",
                "config": {"table": {"$param": "rows"}, "num_workers": 2},
            },
            {
                "id": "keep",
                "type": "filter",
                "config": {
                    "predicate": {
                        "$predicate": {"op": "greater", "column": "score", "value": 0.5}
                    },
                    "num_workers": 2,
                },
            },
            {"id": "view", "type": "sink", "config": {}},
        ],
        "links": [
            {"from": "scan", "to": "keep"},
            {"from": "keep", "to": "view"},
        ],
    }


def bindings(rows=120):
    return {"rows": Table.from_rows(SCHEMA, [[i, i / 40] for i in range(rows)])}


def rows_of(table):
    return sorted(tuple(map(str, row.values)) for row in table)


def test_plan_lists_one_task_per_operator_worker():
    plan = compile_script_plan(WorkflowSpec.from_json(spec_doc()), bindings())
    assert isinstance(plan, ScriptPlan)
    labels = [task.label for task in plan.tasks]
    assert labels == ["scan#0", "scan#1", "keep#0", "keep#1", "view#0"]
    keep0 = next(t for t in plan.tasks if t.label == "keep#0")
    assert keep0.upstream == ("scan#0", "scan#1")
    view = next(t for t in plan.tasks if t.label == "view#0")
    assert view.upstream == ("keep#0", "keep#1")


def test_script_rows_match_engine_rows():
    spec = WorkflowSpec.from_json(spec_doc())
    engine = run_workflow(
        build_cluster(Environment()), build_workflow(spec, bindings())
    )
    script_cluster = build_cluster(Environment())
    tables = compile_script_plan(spec, bindings()).run(cluster=script_cluster)
    assert rows_of(tables["view"]) == rows_of(engine.table())
    assert script_cluster.env.now > 0


def test_hash_partitioned_join_matches_engine():
    left = Table.from_rows(SCHEMA, [[i, i / 10] for i in range(60)])
    right_schema = Schema.of(id=FieldType.INT, label=FieldType.STRING)
    right = Table.from_rows(right_schema, [[i, f"L{i}"] for i in range(0, 60, 2)])

    def make():
        wf = Workflow("join-demo")
        build = wf.add_operator(TableSource("build", right))
        probe = wf.add_operator(TableSource("probe", left, num_workers=2))
        join = wf.add_operator(
            HashJoinOperator("join", build_key="id", probe_key="id", num_workers=2)
        )
        sink = wf.add_operator(SinkOperator("out"))
        wf.link(build, join, input_port=0)
        wf.link(probe, join, input_port=1)
        wf.link(join, sink)
        return wf

    engine = run_workflow(build_cluster(Environment()), make())
    tables = compile_script_plan(make()).run()
    assert rows_of(tables["out"]) == rows_of(engine.table())
    assert len(rows_of(tables["out"])) == 30


def test_optimized_workflow_compiles_to_fewer_tasks():
    wf = Workflow("chain")
    src = wf.add_operator(TableSource("scan", bindings()["rows"]))
    a = wf.add_operator(FilterOperator("a", column_greater("score", 0.2)))
    b = wf.add_operator(FilterOperator("b", column_greater("score", 0.5)))
    sink = wf.add_operator(SinkOperator("view"))
    wf.link(src, a)
    wf.link(a, b)
    wf.link(b, sink)
    plain = compile_script_plan(wf)

    wf2 = Workflow("chain")
    src = wf2.add_operator(TableSource("scan", bindings()["rows"]))
    a = wf2.add_operator(FilterOperator("a", column_greater("score", 0.2)))
    b = wf2.add_operator(FilterOperator("b", column_greater("score", 0.5)))
    sink = wf2.add_operator(SinkOperator("view"))
    wf2.link(src, a)
    wf2.link(a, b)
    wf2.link(b, sink)
    fused = compile_script_plan(optimize_workflow(wf2))

    assert fused.num_tasks < plain.num_tasks
    assert rows_of(plain.run()["view"]) == rows_of(fused.run()["view"])


def test_compile_validates_like_the_gui():
    doc = spec_doc()
    doc["links"] = doc["links"][:1]  # sink left unconnected
    with pytest.raises(InvalidWorkflow, match="unconnected"):
        compile_script_plan(WorkflowSpec.from_json(doc), bindings())
    with pytest.raises(WorkflowSpecError, match="unbound \\$param"):
        compile_script_plan(WorkflowSpec.from_json(spec_doc()), {})
