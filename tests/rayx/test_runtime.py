"""Unit tests for the Ray-like script runtime."""

import pytest

from repro.cluster import build_cluster
from repro.config import default_config
from repro.errors import RayxError
from repro.rayx import RayxRuntime, run_script
from repro.sim import Environment

STARTUP = default_config().rayx.startup_s
DISPATCH = default_config().rayx.task_dispatch_s


def fresh_cluster():
    return build_cluster(Environment())


def test_driver_runs_and_returns_value():
    def driver(rt):
        ref = yield from rt.put(123)
        value = yield from rt.get(ref)
        return value

    cluster = fresh_cluster()
    assert run_script(cluster, driver) == 123
    assert cluster.env.now > STARTUP  # startup + store costs charged


def test_driver_must_be_generator():
    def bad_driver(rt):
        return 1

    with pytest.raises(RayxError):
        run_script(fresh_cluster(), bad_driver)


def test_remote_task_executes_function():
    def square(ctx, x):
        yield from ctx.compute(0.5)
        return x * x

    def driver(rt):
        refs = [rt.submit(square, i) for i in range(4)]
        values = yield from rt.get_all(refs)
        return values

    assert run_script(fresh_cluster(), driver) == [0, 1, 4, 9]


def test_plain_function_tasks_supported():
    def add(ctx, a, b):
        return a + b

    def driver(rt):
        value = yield from rt.get(rt.submit(add, 2, 3))
        return value

    assert run_script(fresh_cluster(), driver) == 5


def test_num_cpus_limits_parallelism():
    def work(ctx):
        yield from ctx.compute(10.0)
        return ctx.node_name

    def driver(rt):
        refs = [rt.submit(work) for _ in range(4)]
        yield from rt.get_all(refs)
        return rt.env.now

    serial = run_script(fresh_cluster(), driver, num_cpus=1)
    parallel = run_script(fresh_cluster(), driver, num_cpus=4)
    # 4 tasks x 10s: serial ~40s of compute, parallel ~10s.
    assert serial > 40
    assert parallel < 15
    assert serial > 3 * (parallel - STARTUP)


def test_invalid_num_cpus_rejected():
    cluster = fresh_cluster()
    with pytest.raises(ValueError):
        RayxRuntime(cluster, num_cpus=0)


def test_object_ref_args_are_dereferenced():
    def consume(ctx, payload):
        return payload["x"]

    def driver(rt):
        ref = yield from rt.put({"x": 42})
        value = yield from rt.get(rt.submit(consume, ref))
        return value

    assert run_script(fresh_cluster(), driver) == 42


def test_task_exception_reraised_at_get():
    def bad(ctx):
        yield ctx.runtime.env.timeout(0.1)
        raise ValueError("task blew up")

    def driver(rt):
        ref = rt.submit(bad)
        try:
            yield from rt.get(ref)
        except ValueError as exc:
            return str(exc)

    assert run_script(fresh_cluster(), driver) == "task blew up"


def test_large_object_costs_more_than_small():
    import numpy as np

    def driver_factory(nbytes):
        def driver(rt):
            ref = yield from rt.put(np.zeros(nbytes // 8))
            yield from rt.get(ref)
            return rt.env.now

        return driver

    small = run_script(fresh_cluster(), driver_factory(10**6))
    big = run_script(fresh_cluster(), driver_factory(10**9))
    assert big > small + 0.5


def test_replica_caching_pays_transfer_once():
    """Two gets from the same node: second is cheaper (no transfer)."""
    import numpy as np

    def reader(ctx, refs):
        # Nested refs are not auto-dereferenced (Ray semantics): wrap in
        # a list to receive the ref itself.
        ref = refs[0]
        start = ctx.runtime.env.now
        yield from ctx.get(ref)
        first = ctx.runtime.env.now - start
        start = ctx.runtime.env.now
        yield from ctx.get(ref)
        second = ctx.runtime.env.now - start
        return first, second

    def driver(rt):
        ref = yield from rt.put(np.zeros(10**7))
        first, second = yield from rt.get(rt.submit(reader, [ref]))
        return first, second

    first, second = run_script(fresh_cluster(), driver)
    assert second < first


def test_model_compute_pinned_to_one_core():
    """Ray pins torch to 1 CPU: 8 GFLOP takes 4 s at 2 GFLOP/s/core."""
    machine = default_config().topology.machine

    def infer(ctx):
        yield from ctx.model_compute(8e9)
        return ctx.runtime.env.now

    def driver(rt):
        start = rt.env.now
        yield from rt.get(rt.submit(infer))
        return rt.env.now - start

    elapsed = run_script(fresh_cluster(), driver)
    pinned = 8e9 / machine.flops_per_core_per_s
    assert elapsed >= pinned
    assert elapsed < pinned * 1.5


def test_round_robin_placement_across_workers():
    def where(ctx):
        return ctx.node_name

    def driver(rt):
        refs = [rt.submit(where) for _ in range(4)]
        names = yield from rt.get_all(refs)
        return names

    names = run_script(fresh_cluster(), driver, num_cpus=4)
    assert sorted(names) == ["worker-0", "worker-1", "worker-2", "worker-3"]


def test_task_counters():
    def noop(ctx):
        return None

    cluster = fresh_cluster()
    runtime_holder = {}

    def driver(rt):
        runtime_holder["rt"] = rt
        refs = [rt.submit(noop) for _ in range(3)]
        yield from rt.get_all(refs)
        return None

    run_script(cluster, driver)
    rt = runtime_holder["rt"]
    assert rt.tasks_submitted == 3
    assert rt.tasks_completed == 3


def test_shutdown_frees_object_store_ram():
    import numpy as np

    cluster = fresh_cluster()

    def driver(rt):
        yield from rt.put(np.zeros(10**6))
        return None

    run_script(cluster, driver)
    assert all(node.ram_used == 0 for node in cluster.workers)
    assert cluster.controller.ram_used == 0


def test_dispatch_cost_charged_per_task():
    def noop(ctx):
        return None

    def driver_n(n):
        def driver(rt):
            refs = [rt.submit(noop) for _ in range(n)]
            yield from rt.get_all(refs)
            return rt.env.now

        return driver

    few = run_script(fresh_cluster(), driver_n(2))
    many = run_script(fresh_cluster(), driver_n(50))
    assert many - few > 40 * DISPATCH
