"""Regression tests for object-store accounting bugs.

Two fixed bugs, each pinned here:

* concurrent ``get`` of the same object on the same node used to run
  two transfers and reserve the replica's RAM twice — now the first
  getter transfers and every concurrent getter joins it;
* re-``put`` of an existing ``ref_id`` used to leak the previous
  copy's RAM reservations for the rest of the run.
"""

from repro.cluster import build_cluster, estimate_bytes
from repro.rayx import ObjectRef, RayxRuntime
from repro.sim import Environment


def make_runtime():
    cluster = build_cluster(Environment())
    return cluster, RayxRuntime(cluster)


# -- concurrent-get dedup (double-charge fix) -------------------------------------


def _concurrent_get_scenario(num_getters):
    """Run ``num_getters`` simultaneous gets of one object on worker-0."""
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    payload = list(range(10_000))
    done = {}

    def producer():
        ref = yield from runtime.put(payload, label="shared")
        done["ref"] = ref
        getters = [
            env.process(store.get(ref, "worker-0")) for _ in range(num_getters)
        ]
        values = []
        for getter in getters:
            values.append((yield getter))
        return values

    values = env.run(until=env.process(producer()))
    return cluster, store, done["ref"], values


def test_concurrent_gets_run_one_transfer():
    cluster, store, ref, values = _concurrent_get_scenario(num_getters=3)
    assert values == [list(range(10_000))] * 3
    assert store.transfers_deduped == 2  # getters 2 and 3 joined getter 1
    # Exactly one replica's worth of RAM is reserved on the fetching node.
    assert cluster.node("worker-0").ram_used == store.nbytes_of(ref)
    assert store.replicas_of(ref) == {"controller", "worker-0"}


def test_concurrent_gets_cost_no_more_than_one():
    solo, _, _, _ = _concurrent_get_scenario(num_getters=1)
    trio, _, _, _ = _concurrent_get_scenario(num_getters=3)
    # The joiners wait on the in-flight transfer, then pay only the
    # per-access mapping cost in parallel — same virtual makespan.
    assert trio.env.now == solo.env.now


# -- put-overwrite RAM release (leak fix) -----------------------------------------


def test_put_overwrite_releases_previous_ram():
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env
    node = cluster.node("worker-0")

    def scenario():
        ref = ObjectRef(env, label="state")
        yield from store.put(ref, list(range(5_000)), "worker-0")
        first_nbytes = store.nbytes_of(ref)
        assert node.ram_used == first_nbytes
        # A producer re-storing the same logical object (same ref_id)
        # must release the old copy's reservation, not stack a new one
        # on top of it.
        replacement = ObjectRef(env, label="state")
        replacement.ref_id = ref.ref_id
        yield from store.put(replacement, list(range(20_000)), "worker-0")
        assert node.ram_used == store.nbytes_of(replacement)
        assert node.ram_used == estimate_bytes(list(range(20_000)))
        return True

    assert env.run(until=env.process(scenario()))


def test_put_overwrite_releases_every_replica():
    cluster, runtime = make_runtime()
    store = runtime.store
    env = cluster.env

    def scenario():
        ref = ObjectRef(env, label="state")
        yield from store.put(ref, list(range(5_000)), "worker-0")
        yield from store.get(ref, "worker-1")  # second replica
        nbytes = store.nbytes_of(ref)
        assert cluster.node("worker-1").ram_used == nbytes
        replacement = ObjectRef(env, label="state")
        replacement.ref_id = ref.ref_id
        yield from store.put(replacement, list(range(5_000)), "worker-2")
        # Both old replicas released; only the new copy is reserved.
        assert cluster.node("worker-0").ram_used == 0
        assert cluster.node("worker-1").ram_used == 0
        assert cluster.node("worker-2").ram_used == store.nbytes_of(replacement)
        return True

    assert env.run(until=env.process(scenario()))
