"""Unit tests for LoC counting and experiment reports."""

import pytest

from repro.metrics import ExperimentReport, count_loc, count_module_loc


def test_count_loc_basic():
    source = "x = 1\n\ny = 2\n"
    assert count_loc(source) == 2


def test_count_loc_ignores_comments_and_blanks():
    source = "# comment\n\nx = 1  # trailing comments still count the line\n"
    assert count_loc(source) == 1


def test_count_loc_ignores_docstrings():
    source = '"""module docstring\nspanning lines\n"""\n\ndef f():\n    """doc."""\n    return 1\n'
    assert count_loc(source) == 2  # def + return


def test_count_loc_docstring_math():
    source = (
        '"""mod doc"""\n'
        "def f(x):\n"
        '    """f doc"""\n'
        "    return x\n"
    )
    assert count_loc(source) == 2


def test_count_loc_rejects_invalid_python():
    with pytest.raises(ValueError):
        count_loc("def broken(:")


def test_count_module_loc_by_path():
    loc = count_module_loc("repro.metrics.loc")
    assert loc > 10


def test_count_module_loc_by_object():
    import repro.metrics.loc as module

    assert count_module_loc(module) == count_module_loc("repro.metrics.loc")


def test_report_rows_and_series():
    report = ExperimentReport("figX", "demo", x_label="n")
    report.add("a", 1, 10.0, paper=8.0)
    report.add("a", 2, 20.0, paper=25.0)
    report.add("b", 1, 5.0)
    assert report.measured_series("a") == [10.0, 20.0]
    assert len(report.series("b")) == 1


def test_relative_error():
    report = ExperimentReport("figX", "demo", x_label="n")
    row = report.add("a", 1, 12.0, paper=10.0)
    assert row.relative_error == pytest.approx(0.2)
    no_paper = report.add("a", 2, 12.0)
    assert no_paper.relative_error is None
    assert report.max_relative_error() == pytest.approx(0.2)


def test_to_text_contains_everything():
    report = ExperimentReport("fig99", "demo experiment", x_label="size")
    report.add("script", 100, 12.345, paper=10.0)
    report.notes.append("a note")
    text = report.to_text()
    assert "fig99" in text
    assert "demo experiment" in text
    assert "script" in text
    assert "12.35" in text
    assert "+23.5%" in text
    assert "note: a note" in text


def test_to_records_round_values():
    report = ExperimentReport("fig99", "demo", x_label="n")
    report.add("s", 1, 1.23456, paper=None, unit="loc")
    (record,) = report.to_records()
    assert record == {
        "experiment": "fig99",
        "series": "s",
        "x": 1,
        "measured": 1.235,
        "paper": None,
        "unit": "loc",
    }
