"""Unit tests for the memory manager, the spec parser and the install API."""

from dataclasses import replace

import pytest

from repro.cluster import build_cluster
from repro.config import GIB, KIB, MIB, MemoryConfig, default_config
from repro.errors import InsufficientResources, MemSpecError
from repro.mem import (
    MemoryManager,
    current_memory_config,
    describe_memory,
    format_size,
    install_memory,
    memory_managed,
    parse_mem_spec,
    parse_size,
    uninstall_memory,
)
from repro.sim import Environment

NODE = "worker-0"


def make_cluster(ram=10_000, enabled=True, **kwargs):
    config = replace(
        default_config(),
        memory=MemoryConfig(enabled=enabled, node_ram_bytes=ram, **kwargs),
    )
    return build_cluster(Environment(), config)


def run(cluster, gen_fn):
    env = cluster.env
    return env.run(until=env.process(gen_fn()))


# -- LRU spilling -------------------------------------------------------------


def test_spills_least_recently_used_first():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory

    def scenario():
        yield from memory.allocate(NODE, 3_000, key="a")
        yield from memory.allocate(NODE, 3_000, key="b")
        memory.touch(NODE, "a")  # b is now the LRU victim
        yield from memory.allocate(NODE, 4_000, key="c")
        return True

    assert run(cluster, scenario)
    assert memory.spilled_keys(NODE) == ["b"]
    assert memory.resident_keys(NODE) == ["a", "c"]
    assert memory.spill_count == 1
    assert memory.spill_bytes == 3_000


def test_spill_charges_bandwidth_proportional_time():
    cluster = make_cluster(ram=10_000, spill_write_bytes_per_s=1_000.0)
    memory = cluster.memory
    env = cluster.env

    def scenario():
        yield from memory.allocate(NODE, 6_000, key="a")
        before = env.now
        yield from memory.allocate(NODE, 6_000, key="b")  # spills a
        return env.now - before

    elapsed = run(cluster, scenario)
    expected = memory.config.spill_write_time(6_000)  # base + 6s bandwidth
    assert elapsed == pytest.approx(expected)
    assert memory.spill_seconds == pytest.approx(expected)


def test_restore_pays_read_time_and_dedups_concurrent_getters():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory
    env = cluster.env

    def scenario():
        yield from memory.allocate(NODE, 6_000, key="cold")
        yield from memory.allocate(NODE, 6_000, key="hot")  # spills cold
        assert memory.is_spilled(NODE, "cold")
        before = env.now
        first = env.process(memory.ensure_resident(NODE, "cold"))
        second = env.process(memory.ensure_resident(NODE, "cold"))
        yield first
        yield second
        return env.now - before

    elapsed = run(cluster, scenario)
    assert memory.restore_count == 1  # the second getter joined the first
    # One read's cost (plus the eviction of "hot" it forced).
    read = memory.config.spill_read_time(6_000)
    write = memory.config.spill_write_time(6_000)
    assert elapsed == pytest.approx(read + write)
    assert memory.resident_keys(NODE) == ["cold"]
    assert memory.spilled_keys(NODE) == ["hot"]


def test_ensure_resident_is_free_for_resident_and_unknown_keys():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory
    env = cluster.env

    def scenario():
        yield from memory.allocate(NODE, 1_000, key="a")
        before = env.now
        yield from memory.ensure_resident(NODE, "a")
        yield from memory.ensure_resident(NODE, "never-seen")
        return env.now - before

    assert run(cluster, scenario) == 0.0


# -- admission backpressure ---------------------------------------------------


def test_admission_blocks_until_anonymous_memory_frees():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory
    env = cluster.env
    order = []

    def holder():
        # Anonymous (non-spillable) reservation holding most of the node.
        yield from memory.allocate(NODE, 9_000)
        yield env.timeout(5.0)
        order.append(("freed", env.now))
        memory.free_anonymous(NODE, 9_000)

    def late_comer():
        yield env.timeout(1.0)
        yield from memory.allocate(NODE, 4_000, key="late")
        order.append(("admitted", env.now))

    def scenario():
        a = env.process(holder())
        b = env.process(late_comer())
        yield a
        yield b
        return True

    assert run(cluster, scenario)
    assert order == [("freed", 5.0), ("admitted", 5.0)]
    assert memory.blocked_count == 1
    assert memory.blocked_seconds == pytest.approx(4.0)


def test_blocked_admissions_wake_fifo():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory
    env = cluster.env
    admitted = []

    def holder():
        yield from memory.allocate(NODE, 9_000)
        yield env.timeout(2.0)
        memory.free_anonymous(NODE, 9_000)

    def contender(name, delay):
        yield env.timeout(delay)
        yield from memory.allocate(NODE, 3_000, key=name)
        admitted.append(name)

    def scenario():
        procs = [env.process(holder())]
        procs.append(env.process(contender("first", 0.1)))
        procs.append(env.process(contender("second", 0.2)))
        procs.append(env.process(contender("third", 0.3)))
        for proc in procs:
            yield proc
        return True

    assert run(cluster, scenario)
    assert admitted == ["first", "second", "third"]  # arrival order, not size


def test_oversized_object_uses_full_ceiling():
    # 9.6k > the admission watermark (95% of 10k) but <= the ceiling:
    # the escape hatch admits it rather than wedging forever.
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory

    def scenario():
        yield from memory.allocate(NODE, 9_600, key="huge")
        return True

    assert run(cluster, scenario)
    assert cluster.node(NODE).ram_used == 9_600


def test_allocation_beyond_ceiling_raises():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory

    def scenario():
        yield from memory.allocate(NODE, 10_001, key="impossible")

    with pytest.raises(InsufficientResources, match="no amount of spilling"):
        run(cluster, scenario)


# -- release semantics --------------------------------------------------------


def test_release_frees_resident_and_forgets_spilled():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory
    node = cluster.node(NODE)

    def scenario():
        yield from memory.allocate(NODE, 6_000, key="a")
        yield from memory.allocate(NODE, 6_000, key="b")  # spills a
        memory.release(NODE, "b")
        assert node.ram_used == 0
        memory.release(NODE, "a")  # spilled: forgotten, no RAM change
        memory.release(NODE, "ghost")  # unknown: silently ignored
        return True

    assert run(cluster, scenario)
    assert memory.resident_keys(NODE) == []
    assert memory.spilled_keys(NODE) == []


# -- oom clamp ----------------------------------------------------------------


def test_clamp_spills_down_to_the_new_ceiling():
    cluster = make_cluster(ram=10_000)
    memory = cluster.memory
    node = cluster.node(NODE)

    def scenario():
        yield from memory.allocate(NODE, 4_000, key="a")
        yield from memory.allocate(NODE, 4_000, key="b")
        yield from memory.clamp_matching("worker-*", 2.0)
        return True

    assert run(cluster, scenario)
    assert node.ram_limit == 5_000
    assert node.ram_used <= 5_000
    assert memory.spilled_keys(NODE) == ["a"]  # LRU went first


def test_clamp_rejects_factor_below_one():
    cluster = make_cluster(ram=10_000)
    with pytest.raises(ValueError, match="factor must be >= 1"):
        run(cluster, lambda: cluster.memory.clamp(NODE, 0.5))


def test_dormant_clamp_only_drops_the_ceiling():
    cluster = make_cluster(ram=10_000, enabled=False)
    node = cluster.node(NODE)
    node.allocate_ram(8_000)
    run(cluster, lambda: cluster.memory.clamp(NODE, 2.0))
    assert node.ram_limit == 5_000
    assert node.ram_used == 8_000  # nothing reclaimed while dormant
    with pytest.raises(InsufficientResources):
        node.allocate_ram(1)


# -- spec parsing -------------------------------------------------------------


def test_parse_size_suffixes_and_errors():
    assert parse_size("2GiB") == 2 * GIB
    assert parse_size("512MiB") == 512 * MIB
    assert parse_size("1.5kb") == int(1.5 * KIB)
    assert parse_size("4096") == 4096
    for bad in ("", "lots", "-1MiB", "0"):
        with pytest.raises(MemSpecError):
            parse_size(bad)


def test_format_size_round_trips_exact_binary_sizes():
    assert format_size(2 * GIB) == "2GiB"
    assert format_size(512 * MIB) == "512MiB"
    assert format_size(999) == "999B"


def test_parse_mem_spec_full_grammar():
    config = parse_mem_spec("on,ram=2GiB,spill=0.7,admit=0.9,write_bw=50MiB,read_bw=200MiB,base=0.01")
    assert config.enabled is True
    assert config.node_ram_bytes == 2 * GIB
    assert config.spill_watermark == 0.7
    assert config.admission_watermark == 0.9
    assert config.spill_write_bytes_per_s == 50 * MIB
    assert config.spill_read_bytes_per_s == 200 * MIB
    assert config.spill_base_s == 0.01
    assert parse_mem_spec("off").enabled is False


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "maybe",
        "ram=",
        "ram=lots",
        "spill=zero",
        "frobnicate=1",
        "on,,ram=2GiB",
        "spill=0.9,admit=0.5",  # watermark ordering enforced by the config
    ],
)
def test_parse_mem_spec_rejects_malformed(spec):
    with pytest.raises(MemSpecError):
        parse_mem_spec(spec)


def test_describe_memory_mentions_the_policy_state():
    assert "dormant" in describe_memory(MemoryConfig())
    assert "ON" in describe_memory(MemoryConfig(enabled=True))


# -- install API --------------------------------------------------------------


def test_install_uninstall_and_context():
    assert current_memory_config() is None
    config = install_memory("on,ram=1GiB")
    try:
        assert current_memory_config() is config
        assert config.enabled and config.node_ram_bytes == GIB
    finally:
        uninstall_memory()
    assert current_memory_config() is None
    with memory_managed(MemoryConfig(enabled=True)) as active:
        assert current_memory_config() is active
        cluster = build_cluster(Environment())
        assert cluster.memory.active
    assert current_memory_config() is None


def test_explicit_memory_argument_beats_installed_policy():
    with memory_managed("on"):
        cluster = build_cluster(Environment(), memory=MemoryConfig())
    assert not cluster.memory.active


def test_manager_requires_known_nodes():
    from repro.errors import UnknownNode

    cluster = build_cluster(Environment())
    manager = MemoryManager(cluster, MemoryConfig(enabled=True))
    with pytest.raises(UnknownNode, match="no-such-node"):
        next(manager.allocate("no-such-node", 1, key="x"))
