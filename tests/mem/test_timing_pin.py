"""The memory layer must not merely default off — it must pin the seed.

``tests/obs/test_timing_regression.py`` proves that runs with no
memory policy installed reproduce the pre-``repro.mem`` timings
bit-identically.  This adds two stronger cases:

* explicitly installing the *default* (dormant) ``MemoryConfig`` — the
  manager is constructed and consulted, yet changes no timing by one
  bit;
* *enabling* the policy on nodes with ample RAM — admission succeeds
  without ever yielding, so even the active path is free until there
  is actual pressure.
"""

from repro.config import MemoryConfig
from repro.datasets.fsqa import generate_fsqa
from repro.mem import memory_managed
from repro.tasks.base import fresh_cluster
from repro.tasks.gotta.script import run_gotta_script
from repro.tasks.kge.common import make_kge_dataset
from repro.tasks.kge.workflow import run_kge_workflow
from tests.obs.test_timing_regression import SEED_TIMINGS, _run_all


def test_installed_default_memory_timings_bit_identical_to_seed():
    with memory_managed(MemoryConfig()):
        assert _run_all() == SEED_TIMINGS


def test_enabled_policy_with_ample_ram_charges_nothing():
    with memory_managed("on"):
        paras = generate_fsqa(1)
        kge = make_kge_dataset(300, universe_size=1000)
        script = run_gotta_script(fresh_cluster(), paras).elapsed_s
        workflow = run_kge_workflow(fresh_cluster(), kge).elapsed_s
    assert script == SEED_TIMINGS["gotta/script-1"]
    assert workflow == SEED_TIMINGS["kge/workflow"]
