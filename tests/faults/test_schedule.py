"""Unit tests for deterministic fault schedules."""

import json

import pytest

from repro.errors import FaultSpecError
from repro.faults import FAULT_KINDS, FaultEvent, FaultSchedule


def test_generate_is_deterministic():
    a = FaultSchedule.generate(seed=7, horizon_s=30.0, tasks=3, nodes=2, links=1)
    b = FaultSchedule.generate(seed=7, horizon_s=30.0, tasks=3, nodes=2, links=1)
    assert a.events == b.events
    assert a.seed == b.seed == 7


def test_generate_differs_across_seeds():
    a = FaultSchedule.generate(seed=7, horizon_s=30.0, tasks=3)
    b = FaultSchedule.generate(seed=8, horizon_s=30.0, tasks=3)
    assert a.events != b.events


def test_generate_counts_per_kind():
    schedule = FaultSchedule.generate(
        seed=1, tasks=2, operators=3, nodes=1, links=2, replicas=1
    )
    counts = {kind: len(schedule.of_kind(kind)) for kind in FAULT_KINDS}
    assert counts == {
        "task": 2,
        "operator": 3,
        "node": 1,
        "link": 2,
        "replica": 1,
        "oom": 0,
    }


def test_events_sorted_by_time():
    schedule = FaultSchedule.generate(seed=3, tasks=4, nodes=2, links=2)
    times = [event.at_s for event in schedule]
    assert times == sorted(times)


def test_timestamps_land_inside_horizon():
    schedule = FaultSchedule.generate(seed=5, horizon_s=100.0, tasks=10)
    for event in schedule:
        assert 0.05 * 100.0 <= event.at_s <= 0.95 * 100.0


def test_json_round_trip():
    schedule = FaultSchedule.generate(
        seed=7, tasks=2, nodes=1, links=1, replicas=1, note="round-trip"
    )
    data = json.loads(json.dumps(schedule.to_json()))  # through real JSON
    restored = FaultSchedule.from_json(data)
    assert restored == schedule


def test_from_json_rejects_malformed():
    with pytest.raises(FaultSpecError, match="malformed"):
        FaultSchedule.from_json({"seed": 1})
    with pytest.raises(FaultSpecError, match="malformed"):
        FaultSchedule.from_json({"events": [{"bogus": 1}]})


def test_from_spec_parses_counts_and_seed():
    schedule = FaultSchedule.from_spec("seed=7,tasks=2,nodes=1,horizon=40")
    assert schedule.seed == 7
    assert len(schedule.of_kind("task")) == 2
    assert len(schedule.of_kind("node")) == 1
    assert schedule.note == "seed=7,tasks=2,nodes=1,horizon=40"


def test_from_spec_ops_alias_and_targets():
    schedule = FaultSchedule.from_spec("seed=1,ops=2,operator_target=extract*")
    operators = schedule.of_kind("operator")
    assert len(operators) == 2
    assert all(event.target == "extract*" for event in operators)


def test_from_spec_equals_generate():
    assert FaultSchedule.from_spec("seed=7,tasks=2").events == FaultSchedule.generate(
        seed=7, tasks=2
    ).events


@pytest.mark.parametrize(
    "spec, message",
    [
        ("", "empty fault spec"),
        ("tasks=2", "needs a seed"),
        ("seed=7,tasks", "bad fault spec fragment"),
        ("seed=7,bogus=1", "unknown fault spec key"),
        ("seed=seven", "bad value"),
        ("seed=7,tasks=lots", "bad value"),
    ],
)
def test_from_spec_rejects_bad_input(spec, message):
    with pytest.raises(FaultSpecError, match=message):
        FaultSchedule.from_spec(spec)


def test_from_spec_reads_json_file(tmp_path):
    schedule = FaultSchedule.generate(seed=9, tasks=1, links=1)
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(schedule.to_json()), encoding="utf-8")
    assert FaultSchedule.from_spec(str(path)) == schedule


def test_from_spec_missing_json_file():
    with pytest.raises(FaultSpecError, match="cannot read"):
        FaultSchedule.from_spec("/nonexistent/faults.json")


def test_event_validation():
    with pytest.raises(FaultSpecError, match="unknown fault kind"):
        FaultEvent(1.0, "meteor")
    with pytest.raises(FaultSpecError, match=">= 0"):
        FaultEvent(-1.0, "task")
    with pytest.raises(FaultSpecError, match="factor"):
        FaultEvent(1.0, "link", factor=0.5)
    with pytest.raises(FaultSpecError, match="negative duration"):
        FaultEvent(1.0, "node", duration_s=-1.0)
    with pytest.raises(FaultSpecError, match="negative delay"):
        FaultEvent(1.0, "task", delay_s=-0.1)


def test_of_kind_rejects_unknown():
    with pytest.raises(FaultSpecError, match="unknown fault kind"):
        FaultSchedule.empty().of_kind("meteor")


def test_empty_schedule_is_falsy():
    assert not FaultSchedule.empty()
    assert len(FaultSchedule.empty()) == 0
    assert bool(FaultSchedule.generate(seed=1, tasks=1))


def test_describe_lists_every_event():
    schedule = FaultSchedule.generate(
        seed=7, tasks=1, operators=1, nodes=1, links=1, replicas=1, ooms=1, note="demo"
    )
    text = schedule.describe()
    assert "6 events" in text and "seed=7" in text and "note: demo" in text
    for kind in FAULT_KINDS:
        assert kind in text
