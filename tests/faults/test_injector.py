"""Unit tests for the fault injector's bookkeeping and installation."""

from repro.cluster import build_cluster
from repro.faults import (
    NULL_INJECTOR,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    current_injector,
    faults_injected,
    install_faults,
    uninstall_faults,
)
from repro.sim import Environment


def injector_for(*events, seed=None):
    injector = FaultInjector(FaultSchedule(events=tuple(events), seed=seed))
    injector.attach(Environment())  # clusters do this at construction
    return injector


# -- node outage windows ----------------------------------------------------------


def test_node_down_inside_window_only():
    injector = injector_for(FaultEvent(10.0, "node", target="worker-1", duration_s=5.0))
    assert not injector.node_down("worker-1", 9.9)
    assert injector.node_down("worker-1", 10.0)
    assert injector.node_down("worker-1", 14.9)
    assert not injector.node_down("worker-1", 15.0)
    assert not injector.node_down("worker-0", 12.0)


def test_node_crashed_between_detects_start_in_interval():
    injector = injector_for(FaultEvent(10.0, "node", target="worker-1", duration_s=5.0))
    assert injector.node_crashed_between("worker-1", 8.0, 12.0)
    assert injector.node_crashed_between("worker-1", 9.0, 10.0)  # (t0, t1]
    assert not injector.node_crashed_between("worker-1", 10.0, 12.0)
    assert not injector.node_crashed_between("worker-1", 1.0, 9.0)
    assert not injector.node_crashed_between("worker-0", 8.0, 12.0)


def test_node_window_end():
    injector = injector_for(FaultEvent(10.0, "node", target="worker-1", duration_s=5.0))
    assert injector.node_window_end("worker-1", 12.0) == 15.0
    assert injector.node_window_end("worker-1", 16.0) is None
    assert injector.node_window_end("worker-0", 12.0) is None


# -- link degradation -------------------------------------------------------------


def test_link_factor_max_over_overlapping_windows():
    injector = injector_for(
        FaultEvent(10.0, "link", duration_s=10.0, factor=4.0),
        FaultEvent(15.0, "link", duration_s=2.0, factor=9.0),
    )
    assert injector.link_factor(5.0) == 1.0
    assert injector.link_factor(12.0) == 4.0
    assert injector.link_factor(16.0) == 9.0  # max wins while both open
    assert injector.link_factor(19.0) == 4.0
    assert injector.link_factor(25.0) == 1.0


# -- task / operator fault consumption --------------------------------------------


def test_take_task_fault_respects_time_and_target():
    injector = injector_for(
        FaultEvent(10.0, "task", target="dice-*"),
        FaultEvent(20.0, "task", target="*"),
    )
    assert injector.take_task_fault("dice-chunk", 5.0) is None  # not due yet
    fault = injector.take_task_fault("dice-chunk", 12.0)
    assert fault is not None and fault.at_s == 10.0
    assert injector.take_task_fault("dice-chunk", 12.0) is None  # consumed
    assert injector.take_task_fault("gotta-answer", 25.0).at_s == 20.0
    assert injector.injected == 2


def test_take_task_fault_skips_nonmatching_label():
    injector = injector_for(FaultEvent(1.0, "task", target="gotta-*"))
    assert injector.take_task_fault("dice-chunk", 10.0) is None
    assert injector.injected == 0


def test_take_operator_fault_consumes_matching():
    injector = injector_for(FaultEvent(5.0, "operator", target="extract"))
    assert injector.take_operator_fault("tokenize", 10.0) is None
    assert injector.take_operator_fault("extract", 10.0) is not None
    assert injector.take_operator_fault("extract", 10.0) is None


def test_attach_resets_consumed_faults():
    injector = injector_for(FaultEvent(1.0, "task"))
    injector.attach(Environment())
    assert injector.take_task_fault("t", 2.0) is not None
    assert injector.take_task_fault("t", 2.0) is None
    injector.attach(Environment())  # next run replays the schedule
    assert injector.take_task_fault("t", 2.0) is not None


# -- timed application ------------------------------------------------------------


def test_unmatched_replica_drop_is_skipped_not_injected():
    injector = injector_for(FaultEvent(0.5, "replica", target="model"))
    env = Environment()
    injector.attach(env)
    env.run(until=env.timeout(1.0))
    assert injector.injected == 0
    assert injector.skipped == 1


def test_cluster_attaches_installed_injector():
    schedule = FaultSchedule(events=(FaultEvent(1.0, "task"),))
    with faults_injected(schedule) as injector:
        cluster = build_cluster(Environment())
        assert cluster.env.faults is injector
    clean = build_cluster(Environment())
    assert clean.env.faults is NULL_INJECTOR


# -- installation -----------------------------------------------------------------


def test_install_uninstall_round_trip():
    assert current_injector() is NULL_INJECTOR
    injector = install_faults(FaultSchedule(events=(FaultEvent(1.0, "task"),)))
    try:
        assert current_injector() is injector
    finally:
        uninstall_faults()
    assert current_injector() is NULL_INJECTOR


def test_faults_injected_restores_previous():
    outer = FaultSchedule(events=(FaultEvent(1.0, "task"),))
    inner = FaultSchedule(events=(FaultEvent(2.0, "link", duration_s=1.0, factor=2.0),))
    with faults_injected(outer) as outer_injector:
        with faults_injected(inner) as inner_injector:
            assert current_injector() is inner_injector
        assert current_injector() is outer_injector
    assert current_injector() is NULL_INJECTOR


def test_null_injector_is_benign():
    assert not NULL_INJECTOR.active
    assert NULL_INJECTOR.take_task_fault("any", 1e9) is None
    assert NULL_INJECTOR.take_operator_fault("any", 1e9) is None
    assert not NULL_INJECTOR.node_down("worker-0", 1e9)
    assert not NULL_INJECTOR.node_crashed_between("worker-0", 0.0, 1e9)
    assert NULL_INJECTOR.node_window_end("worker-0", 1e9) is None
    assert NULL_INJECTOR.link_factor(1e9) == 1.0
    assert NULL_INJECTOR.injected == 0 and NULL_INJECTOR.retries == 0


def test_empty_schedule_injector_is_dormant():
    injector = FaultInjector(FaultSchedule.empty())
    assert not injector.active
    assert injector.take_task_fault("any", 100.0) is None
    assert injector.link_factor(100.0) == 1.0
