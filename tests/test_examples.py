"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; these tests execute each
one in-process (examples/ is not a package, so they are loaded by
path) and check the key lines of their output.
"""

import importlib.util
import pathlib
import sys

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "script paradigm (Ray-like):" in out
    assert "workflow paradigm (Texera-like):" in out
    assert "both paradigms computed identical results." in out


def test_clinical_wrangling(capsys):
    load_example("clinical_wrangling").main()
    out = capsys.readouterr().out
    assert "paradigms agree" in out
    assert "True" in out
    assert "workflow paradigm:" in out


def test_wildfire_training(capsys):
    module = load_example("wildfire_training")
    module.main()
    out = capsys.readouterr().out
    assert "loss curves" in out
    assert "held-out evaluation" in out
    # all four framings evaluated
    for framing in ("links_wildfire_climate", "not_relevant"):
        assert framing in out


def test_product_recommendation(capsys):
    load_example("product_recommendation").main()
    out = capsys.readouterr().out
    assert "top recommendations" in out
    assert "paradigms agree: True" in out
    assert "1-6 operators" in out
    assert "9 Scala operators" in out


def test_reproduce_paper_quick_single(capsys, monkeypatch):
    module = load_example("reproduce_paper")
    monkeypatch.setattr(sys, "argv", ["reproduce_paper.py"])
    assert module.main(["--quick", "fig12a"]) == 0
    out = capsys.readouterr().out
    assert "fig12a" in out
