"""Integration tests for the KGE task (both paradigms, all variants)."""

import pytest

from repro.errors import InvalidWorkflow
from repro.tasks import fresh_cluster
from repro.tasks.kge import (
    KGE_COSTS,
    STAGE_FUSIONS,
    make_kge_dataset,
    reference_kge,
    run_kge_script,
    run_kge_workflow,
)

# Small universe keeps tests fast; mechanisms are size-independent.
DATASET = make_kge_dataset(num_candidates=800, universe_size=3000)


def row_set(table):
    return sorted(tuple(map(str, row.values)) for row in table)


@pytest.fixture(scope="module")
def oracle():
    return row_set(reference_kge(DATASET))


def test_reference_shape(oracle):
    table = reference_kge(DATASET)
    assert len(table) == KGE_COSTS.top_k
    assert table.column("rank") == list(range(1, KGE_COSTS.top_k + 1))
    scores = table.column("score")
    assert scores == sorted(scores, reverse=True)


def test_reverse_lookup_recovers_products():
    """The embedding round-trip lands back on the scored product."""
    table = reference_kge(DATASET)
    names = DATASET.names
    for row in table:
        assert row["name"] == names[row["product_id"]]


def test_script_matches_oracle(oracle):
    run = run_kge_script(fresh_cluster(), DATASET)
    assert row_set(run.output) == oracle


def test_workflow_matches_oracle(oracle):
    run = run_kge_workflow(fresh_cluster(), DATASET)
    assert row_set(run.output) == oracle


@pytest.mark.parametrize("k", sorted(STAGE_FUSIONS))
def test_every_fusion_level_matches_oracle(k, oracle):
    run = run_kge_workflow(fresh_cluster(), DATASET, num_processing_ops=k)
    assert row_set(run.output) == oracle
    assert run.extras["num_processing_ops"] == k


def test_scala_variant_matches_oracle(oracle):
    run = run_kge_workflow(
        fresh_cluster(), DATASET, num_processing_ops=3, join_language="scala"
    )
    assert row_set(run.output) == oracle
    # 9 scala ops replace 1 python op: 3 + 9 - 1 processing, + src/sink.
    assert run.extras["num_operators"] == 2 + 2 + 9


def test_scala_variant_requires_three_ops():
    with pytest.raises(InvalidWorkflow):
        run_kge_workflow(
            fresh_cluster(), DATASET, num_processing_ops=5, join_language="scala"
        )


def test_invalid_fusion_rejected():
    with pytest.raises(InvalidWorkflow):
        run_kge_workflow(fresh_cluster(), DATASET, num_processing_ops=7)


#: Past ~2k candidates the per-tuple marginal dominates fixed costs
#: and the paper's orderings emerge (below that, the script's object
#: store fixed costs put it behind — a genuine crossover).
BIG_DATASET = make_kge_dataset(num_candidates=3000, universe_size=3000)


def test_script_beats_workflow():
    """Figure 13c: the script wins KGE (serialization overhead)."""
    script = run_kge_script(fresh_cluster(), BIG_DATASET)
    workflow = run_kge_workflow(fresh_cluster(), BIG_DATASET)
    assert script.elapsed_s < workflow.elapsed_s


def test_modularity_improves_until_bottleneck_split():
    """Figure 12b: more operators help (pipelining), then plateau."""
    times = {
        k: run_kge_workflow(fresh_cluster(), DATASET, num_processing_ops=k).elapsed_s
        for k in (1, 5, 6)
    }
    assert times[5] < times[1]
    # The 6th operator splits a non-bottleneck stage: no further gain.
    assert times[6] >= times[5] - 1e-6


def test_scala_faster_at_small_scale():
    """Table I, 6.8k side: the Scala join's cheap table load wins."""
    python = run_kge_workflow(fresh_cluster(), DATASET, num_processing_ops=3)
    scala = run_kge_workflow(
        fresh_cluster(), DATASET, num_processing_ops=3, join_language="scala"
    )
    assert scala.elapsed_s < python.elapsed_s


def test_scala_advantage_shrinks_with_scale():
    """Table I's key shape: relative advantage collapses at scale."""
    small = make_kge_dataset(num_candidates=300, universe_size=3000)
    large = make_kge_dataset(num_candidates=3000, universe_size=3000)

    def advantage(dataset):
        python = run_kge_workflow(fresh_cluster(), dataset, num_processing_ops=3)
        scala = run_kge_workflow(
            fresh_cluster(), dataset, num_processing_ops=3, join_language="scala"
        )
        return (python.elapsed_s - scala.elapsed_s) / scala.elapsed_s

    assert advantage(large) < advantage(small)


def test_multiworker_matches_oracle(oracle):
    script = run_kge_script(fresh_cluster(), DATASET, num_cpus=4)
    workflow = run_kge_workflow(fresh_cluster(), DATASET, num_workers=4)
    assert row_set(script.output) == oracle
    assert row_set(workflow.output) == oracle


def test_workers_scale_both_paradigms():
    """Figure 14c: both paradigms scale near-linearly for KGE."""
    script_1 = run_kge_script(fresh_cluster(), BIG_DATASET, num_cpus=1)
    script_4 = run_kge_script(fresh_cluster(), BIG_DATASET, num_cpus=4)
    workflow_1 = run_kge_workflow(fresh_cluster(), BIG_DATASET, num_workers=1)
    workflow_4 = run_kge_workflow(fresh_cluster(), BIG_DATASET, num_workers=4)
    assert script_4.elapsed_s < script_1.elapsed_s
    assert workflow_4.elapsed_s < workflow_1.elapsed_s
    # The script is ahead at 1 worker (paper Fig 14c); at 4 workers on
    # this reduced test scale fixed costs dominate and the ordering can
    # flip — the benchmark reproduces the paper's scale where it holds.
    assert script_1.elapsed_s < workflow_1.elapsed_s


def test_dataset_validation():
    with pytest.raises(ValueError):
        make_kge_dataset(num_candidates=0)
    with pytest.raises(ValueError):
        make_kge_dataset(num_candidates=10, universe_size=5)
