"""Tests for the distributed-WEF extension (the paper's excluded case)."""

import pytest

from repro.datasets import FRAMINGS, generate_wildfire_tweets, train_test_split
from repro.ml import accuracy
from repro.tasks import fresh_cluster
from repro.tasks.wef import run_wef_script
from repro.tasks.wef.distributed import run_wef_distributed

TWEETS = generate_wildfire_tweets(120, seed=11)


def test_distributed_training_converges():
    run = run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=4)
    by_model = {}
    for row in run.output:
        by_model.setdefault(row["model_name"], []).append(row["loss"])
    assert set(by_model) == set(FRAMINGS)
    for losses in by_model.values():
        assert losses[-1] < losses[0]


def test_distributed_models_beat_chance():
    tweets = generate_wildfire_tweets(300, seed=11)
    train, test = train_test_split(tweets)
    run = run_wef_distributed(fresh_cluster(), train, num_cpus=4)
    model = run.extras["models"][FRAMINGS[0]]
    truth = [t.labels[0] for t in test]
    predictions = [model.predict(t.text) for t in test]
    assert accuracy(truth, predictions) > 0.65


def test_distributed_scales_with_workers():
    """The whole point of the excluded experiment: training parallelizes."""
    one = run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=1)
    four = run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=4)
    assert four.elapsed_s < one.elapsed_s
    assert one.elapsed_s / four.elapsed_s > 2.5


def test_distributed_beats_sequential_wall_time():
    sequential = run_wef_script(fresh_cluster(), TWEETS, num_cpus=1)
    distributed = run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=4)
    assert distributed.elapsed_s < sequential.elapsed_s


def test_single_worker_distributed_matches_sequential_losses():
    """With one shard, model averaging degenerates to plain SGD."""
    sequential = run_wef_script(fresh_cluster(), TWEETS)
    distributed = run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=1)
    seq = sorted(tuple(r.values) for r in sequential.output)
    dist = sorted(tuple(r.values) for r in distributed.output)
    assert [(m, e) for m, e, _ in seq] == [(m, e) for m, e, _ in dist]
    for (_, _, a), (_, _, b) in zip(seq, dist):
        assert a == pytest.approx(b)


def test_distributed_is_deterministic():
    a = run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=3)
    b = run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=3)
    assert a.elapsed_s == b.elapsed_s
    assert a.output.to_dicts() == b.output.to_dicts()


def test_distributed_validates_workers():
    with pytest.raises(ValueError):
        run_wef_distributed(fresh_cluster(), TWEETS, num_cpus=0)
