"""Integration tests for the WEF task (both paradigms vs oracle)."""

import pytest

from repro.datasets import FRAMINGS, generate_wildfire_tweets
from repro.ml import accuracy
from repro.tasks import fresh_cluster
from repro.tasks.wef import reference_wef, run_wef_script, run_wef_workflow

TWEETS = generate_wildfire_tweets(60, seed=11)


def loss_rows(table):
    return sorted(tuple(row.values) for row in table)


@pytest.fixture(scope="module")
def oracle():
    curves = reference_wef(TWEETS)
    return sorted(
        (name, epoch, loss)
        for name, losses in curves.items()
        for epoch, loss in enumerate(losses)
    )


def test_script_losses_match_oracle(oracle):
    run = run_wef_script(fresh_cluster(), TWEETS)
    assert loss_rows(run.output) == oracle


def test_workflow_losses_match_oracle(oracle):
    run = run_wef_workflow(fresh_cluster(), TWEETS)
    assert loss_rows(run.output) == oracle


def test_both_paradigms_train_all_four_framings():
    script = run_wef_script(fresh_cluster(), TWEETS)
    workflow = run_wef_workflow(fresh_cluster(), TWEETS)
    assert set(script.extras["models"]) == set(FRAMINGS)
    assert set(workflow.extras["models"]) == set(FRAMINGS)


def test_trained_models_identical_across_paradigms():
    """Same SGD, same order -> bit-identical classifiers."""
    import numpy as np

    script = run_wef_script(fresh_cluster(), TWEETS)
    workflow = run_wef_workflow(fresh_cluster(), TWEETS)
    for framing in FRAMINGS:
        s_model = script.extras["models"][framing]
        w_model = workflow.extras["models"][framing]
        assert np.array_equal(s_model.weights, w_model.weights)
        assert s_model.bias == w_model.bias


def test_training_loss_decreases():
    run = run_wef_workflow(fresh_cluster(), generate_wildfire_tweets(200, seed=11))
    by_model = {}
    for row in run.output:
        by_model.setdefault(row["model_name"], []).append(row["loss"])
    for losses in by_model.values():
        assert losses[-1] < losses[0]


def test_trained_models_beat_chance():
    tweets = generate_wildfire_tweets(300, seed=11)
    train, test = tweets[:240], tweets[240:]
    run = run_wef_script(fresh_cluster(), train)
    model = run.extras["models"][FRAMINGS[0]]
    truth = [t.labels[0] for t in test]
    predictions = [model.predict(t.text) for t in test]
    assert accuracy(truth, predictions) > 0.65


def test_paradigms_within_a_few_percent():
    """Figure 13b: WEF times are nearly identical across platforms."""
    script = run_wef_script(fresh_cluster(), TWEETS)
    workflow = run_wef_workflow(fresh_cluster(), TWEETS)
    ratio = script.elapsed_s / workflow.elapsed_s
    assert 0.95 < ratio < 1.15


def test_time_scales_roughly_linearly_with_tweets():
    small = run_wef_workflow(fresh_cluster(), TWEETS[:20])
    large = run_wef_workflow(fresh_cluster(), TWEETS[:60])
    assert 2.0 < large.elapsed_s / small.elapsed_s < 4.0
