"""The committed task specs stay in lockstep with their generators.

Each task package generates its canonical ``repro/workflow-spec@1``
document from the same schemas, UDF references and calibrated cost
constants the hand-built workflow used; the committed
``examples/workflows/*.json`` files are the serialized output.  These
pins fail whenever either side drifts — regenerate the JSON (or fix
the generator) so the GUI-paradigm artifacts never go stale.
"""

import json
from pathlib import Path

import pytest

from repro.tasks.dice.workflow import dice_relational_spec_dict, dice_spec_dict
from repro.tasks.gotta.workflow import gotta_spec_dict
from repro.tasks.kge.workflow import kge_spec_dict
from repro.tasks.wef.workflow import wef_spec_dict
from repro.workflow.spec import WorkflowSpec

SPEC_DIR = Path(__file__).resolve().parents[2] / "examples" / "workflows"

GENERATORS = {
    "dice.json": dice_spec_dict,
    "dice_relational.json": dice_relational_spec_dict,
    "gotta.json": gotta_spec_dict,
    "kge.json": lambda: kge_spec_dict(5, "python"),
    "wef.json": wef_spec_dict,
}


@pytest.mark.parametrize("filename", sorted(GENERATORS))
def test_committed_spec_matches_generator(filename):
    committed = json.loads((SPEC_DIR / filename).read_text(encoding="utf-8"))
    assert committed == GENERATORS[filename]()


@pytest.mark.parametrize("filename", sorted(GENERATORS))
def test_committed_spec_is_canonically_formatted(filename):
    path = SPEC_DIR / filename
    text = path.read_text(encoding="utf-8")
    doc = json.loads(text)
    assert text == json.dumps(doc, indent=2) + "\n"


@pytest.mark.parametrize("filename", sorted(GENERATORS))
def test_task_specs_parse_and_declare_their_bindings(filename):
    spec = WorkflowSpec.from_json(GENERATORS[filename]())
    assert spec.params(), "task specs bind runtime data via $param"
    assert spec.operators[-1].type in ("sink", "visualization")
