"""Integration tests for the GOTTA task (both paradigms vs oracle)."""

import pytest

from repro.datasets import generate_fsqa
from repro.tasks import fresh_cluster
from repro.tasks.gotta import (
    exact_match_of,
    reference_gotta,
    run_gotta_script,
    run_gotta_workflow,
)

PARAGRAPHS = generate_fsqa(num_paragraphs=4, seed=17)


def row_set(table):
    return sorted(tuple(map(str, row.values)) for row in table)


@pytest.fixture(scope="module")
def oracle():
    return row_set(reference_gotta(PARAGRAPHS))


def test_reference_exact_match_is_perfect():
    assert exact_match_of(reference_gotta(PARAGRAPHS)) == 1.0


def test_script_matches_oracle(oracle):
    run = run_gotta_script(fresh_cluster(), PARAGRAPHS)
    assert row_set(run.output) == oracle
    assert run.extras["exact_match"] == 1.0


def test_workflow_matches_oracle(oracle):
    run = run_gotta_workflow(fresh_cluster(), PARAGRAPHS)
    assert row_set(run.output) == oracle
    assert run.extras["exact_match"] == 1.0


def test_items_include_questions_and_cloze():
    run = run_gotta_workflow(fresh_cluster(), PARAGRAPHS)
    kinds = set(run.output.column("kind"))
    assert kinds == {"question", "cloze"}
    # 4 paragraphs x 4 facts x (question + cloze)
    assert len(run.output) == 4 * 4 * 2


def test_workflow_beats_script():
    """Figure 13d: the workflow side wins GOTTA decisively."""
    script = run_gotta_script(fresh_cluster(), PARAGRAPHS)
    workflow = run_gotta_workflow(fresh_cluster(), PARAGRAPHS)
    assert workflow.elapsed_s < script.elapsed_s
    assert script.elapsed_s / workflow.elapsed_s > 1.5


def test_script_gap_narrows_with_workers():
    """Figure 14b: more workers shrink the script's relative deficit."""
    script_1 = run_gotta_script(fresh_cluster(), PARAGRAPHS, num_cpus=1)
    workflow_1 = run_gotta_workflow(fresh_cluster(), PARAGRAPHS, num_workers=1)
    script_4 = run_gotta_script(fresh_cluster(), PARAGRAPHS, num_cpus=4)
    workflow_4 = run_gotta_workflow(fresh_cluster(), PARAGRAPHS, num_workers=4)
    gap_1 = script_1.elapsed_s / workflow_1.elapsed_s
    gap_4 = script_4.elapsed_s / workflow_4.elapsed_s
    assert gap_4 < gap_1
    assert workflow_4.elapsed_s < workflow_1.elapsed_s
    assert script_4.elapsed_s < script_1.elapsed_s


def test_multiworker_outputs_unchanged(oracle):
    script = run_gotta_script(fresh_cluster(), PARAGRAPHS, num_cpus=4)
    workflow = run_gotta_workflow(fresh_cluster(), PARAGRAPHS, num_workers=4)
    assert row_set(script.output) == oracle
    assert row_set(workflow.output) == oracle


def test_sublinear_growth_from_model_fixed_costs():
    """The '"roughly logarithmic" curve: marginal cost < average cost."""
    one = run_gotta_script(fresh_cluster(), PARAGRAPHS[:1])
    four = run_gotta_script(fresh_cluster(), PARAGRAPHS[:4])
    assert four.elapsed_s < 4 * one.elapsed_s
