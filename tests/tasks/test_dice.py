"""Integration tests for the DICE task (both paradigms vs oracle)."""

import pytest

from repro.datasets import generate_maccrobat
from repro.tasks import fresh_cluster
from repro.tasks.dice import (
    reference_dice,
    run_dice_script,
    run_dice_workflow,
)

REPORTS = generate_maccrobat(num_docs=12, seed=7)


def row_set(table):
    return sorted(tuple(map(str, row.values)) for row in table)


@pytest.fixture(scope="module")
def oracle():
    return row_set(reference_dice(REPORTS))


def test_reference_has_expected_shape(oracle):
    assert oracle  # non-empty
    table = reference_dice(REPORTS)
    assert table.schema.names == [
        "doc_id",
        "event_key",
        "trigger_type",
        "trigger_text",
        "arg_role",
        "arg_text",
        "sentence_index",
        "sentence_text",
    ]


def test_filter_drops_modifier_events():
    table = reference_dice(REPORTS)
    assert "Modifier" not in set(table.column("trigger_type"))
    # ... but the raw annotations do contain Modifier-triggered events.
    raw_types = {
        e.trigger_type for r in REPORTS for e in r.annotations.events
    }
    assert "Modifier" in raw_types


def test_script_matches_oracle(oracle):
    run = run_dice_script(fresh_cluster(), REPORTS)
    assert row_set(run.output) == oracle
    assert run.paradigm == "script"
    assert run.elapsed_s > 0


def test_workflow_matches_oracle(oracle):
    run = run_dice_workflow(fresh_cluster(), REPORTS)
    assert row_set(run.output) == oracle
    assert run.paradigm == "workflow"


def test_relational_workflow_matches_oracle(oracle):
    run = run_dice_workflow(fresh_cluster(), REPORTS, style="relational")
    assert row_set(run.output) == oracle


def test_unknown_style_rejected():
    with pytest.raises(ValueError):
        run_dice_workflow(fresh_cluster(), REPORTS, style="nope")


def test_multiworker_script_matches_oracle(oracle):
    run = run_dice_script(fresh_cluster(), REPORTS, num_cpus=3)
    assert row_set(run.output) == oracle


def test_multiworker_workflow_matches_oracle(oracle):
    run = run_dice_workflow(fresh_cluster(), REPORTS, num_workers=2)
    assert row_set(run.output) == oracle


def test_workflow_beats_script_at_scale():
    """Figure 13a's headline: pipelining wins for DICE."""
    reports = generate_maccrobat(num_docs=40, seed=7)
    script = run_dice_script(fresh_cluster(), reports)
    workflow = run_dice_workflow(fresh_cluster(), reports)
    assert workflow.elapsed_s < script.elapsed_s


def test_more_workers_reduce_time_both_paradigms():
    reports = generate_maccrobat(num_docs=40, seed=7)
    script_1 = run_dice_script(fresh_cluster(), reports, num_cpus=1)
    script_4 = run_dice_script(fresh_cluster(), reports, num_cpus=4)
    assert script_4.elapsed_s < script_1.elapsed_s
    wf_1 = run_dice_workflow(fresh_cluster(), reports, num_workers=1)
    wf_4 = run_dice_workflow(fresh_cluster(), reports, num_workers=4)
    assert wf_4.elapsed_s < wf_1.elapsed_s


def test_document_style_faster_than_relational_style():
    """The paper-style per-document DAG avoids blocking joins."""
    reports = generate_maccrobat(num_docs=40, seed=7)
    document = run_dice_workflow(fresh_cluster(), reports, style="document")
    relational = run_dice_workflow(fresh_cluster(), reports, style="relational")
    assert document.elapsed_s < relational.elapsed_s


def test_deterministic_timing():
    a = run_dice_script(fresh_cluster(), REPORTS)
    b = run_dice_script(fresh_cluster(), REPORTS)
    assert a.elapsed_s == b.elapsed_s
