"""Tests for the command-line interface."""

from repro.cli import QUICK_EXPERIMENTS, build_parser, main
from repro.experiments import ALL_EXPERIMENTS


def test_registries_cover_the_same_experiments():
    assert set(QUICK_EXPERIMENTS) == set(ALL_EXPERIMENTS)


def test_list_prints_experiments(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == sorted(ALL_EXPERIMENTS)


def test_unknown_experiment_exits_2_with_valid_ids(capsys):
    assert main(["not-an-experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "not-an-experiment" in err
    for name in ALL_EXPERIMENTS:
        assert name in err
    assert "--list" in err


def test_quick_run_single_experiment(capsys):
    assert main(["--quick", "fig12a"]) == 0
    out = capsys.readouterr().out
    assert "fig12a" in out
    assert "dice" in out


def test_parser_help_mentions_choices():
    parser = build_parser()
    assert "fig13a" in parser.format_help()
