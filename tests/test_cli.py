"""Tests for the command-line interface."""

from repro.cli import QUICK_EXPERIMENTS, build_parser, main
from repro.experiments import ALL_EXPERIMENTS


def test_registries_cover_the_same_experiments():
    assert set(QUICK_EXPERIMENTS) == set(ALL_EXPERIMENTS)


def test_list_prints_experiments(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == sorted(ALL_EXPERIMENTS)


def test_unknown_experiment_exits_2_with_valid_ids(capsys):
    assert main(["not-an-experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "not-an-experiment" in err
    for name in ALL_EXPERIMENTS:
        assert name in err
    assert "--list" in err


def test_quick_run_single_experiment(capsys):
    assert main(["--quick", "fig12a"]) == 0
    out = capsys.readouterr().out
    assert "fig12a" in out
    assert "dice" in out


def test_parser_help_mentions_choices():
    parser = build_parser()
    assert "fig13a" in parser.format_help()


# -- fault injection --------------------------------------------------------------


def test_faults_subcommand_prints_schedule(capsys):
    assert main(["faults", "seed=7,tasks=2,nodes=1"]) == 0
    out = capsys.readouterr().out
    assert "fault schedule: 3 events" in out
    assert "seed=7" in out
    assert "task" in out and "node" in out


def test_faults_subcommand_without_spec_is_usage_error(capsys):
    assert main(["faults"]) == 2
    assert "usage: repro faults SPEC" in capsys.readouterr().err


def test_faults_subcommand_rejects_bad_spec(capsys):
    assert main(["faults", "tasks=2"]) == 2
    err = capsys.readouterr().err
    assert "repro: faults:" in err and "seed" in err


def test_faults_flag_runs_experiment_and_prints_summary(capsys):
    assert main(["--quick", "fig12a", "--faults", "seed=7,tasks=2"]) == 0
    out = capsys.readouterr().out
    assert "fig12a" in out
    assert "faults:" in out and "(seed=7)" in out


def test_faults_flag_rejects_bad_spec_before_running(capsys):
    assert main(["--quick", "fig12a", "--faults", "seed=7,bogus=1"]) == 2
    captured = capsys.readouterr()
    assert "repro: --faults:" in captured.err
    assert "fig12a" not in captured.out  # nothing ran
