"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.errors import EmptySchedule, EventAlreadyTriggered, ProcessFailed
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(3.5)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [3.5]
    assert env.now == 3.5


def test_timeouts_fire_in_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 5, "late"))
    env.process(proc(env, 1, "early"))
    env.process(proc(env, 3, "mid"))
    env.run()
    assert order == ["early", "mid", "late"]


def test_equal_time_events_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value_via_run_until():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2


def test_process_waits_on_process():
    env = Environment()

    def child(env):
        yield env.timeout(4)
        return "payload"

    def parent(env):
        value = yield env.process(child(env))
        return (env.now, value)

    assert env.run(until=env.process(parent(env))) == (4, "payload")


def test_event_succeed_delivers_value():
    env = Environment()
    gate = env.event()

    def waiter(env):
        value = yield gate
        return value

    def opener(env):
        yield env.timeout(1)
        gate.succeed("open")

    env.process(opener(env))
    assert env.run(until=env.process(waiter(env))) == "open"


def test_event_double_trigger_raises():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        event.fail(RuntimeError("x"))


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_failure_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(failer(env))
    assert env.run(until=env.process(waiter(env))) == "caught boom"


def test_unhandled_process_failure_propagates_to_run_until():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("kaput")

    with pytest.raises(ValueError, match="kaput"):
        env.run(until=env.process(bad(env)))


def test_orphan_process_failure_surfaces_at_run_end():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise KeyError("orphan")

    env.process(bad(env))
    with pytest.raises(ProcessFailed):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 17

    with pytest.raises(ProcessFailed):
        env.run()
        env.run(until=env.process(bad(env)))


def test_run_until_time_stops_midway():
    env = Environment()
    seen = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(1)
            seen.append(env.now)

    env.process(proc(env))
    env.run(until=4)
    assert seen == [1, 2, 3, 4]
    env.run()
    assert seen[-1] == 10


def test_run_until_past_time_rejected():
    env = Environment()
    env.process(iter_timeout(env, 5))
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1)


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_empty_schedule_step_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_deadlock_detected_when_awaiting_unreachable_event():
    env = Environment()
    never = env.event()

    def waiter(env):
        yield never

    with pytest.raises(EmptySchedule):
        env.run(until=env.process(waiter(env)))


def test_all_of_waits_for_every_event():
    env = Environment()

    def child(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        procs = [env.process(child(env, d, d * 10)) for d in (3, 1, 2)]
        condition = yield env.all_of(procs)
        return (env.now, condition.values())

    when, values = env.run(until=env.process(parent(env)))
    assert when == 3
    assert sorted(values) == [10, 20, 30]


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def parent(env):
        condition = yield env.all_of([])
        return condition.values()

    assert env.run(until=env.process(parent(env))) == []


def test_all_of_fails_fast_on_child_failure():
    env = Environment()

    def ok(env):
        yield env.timeout(10)

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("child died")

    def parent(env):
        try:
            yield env.all_of([env.process(ok(env)), env.process(bad(env))])
        except RuntimeError:
            return env.now

    assert env.run(until=env.process(parent(env))) == 1


def test_any_of_returns_first_event():
    env = Environment()

    def child(env, delay, value):
        yield env.timeout(delay)
        return value

    def parent(env):
        fast = env.process(child(env, 1, "fast"))
        slow = env.process(child(env, 9, "slow"))
        first = yield env.any_of([fast, slow])
        return (env.now, first.value)

    assert env.run(until=env.process(parent(env))) == (1, "fast")


def test_any_of_requires_events():
    env = Environment()
    with pytest.raises(ValueError):
        env.any_of([])


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7


def test_nested_process_chains():
    env = Environment()

    def leaf(env):
        yield env.timeout(1)
        return 1

    def mid(env):
        a = yield env.process(leaf(env))
        b = yield env.process(leaf(env))
        return a + b

    def root(env):
        x = yield env.process(mid(env))
        y = yield env.process(mid(env))
        return x + y

    assert env.run(until=env.process(root(env))) == 4
    assert env.now == 4


# -- run(until=T) clock semantics -------------------------------------------------


def test_run_until_advances_clock_when_queue_drains_early():
    # Regression: the kernel used to leave the clock at the last event's
    # time when the queue drained before the deadline; ``run(until=T)``
    # must always end with ``now == T``.
    env = Environment()
    env.process(iter_timeout(env, 2))
    env.run(until=10)
    assert env.now == 10.0


def test_run_until_advances_clock_on_empty_schedule():
    env = Environment()
    env.run(until=5)
    assert env.now == 5.0


def test_run_until_resumes_correctly_after_early_drain():
    env = Environment()
    seen = []

    def late(env):
        yield env.timeout(7)
        seen.append(env.now)

    env.process(iter_timeout(env, 1))
    env.run(until=3)
    assert env.now == 3.0
    env.process(late(env))  # scheduled at now=3, fires at 10
    env.run()
    assert seen == [10.0]


# -- (time, priority, sequence) tie-break pins ------------------------------------


def _triggered_event(env, value):
    from repro.sim import core

    event = env.event()
    event.value = value
    event.state = core.TRIGGERED
    return event


def test_urgent_beats_normal_at_equal_time_despite_later_scheduling():
    from repro.sim import core

    env = Environment()
    order = []
    normal = _triggered_event(env, "normal")
    normal.add_callback(lambda ev: order.append(ev.value))
    env._schedule(normal, 1.0, core.NORMAL)
    urgent = _triggered_event(env, "urgent")
    urgent.add_callback(lambda ev: order.append(ev.value))
    env._schedule(urgent, 1.0, core.URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_sequence_breaks_ties_within_equal_time_and_priority():
    from repro.sim import core

    env = Environment()
    order = []
    # Schedule out of time order so entries split across the kernel's
    # internal queues (tail then heap), at equal (time, priority).
    for tag, delay in [("a5", 5.0), ("b1", 1.0), ("c5", 5.0), ("d1", 1.0)]:
        event = _triggered_event(env, tag)
        event.add_callback(lambda ev: order.append(ev.value))
        env._schedule(event, delay, core.NORMAL)
    env.run()
    assert order == ["b1", "d1", "a5", "c5"]


def test_zero_delay_succeed_fires_before_later_scheduled_urgent_timeout():
    from repro.sim import core

    env = Environment()
    order = []
    immediate = env.event()
    immediate.add_callback(lambda ev: order.append("immediate"))
    immediate.succeed()  # seq N, NORMAL, t=0 via the immediate deque
    urgent = _triggered_event(env, None)
    urgent.add_callback(lambda ev: order.append("urgent"))
    env._schedule(urgent, 0.0, core.URGENT)  # seq N+1, URGENT, t=0
    env.run()
    # URGENT priority outranks the earlier sequence number.
    assert order == ["urgent", "immediate"]
