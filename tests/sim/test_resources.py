"""Unit tests for Resource and Store (repro.sim.resources)."""

import pytest

from repro.sim import Environment, Resource, Store, drain


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity_without_waiting():
    env = Environment()
    cpus = Resource(env, capacity=2)
    held = []

    def proc(env, tag):
        yield cpus.request()
        held.append((tag, env.now))
        yield env.timeout(5)
        cpus.release()

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    # a and b start immediately; c waits for a release at t=5.
    assert held == [("a", 0), ("b", 0), ("c", 5)]


def test_resource_fifo_ordering():
    env = Environment()
    cpus = Resource(env, capacity=1)
    order = []

    def proc(env, tag, hold):
        yield cpus.request()
        order.append(tag)
        yield env.timeout(hold)
        cpus.release()

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag, 1))
    env.run()
    assert order == ["first", "second", "third"]


def test_large_request_blocks_smaller_behind_it():
    """FIFO fairness: a big request at the head is not starved."""
    env = Environment()
    cpus = Resource(env, capacity=4)
    order = []

    def proc(env, tag, amount, hold):
        yield cpus.request(amount)
        order.append((tag, env.now))
        yield env.timeout(hold)
        cpus.release(amount)

    env.process(proc(env, "small0", 2, 10))
    env.process(proc(env, "big", 4, 5))
    env.process(proc(env, "small1", 1, 1))
    env.run()
    # small1 must NOT jump ahead of big even though 2 cores are free.
    assert order == [("small0", 0), ("big", 10), ("small1", 15)]


def test_request_exceeding_capacity_rejected():
    env = Environment()
    cpus = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        cpus.request(3)


def test_over_release_rejected():
    env = Environment()
    cpus = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        cpus.release(1)


def test_available_tracks_usage():
    env = Environment()
    cpus = Resource(env, capacity=3)

    def proc(env):
        yield cpus.request(2)
        assert cpus.available == 1
        cpus.release(2)
        assert cpus.available == 3

    env.run(until=env.process(proc(env)))


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env):
        got = []
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))
        return got

    env.process(producer(env))
    got = env.run(until=env.process(consumer(env)))
    assert got == [(0, 1), (1, 2), (2, 3)]


def test_store_get_blocks_until_item_available():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (item, env.now)

    def producer(env):
        yield env.timeout(8)
        yield store.put("late")

    env.process(producer(env))
    assert env.run(until=env.process(consumer(env))) == ("late", 8)


def test_bounded_store_applies_backpressure():
    env = Environment()
    store = Store(env, capacity=1)
    puts = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            puts.append((i, env.now))

    def consumer(env):
        for _ in range(3):
            yield env.timeout(2)
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # First put is immediate; each subsequent put waits for a get (t=2,4).
    assert puts == [(0, 0), (1, 2), (2, 4)]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_fifo_between_multiple_getters():
    env = Environment()
    store = Store(env)
    results = []

    def getter(env, tag):
        item = yield store.get()
        results.append((tag, item))

    def putter(env):
        yield env.timeout(1)
        yield store.put("x")
        yield store.put("y")

    env.process(getter(env, "g1"))
    env.process(getter(env, "g2"))
    env.process(putter(env))
    env.run()
    assert results == [("g1", "x"), ("g2", "y")]


def test_drain_empties_buffer_and_unblocks_putters():
    env = Environment()
    store = Store(env, capacity=2)

    def producer(env):
        for i in range(4):
            yield store.put(i)
        return env.now

    proc = env.process(producer(env))
    env.run(until=env.peek())  # let first puts land
    assert drain(store) == [0, 1]
    env.run(until=proc)
    assert drain(store) == [2, 3]


def test_len_reports_buffered_items():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put("a")
        yield store.put("b")

    env.run(until=env.process(proc(env)))
    assert len(store) == 2
