"""Unit tests for waiter-event cancellation (the fault-abort contract).

``ResourceRequest.cancel`` / ``StorePut.cancel`` / ``StoreGet.cancel``
are what abort paths (fault kills, engine restarts, interpreter
teardown) call so a dead process neither blocks a FIFO head nor leaks
granted capacity.  All three are idempotent.
"""

from repro.sim import Environment
from repro.sim.resources import Resource, Store


def pump(env):
    """Drain all currently scheduled events without ending the test run."""
    env.run()


# -- ResourceRequest ---------------------------------------------------------------


def test_cancel_pending_request_unblocks_the_fifo():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()  # granted immediately
    blocked = res.request()  # queued behind the grant
    later = res.request()  # queued behind `blocked`
    assert res._waiters == type(res._waiters)([blocked, later])
    blocked.cancel()
    assert list(res._waiters) == [later]
    res.release()  # frees the unit; `later` must be served, not blocked
    assert res.in_use == 1
    assert not res._waiters
    assert first.triggered and later.triggered


def test_cancel_granted_request_returns_units():
    env = Environment()
    res = Resource(env, capacity=2)
    grant = res.request(2)
    waiting = res.request(1)
    assert res.in_use == 2 and not waiting.triggered
    # The holder dies without ever releasing: cancel gives the units back
    # and the FIFO is served.
    grant.cancel()
    assert res.in_use == 1
    assert waiting.triggered
    assert not res._waiters


def test_cancel_request_is_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)
    grant = res.request()
    grant.cancel()
    grant.cancel()  # no double release
    assert res.in_use == 0
    assert res.available == res.capacity


def test_cancelled_pending_request_never_fires_callbacks():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    blocked = res.request()
    fired = []
    blocked.add_callback(lambda ev: fired.append(ev))
    blocked.cancel()
    res.release()
    pump(env)
    assert fired == []


# -- StorePut ----------------------------------------------------------------------


def test_cancel_pending_put_withdraws_the_item():
    env = Environment()
    store = Store(env, capacity=1)
    store.put("kept")
    pending = store.put("withdrawn")
    assert list(store._putters) == [pending]
    pending.cancel()
    assert not store._putters
    got = store.get()
    pump(env)
    assert got.value == "kept"
    assert not store.items  # "withdrawn" never entered the buffer


def test_cancel_completed_put_is_a_noop():
    env = Environment()
    store = Store(env)
    done = store.put("data")
    assert done.triggered
    done.cancel()
    done.cancel()
    assert list(store.items) == ["data"]


# -- StoreGet ----------------------------------------------------------------------


def test_cancel_pending_get_leaves_the_getter_fifo():
    env = Environment()
    store = Store(env)
    dead = store.get()
    live = store.get()
    dead.cancel()
    assert list(store._getters) == [live]
    store.put("item")
    pump(env)
    assert live.value == "item"


def test_cancel_granted_get_restores_item_at_queue_head():
    env = Environment()
    store = Store(env)
    store.put("first")
    store.put("second")
    granted = store.get()  # triggered with "first", never consumed
    assert granted.value == "first"
    granted.cancel()
    # "first" returns to the head so FIFO order is preserved for the
    # next (live) consumer.
    assert list(store.items) == ["first", "second"]
    replacement = store.get()
    pump(env)
    assert replacement.value == "first"


def test_cancel_delivered_get_is_a_noop():
    env = Environment()
    store = Store(env)
    store.put("item")
    received = []

    def consumer(env):
        value = yield store.get()
        received.append(value)

    env.process(consumer(env))
    env.run()
    assert received == ["item"]
    # The get was fully delivered; cancelling afterwards must not
    # resurrect the item.
    assert not store.items


def test_cancel_get_is_idempotent():
    env = Environment()
    store = Store(env)
    store.put("x")
    granted = store.get()
    granted.cancel()
    granted.cancel()
    assert list(store.items) == ["x"]
