"""Tests for the configuration module's invariants."""

import dataclasses

import pytest

from repro.config import (
    GIB,
    LANGUAGE_PROFILES,
    MIB,
    ModelConfig,
    NetworkConfig,
    ObjectStoreConfig,
    ReproConfig,
    default_config,
)


def test_default_config_is_singleton_and_frozen():
    config = default_config()
    assert config is default_config()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.rayx.startup_s = 0


def test_variations_via_replace_do_not_mutate_default():
    config = default_config()
    workflow = dataclasses.replace(config.workflow, startup_s=99.0)
    varied = dataclasses.replace(config, workflow=workflow)
    assert varied.workflow.startup_s == 99.0
    assert default_config().workflow.startup_s != 99.0


def test_topology_matches_paper():
    config = default_config()
    assert config.topology.num_workers == 4
    assert config.topology.machine.num_cpus == 8
    assert config.topology.machine.ram_bytes == 64 * GIB


def test_model_sizes_match_paper():
    models = default_config().models
    assert models.bart_bytes == int(1.59 * GIB)  # paper: 1.59 GB
    assert models.kge_bytes == 375 * MIB  # paper: 375 MB


def test_load_seconds_formula_and_validation():
    models = ModelConfig()
    assert models.load_seconds(0) == 0
    assert models.load_seconds(models.bart_bytes) > models.load_seconds(
        models.kge_bytes
    )
    with pytest.raises(ValueError):
        models.load_seconds(-1)


def test_network_transfer_validation():
    with pytest.raises(ValueError):
        NetworkConfig().transfer_time(-1)


def test_object_store_validation():
    store = ObjectStoreConfig()
    with pytest.raises(ValueError):
        store.put_time(-1)
    with pytest.raises(ValueError):
        store.get_time(-1)
    # put is the expensive direction (upload + seal).
    assert store.put_time(10**9) > store.get_time(10**9)


def test_language_profiles_ordering():
    python = LANGUAGE_PROFILES["python"]
    scala = LANGUAGE_PROFILES["scala"]
    java = LANGUAGE_PROFILES["java"]
    assert python.relative_speed == 1.0
    assert scala.relative_speed > java.relative_speed > python.relative_speed
    assert python.tuple_overhead_s > scala.tuple_overhead_s


def test_tuple_cost_rejects_negative_work():
    from repro.workflow import OperatorLanguage

    with pytest.raises(ValueError):
        OperatorLanguage.PYTHON.tuple_cost(-1.0)


def test_fresh_repro_config_equals_default():
    assert ReproConfig() == default_config()
