"""Fair-share ledger: hierarchical accounts, quotas, DRF ordering."""

import pytest

from repro.config import GIB
from repro.jobs import FairShare, Job, JobSpec, tenant_levels


def make_job(tenant="tenant-0", cpus=1, ram=1 * GIB, job_id="job-000000"):
    return Job(job_id, JobSpec(tenant=tenant, cpus=cpus, ram_bytes=ram), 0.0)


def test_tenant_levels_expand_hierarchy():
    assert tenant_levels("alice") == ["alice"]
    assert tenant_levels("team-a/alice") == ["team-a", "team-a/alice"]
    assert tenant_levels("org/team/user") == ["org", "org/team", "org/team/user"]


def test_policy_must_be_fifo_or_drf():
    with pytest.raises(ValueError, match="sjf"):
        FairShare(policy="sjf")


def test_charge_hits_every_hierarchy_level_and_release_refunds():
    fs = FairShare(total_cpus=32, total_ram_bytes=256 * GIB)
    job = make_job(tenant="team-a/alice", cpus=4, ram=8 * GIB)
    fs.charge(job)
    for level in ("team-a", "team-a/alice"):
        account = fs.account(level)
        assert (account.running, account.cpus, account.ram_bytes) == (
            1, 4, 8 * GIB,
        )
    fs.release(job)
    for level in ("team-a", "team-a/alice"):
        account = fs.account(level)
        assert (account.running, account.cpus, account.ram_bytes) == (0, 0, 0)


# -- quotas -------------------------------------------------------------------


def test_running_quota_blocks_at_ceiling():
    fs = FairShare(quota_running=1)
    fs.charge(make_job())
    reason = fs.quota_blocked(make_job(job_id="job-000001"))
    assert reason is not None and "running quota" in reason
    assert fs.quota_blocked(make_job(tenant="other")) is None


def test_cpu_quota_counts_the_new_demand():
    fs = FairShare(quota_cpus=4)
    fs.charge(make_job(cpus=3))
    assert fs.quota_blocked(make_job(cpus=2)) is not None  # 3+2 > 4
    assert fs.quota_blocked(make_job(cpus=1)) is None      # 3+1 == 4


def test_ram_quota_counts_the_new_demand():
    fs = FairShare(quota_ram_bytes=4 * GIB)
    fs.charge(make_job(ram=3 * GIB))
    assert fs.quota_blocked(make_job(ram=2 * GIB)) is not None
    assert fs.quota_blocked(make_job(ram=1 * GIB)) is None


def test_group_quota_caps_the_sum_of_its_users():
    fs = FairShare(quota_cpus=4)
    fs.charge(make_job(tenant="team/alice", cpus=3))
    # bob alone is fine, but the shared "team" level is at 3 of 4.
    reason = fs.quota_blocked(make_job(tenant="team/bob", cpus=2))
    assert reason is not None and reason.startswith("team:")


# -- ordering -----------------------------------------------------------------


def test_fifo_keeps_submission_order():
    fs = FairShare(policy="fifo", total_cpus=8, total_ram_bytes=8 * GIB)
    fs.charge(make_job(tenant="hog", cpus=6))
    pending = [
        make_job(tenant="hog", job_id="job-000001"),
        make_job(tenant="idle", job_id="job-000002"),
    ]
    assert fs.ordering(pending) == pending


def test_drf_serves_the_lowest_dominant_share_first():
    fs = FairShare(policy="drf", total_cpus=8, total_ram_bytes=8 * GIB)
    fs.charge(make_job(tenant="hog", cpus=6, ram=1 * GIB))
    pending = [
        make_job(tenant="hog", job_id="job-000001"),
        make_job(tenant="idle", job_id="job-000002"),
    ]
    ordered = fs.ordering(pending)
    assert [job.spec.tenant for job in ordered] == ["idle", "hog"]


def test_drf_dominant_share_is_max_of_cpu_and_ram():
    fs = FairShare(total_cpus=8, total_ram_bytes=8 * GIB)
    # cpu-heavy: 4/8 cpus but 1/8 ram -> dominant 0.5
    fs.charge(make_job(tenant="cpu-heavy", cpus=4, ram=1 * GIB))
    # ram-heavy: 1/8 cpus but 6/8 ram -> dominant 0.75
    fs.charge(make_job(tenant="ram-heavy", cpus=1, ram=6 * GIB))
    assert fs.dominant_share("cpu-heavy") == 0.5
    assert fs.dominant_share("ram-heavy") == 0.75
    assert fs.dominant_share("never-seen") == 0.0


def test_drf_ties_break_by_submission_order():
    fs = FairShare(policy="drf", total_cpus=8, total_ram_bytes=8 * GIB)
    pending = [
        make_job(tenant="b", job_id="job-000000"),
        make_job(tenant="a", job_id="job-000001"),
    ]
    # Equal (zero) shares: the stable sort must keep submission order.
    assert fs.ordering(pending) == pending


def test_hierarchical_key_compares_groups_before_users():
    fs = FairShare(policy="drf", total_cpus=8, total_ram_bytes=8 * GIB)
    fs.charge(make_job(tenant="big/alice", cpus=4))
    pending = [
        make_job(tenant="big/bob", job_id="job-000001"),     # group at 0.5
        make_job(tenant="small/carol", job_id="job-000002"),  # group at 0
    ]
    ordered = fs.ordering(pending)
    assert [job.spec.tenant for job in ordered] == [
        "small/carol", "big/bob",
    ]


def test_shares_lists_every_account():
    fs = FairShare(total_cpus=8, total_ram_bytes=8 * GIB)
    fs.charge(make_job(tenant="team/alice", cpus=2))
    assert fs.shares() == {"team": 0.25, "team/alice": 0.25}
