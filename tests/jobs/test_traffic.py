"""Traffic generator: determinism, rate shape, thinning correctness."""

from dataclasses import replace

from repro.config import JobsConfig
from repro.jobs import Arrival, JobSpec, TrafficGenerator, merge_arrivals

BASE = JobsConfig(seed=7, rate_per_s=20.0, horizon_s=10.0, tenants=3)


def test_same_seed_same_arrivals():
    assert TrafficGenerator(BASE).arrivals() == TrafficGenerator(BASE).arrivals()


def test_different_seed_different_arrivals():
    other = replace(BASE, seed=8)
    assert TrafficGenerator(BASE).arrivals() != TrafficGenerator(other).arrivals()


def test_arrivals_ordered_within_horizon_with_sane_count():
    arrivals = TrafficGenerator(BASE).arrivals()
    times = [a.time_s for a in arrivals]
    assert times == sorted(times)
    assert all(0.0 < t < BASE.horizon_s for t in times)
    # ~200 expected; Poisson noise stays well inside a factor of two.
    assert 100 < len(arrivals) < 400


def test_specs_draw_from_the_config():
    arrivals = TrafficGenerator(BASE).arrivals()
    tenants = {a.spec.tenant for a in arrivals}
    assert tenants <= {f"tenant-{i}" for i in range(BASE.tenants)}
    assert len(tenants) > 1  # really spread over the population
    assert all(a.spec.duration_s > 0.0 for a in arrivals)
    assert all(a.spec.cpus == BASE.cpus for a in arrivals)
    assert all(a.spec.body == BASE.body for a in arrivals)


# -- rate shape ---------------------------------------------------------------


def test_flat_config_rate_is_constant():
    gen = TrafficGenerator(BASE)
    assert gen.rate_at(0.0) == gen.rate_at(5.0) == BASE.rate_per_s
    assert gen.peak_rate == BASE.rate_per_s


def test_burst_window_multiplies_the_rate():
    config = replace(
        BASE, burst=2.0, burst_period_s=100.0, burst_duty=0.1
    )
    gen = TrafficGenerator(config)
    assert gen.in_burst(5.0) and not gen.in_burst(50.0)
    assert gen.in_burst(105.0)  # windows repeat every period
    assert gen.rate_at(5.0) == 60.0
    assert gen.rate_at(50.0) == 20.0


def test_diurnal_sine_modulates_the_rate():
    config = replace(BASE, diurnal=0.5, diurnal_period_s=100.0)
    gen = TrafficGenerator(config)
    assert gen.rate_at(25.0) == 30.0  # sine peak: x1.5
    assert abs(gen.rate_at(75.0) - 10.0) < 1e-9  # trough: x0.5
    assert gen.rate_at(0.0) == 20.0


def test_peak_rate_bounds_the_instantaneous_rate():
    config = replace(
        BASE, burst=1.5, burst_period_s=60.0, burst_duty=0.2,
        diurnal=0.8, diurnal_period_s=40.0,
    )
    gen = TrafficGenerator(config)
    for t in range(0, 120):
        assert gen.rate_at(float(t)) <= gen.peak_rate + 1e-9


def test_bursty_config_still_deterministic_and_denser():
    config = replace(BASE, burst=3.0, burst_period_s=5.0, burst_duty=0.5)
    first = TrafficGenerator(config).arrivals()
    assert first == TrafficGenerator(config).arrivals()
    assert len(first) > len(TrafficGenerator(BASE).arrivals())


def test_repeated_calls_on_one_generator_are_identical():
    # Regression: arrivals() used to draw from a shared instance RNG, so
    # a second call on the same generator continued the stream and
    # silently produced a different (shorter or longer) arrival list.
    gen = TrafficGenerator(replace(BASE, burst=3.0, burst_period_s=5.0, burst_duty=0.5))
    first = gen.arrivals()
    assert gen.arrivals() == first
    assert gen.arrivals() == first  # and a third time


def test_bursty_arrival_counts_are_pinned():
    # Pinned counts guard the whole sampling path: candidate draws,
    # thinning decisions and spec draws all consume the same RNG stream,
    # so any change to the drawing order shows up here immediately.
    bursty = replace(BASE, burst=3.0, burst_period_s=5.0, burst_duty=0.5)
    assert len(TrafficGenerator(bursty).arrivals()) == 539
    assert len(TrafficGenerator(BASE).arrivals()) == 213
    rich = replace(
        BASE, burst=1.5, burst_period_s=6.0, burst_duty=0.25,
        diurnal=0.6, diurnal_period_s=8.0,
    )
    assert len(TrafficGenerator(rich).arrivals()) == 335


def test_thinning_keeps_burst_windows_denser():
    # The Lewis-Shedler majorant must dominate rate_at(t) everywhere or
    # burst windows get silently under-sampled; with a correct envelope
    # the in-window density tracks the 1 + burst factor.
    config = replace(BASE, burst=3.0, burst_period_s=5.0, burst_duty=0.5)
    gen = TrafficGenerator(config)
    arrivals = gen.arrivals()
    inside = sum(1 for a in arrivals if gen.in_burst(a.time_s))
    outside = len(arrivals) - inside
    # Expected ratio 4:1 (burst=3.0); Poisson noise stays well clear of 2:1.
    assert inside > 2 * outside


def test_gen_corpus_mode_spreads_over_family_bodies():
    from repro.jobs.bodies import GEN_BODIES

    arrivals = TrafficGenerator(replace(BASE, body="gen")).arrivals()
    bodies = {a.spec.body for a in arrivals}
    assert bodies <= set(GEN_BODIES)
    assert len(bodies) == len(GEN_BODIES)  # ~200 draws cover all six
    # Corpus mode is deterministic like everything else.
    assert arrivals == TrafficGenerator(replace(BASE, body="gen")).arrivals()


# -- merging ------------------------------------------------------------------


def test_merge_orders_by_time():
    a = [Arrival(1.0, JobSpec(tenant="a")), Arrival(3.0, JobSpec(tenant="a"))]
    b = [Arrival(2.0, JobSpec(tenant="b"))]
    merged = merge_arrivals(a, b)
    assert [arrival.spec.tenant for arrival in merged] == ["a", "b", "a"]


def test_merge_ties_break_by_stream_position():
    a = [Arrival(1.0, JobSpec(tenant="a"))]
    b = [Arrival(1.0, JobSpec(tenant="b"))]
    assert [x.spec.tenant for x in merge_arrivals(a, b)] == ["a", "b"]
    assert [x.spec.tenant for x in merge_arrivals(b, a)] == ["b", "a"]
