"""CLI surface of the job service: ``repro jobs`` and ``--jobs SPEC``."""

import pytest

from repro.cli import JOBS_SPEC_HELP, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_bare_jobs_prints_dormant_default_and_grammar(capsys):
    code, out, err = run_cli(capsys, "jobs")
    assert code == 0
    assert "dormant" in out
    assert JOBS_SPEC_HELP in out
    assert err == ""


def test_jobs_spec_describes_without_running_when_off(capsys):
    code, out, err = run_cli(capsys, "jobs", "off,rate=50")
    assert code == 0
    assert "dormant" in out
    assert "traffic:" not in out


def test_jobs_on_runs_traffic_and_summarizes(capsys):
    code, out, err = run_cli(
        capsys, "jobs", "on,rate=20,horizon=4,tenants=2,duration=0.3"
    )
    assert code == 0
    assert "traffic generator ON" in out
    assert "traffic:" in out
    assert "peak queue depth" in out
    assert "tenant-0" in out
    assert err == ""


def test_jobs_traffic_output_is_deterministic(capsys):
    spec = "on,rate=20,horizon=4,seed=9"
    _, first, _ = run_cli(capsys, "jobs", spec)
    _, second, _ = run_cli(capsys, "jobs", spec)
    assert first == second


@pytest.mark.parametrize(
    "spec",
    [
        "banana",
        "rate=lots",
        "bogus=1",
        "policy=sjf",
        "placement=banana",
        "quota_ram=lots",
        "",
        "on,,off",
    ],
)
def test_bad_jobs_spec_exits_2_with_grammar(capsys, spec):
    code, out, err = run_cli(capsys, "jobs", spec)
    assert code == 2
    assert "repro: jobs:" in err
    assert JOBS_SPEC_HELP in err
    assert "Traceback" not in err


def test_jobs_usage_error_exits_2(capsys):
    code, out, err = run_cli(capsys, "jobs", "on", "extra")
    assert code == 2
    assert "usage: repro jobs [SPEC]" in err


def test_jobs_option_routes_experiments_through_the_service(capsys):
    code, out, err = run_cli(capsys, "--jobs", "on", "fig12a", "--quick")
    assert code == 0
    assert "jobs: 1 of 1 completed through the job service" in out


def test_jobs_option_off_is_the_direct_path(capsys):
    code, out, err = run_cli(capsys, "--jobs", "off", "fig12a", "--quick")
    assert code == 0
    assert "job service" not in out


def test_bad_jobs_option_exits_2_before_running_experiments(capsys):
    code, out, err = run_cli(capsys, "--jobs", "banana", "fig12a", "--quick")
    assert code == 2
    assert "--jobs" in err
    assert JOBS_SPEC_HELP in err


def test_fairshare_experiment_runs_quick(capsys):
    code, out, err = run_cli(capsys, "fairshare", "--quick")
    assert code == 0
    assert "fifo" in out and "drf" in out
    assert "light tenant p99 queue" in out
