"""Job model: spec validation, the state machine, JSON round-trips."""

import pytest

from repro.config import GIB
from repro.errors import InvalidJobTransition
from repro.jobs import (
    ADMITTED,
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    Job,
    JobSpec,
)
from repro.jobs.model import TRANSITIONS


def make_job(spec=None, submitted_s=1.0):
    return Job("job-000000", spec or JobSpec(), submitted_s)


# -- spec ---------------------------------------------------------------------


def test_spec_defaults():
    spec = JobSpec()
    assert spec.tenant == "tenant-0"
    assert spec.body == "profile"
    assert spec.cpus == 1
    assert spec.ram_bytes == 1 * GIB
    assert spec.duration_s == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"tenant": ""},
        {"body": ""},
        {"cpus": 0},
        {"cpus": -1},
        {"ram_bytes": -1},
        {"duration_s": 0.0},
        {"duration_s": -2.0},
    ],
)
def test_spec_rejects_bad_fields(kwargs):
    with pytest.raises(ValueError):
        JobSpec(**kwargs)


def test_spec_json_round_trip():
    spec = JobSpec(
        tenant="team-a/alice", body="dice/script", cpus=4,
        ram_bytes=2 * GIB, duration_s=3.5,
    )
    assert JobSpec.from_json(spec.to_json()) == spec


# -- state machine ------------------------------------------------------------


def test_happy_path_records_timestamps():
    job = make_job(submitted_s=1.0)
    assert job.state == QUEUED
    assert not job.terminal
    assert job.queue_latency_s is None

    job.admit(3.0, "worker-2")
    assert job.state == ADMITTED
    assert job.node == "worker-2"
    assert job.queue_latency_s == 2.0

    job.start(3.0)
    assert job.state == RUNNING

    job.complete(4.5, result="payload")
    assert job.state == COMPLETED
    assert job.terminal
    assert job.finished_s == 4.5
    assert job.result == "payload"


def test_fail_and_cancel_reachable_from_every_nonterminal_state():
    for state in (QUEUED, ADMITTED, RUNNING):
        assert FAILED in TRANSITIONS[state]
        assert CANCELLED in TRANSITIONS[state]
    for state in TERMINAL_STATES:
        assert TRANSITIONS[state] == frozenset()


def test_transition_map_covers_every_state():
    assert set(TRANSITIONS) == set(STATES)


@pytest.mark.parametrize(
    "walk",
    [
        lambda job: job.start(0.0),            # queued -> running skips admit
        lambda job: job.complete(0.0),         # queued -> completed
        lambda job: (job.admit(0.0, "n"), job.complete(0.0)),  # skip start
    ],
)
def test_illegal_transitions_raise(walk):
    job = make_job()
    with pytest.raises(InvalidJobTransition):
        walk(job)


def test_terminal_states_are_final():
    job = make_job()
    job.admit(0.0, "n")
    job.start(0.0)
    job.fail(1.0, "boom")
    assert job.error == "boom"
    for poke in (
        lambda: job.admit(2.0, "n"),
        lambda: job.start(2.0),
        lambda: job.complete(2.0),
        lambda: job.cancel(2.0),
    ):
        with pytest.raises(InvalidJobTransition):
            poke()


def test_requeue_resets_in_flight_job():
    job = make_job(submitted_s=1.0)
    job.admit(2.0, "worker-1")
    job.start(2.0)
    job.requeue()
    assert job.state == QUEUED
    assert job.node is None
    assert job.admitted_s is None
    assert job.started_s is None
    assert job.submitted_s == 1.0  # submission time survives the reset


def test_requeue_refuses_terminal_jobs():
    job = make_job()
    job.cancel(0.0)
    with pytest.raises(InvalidJobTransition):
        job.requeue()


# -- persistence --------------------------------------------------------------


def test_job_json_round_trip_preserves_state_and_stamps():
    job = make_job(submitted_s=1.0)
    job.admit(2.0, "worker-3")
    job.start(2.0)
    job.complete(5.0, result=object())  # runtime-only, must not serialize
    doc = job.to_json()
    assert "result" not in doc and "_body_fn" not in doc
    clone = Job.from_json(doc)
    assert clone.job_id == job.job_id
    assert clone.spec == job.spec
    assert clone.state == COMPLETED
    assert clone.node == "worker-3"
    assert (clone.submitted_s, clone.admitted_s, clone.started_s,
            clone.finished_s) == (1.0, 2.0, 2.0, 5.0)
    assert clone.result is None


def test_job_from_json_rejects_unknown_state():
    doc = make_job().to_json()
    doc["state"] = "paused"
    with pytest.raises(ValueError, match="paused"):
        Job.from_json(doc)
