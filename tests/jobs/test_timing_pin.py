"""The job service must be invisible until it multiplexes.

Three dormancy guarantees:

* **dormant layer**: installing a jobs config (``jobs_enabled``)
  changes nothing about direct engine runs — every pinned task timing
  stays bit-identical to the pre-``repro.jobs`` seed;
* **single job == direct run**: one job submitted by one tenant runs
  its task body on a fresh cluster exactly as the seed would — the
  body's measured virtual time equals the SEED_TIMINGS constant, and
  the output rows are identical to a direct run;
* **service accounting is separate**: the service cluster's clock
  advances by the body's elapsed time (the job occupies its
  reservation for exactly that long), with zero admission latency for
  an uncontended submission.
"""

from repro.jobs import JobService, JobSpec, jobs_enabled
from repro.tasks.base import fresh_cluster
from repro.tasks.kge.common import make_kge_dataset
from repro.tasks.kge.script import run_kge_script
from tests.obs.test_timing_regression import SEED_TIMINGS, _run_all

#: body name -> SEED_TIMINGS key (bodies register at the pinned scales).
PINNED_BODIES = {
    "dice/script": "dice/script-4",
    "dice/workflow": "dice/workflow-4",
    "kge/script": "kge/script",
    "kge/workflow": "kge/workflow",
}


def test_installed_jobs_config_does_not_perturb_direct_runs():
    with jobs_enabled("on,rate=50,tenants=8,policy=drf"):
        timings = _run_all()
    assert timings == SEED_TIMINGS


def test_single_job_task_timings_bit_identical_to_seed():
    for body, key in PINNED_BODIES.items():
        service = JobService()
        job = service.run_job(JobSpec(body=body))
        assert job.state == "completed", job.error
        assert job.result.run.elapsed_s == SEED_TIMINGS[key], body
        # The body's virtual time is the job's occupancy on the
        # service cluster; an uncontended job waits zero.
        assert job.queue_latency_s == 0.0
        assert service.env.now == SEED_TIMINGS[key]


def test_single_job_outputs_identical_to_direct_run():
    direct = run_kge_script(
        fresh_cluster(), make_kge_dataset(300, universe_size=1000)
    )
    job = JobService().run_job(JobSpec(body="kge/script"))
    assert job.result.run.output.rows == direct.output.rows
    assert job.result.run.elapsed_s == direct.elapsed_s
