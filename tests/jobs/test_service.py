"""The job service: admission, quotas, backpressure, persistence, telemetry."""

import pytest

from repro.config import GIB, JobsConfig
from repro.errors import InvalidJobTransition, JobQueueFull
from repro.jobs import JobResult, JobService, JobSpec, percentile
from repro.obs import Tracer, tracing


def profile(duration_s=1.0, **kwargs):
    return JobSpec(duration_s=duration_s, **kwargs)


# -- percentile ---------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [float(i) for i in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0
    assert percentile([5.0], 99) == 5.0
    assert percentile([], 50) is None
    with pytest.raises(ValueError):
        percentile([1.0], 101)


# -- single jobs --------------------------------------------------------------


def test_single_job_runs_to_completion():
    service = JobService()
    job = service.run_job(profile(2.5))
    assert job.state == "completed"
    assert job.queue_latency_s == 0.0
    assert service.env.now == 2.5
    assert isinstance(job.result, JobResult)
    assert service.queue.drained


def test_body_fn_override_wins_over_registry():
    service = JobService()
    job = service.run_job(
        profile(), body_fn=lambda spec: JobResult(duration_s=0.5, value=41 + 1)
    )
    assert job.result.value == 42
    assert service.env.now == 0.5


def test_fail_body_reaches_failed_state_and_frees_resources():
    service = JobService()
    job = service.run_job(JobSpec(body="fail"))
    assert job.state == "failed"
    assert "JobBodyError" in job.error
    assert service.running == 0
    assert all(held == 0 for held in service._cpus_held.values())
    assert all(node.ram_used == 0 for node in service.cluster.workers)


def test_impossible_demand_fails_immediately_not_deadlocks():
    service = JobService()
    job = service.submit(profile(cpus=99))
    assert job.state == "failed"
    assert "exceeds every node" in job.error


def test_demand_above_tenant_quota_fails_immediately():
    service = JobService(JobsConfig(quota_cpus=2))
    job = service.submit(profile(cpus=4))
    assert job.state == "failed"
    assert "quota" in job.error


def test_cancel_queued_only():
    service = JobService()
    job = service.submit(profile())
    cancelled = service.cancel(job.job_id)
    assert cancelled.state == "cancelled"
    done = service.run_job(profile())
    with pytest.raises(InvalidJobTransition):
        service.cancel(done.job_id)


def test_queue_capacity_rejects_loudly():
    service = JobService(JobsConfig(max_queue=1))
    service.submit(profile())
    with pytest.raises(JobQueueFull):
        service.submit(profile())
    assert service.queue.rejected == 1


# -- admission control --------------------------------------------------------


def test_running_quota_serializes_one_tenants_jobs():
    service = JobService(JobsConfig(quota_running=1))
    for _ in range(3):
        service.submit(profile(1.0))
    service.run_pending()
    # One at a time: the makespan is the sum, not the max.
    assert service.env.now == 3.0
    assert service.counts()["completed"] == 3
    assert service.blocked["quota"] > 0


def test_quota_blocks_one_tenant_not_the_cluster():
    service = JobService(JobsConfig(quota_running=1))
    for _ in range(2):
        service.submit(profile(1.0, tenant="greedy"))
    service.submit(profile(1.0, tenant="patient"))
    service.run_pending()
    # greedy serializes (2s) but patient ran alongside the first.
    assert service.env.now == 2.0
    assert service.counts()["completed"] == 3


def test_cpu_capacity_blocks_then_drains():
    # 4 workers x 8 vCPUs: five 8-vCPU jobs need two waves.
    service = JobService()
    for _ in range(5):
        service.submit(profile(1.0, cpus=8, ram_bytes=0))
    service.run_pending()
    assert service.env.now == 2.0
    assert service.counts()["completed"] == 5
    assert service.blocked["capacity"] > 0
    assert service.blocked["backpressure"] == 0


def test_ram_watermark_backpressure_blocks_then_drains():
    # 64 GiB nodes at a 0.5 watermark admit one 30 GiB job each but
    # never two (60 GiB > 32 GiB ceiling): 8 jobs need two waves.
    service = JobService(JobsConfig(admission_watermark=0.5))
    for _ in range(8):
        service.submit(profile(1.0, cpus=1, ram_bytes=30 * GIB))
    service.run_pending()
    assert service.env.now == 2.0
    assert service.counts()["completed"] == 8
    assert service.blocked["backpressure"] > 0
    assert all(node.ram_used == 0 for node in service.cluster.workers)


def test_watermark_defaults_to_memory_policy():
    service = JobService()
    assert (
        service.admission_watermark
        == service.cluster.memory.config.admission_watermark
    )
    override = JobService(JobsConfig(admission_watermark=0.25))
    assert override.admission_watermark == 0.25


@pytest.mark.parametrize("placement", ["round_robin", "least_loaded", "drf"])
def test_every_placement_policy_drains_the_same_workload(placement):
    service = JobService(JobsConfig(placement=placement))
    for i in range(10):
        service.submit(profile(1.0, cpus=4, tenant=f"tenant-{i % 3}"))
    service.run_pending()
    assert service.counts()["completed"] == 10
    assert service.queue.drained


# -- traffic runs -------------------------------------------------------------

TRAFFIC = JobsConfig(
    enabled=True, seed=3, rate_per_s=30.0, horizon_s=5.0, tenants=3,
    duration_s=0.5,
)


def test_simulate_is_deterministic():
    first = JobService(TRAFFIC).simulate()
    second = JobService(TRAFFIC).simulate()
    assert first == second
    assert first["jobs"] > 0
    assert first["counts"]["completed"] == first["jobs"]


def test_summary_shape_and_consistency():
    summary = JobService(TRAFFIC).simulate()
    assert set(summary["tenants"]) <= {f"tenant-{i}" for i in range(3)}
    total = sum(s["submitted"] for s in summary["tenants"].values())
    assert total == summary["jobs"]
    assert summary["p99_queue_s"] >= summary["p50_queue_s"] >= 0.0
    assert summary["peak_queue_depth"] >= 1
    assert summary["virtual_jobs_per_s"] > 0.0


def test_open_loop_rejections_do_not_stop_traffic():
    config = JobsConfig(
        enabled=True, seed=3, rate_per_s=30.0, horizon_s=5.0,
        duration_s=0.5, cpus=8, max_queue=5,
    )
    summary = JobService(config).simulate()
    assert summary["rejected"] > 0
    assert summary["jobs"] + summary["rejected"] > summary["jobs"]
    assert summary["counts"]["completed"] == summary["jobs"]


# -- persistence --------------------------------------------------------------


def test_save_and_resume_queued_jobs(tmp_path):
    service = JobService()
    for _ in range(3):
        service.submit(profile(1.0))
    path = service.save(tmp_path / "service.json")
    resumed = JobService.resume(path)
    assert resumed.requeued == 0  # they were still queued, not in flight
    resumed.run_pending()
    assert resumed.counts()["completed"] == 3


def test_resume_requeues_in_flight_jobs():
    service = JobService()
    job = service.submit(profile(1.0))
    job.admit(0.0, "worker-0")  # snapshot catches it mid-admission
    snapshot = service.snapshot()
    resumed = JobService.resume(snapshot)
    assert resumed.requeued == 1
    resumed.run_pending()
    assert resumed.queue.get(job.job_id).state == "completed"


def test_resume_continues_the_virtual_clock():
    service = JobService()
    service.run_job(profile(2.0))
    resumed = JobService.resume(service.snapshot())
    assert resumed.env.now == 2.0
    resumed.submit(profile(1.0))
    resumed.run_pending()
    assert resumed.env.now == 3.0


# -- telemetry ----------------------------------------------------------------


def test_jobs_telemetry_flows_through_obs():
    with tracing(Tracer()) as tracer:
        service = JobService(TRAFFIC)
        summary = service.simulate()
    metrics = tracer.metrics
    assert metrics.total("jobs.submitted") == summary["jobs"]
    assert metrics.total("jobs.admitted") == summary["counts"]["completed"]
    assert metrics.total("jobs.completed") == summary["counts"]["completed"]
    spans = [s for s in tracer.spans if s.category == "jobs.job"]
    assert len(spans) == summary["jobs"]
    assert spans[0].attrs["tenant"].startswith("tenant-")
    assert spans[0].attrs["state"] == "completed"


def test_untraced_runs_emit_nothing_and_match_traced_outcomes():
    plain = JobService(TRAFFIC).simulate()
    with tracing(Tracer()):
        traced = JobService(TRAFFIC).simulate()
    assert plain == traced
