"""Persistent queue: ordering, capacity, JSON snapshots, resume resets."""

import pytest

from repro.errors import JobQueueFull, UnknownJob
from repro.jobs import JobQueue, JobSpec
from repro.jobs.queue import SNAPSHOT_VERSION


def test_ids_are_sequential_and_order_is_submission_order():
    queue = JobQueue()
    jobs = [queue.submit(JobSpec(), now=float(i)) for i in range(3)]
    assert [job.job_id for job in jobs] == [
        "job-000000", "job-000001", "job-000002",
    ]
    assert queue.jobs() == jobs
    assert queue.pending() == jobs
    assert len(queue) == 3


def test_get_by_id_and_unknown_raises():
    queue = JobQueue()
    job = queue.submit(JobSpec(), now=0.0)
    assert queue.get(job.job_id) is job
    with pytest.raises(UnknownJob, match="job-999999"):
        queue.get("job-999999")


def test_depth_counts_only_waiting_jobs():
    queue = JobQueue()
    first = queue.submit(JobSpec(), now=0.0)
    queue.submit(JobSpec(), now=0.0)
    assert queue.depth == 2
    first.admit(1.0, "worker-0")
    assert queue.depth == 1
    assert not queue.drained
    assert first not in queue.pending()


def test_drained_means_every_job_terminal():
    queue = JobQueue()
    job = queue.submit(JobSpec(), now=0.0)
    assert not queue.drained
    job.cancel(1.0)
    assert queue.drained


def test_capacity_bounds_waiting_jobs_not_history():
    queue = JobQueue(max_queue=2)
    first = queue.submit(JobSpec(), now=0.0)
    queue.submit(JobSpec(), now=0.0)
    with pytest.raises(JobQueueFull):
        queue.submit(JobSpec(), now=0.0)
    assert queue.rejected == 1
    # Terminal jobs stay in the queue (audit log) but free capacity.
    first.cancel(1.0)
    queue.submit(JobSpec(), now=1.0)
    assert queue.rejected == 1
    assert len(queue) == 3


def test_max_queue_must_be_positive():
    with pytest.raises(ValueError):
        JobQueue(max_queue=0)


# -- persistence --------------------------------------------------------------


def test_snapshot_round_trip(tmp_path):
    queue = JobQueue(max_queue=5)
    done = queue.submit(JobSpec(tenant="a"), now=0.0)
    done.admit(1.0, "worker-0")
    done.start(1.0)
    done.complete(2.0)
    queue.submit(JobSpec(tenant="b"), now=0.5)
    path = queue.save(tmp_path / "queue.json")
    loaded = JobQueue.load(path)
    assert loaded.max_queue == 5
    assert [job.job_id for job in loaded] == [job.job_id for job in queue]
    assert [job.state for job in loaded] == ["completed", "queued"]
    # New submissions continue the id sequence, never reuse ids.
    assert loaded.submit(JobSpec(), now=3.0).job_id == "job-000002"


def test_snapshot_version_mismatch_rejected():
    doc = JobQueue().to_json()
    doc["version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(ValueError, match="snapshot version"):
        JobQueue.from_json(doc)


def test_requeue_nonterminal_resets_in_flight_only():
    queue = JobQueue()
    running = queue.submit(JobSpec(), now=0.0)
    running.admit(1.0, "worker-0")
    running.start(1.0)
    done = queue.submit(JobSpec(), now=0.0)
    done.cancel(1.0)
    waiting = queue.submit(JobSpec(), now=0.0)
    assert queue.requeue_nonterminal() == 1
    assert running.state == "queued" and running.node is None
    assert done.state == "cancelled"
    assert waiting.state == "queued"
