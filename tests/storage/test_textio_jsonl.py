"""Unit tests for sentence splitting and JSONL IO."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    TextDocument,
    dumps_jsonl,
    loads_jsonl,
    read_jsonl,
    split_sentences,
    write_jsonl,
)


def test_split_simple_sentences():
    text = "First sentence. Second one! Third?"
    sentences = split_sentences("d", text)
    assert [s.text for s in sentences] == [
        "First sentence.",
        "Second one!",
        "Third?",
    ]


def test_offsets_slice_back_to_text():
    text = "The patient was a 34-yr-old man. He presented with fever.  Cough too."
    for s in split_sentences("d", text):
        assert text[s.start : s.end] == s.text


def test_abbreviation_like_periods_without_space_do_not_split():
    text = "Dosage was 2.5 mg daily. Next sentence."
    sentences = split_sentences("d", text)
    assert len(sentences) == 2
    assert sentences[0].text == "Dosage was 2.5 mg daily."


def test_unterminated_tail_becomes_sentence():
    sentences = split_sentences("d", "No terminator here")
    assert len(sentences) == 1
    assert sentences[0].text == "No terminator here"


def test_empty_and_whitespace_text():
    assert split_sentences("d", "") == []
    assert split_sentences("d", "   \n  ") == []


def test_sentence_indices_sequential():
    sentences = split_sentences("d", "A. B. C.")
    assert [s.index for s in sentences] == [0, 1, 2]


def test_contains_span():
    sentences = split_sentences("d", "Hello there. Goodbye now.")
    first, second = sentences
    assert first.contains_span(0, 5)
    assert not first.contains_span(13, 20)
    assert second.contains_span(13, 20)


def test_text_document_sentences():
    doc = TextDocument("d1", "One. Two.")
    assert len(doc.sentences()) == 2
    assert doc.sentences()[0].doc_id == "d1"


def test_jsonl_roundtrip_in_memory():
    records = [{"a": 1}, {"b": [1, 2], "c": "x"}]
    assert loads_jsonl(dumps_jsonl(records)) == records


def test_jsonl_file_roundtrip(tmp_path):
    path = tmp_path / "data.jsonl"
    records = [{"id": i, "text": f"t{i}"} for i in range(5)]
    assert write_jsonl(path, records) == 5
    assert read_jsonl(path) == records


def test_jsonl_skips_blank_lines():
    assert loads_jsonl('{"a": 1}\n\n{"b": 2}\n') == [{"a": 1}, {"b": 2}]


def test_jsonl_rejects_invalid_json():
    with pytest.raises(StorageError):
        loads_jsonl("{broken\n")


def test_jsonl_rejects_non_objects():
    with pytest.raises(StorageError):
        loads_jsonl("[1, 2, 3]\n")


def test_iter_jsonl_streams(tmp_path):
    from repro.storage import iter_jsonl

    path = tmp_path / "s.jsonl"
    write_jsonl(path, [{"i": i} for i in range(3)])
    assert [r["i"] for r in iter_jsonl(path)] == [0, 1, 2]
