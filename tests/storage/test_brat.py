"""Unit tests for the BRAT annotation format (Fig 3 of the paper)."""

import pytest

from repro.errors import AnnotationParseError
from repro.storage import (
    EntityAnnotation,
    EventAnnotation,
    parse_annotations,
    serialize_annotations,
)

SAMPLE = """T1\tAge 18 27\t34-yr-old
T2\tSex 28 31\tman
T3\tClinical_event 36 45\tpresented
T4\tSign_symptom 65 70\tfever
E1\tClinical_event:T3
E2\tSign_symptom:T4 Modifier:T2
"""


def test_parse_entities():
    doc = parse_annotations("doc0", SAMPLE)
    assert len(doc.entities) == 4
    age = doc.entities[0]
    assert age.key == "T1"
    assert age.ann_type == "Age"
    assert (age.start, age.end) == (18, 27)
    assert age.text == "34-yr-old"


def test_parse_events_with_arguments():
    doc = parse_annotations("doc0", SAMPLE)
    assert len(doc.events) == 2
    e2 = doc.events[1]
    assert e2.trigger_type == "Sign_symptom"
    assert e2.trigger_ref == "T4"
    assert e2.arguments == (("Modifier", "T2"),)


def test_roundtrip():
    doc = parse_annotations("doc0", SAMPLE)
    assert serialize_annotations(doc) == SAMPLE
    again = parse_annotations("doc0", serialize_annotations(doc))
    assert again.entities == doc.entities
    assert again.events == doc.events


def test_entity_index():
    doc = parse_annotations("doc0", SAMPLE)
    assert doc.entity_index()["T3"].text == "presented"


def test_validate_references_ok():
    parse_annotations("doc0", SAMPLE).validate_references()


def test_validate_references_detects_dangling_trigger():
    doc = parse_annotations("doc0", "E1\tClinical_event:T9\n")
    with pytest.raises(AnnotationParseError):
        doc.validate_references()


def test_validate_references_detects_dangling_argument():
    content = "T1\tAge 0 3\tfoo\nE1\tAge:T1 Mod:T9\n"
    doc = parse_annotations("doc0", content)
    with pytest.raises(AnnotationParseError):
        doc.validate_references()


def test_blank_lines_and_comments_skipped():
    doc = parse_annotations("doc0", "\n# comment\n" + SAMPLE)
    assert len(doc.entities) == 4


def test_unknown_standoff_kinds_ignored():
    doc = parse_annotations("doc0", SAMPLE + "R1\tRel Arg1:T1 Arg2:T2\n")
    assert len(doc.entities) == 4
    assert len(doc.events) == 2


def test_bad_entity_line_raises():
    with pytest.raises(AnnotationParseError):
        parse_annotations("doc0", "T1\tAge notanint 27\tx\n")


def test_bad_event_line_raises():
    with pytest.raises(AnnotationParseError):
        parse_annotations("doc0", "E1\tno-colon-here\n")


def test_entity_span_validation():
    with pytest.raises(AnnotationParseError):
        EntityAnnotation("T1", "Age", 10, 5, "x")
    with pytest.raises(AnnotationParseError):
        EntityAnnotation("X1", "Age", 0, 5, "x")


def test_event_key_validation():
    with pytest.raises(AnnotationParseError):
        EventAnnotation("T1", "Age", "T2")
    with pytest.raises(AnnotationParseError):
        EventAnnotation("E1", "Age", "E2")


def test_tabs_in_covered_text_preserved():
    doc = parse_annotations("d", "T1\tAge 0 5\ta\tb\n")
    assert doc.entities[0].text == "a\tb"
