"""Unit tests for CSV table IO."""

import pytest

from repro.errors import StorageError
from repro.relational import FieldType, Schema, Table
from repro.storage import read_csv, table_from_csv, table_to_csv, write_csv

SCHEMA = Schema.of(
    id=FieldType.INT,
    name=FieldType.STRING,
    price=FieldType.FLOAT,
    active=FieldType.BOOL,
)


def make_table():
    return Table.from_rows(
        SCHEMA,
        [
            [1, "widget", 9.99, True],
            [2, "gizmo", 0.5, False],
            [3, None, None, None],
        ],
    )


def test_roundtrip_in_memory():
    table = make_table()
    again = table_from_csv(table_to_csv(table), SCHEMA)
    assert again.to_dicts() == table.to_dicts()


def test_roundtrip_on_disk(tmp_path):
    path = tmp_path / "t.csv"
    assert write_csv(path, make_table()) == 3
    assert read_csv(path, SCHEMA).to_dicts() == make_table().to_dicts()


def test_header_written_first():
    text = table_to_csv(make_table())
    assert text.splitlines()[0] == "id,name,price,active"


def test_nulls_roundtrip_as_empty():
    table = table_from_csv("id,name,price,active\n,,,\n", SCHEMA)
    assert table[0].as_dict() == {
        "id": None,
        "name": None,
        "price": None,
        "active": None,
    }


def test_column_reordering():
    text = "name,id,active,price\nwidget,1,true,9.99\n"
    table = table_from_csv(text, SCHEMA)
    assert table[0]["id"] == 1
    assert table[0]["name"] == "widget"


def test_missing_header_rejected():
    with pytest.raises(StorageError, match="missing"):
        table_from_csv("id,name\n1,x\n", SCHEMA)


def test_extra_column_rejected():
    with pytest.raises(StorageError, match="unexpected"):
        table_from_csv("id,name,price,active,bonus\n", SCHEMA)


def test_empty_content_rejected():
    with pytest.raises(StorageError, match="empty"):
        table_from_csv("", SCHEMA)


def test_bad_int_rejected():
    with pytest.raises(StorageError, match="parse"):
        table_from_csv("id,name,price,active\nnotanint,x,1.0,true\n", SCHEMA)


def test_bad_bool_rejected():
    with pytest.raises(StorageError):
        table_from_csv("id,name,price,active\n1,x,1.0,yes\n", SCHEMA)


def test_ragged_row_rejected():
    with pytest.raises(StorageError, match="expected"):
        table_from_csv("id,name,price,active\n1,x\n", SCHEMA)


def test_quoted_commas_roundtrip():
    table = Table.from_rows(SCHEMA, [[1, "a,b,c", 1.0, True]])
    again = table_from_csv(table_to_csv(table), SCHEMA)
    assert again[0]["name"] == "a,b,c"
