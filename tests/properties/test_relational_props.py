"""Property-based tests for the relational substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    FieldType,
    Schema,
    StreamingHashJoin,
    Table,
    Tuple,
    hash_join,
)

KEYS = st.integers(min_value=0, max_value=8)  # small domain -> collisions
LEFT_SCHEMA = Schema.of(k=FieldType.INT, a=FieldType.INT)
RIGHT_SCHEMA = Schema.of(k=FieldType.INT, b=FieldType.INT)

left_tables = st.lists(
    st.tuples(KEYS, st.integers()), max_size=30
).map(lambda rows: Table.from_rows(LEFT_SCHEMA, [list(r) for r in rows]))
right_tables = st.lists(
    st.tuples(KEYS, st.integers()), max_size=30
).map(lambda rows: Table.from_rows(RIGHT_SCHEMA, [list(r) for r in rows]))


def nested_loop_join(left, right):
    """Oracle: brute-force inner join."""
    out = []
    for l in left:
        for r in right:
            if l["k"] == r["k"]:
                out.append((l["k"], l["a"], r["k"], r["b"]))
    return sorted(out)


@given(left_tables, right_tables)
def test_hash_join_equals_nested_loop(left, right):
    joined = hash_join(left, right, "k", "k")
    got = sorted(tuple(row.values) for row in joined)
    assert got == nested_loop_join(left, right)


@given(left_tables, right_tables)
def test_left_join_covers_all_left_rows(left, right):
    joined = hash_join(left, right, "k", "k", how="left")
    # Every left row appears at least once.
    left_keys = sorted((row["k"], row["a"]) for row in left)
    out_keys = sorted(set((row["k"], row["a"]) for row in joined))
    assert sorted(set(left_keys)) == out_keys


@given(left_tables, right_tables)
def test_semi_plus_anti_partition_left(left, right):
    semi = hash_join(left, right, "k", "k", how="left_semi")
    anti = hash_join(left, right, "k", "k", how="left_anti")
    assert len(semi) + len(anti) == len(left)
    right_keys = set(right.column("k"))
    assert all(row["k"] in right_keys for row in semi)
    assert all(row["k"] not in right_keys for row in anti)


@given(left_tables, right_tables)
@settings(max_examples=50)
def test_streaming_join_equals_batch_join(left, right):
    join = StreamingHashJoin(RIGHT_SCHEMA, LEFT_SCHEMA, "k", "k")
    for row in right:
        join.add_build_tuple(row)
    join.finish_build()
    streamed = sorted(
        tuple(out.values) for row in left for out in join.probe(row)
    )
    batch = sorted(
        tuple(row.values) for row in hash_join(left, right, "k", "k")
    )
    assert streamed == batch


@given(left_tables)
def test_filter_then_count_consistent(table):
    predicate = lambda row: row["k"] % 2 == 0
    kept = table.filter(predicate)
    assert len(kept) == sum(1 for row in table if predicate(row))
    assert all(predicate(row) for row in kept)


@given(left_tables)
def test_sort_is_permutation_and_ordered(table):
    ordered = table.sort_by("k")
    assert sorted(tuple(r.values) for r in table) == sorted(
        tuple(r.values) for r in ordered
    )
    keys = ordered.column("k")
    assert keys == sorted(keys)


@given(left_tables)
def test_distinct_is_idempotent(table):
    once = table.distinct()
    twice = once.distinct()
    assert once.rows == twice.rows
    assert len(once) <= len(table)


@given(left_tables)
def test_projection_preserves_row_count(table):
    projected = table.project(["a"])
    assert len(projected) == len(table)
    assert projected.column("a") == table.column("a")


@given(st.lists(st.tuples(KEYS, st.integers()), max_size=30))
def test_group_by_partitions_rows(rows):
    table = Table.from_rows(LEFT_SCHEMA, [list(r) for r in rows])
    groups = table.group_by("k")
    assert sum(len(g) for g in groups.values()) == len(table)
    for key, group in groups.items():
        assert all(row["k"] == key for row in group)


@given(st.dictionaries(st.sampled_from(["k", "a"]), st.integers(), max_size=2))
def test_tuple_from_dict_roundtrip(mapping):
    row = Tuple.from_dict(LEFT_SCHEMA, mapping)
    as_dict = row.as_dict()
    for name in LEFT_SCHEMA.names:
        assert as_dict[name] == mapping.get(name)
