"""Properties of the optimized DES kernel.

The kernel fast path (slotted events, the immediate/tail/heap triple
queue, inline succeed/fail) must be *invisible*: every run is ordered
and timed exactly as the single-heap seed kernel.  Two guards:

* pinned virtual timings for every paper task under a fixed injected
  fault schedule — recorded by running the identical workload on the
  pre-optimization kernel (clean-run pins live in
  ``tests/obs/test_timing_regression.py``);
* a Hypothesis property checking the core ordering contract directly:
  events complete in ``(time, priority, sequence)`` order no matter how
  delays, priorities and zero-delay wakeups interleave.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.fsqa import generate_fsqa
from repro.datasets.maccrobat import generate_maccrobat
from repro.datasets.wildfire import generate_wildfire_tweets
from repro.faults import FaultSchedule, faults_injected
from repro.sim import Environment
from repro.sim.core import NORMAL, TRIGGERED, URGENT
from repro.tasks.base import fresh_cluster
from repro.tasks.dice.script import run_dice_script
from repro.tasks.dice.workflow import run_dice_workflow
from repro.tasks.gotta.script import run_gotta_script
from repro.tasks.gotta.workflow import run_gotta_workflow
from repro.tasks.kge.common import make_kge_dataset
from repro.tasks.kge.script import run_kge_script
from repro.tasks.kge.workflow import run_kge_workflow
from repro.tasks.wef.script import run_wef_script
from repro.tasks.wef.workflow import run_wef_workflow

#: Virtual timings of every paper task under one fixed fault schedule,
#: recorded on the pre-optimization (single-heap) kernel.  Exact float
#: equality is intentional: retries, backoffs and checkpoint restores
#: amplify any ordering drift, so agreement here means the fast path is
#: bit-identical even on the adversarial recovery paths.
FAULT_SEED_TIMINGS = {
    "gotta/script-1": 146.53636422480747,
    "gotta/workflow-1": 63.54263398720341,
    "gotta/script-4": 395.2392738549409,
    "dice/script-4": 8.2103241998,
    "dice/workflow-4": 8.120559969866665,
    "kge/script": 21.649590524133334,
    "kge/workflow": 14.977701228366675,
    "wef/script": 336.2067139711333,
    "wef/workflow": 258.4677945387333,
}


def _schedule():
    return FaultSchedule.generate(
        seed=1234, horizon_s=60.0, tasks=2, operators=1, nodes=1, links=1,
        replicas=1,
    )


def test_all_tasks_bit_identical_under_fault_schedule():
    paras1 = generate_fsqa(1)
    paras4 = generate_fsqa(4)
    reports = generate_maccrobat(4)
    kge = make_kge_dataset(300, universe_size=1000)
    tweets = generate_wildfire_tweets(40)
    runners = {
        "gotta/script-1": lambda: run_gotta_script(fresh_cluster(), paras1),
        "gotta/workflow-1": lambda: run_gotta_workflow(fresh_cluster(), paras1),
        "gotta/script-4": lambda: run_gotta_script(fresh_cluster(), paras4),
        "dice/script-4": lambda: run_dice_script(fresh_cluster(), reports),
        "dice/workflow-4": lambda: run_dice_workflow(fresh_cluster(), reports),
        "kge/script": lambda: run_kge_script(fresh_cluster(), kge),
        "kge/workflow": lambda: run_kge_workflow(fresh_cluster(), kge),
        "wef/script": lambda: run_wef_script(fresh_cluster(), tweets),
        "wef/workflow": lambda: run_wef_workflow(fresh_cluster(), tweets),
    }
    timings = {}
    for key, run in runners.items():
        with faults_injected(_schedule()):
            timings[key] = run().elapsed_s
    assert timings == FAULT_SEED_TIMINGS


# -- ordering property ----------------------------------------------------------

events = st.lists(
    st.tuples(
        st.one_of(
            st.just(0.0),
            st.sampled_from([0.5, 1.0, 1.0, 2.5]),  # force plenty of ties
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=16),
        ),
        st.sampled_from([URGENT, NORMAL]),
    ),
    min_size=1,
    max_size=80,
)


@settings(max_examples=150, deadline=None)
@given(items=events)
def test_events_complete_in_time_priority_sequence_order(items):
    """The triple queue must order exactly like one global heap.

    Schedules a soup of pre-triggered events — duplicate delays, zero
    delays, urgent entries — through the kernel's scheduling paths and
    records the completion order.  It must equal the schedule sorted by
    ``(time, priority, sequence)``; sequence numbers are assigned in
    scheduling order, so a stable sort on ``(time, priority)`` is the
    reference.
    """
    env = Environment()
    completed = []
    for index, (delay, priority) in enumerate(items):
        event = env.event()
        event.add_callback(lambda ev, i=index: completed.append(i))
        if delay == 0.0 and priority == NORMAL and index % 2 == 0:
            # Exercise the succeed() inline path into the immediate deque.
            event.succeed(index)
        else:
            # Exercise _schedule's immediate/tail/heap routing, including
            # URGENT entries, exactly as Timeout and the engines do.
            event.value = index
            event.state = TRIGGERED
            env._schedule(event, delay, priority)
    env.run()
    expected = [
        index
        for _, _, index in sorted(
            (delay, priority, index) for index, (delay, priority) in enumerate(items)
        )
    ]
    assert completed == expected


@settings(max_examples=150, deadline=None)
@given(items=events, boundary=st.sampled_from([0.0, 0.5, 1.0, 3.0, 20.0]))
def test_peek_and_until_agree_with_global_order(items, boundary):
    """``run(until=T)`` processes exactly the events with time <= T."""
    env = Environment()
    completed = []
    for index, (delay, priority) in enumerate(items):
        event = env.event()
        event.add_callback(lambda ev, i=index: completed.append(i))
        event.value = index
        event.state = TRIGGERED
        env._schedule(event, delay, priority)
    env.run(until=boundary)
    expected = [
        index
        for _, _, index in sorted(
            (delay, priority, index)
            for index, (delay, priority) in enumerate(items)
            if delay <= boundary
        )
    ]
    assert completed == expected
    assert env.now == boundary
