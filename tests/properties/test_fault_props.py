"""Property: runs leak no resources, with or without injected faults.

After any run — clean or under an arbitrary seeded fault schedule, on
either engine — every node's RAM reservations are back to baseline and
every vCPU has been released.  Recovery machinery (retries, replica
failover, reconstruction, checkpoint restores) must account for every
byte and core it touches.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.faults import FaultSchedule, faults_injected
from repro.rayx import run_script
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)

schedules = st.one_of(
    st.none(),  # a clean run is a degenerate schedule
    st.builds(
        FaultSchedule.generate,
        seed=st.integers(0, 2**16),
        horizon_s=st.just(8.0),
        tasks=st.integers(0, 3),
        operators=st.integers(0, 2),
        nodes=st.integers(0, 1),
        links=st.integers(0, 1),
        replicas=st.integers(0, 1),
    ),
)


def assert_resources_released(cluster):
    for node in [cluster.controller, *cluster.workers]:
        assert node.ram_used == 0, f"{node.name} leaked {node.ram_used} bytes"
        assert node.cpus.available == node.cpus.capacity, (
            f"{node.name} leaked {node.cpus.capacity - node.cpus.available} vCPUs"
        )


def script_run():
    def task(ctx, x):
        yield from ctx.compute(0.5)
        return [x] * 200

    def driver(rt):
        refs = [rt.submit(task, i) for i in range(4)]
        values = yield from rt.get_all(refs)
        return values

    cluster = build_cluster(Environment())
    run_script(cluster, driver, num_cpus=2)
    return cluster


def workflow_run():
    table = Table.from_rows(SCHEMA, [[i, i / 10] for i in range(120)])
    wf = Workflow("leak-check")
    src = wf.add_operator(TableSource("scan", table))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 2.0)))
    sink = wf.add_operator(SinkOperator("results"))
    wf.link(src, keep)
    wf.link(keep, sink)
    cluster = build_cluster(Environment())
    run_workflow(cluster, wf)
    return cluster


@settings(max_examples=25, deadline=None)
@given(schedule=schedules)
def test_script_run_releases_all_resources(schedule):
    if schedule is None:
        assert_resources_released(script_run())
        return
    with faults_injected(schedule):
        cluster = script_run()
    assert_resources_released(cluster)


@settings(max_examples=25, deadline=None)
@given(schedule=schedules)
def test_workflow_run_releases_all_resources(schedule):
    if schedule is None:
        assert_resources_released(workflow_run())
        return
    with faults_injected(schedule):
        cluster = workflow_run()
    assert_resources_released(cluster)
