"""Property: runs leak no resources, with or without injected faults.

After any run — clean or under an arbitrary seeded fault schedule, on
either engine — every node's RAM reservations are back to baseline and
every vCPU has been released.  Recovery machinery (retries, replica
failover, reconstruction, checkpoint restores) must account for every
byte and core it touches.
"""

import random

from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.workflow.engine as wf_engine

from repro.cluster import build_cluster
from repro.faults import FaultSchedule, faults_injected
from repro.obs import tracing
from repro.rayx import run_script
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)

schedules = st.one_of(
    st.none(),  # a clean run is a degenerate schedule
    st.builds(
        FaultSchedule.generate,
        seed=st.integers(0, 2**16),
        horizon_s=st.just(8.0),
        tasks=st.integers(0, 3),
        operators=st.integers(0, 2),
        nodes=st.integers(0, 1),
        links=st.integers(0, 1),
        replicas=st.integers(0, 1),
    ),
)


def assert_resources_released(cluster, stores=()):
    for node in [cluster.controller, *cluster.workers]:
        assert node.ram_used == 0, f"{node.name} leaked {node.ram_used} bytes"
        assert node.cpus.available == node.cpus.capacity, (
            f"{node.name} leaked {node.cpus.capacity - node.cpus.available} vCPUs"
        )
        # Kernel-level check: no dead process may stay queued in the
        # vCPU FIFO — a stale waiter at the head would starve every
        # request behind it (the leak `ResourceRequest.cancel` exists
        # to prevent).
        assert not node.cpus._waiters, (
            f"{node.name} has {len(node.cpus._waiters)} stale vCPU waiters"
        )
    for store in stores:
        assert not store.items, f"channel store left {len(store.items)} items"
        assert not store._putters, (
            f"channel store left {len(store._putters)} stale putters"
        )
        assert not store._getters, (
            f"channel store left {len(store._getters)} stale getters"
        )


def script_run():
    def task(ctx, x):
        yield from ctx.compute(0.5)
        return [x] * 200

    def driver(rt):
        refs = [rt.submit(task, i) for i in range(4)]
        values = yield from rt.get_all(refs)
        return values

    cluster = build_cluster(Environment())
    run_script(cluster, driver, num_cpus=2)
    return cluster


def workflow_run():
    table = Table.from_rows(SCHEMA, [[i, i / 10] for i in range(120)])
    wf = Workflow("leak-check")
    src = wf.add_operator(TableSource("scan", table))
    keep = wf.add_operator(FilterOperator("keep", column_greater("score", 2.0)))
    sink = wf.add_operator(SinkOperator("results"))
    wf.link(src, keep)
    wf.link(keep, sink)
    # Track every inter-operator channel store the engine creates so the
    # property can assert the kernel queues drained completely.
    stores = []

    class TrackingStore(wf_engine.Store):
        __slots__ = ()

        def __init__(self, env, capacity=None):
            super().__init__(env, capacity)
            stores.append(self)

    cluster = build_cluster(Environment())
    with mock.patch.object(wf_engine, "Store", TrackingStore):
        run_workflow(cluster, wf)
    return cluster, stores


@settings(max_examples=25, deadline=None)
@given(schedule=schedules)
def test_script_run_releases_all_resources(schedule):
    if schedule is None:
        assert_resources_released(script_run())
        return
    with faults_injected(schedule):
        cluster = script_run()
    assert_resources_released(cluster)


@settings(max_examples=25, deadline=None)
@given(schedule=schedules)
def test_workflow_run_releases_all_resources(schedule):
    if schedule is None:
        cluster, stores = workflow_run()
        assert_resources_released(cluster, stores)
        return
    with faults_injected(schedule):
        cluster, stores = workflow_run()
    assert_resources_released(cluster, stores)


@settings(max_examples=15, deadline=None)
@given(schedule=schedules, runner=st.sampled_from(["script", "workflow"]))
def test_busy_seconds_matches_traced_counter(schedule, runner):
    """The ``node.busy_s`` counter and ``Node.busy_seconds`` agree exactly.

    Both accumulate the same float increments in the same order, so the
    equality is bit-exact — under any fault schedule, on either engine.
    A kill mid-compute that billed only one of the two would break this
    (the regression the partial-slice accounting fix closed).
    """
    run = script_run if runner == "script" else (lambda: workflow_run()[0])
    if schedule is None:
        with tracing() as tracer:
            cluster = run()
    else:
        with faults_injected(schedule), tracing() as tracer:
            cluster = run()
    for node in [cluster.controller, *cluster.workers]:
        counted = tracer.metrics.value("node.busy_s", node=node.name)
        assert counted == node.busy_seconds, (
            f"{node.name}: counter {counted} != busy_seconds "
            f"{node.busy_seconds}"
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_drained_node_leaves_no_leaks(seed):
    """``remove_node(drain=True)`` leaks no vCPUs, RAM or waiters.

    A node joins, random compute lands across the fleet, and a drain
    races the work.  Afterwards the worker set has shrunk back and every
    surviving node is at baseline.
    """
    rng = random.Random(seed)
    env = Environment()
    cluster = build_cluster(env)
    cluster.add_node("elastic-0")

    def work(node, duration_s, cores):
        yield from node.compute(duration_s, cores=cores)

    procs = [
        env.process(
            work(
                rng.choice(cluster.workers),
                rng.uniform(0.05, 0.8),
                rng.randint(1, 2),
            )
        )
        for _ in range(6)
    ]

    def drainer():
        yield env.timeout(rng.uniform(0.0, 0.4))
        yield from cluster.remove_node("elastic-0", drain=True)

    drain = env.process(drainer())

    def barrier():
        for proc in procs:
            yield proc
        yield drain

    env.run(until=env.process(barrier()))
    assert "elastic-0" not in cluster.node_names()
    assert not cluster.draining
    assert_resources_released(cluster)
