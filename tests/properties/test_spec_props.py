"""Properties of the spec layer over random generated DAGs.

:mod:`repro.gen` produces seeded, self-contained,
valid-by-construction specs (random depth, fan-out, selectivity,
language mix, worker counts).  For any such spec:

* parsing is a bijection on canonical documents — ``from_json`` then
  ``to_json`` reproduces the document, and re-parsing yields a
  structurally equal spec;
* the logical optimizer never changes the answer: optimized and
  unoptimized plans collect identical row multisets;
* both compilation targets agree: the Ray-like script plan returns
  the same rows as the pipelined engine;
* neither a deterministic fault schedule nor the multi-tenant job
  service changes the answer: recovery replays and service indirection
  reproduce the direct run's rows exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.gen import GenConfig, generate_spec, random_spec
from repro.rayx import compile_script_plan
from repro.sim import Environment
from repro.workflow import run_workflow
from repro.workflow.optimize import optimize_workflow
from repro.workflow.spec import WorkflowSpec, build_workflow

SEEDS = st.integers(min_value=0, max_value=10_000)

#: Random-generator knob space: every combination must stay valid.
KNOBS = st.fixed_dictionaries(
    {
        "depth": st.integers(min_value=1, max_value=7),
        "max_sources": st.integers(min_value=1, max_value=4),
        "fan_out": st.floats(min_value=0.0, max_value=1.0),
        "selectivity": st.floats(min_value=0.0, max_value=1.0),
        "rows": st.integers(min_value=3, max_value=40),
    }
)


def rows_of(table):
    return sorted(tuple(map(str, row.values)) for row in table)


def engine_rows(workflow):
    result = run_workflow(build_cluster(Environment()), workflow)
    return rows_of(result.table())


@given(seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_round_trip_preserves_structure(seed):
    doc = random_spec(seed)
    spec = WorkflowSpec.from_json(doc)
    assert spec.to_json()["operators"] == doc["operators"]
    again = WorkflowSpec.from_json(spec.to_json())
    assert again == spec
    assert again.to_json() == spec.to_json()


@given(seed=SEEDS, knobs=KNOBS)
@settings(max_examples=25, deadline=None)
def test_every_knob_combination_generates_a_valid_spec(seed, knobs):
    doc = generate_spec(GenConfig(seed=seed, **knobs))
    spec = WorkflowSpec.from_json(doc)  # structural validation runs here
    build_workflow(spec)  # and operator-level validation here
    assert spec.to_json_text()  # strict JSON text, no NaN/Infinity


@given(seed=SEEDS)
@settings(max_examples=8, deadline=None)
def test_optimizer_preserves_rows(seed):
    doc = random_spec(seed)
    spec = WorkflowSpec.from_json(doc)
    baseline = engine_rows(build_workflow(spec))
    optimized = engine_rows(optimize_workflow(build_workflow(spec)))
    assert optimized == baseline


@given(seed=SEEDS)
@settings(max_examples=8, deadline=None)
def test_both_paradigms_collect_identical_rows(seed):
    doc = random_spec(seed)
    spec = WorkflowSpec.from_json(doc)
    baseline = engine_rows(build_workflow(spec))
    tables = compile_script_plan(spec).run()
    (sink_rows,) = [rows_of(table) for table in tables.values()]
    assert sink_rows == baseline


@given(seed=SEEDS, fault_seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=6, deadline=None)
def test_fault_recovery_preserves_generated_rows(seed, fault_seed):
    from repro.faults import FaultSchedule, faults_injected

    spec = WorkflowSpec.from_json(random_spec(seed))
    baseline = engine_rows(build_workflow(spec))
    schedule = FaultSchedule.from_spec(f"seed={fault_seed},tasks=2,horizon=30")
    with faults_injected(schedule):
        recovered = engine_rows(build_workflow(spec))
    assert recovered == baseline


@given(
    family=st.sampled_from(["stream", "smallsteps", "raster"]),
    paradigm=st.sampled_from(["workflow", "script"]),
)
@settings(max_examples=6, deadline=None)
def test_job_service_reproduces_direct_family_run(family, paradigm):
    from repro.config import JobsConfig
    from repro.gen import run_family
    from repro.jobs import JobService, JobSpec

    direct = run_family(family, paradigm=paradigm)
    job = JobService(JobsConfig(enabled=True)).run_job(
        JobSpec(tenant="props", body=f"gen/{family}/{paradigm}")
    )
    assert job.state == "completed", job.error
    assert job.result.value.rows == direct.rows
    assert job.result.value.elapsed_s == direct.elapsed_s
