"""Properties of the spec layer over random generated DAGs.

``tests/support/dag_gen.py`` produces seeded, self-contained,
valid-by-construction specs (random depth, fan-in, language mix,
worker counts).  For any such spec:

* parsing is a bijection on canonical documents — ``from_json`` then
  ``to_json`` reproduces the document, and re-parsing yields a
  structurally equal spec;
* the logical optimizer never changes the answer: optimized and
  unoptimized plans collect identical row multisets;
* both compilation targets agree: the Ray-like script plan returns
  the same rows as the pipelined engine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.rayx import compile_script_plan
from repro.sim import Environment
from repro.workflow import run_workflow
from repro.workflow.optimize import optimize_workflow
from repro.workflow.spec import WorkflowSpec, build_workflow
from tests.support.dag_gen import random_spec

SEEDS = st.integers(min_value=0, max_value=10_000)


def rows_of(table):
    return sorted(tuple(map(str, row.values)) for row in table)


def engine_rows(workflow):
    result = run_workflow(build_cluster(Environment()), workflow)
    return rows_of(result.table())


@given(seed=SEEDS)
@settings(max_examples=25, deadline=None)
def test_round_trip_preserves_structure(seed):
    doc = random_spec(seed)
    spec = WorkflowSpec.from_json(doc)
    assert spec.to_json()["operators"] == doc["operators"]
    again = WorkflowSpec.from_json(spec.to_json())
    assert again == spec
    assert again.to_json() == spec.to_json()


@given(seed=SEEDS)
@settings(max_examples=8, deadline=None)
def test_optimizer_preserves_rows(seed):
    doc = random_spec(seed)
    spec = WorkflowSpec.from_json(doc)
    baseline = engine_rows(build_workflow(spec))
    optimized = engine_rows(optimize_workflow(build_workflow(spec)))
    assert optimized == baseline


@given(seed=SEEDS)
@settings(max_examples=8, deadline=None)
def test_both_paradigms_collect_identical_rows(seed):
    doc = random_spec(seed)
    spec = WorkflowSpec.from_json(doc)
    baseline = engine_rows(build_workflow(spec))
    tables = compile_script_plan(spec).run()
    (sink_rows,) = [rows_of(table) for table in tables.values()]
    assert sink_rows == baseline
