"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=25
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    env = Environment()
    fired = []

    def proc(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delay_list:
        env.process(proc(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)
    assert env.now == max(delay_list)


@given(delays, st.integers(min_value=1, max_value=8))
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(durations, capacity):
    env = Environment()
    resource = Resource(env, capacity)
    max_seen = [0]

    def worker(env, hold):
        yield resource.request()
        max_seen[0] = max(max_seen[0], resource.in_use)
        assert resource.in_use <= capacity
        yield env.timeout(hold)
        resource.release()

    for hold in durations:
        env.process(worker(env, hold))
    env.run()
    assert resource.in_use == 0
    assert max_seen[0] <= capacity


@given(delays, st.integers(min_value=1, max_value=8))
@settings(max_examples=50)
def test_resource_serial_time_lower_bound(durations, capacity):
    """Makespan >= total work / capacity (no time is invented)."""
    env = Environment()
    resource = Resource(env, capacity)

    def worker(env, hold):
        yield resource.request()
        yield env.timeout(hold)
        resource.release()

    for hold in durations:
        env.process(worker(env, hold))
    env.run()
    assert env.now >= sum(durations) / capacity - 1e-9
    assert env.now >= max(durations) - 1e-9


@given(st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(
    st.lists(st.integers(), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_bounded_store_never_overflows(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    peak = [0]

    def producer(env):
        for item in items:
            yield store.put(item)
            peak[0] = max(peak[0], len(store))

    def consumer(env):
        for _ in items:
            yield env.timeout(1.0)
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert peak[0] <= capacity


@given(delays)
def test_all_of_waits_for_slowest(delay_list):
    env = Environment()

    def child(env, delay):
        yield env.timeout(delay)
        return delay

    def parent(env):
        procs = [env.process(child(env, d)) for d in delay_list]
        yield env.all_of(procs)
        return env.now

    finish = env.run(until=env.process(parent(env)))
    assert finish == max(delay_list)
