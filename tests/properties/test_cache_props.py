"""Property: caching changes timing, never results.

For any cache config (dormant or enabled, any capacity/lookup/epoch),
on either engine, under any placement policy, with or without a seeded
fault schedule, both the cold run *and* the warm rerun produce output
rows identical to the default uncached run.  This is the contract that
makes ``--cache`` safe to add to any experiment: the cache decides
*whether compute replays free* and nothing else — tiny capacities that
evict constantly, absurd lookup costs and mid-stream fault recoveries
all land on the same rows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ResultCache, cached
from repro.cluster import build_cluster
from repro.config import CacheConfig
from repro.faults import FaultSchedule, faults_injected
from repro.rayx import run_script
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sched import scheduling
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def script_outputs(cache=None):
    def task(ctx, x):
        yield from ctx.compute(0.3)
        return [(x, float(x) * 1.5)]

    def driver(rt):
        refs = [rt.submit(task, i, label=f"t{i}") for i in range(6)]
        partials = yield from rt.get_all(refs)
        return sorted(row for partial in partials for row in partial)

    return run_script(_cluster(cache), driver, num_cpus=3)


def workflow_outputs(cache=None):
    table = Table.from_rows(SCHEMA, [[i, float(i % 5)] for i in range(40)])
    wf = Workflow("cache-props")
    source = wf.add_operator(TableSource("rows", table, num_workers=2))
    keep = wf.add_operator(
        FilterOperator("keep", column_greater("score", 1.0), num_workers=2)
    )
    sink = wf.add_operator(SinkOperator("out"))
    wf.link(source, keep)
    wf.link(keep, sink)
    result = run_workflow(_cluster(cache), wf)
    return sorted(tuple(row.values) for row in result.table("out").rows)


def _cluster(cache):
    env = Environment()
    if cache is None:
        return build_cluster(env)
    return build_cluster(env, cache=cache)


SCRIPT_EXPECTED = script_outputs()
WORKFLOW_EXPECTED = workflow_outputs()

#: Capacities chosen to exercise every eviction regime: a few bytes
#: (everything thrashes), mid-size (some entries survive), unlimited.
cache_configs = st.one_of(
    st.just(CacheConfig()),
    st.builds(
        CacheConfig,
        enabled=st.just(True),
        capacity_bytes=st.sampled_from([None, 64, 1 << 20]),
        lookup_s=st.sampled_from([1.0e-4, 0.05]),
        epoch=st.integers(0, 2),
    ),
)

fault_schedules = st.one_of(
    st.none(),
    st.builds(
        FaultSchedule.generate,
        seed=st.integers(0, 2**16),
        horizon_s=st.just(8.0),
        tasks=st.integers(0, 2),
        operators=st.integers(0, 2),
        nodes=st.integers(0, 1),
        replicas=st.integers(0, 1),
    ),
)

policies = st.sampled_from([None, "round_robin", "least_loaded", "locality"])


def run_twice(config, schedule, policy, run_fn):
    """Cold run then warm rerun under one shared cache instance."""
    from contextlib import ExitStack

    cache = ResultCache(config)
    outputs = []
    for _ in range(2):
        with ExitStack() as stack:
            if schedule is not None:
                stack.enter_context(faults_injected(schedule))
            if policy is not None:
                stack.enter_context(scheduling(policy))
            stack.enter_context(cached(cache))
            outputs.append(run_fn(cache))
    return outputs


@settings(max_examples=12, deadline=None)
@given(config=cache_configs, schedule=fault_schedules, policy=policies)
def test_script_outputs_equal_uncached_run(config, schedule, policy):
    cold, warm = run_twice(config, schedule, policy, script_outputs)
    assert cold == warm == SCRIPT_EXPECTED


@settings(max_examples=12, deadline=None)
@given(config=cache_configs, schedule=fault_schedules, policy=policies)
def test_workflow_outputs_equal_uncached_run(config, schedule, policy):
    cold, warm = run_twice(config, schedule, policy, workflow_outputs)
    assert cold == warm == WORKFLOW_EXPECTED


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_thrashing_capacity_never_corrupts_results(seed):
    """A capacity smaller than any entry evicts on every insert; the
    cache must degrade to a slow miss machine, not a wrong one."""
    config = CacheConfig(enabled=True, capacity_bytes=1)
    schedule = FaultSchedule.generate(seed=seed, horizon_s=8.0, tasks=1)
    cold, warm = run_twice(config, schedule, None, script_outputs)
    assert cold == warm == SCRIPT_EXPECTED
