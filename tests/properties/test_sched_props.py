"""Property: placement changes timing, never results.

For any placement policy, on either engine, with or without an
arbitrary seeded fault schedule, the run's output rows are identical to
the same configuration under the default ``round_robin`` policy.  This
is the contract that makes the scheduler safe to swap mid-experiment:
policies decide *where* work runs and nothing else.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.faults import FaultSchedule, faults_injected
from repro.rayx import run_script
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sched import POLICIES, scheduling
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)

policies = st.sampled_from(sorted(POLICIES))

schedules = st.one_of(
    st.none(),  # a clean run is a degenerate schedule
    st.builds(
        FaultSchedule.generate,
        seed=st.integers(0, 2**16),
        horizon_s=st.just(8.0),
        tasks=st.integers(0, 2),
        operators=st.integers(0, 2),
        nodes=st.integers(0, 1),
        replicas=st.integers(0, 1),
    ),
)


def script_outputs():
    def task(ctx, x):
        yield from ctx.compute(0.3)
        return [(x, float(x) * 1.5)]

    def driver(rt):
        refs = [rt.submit(task, i, label=f"t{i}") for i in range(6)]
        partials = yield from rt.get_all(refs)
        return sorted(row for partial in partials for row in partial)

    cluster = build_cluster(Environment())
    return run_script(cluster, driver, num_cpus=3)


def workflow_outputs():
    table = Table.from_rows(
        SCHEMA, [[i, float(i % 5)] for i in range(40)]
    )
    wf = Workflow("props")
    source = wf.add_operator(TableSource("rows", table, num_workers=2))
    keep = wf.add_operator(
        FilterOperator("keep", column_greater("score", 1.0), num_workers=2)
    )
    sink = wf.add_operator(SinkOperator("out"))
    wf.link(source, keep)
    wf.link(keep, sink)
    cluster = build_cluster(Environment())
    result = run_workflow(cluster, wf)
    return sorted(tuple(row.values) for row in result.table("out").rows)


def run_under(policy, schedule, run_fn):
    if schedule is not None:
        with faults_injected(schedule), scheduling(policy):
            return run_fn()
    with scheduling(policy):
        return run_fn()


@settings(max_examples=12, deadline=None)
@given(policy=policies, schedule=schedules)
def test_script_outputs_equal_round_robin(policy, schedule):
    expected = run_under("round_robin", schedule, script_outputs)
    assert run_under(policy, schedule, script_outputs) == expected


@settings(max_examples=12, deadline=None)
@given(policy=policies, schedule=schedules)
def test_workflow_outputs_equal_round_robin(policy, schedule):
    expected = run_under("round_robin", schedule, workflow_outputs)
    assert run_under(policy, schedule, workflow_outputs) == expected
