"""Properties of the job service: multiplexing changes *when*, never *what*.

Two contracts, sampled over admission policy, placement policy, quota
configuration, engine paradigm and injected fault schedules:

* **dormant invariant**: a task run submitted as a job produces output
  rows and a virtual elapsed time identical to running the task
  directly — under any quota/fair-share config and any fault schedule
  (the body executes on its own fresh cluster either way);
* **conservation**: open-loop traffic always drains to terminal
  states, and jobs are conserved — every submission ends completed,
  failed or cancelled, with rejections only ever caused by an explicit
  queue bound.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import JobsConfig
from repro.datasets.maccrobat import generate_maccrobat
from repro.faults import FaultSchedule, faults_injected
from repro.jobs import JobService, JobSpec
from repro.tasks.base import fresh_cluster
from repro.tasks.dice.script import run_dice_script
from repro.tasks.dice.workflow import run_dice_workflow

configs = st.builds(
    JobsConfig,
    policy=st.sampled_from(["fifo", "drf"]),
    placement=st.sampled_from(["round_robin", "least_loaded", "drf"]),
    quota_running=st.one_of(st.none(), st.integers(1, 3)),
    quota_cpus=st.one_of(st.none(), st.just(8)),
)

schedules = st.one_of(
    st.none(),  # a clean run is a degenerate schedule
    st.builds(
        FaultSchedule.generate,
        seed=st.integers(0, 2**16),
        horizon_s=st.just(8.0),
        tasks=st.integers(0, 2),
        operators=st.integers(0, 2),
        nodes=st.integers(0, 1),
        replicas=st.integers(0, 1),
    ),
)

RUNNERS = {
    "dice/script": run_dice_script,
    "dice/workflow": run_dice_workflow,
}


@settings(max_examples=6, deadline=None)
@given(
    config=configs,
    body=st.sampled_from(sorted(RUNNERS)),
    schedule=schedules,
)
def test_job_outputs_equal_direct_task_run(config, body, schedule):
    def both():
        direct = RUNNERS[body](fresh_cluster(), generate_maccrobat(4))
        job = JobService(config).run_job(JobSpec(body=body))
        return direct, job

    if schedule is not None:
        with faults_injected(schedule):
            direct, job = both()
    else:
        direct, job = both()
    assert job.state == "completed", job.error
    assert job.result.run.output.rows == direct.output.rows
    assert job.result.run.elapsed_s == direct.elapsed_s


@settings(max_examples=10, deadline=None)
@given(
    config=st.builds(
        JobsConfig,
        enabled=st.just(True),
        seed=st.integers(0, 2**16),
        rate_per_s=st.floats(5.0, 40.0),
        horizon_s=st.just(4.0),
        tenants=st.integers(1, 6),
        cpus=st.integers(1, 8),
        duration_s=st.floats(0.1, 1.0),
        burst=st.floats(0.0, 2.0),
        burst_period_s=st.just(2.0),
        diurnal=st.floats(0.0, 1.0),
        diurnal_period_s=st.just(8.0),
        policy=st.sampled_from(["fifo", "drf"]),
        placement=st.sampled_from(["round_robin", "least_loaded", "drf"]),
        quota_running=st.one_of(st.none(), st.integers(1, 4)),
        max_queue=st.one_of(st.none(), st.integers(10, 50)),
    )
)
def test_traffic_always_drains_and_conserves_jobs(config):
    service = JobService(config)
    summary = service.simulate()
    counts = summary["counts"]
    assert service.queue.drained
    assert counts["queued"] == counts["admitted"] == counts["running"] == 0
    terminal = counts["completed"] + counts["failed"] + counts["cancelled"]
    assert terminal == summary["jobs"]
    assert counts["failed"] == 0  # profile bodies never fail
    if config.max_queue is None:
        assert summary["rejected"] == 0
    per_tenant = sum(s["submitted"] for s in summary["tenants"].values())
    assert per_tenant == summary["jobs"]
