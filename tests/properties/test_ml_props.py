"""Property-based tests for ML components, partitioning and metrics."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.ml import HashingTokenizer, accuracy, f1_score, precision, recall
from repro.relational import FieldType, Schema, Tuple
from repro.workflow import BroadcastPartitioner, HashPartitioner, RoundRobinPartitioner
from repro.workflow.partitioning import stable_hash

MODELS = default_config().models

# -- tokenizer --------------------------------------------------------------------

texts = st.text(alphabet=string.printable, max_size=200)


@given(texts)
def test_tokenizer_ids_within_vocab(text):
    tokenizer = HashingTokenizer(vocab_size=512)
    ids = tokenizer.tokenize(text)
    assert all(0 <= i < 512 for i in ids)
    assert len(ids) == tokenizer.num_tokens(text)


@given(texts)
def test_tokenizer_case_insensitive(text):
    tokenizer = HashingTokenizer()
    assert tokenizer.tokenize(text) == tokenizer.tokenize(text.upper())


@given(st.text(alphabet=string.ascii_lowercase + " ", max_size=100))
def test_tokenizer_concatenation(text):
    tokenizer = HashingTokenizer()
    combined = tokenizer.tokenize(text + " " + text)
    single = tokenizer.tokenize(text)
    assert combined == single + single


# -- stable hashing / partitioning ----------------------------------------------------

values = st.one_of(st.integers(), st.text(max_size=30), st.none(), st.booleans())


@given(values)
def test_stable_hash_deterministic_and_nonnegative(value):
    assert stable_hash(value) == stable_hash(value)
    assert stable_hash(value) >= 0


SCHEMA = Schema.of(k=FieldType.ANY)


@given(st.lists(values, min_size=1, max_size=40), st.integers(min_value=1, max_value=6))
def test_hash_partitioner_routes_equal_keys_together(keys, consumers):
    partitioner = HashPartitioner(consumers, "k")
    destinations = {}
    for key in keys:
        row = Tuple(SCHEMA, [key])
        (dest,) = partitioner.route(row)
        assert 0 <= dest < consumers
        if repr(key) in destinations:
            assert destinations[repr(key)] == dest
        destinations[repr(key)] = dest


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=50))
def test_round_robin_balances(consumers, count):
    partitioner = RoundRobinPartitioner(consumers)
    tally = [0] * consumers
    for i in range(count):
        (dest,) = partitioner.route(Tuple(SCHEMA, [i]))
        tally[dest] += 1
    assert max(tally) - min(tally) <= 1
    assert sum(tally) == count


@given(st.integers(min_value=1, max_value=6))
def test_broadcast_reaches_everyone(consumers):
    partitioner = BroadcastPartitioner(consumers)
    assert partitioner.route(Tuple(SCHEMA, [1])) == list(range(consumers))


# -- metrics -----------------------------------------------------------------------------

label_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=60)


@given(label_lists, label_lists)
@settings(max_examples=80)
def test_metrics_bounded(truth, predictions):
    n = min(len(truth), len(predictions))
    truth, predictions = truth[:n], predictions[:n]
    if not truth:
        return
    for metric in (accuracy, precision, recall, f1_score):
        value = metric(truth, predictions)
        assert 0.0 <= value <= 1.0


@given(label_lists)
def test_perfect_predictions_score_one(truth):
    assert accuracy(truth, truth) == 1.0
    if any(truth):
        assert precision(truth, truth) == 1.0
        assert recall(truth, truth) == 1.0
        assert f1_score(truth, truth) == 1.0


@given(label_lists)
def test_f1_between_precision_and_recall_extremes(truth):
    predictions = [1 - label for label in truth]  # everything wrong
    assert accuracy(truth, predictions) == 0.0
    assert f1_score(truth, predictions) == 0.0


# -- model cost monotonicity ----------------------------------------------------------------


@given(st.text(alphabet=string.ascii_lowercase + " ", min_size=1, max_size=60))
def test_bert_flops_monotonic_in_text(text):
    from repro.ml import SimBertClassifier

    model = SimBertClassifier("m", MODELS)
    base = model.forward_flops(text)
    extended = model.forward_flops(text + " extra words here")
    assert extended >= base
    assert model.train_step_flops(text) > base
