"""Property-based tests for storage formats and payload sizing."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import estimate_bytes
from repro.storage import (
    AnnotationDocument,
    EntityAnnotation,
    EventAnnotation,
    dumps_jsonl,
    loads_jsonl,
    parse_annotations,
    serialize_annotations,
    split_sentences,
)

# -- sentence splitting ----------------------------------------------------------

texts = st.text(
    alphabet=string.ascii_letters + string.digits + " .!?,\n\t", max_size=400
)


@given(texts)
def test_sentence_offsets_slice_back_to_text(text):
    for sentence in split_sentences("doc", text):
        assert text[sentence.start : sentence.end] == sentence.text


@given(texts)
def test_sentences_are_ordered_and_disjoint(text):
    sentences = split_sentences("doc", text)
    for earlier, later in zip(sentences, sentences[1:]):
        assert earlier.end <= later.start
    assert [s.index for s in sentences] == list(range(len(sentences)))


@given(texts)
def test_sentences_cover_all_non_whitespace(text):
    covered = set()
    for sentence in split_sentences("doc", text):
        covered.update(range(sentence.start, sentence.end))
    for position, char in enumerate(text):
        if not char.isspace():
            assert position in covered


# -- BRAT roundtrip -----------------------------------------------------------------

ann_types = st.sampled_from(["Age", "Sex", "Sign_symptom", "Clinical_event"])
covered_text = st.text(
    alphabet=string.ascii_lowercase + string.digits + "-", min_size=1, max_size=12
)


@st.composite
def annotation_documents(draw):
    num_entities = draw(st.integers(min_value=1, max_value=8))
    entities = []
    cursor = 0
    for index in range(num_entities):
        text = draw(covered_text)
        start = cursor
        end = start + len(text)
        cursor = end + 1
        entities.append(
            EntityAnnotation(f"T{index + 1}", draw(ann_types), start, end, text)
        )
    events = []
    num_events = draw(st.integers(min_value=0, max_value=5))
    for index in range(num_events):
        trigger = draw(st.sampled_from(entities))
        args = ()
        if draw(st.booleans()):
            arg_entity = draw(st.sampled_from(entities))
            args = (("Modifier", arg_entity.key),)
        events.append(
            EventAnnotation(
                f"E{index + 1}", trigger.ann_type, trigger.key, args
            )
        )
    return AnnotationDocument("doc", entities, events)


@given(annotation_documents())
@settings(max_examples=50)
def test_brat_roundtrip(document):
    content = serialize_annotations(document)
    parsed = parse_annotations("doc", content)
    assert parsed.entities == document.entities
    assert parsed.events == document.events
    parsed.validate_references()


# -- JSONL roundtrip ---------------------------------------------------------------------

json_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=10,
)
records = st.lists(st.dictionaries(st.text(max_size=8), json_values, max_size=4), max_size=10)


@given(records)
def test_jsonl_roundtrip(record_list):
    assert loads_jsonl(dumps_jsonl(record_list)) == record_list


# -- payload sizing ---------------------------------------------------------------------------


@given(json_values)
def test_estimate_bytes_positive_and_deterministic(value):
    size = estimate_bytes(value)
    assert size > 0
    assert estimate_bytes(value) == size


@given(st.lists(st.integers(), max_size=20))
def test_estimate_bytes_monotonic_in_list_length(items):
    shorter = estimate_bytes(items)
    longer = estimate_bytes(items + [0])
    assert longer > shorter


@given(st.text(max_size=100))
def test_estimate_bytes_monotonic_in_string_length(text):
    assert estimate_bytes(text + "x") > estimate_bytes(text)
