"""Property-based tests for the workflow engine.

Random operator chains over random tables must compute exactly what a
direct evaluation computes — regardless of worker counts, batch sizes
or operator languages (those change only the virtual timing).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.config import default_config
from repro.relational import FieldType, Schema, Table, udf_predicate
from repro.sim import Environment
from repro.workflow import OperatorLanguage, Workflow, run_workflow
from repro.workflow.operators import (
    FilterOperator,
    MapOperator,
    ProjectionOperator,
    SinkOperator,
    TableSource,
)

SCHEMA = Schema.of(a=FieldType.INT, b=FieldType.INT)

tables = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)), max_size=60
).map(lambda rows: Table.from_rows(SCHEMA, [list(r) for r in rows]))


# A stage is (kind, parameter); applied identically by the workflow and
# by direct evaluation.
stages = st.lists(
    st.one_of(
        st.tuples(st.just("filter_mod"), st.integers(2, 5)),
        st.tuples(st.just("add"), st.integers(-10, 10)),
        st.tuples(st.just("swap"), st.just(0)),
    ),
    max_size=4,
)


def build_stage_operator(index, kind, parameter, num_workers, language):
    op_id = f"stage-{index}-{kind}"
    if kind == "filter_mod":
        return FilterOperator(
            op_id,
            udf_predicate(lambda row, m=parameter: row["a"] % m == 0, "mod"),
            num_workers=num_workers,
            language=language,
        )
    if kind == "add":
        return MapOperator(
            op_id,
            SCHEMA,
            lambda row, d=parameter: [row["a"] + d, row["b"]],
            num_workers=num_workers,
            language=language,
        )
    return MapOperator(
        op_id,
        SCHEMA,
        lambda row: [row["b"], row["a"]],
        num_workers=num_workers,
        language=language,
    )


def direct_eval(table, stage_list):
    rows = [tuple(row.values) for row in table]
    for kind, parameter in stage_list:
        if kind == "filter_mod":
            rows = [r for r in rows if r[0] % parameter == 0]
        elif kind == "add":
            rows = [(r[0] + parameter, r[1]) for r in rows]
        else:
            rows = [(r[1], r[0]) for r in rows]
    return sorted(rows)


@given(
    tables,
    stages,
    st.integers(min_value=1, max_value=4),
    st.sampled_from([OperatorLanguage.PYTHON, OperatorLanguage.SCALA]),
    st.sampled_from([2, 64, 512]),
)
@settings(max_examples=40, deadline=None)
def test_random_chain_matches_direct_eval(
    table, stage_list, num_workers, language, batch_size
):
    wf = Workflow("random-chain")
    source = wf.add_operator(TableSource("src", table))
    previous = source
    for index, (kind, parameter) in enumerate(stage_list):
        operator = wf.add_operator(
            build_stage_operator(index, kind, parameter, num_workers, language)
        )
        wf.link(previous, operator)
        previous = operator
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(previous, sink)

    config = default_config()
    workflow_config = dataclasses.replace(
        config.workflow, default_batch_size=batch_size
    )
    config = dataclasses.replace(config, workflow=workflow_config)
    result = run_workflow(build_cluster(Environment(), config), wf)

    got = sorted(tuple(row.values) for row in result.table())
    assert got == direct_eval(table, stage_list)
    assert result.progress.all_completed()


@given(tables, st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_projection_under_parallelism(table, num_workers):
    wf = Workflow("proj")
    source = wf.add_operator(TableSource("src", table, num_workers=num_workers))
    proj = wf.add_operator(
        ProjectionOperator("proj", ["b"], num_workers=num_workers)
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(source, proj)
    wf.link(proj, sink)
    result = run_workflow(build_cluster(Environment()), wf)
    assert sorted(result.table().column("b")) == sorted(table.column("b"))


@given(tables)
@settings(max_examples=20, deadline=None)
def test_timing_is_reproducible(table):
    def run_once():
        wf = Workflow("repeat")
        source = wf.add_operator(TableSource("src", table))
        sink = wf.add_operator(SinkOperator("sink"))
        wf.link(source, sink)
        return run_workflow(build_cluster(Environment()), wf).elapsed_s

    assert run_once() == run_once()
