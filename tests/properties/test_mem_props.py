"""Property: memory pressure changes timing, never results.

For any memory policy (dormant or spilling, ample or shrunken RAM, any
watermarks/bandwidths), on either engine, with or without a seeded
fault schedule (including ``oom`` RAM clamps), the run's output rows
are identical to the default dormant-config run.  This is the contract
that makes ``--mem`` safe to add to any experiment: the policy decides
*when* bytes move between RAM and disk and nothing else.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.config import MIB, MemoryConfig, default_config
from repro.faults import FaultSchedule, faults_injected
from repro.rayx import run_script
from repro.relational import FieldType, Schema, Table, column_greater
from repro.sim import Environment
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT, score=FieldType.FLOAT)


def script_outputs(mem_config=None):
    def task(ctx, x):
        yield from ctx.compute(0.3)
        return [(x, float(x) * 1.5)]

    def driver(rt):
        refs = [rt.submit(task, i, label=f"t{i}") for i in range(6)]
        partials = yield from rt.get_all(refs)
        return sorted(row for partial in partials for row in partial)

    cluster = _cluster(mem_config)
    return cluster, run_script(cluster, driver, num_cpus=3)


def workflow_outputs(mem_config=None):
    table = Table.from_rows(SCHEMA, [[i, float(i % 5)] for i in range(40)])
    wf = Workflow("mem-props")
    source = wf.add_operator(TableSource("rows", table, num_workers=2))
    keep = wf.add_operator(
        FilterOperator("keep", column_greater("score", 1.0), num_workers=2)
    )
    sink = wf.add_operator(SinkOperator("out"))
    wf.link(source, keep)
    wf.link(keep, sink)
    cluster = _cluster(mem_config)
    result = run_workflow(cluster, wf)
    return cluster, sorted(tuple(row.values) for row in result.table("out").rows)


def _cluster(mem_config):
    config = default_config()
    if mem_config is not None:
        config = replace(config, memory=mem_config)
    return build_cluster(Environment(), config)


def _pressure_rams(probe_fn):
    """Probe a workload with the policy on and ample RAM to learn its
    footprint, then return RAM sizes from the survivable floor (the
    largest single allocation) up to no clamp at all."""
    cluster, _ = probe_fn(MemoryConfig(enabled=True))
    peak = max(node.ram_peak for node in cluster._nodes.values())
    largest = max(node.largest_alloc for node in cluster._nodes.values())
    rams = [None]
    if largest > 0:
        rams.extend([largest, (peak + largest) // 2 or largest, peak])
    return rams


_, SCRIPT_EXPECTED = script_outputs()
_, WORKFLOW_EXPECTED = workflow_outputs()
SCRIPT_RAMS = _pressure_rams(script_outputs)
WORKFLOW_RAMS = _pressure_rams(workflow_outputs)


def enabled_configs(rams):
    return st.builds(
        MemoryConfig,
        enabled=st.just(True),
        node_ram_bytes=st.sampled_from(rams),
        spill_watermark=st.sampled_from([0.5, 0.8]),
        admission_watermark=st.sampled_from([0.9, 0.95]),
        spill_write_bytes_per_s=st.sampled_from([256.0 * 1024, 100.0 * MIB]),
        spill_read_bytes_per_s=st.sampled_from([256.0 * 1024, 100.0 * MIB]),
    )


def mem_configs(rams):
    return st.one_of(st.just(MemoryConfig()), enabled_configs(rams))


#: Fault schedules without RAM clamps — composed with *any* memory
#: config, including shrunken-RAM ones.
fault_schedules = st.one_of(
    st.none(),
    st.builds(
        FaultSchedule.generate,
        seed=st.integers(0, 2**16),
        horizon_s=st.just(8.0),
        tasks=st.integers(0, 2),
        operators=st.integers(0, 2),
        nodes=st.integers(0, 1),
        replicas=st.integers(0, 1),
    ),
)

#: Schedules *with* RAM clamps — composed with ample-RAM configs only
#: (a clamp below the largest single allocation is a legitimate death,
#: not an output-correctness question).
oom_schedules = st.builds(
    FaultSchedule.generate,
    seed=st.integers(0, 2**16),
    horizon_s=st.just(8.0),
    tasks=st.integers(0, 1),
    replicas=st.integers(0, 1),
    ooms=st.integers(1, 2),
    oom_factor=st.sampled_from([2.0, 4.0]),
)


def run_under(mem_config, schedule, run_fn):
    if schedule is not None:
        with faults_injected(schedule):
            return run_fn(mem_config)[1]
    return run_fn(mem_config)[1]


@settings(max_examples=12, deadline=None)
@given(config=mem_configs(SCRIPT_RAMS), schedule=fault_schedules)
def test_script_outputs_equal_default_run(config, schedule):
    assert run_under(config, schedule, script_outputs) == SCRIPT_EXPECTED


@settings(max_examples=12, deadline=None)
@given(config=mem_configs(WORKFLOW_RAMS), schedule=fault_schedules)
def test_workflow_outputs_equal_default_run(config, schedule):
    assert run_under(config, schedule, workflow_outputs) == WORKFLOW_EXPECTED


@settings(max_examples=8, deadline=None)
@given(schedule=oom_schedules)
def test_oom_clamps_preserve_script_outputs(schedule):
    config = MemoryConfig(enabled=True)
    assert run_under(config, schedule, script_outputs) == SCRIPT_EXPECTED


@settings(max_examples=8, deadline=None)
@given(schedule=oom_schedules)
def test_oom_clamps_preserve_workflow_outputs(schedule):
    config = MemoryConfig(enabled=True)
    assert run_under(config, schedule, workflow_outputs) == WORKFLOW_EXPECTED
