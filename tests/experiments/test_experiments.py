"""Tests for the experiment harness at reduced scales.

Full paper-scale reproductions (and their qualitative-shape
assertions) live in benchmarks/; these tests exercise the harness
plumbing and the mechanisms at sizes that run in seconds.
"""


from repro.experiments.exp_language import run_table1
from repro.experiments.exp_modularity import run_fig12a, run_fig12b
from repro.experiments.exp_scaling import (
    run_fig13a,
    run_fig13b,
    run_fig13c,
    run_fig13d,
)
from repro.experiments.exp_workers import run_fig14a, run_fig14b
from repro.experiments.harness import cached_kge_dataset
from repro.experiments.paper_values import (
    FIG12A_LOC,
    FIG13_SCALING,
    FIG14_WORKERS,
    TABLE1_LANGUAGE,
)


def test_paper_values_are_complete():
    assert set(FIG12A_LOC) == {"dice", "wef", "gotta", "kge"}
    assert set(FIG13_SCALING) == {"dice", "wef", "gotta", "kge"}
    assert set(FIG14_WORKERS) == {"dice", "gotta", "kge"}  # WEF excluded
    for size, entry in TABLE1_LANGUAGE.items():
        assert set(entry) == {"scala", "python"}


def test_cached_kge_dataset_is_shared():
    a = cached_kge_dataset(500, 2000)
    b = cached_kge_dataset(500, 2000)
    assert a is b


def test_fig12a_reports_all_tasks():
    report = run_fig12a()
    assert len(report.rows) == 8
    assert {row.series for row in report.rows} == {"script", "workflow"}
    assert all(row.unit == "loc" for row in report.rows)
    assert all(row.paper is not None for row in report.rows)


def test_fig12b_reduced_scale():
    report = run_fig12b(num_candidates=800, universe_size=2000)
    times = {row.x: row.measured for row in report.series("workflow")}
    assert set(times) == {1, 2, 3, 4, 5, 6}
    assert times[5] < times[1]
    reference = report.series("script (reference)")
    assert len(reference) == 1


def test_table1_reduced_scale():
    report = run_table1(sizes=(400, 2000), universe_size=2000)
    scala = {row.x: row.measured for row in report.series("scala-operators")}
    python = {row.x: row.measured for row in report.series("python-operators")}
    small_gain = (python[400] - scala[400]) / scala[400]
    large_gain = (python[2000] - scala[2000]) / scala[2000]
    assert large_gain < small_gain  # the vanishing advantage


def test_fig13a_reduced_scale():
    report = run_fig13a(sizes=(10, 30))
    script = {row.x: row.measured for row in report.series("script")}
    workflow = {row.x: row.measured for row in report.series("workflow")}
    assert workflow[30] < script[30]


def test_fig13b_reduced_scale():
    report = run_fig13b(sizes=(30, 60))
    script = {row.x: row.measured for row in report.series("script")}
    workflow = {row.x: row.measured for row in report.series("workflow")}
    for size in (30, 60):
        assert abs(script[size] - workflow[size]) / script[size] < 0.1


def test_fig13c_reduced_scale():
    report = run_fig13c(sizes=(2000,), universe_size=2000)
    (script,) = report.measured_series("script")
    (workflow,) = report.measured_series("workflow")
    assert script < workflow


def test_fig13d_reduced_scale():
    report = run_fig13d(sizes=(1, 2))
    script = {row.x: row.measured for row in report.series("script")}
    workflow = {row.x: row.measured for row in report.series("workflow")}
    assert workflow[2] < script[2]


def test_fig14a_reduced_scale():
    report = run_fig14a(workers=(1, 4), num_docs=20)
    script = {row.x: row.measured for row in report.series("script")}
    assert script[4] < script[1]


def test_fig14b_reduced_scale():
    report = run_fig14b(workers=(1, 2), num_paragraphs=2)
    workflow = {row.x: row.measured for row in report.series("workflow")}
    assert workflow[2] < workflow[1]


def test_reports_carry_paper_values_at_paper_scales():
    report = run_fig13a(sizes=(10,))
    for row in report.rows:
        assert row.paper is not None
        assert row.relative_error is not None
