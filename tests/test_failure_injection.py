"""Failure-injection tests: errors must surface loudly and precisely.

The paper's Section III-A compares how each paradigm reports errors —
the script at cell level (stack trace), the workflow at operator level.
These tests inject failures into both engines and assert the reporting
contracts.
"""

import dataclasses

import pytest

from repro.cluster import build_cluster
from repro.config import MachineConfig, default_config
from repro.errors import (
    InsufficientResources,
    InvalidWorkflow,
    OperatorError,
)
from repro.rayx import run_script
from repro.relational import FieldType, Schema, Table, udf_predicate
from repro.sim import Environment
from repro.workflow import OperatorState, Workflow, WorkflowController
from repro.workflow.operators import FilterOperator, SinkOperator, TableSource

SCHEMA = Schema.of(id=FieldType.INT)


def make_table(n=50):
    return Table.from_rows(SCHEMA, [[i] for i in range(n)])


def fresh_cluster(config=None):
    return build_cluster(Environment(), config)


# -- workflow-side failures -------------------------------------------------------


def failing_workflow(fail_at=25):
    def predicate(row):
        if row["id"] == fail_at:
            raise RuntimeError(f"poison tuple {fail_at}")
        return True

    wf = Workflow("poison")
    src = wf.add_operator(TableSource("src", make_table()))
    bad = wf.add_operator(FilterOperator("poison-filter", udf_predicate(predicate)))
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, bad)
    wf.link(bad, sink)
    return wf


def test_workflow_failure_names_the_operator():
    cluster = fresh_cluster()
    controller = WorkflowController(cluster, failing_workflow())
    with pytest.raises(OperatorError) as excinfo:
        cluster.env.run(until=cluster.env.process(controller.execute()))
    assert excinfo.value.operator_id == "poison-filter"
    assert "poison tuple 25" in str(excinfo.value)


def test_workflow_failure_marks_states():
    cluster = fresh_cluster()
    controller = WorkflowController(cluster, failing_workflow())
    with pytest.raises(OperatorError):
        cluster.env.run(until=cluster.env.process(controller.execute()))
    states = {
        op_id: controller.progress.of(op_id).state
        for op_id in ("src", "poison-filter", "sink")
    }
    assert states["poison-filter"] is OperatorState.FAILED
    # Nothing may be left RUNNING after a failed execution.
    assert all(
        state in (OperatorState.FAILED, OperatorState.COMPLETED)
        for state in states.values()
    )


def test_workflow_failure_in_source():
    class _BadTable(Table):
        pass

    def boom(row):
        raise ValueError("source blew up")

    wf = Workflow("bad-src")
    src = wf.add_operator(TableSource("src", make_table(5)))
    bad = wf.add_operator(
        FilterOperator("first-op", udf_predicate(boom))
    )
    sink = wf.add_operator(SinkOperator("sink"))
    wf.link(src, bad)
    wf.link(bad, sink)
    cluster = fresh_cluster()
    controller = WorkflowController(cluster, wf)
    with pytest.raises(OperatorError) as excinfo:
        cluster.env.run(until=cluster.env.process(controller.execute()))
    assert excinfo.value.operator_id == "first-op"


def test_compile_time_errors_precede_execution():
    """Workflow validation fails before any virtual time is spent."""
    wf = Workflow("invalid")
    wf.add_operator(TableSource("src", make_table(5)))
    # no sink, unconnected — multiple problems
    cluster = fresh_cluster()
    controller = WorkflowController(cluster, wf)
    with pytest.raises(InvalidWorkflow):
        cluster.env.run(until=cluster.env.process(controller.execute()))
    assert cluster.env.now == 0.0


# -- script-side failures --------------------------------------------------------------


def test_script_task_error_reraises_original_exception():
    def bad_task(ctx, x):
        yield from ctx.compute(0.1)
        raise KeyError(f"missing {x}")

    def driver(rt):
        ref = rt.submit(bad_task, "the-key")
        value = yield from rt.get(ref)
        return value

    with pytest.raises(KeyError, match="the-key"):
        run_script(fresh_cluster(), driver)


def test_script_driver_can_recover_from_task_failure():
    def flaky(ctx, x):
        if x == 3:
            raise RuntimeError("bad input")
        return x

    def driver(rt):
        refs = [rt.submit(flaky, i) for i in range(5)]
        good = []
        for ref in refs:
            try:
                value = yield from rt.get(ref)
                good.append(value)
            except RuntimeError:
                pass
        return good

    assert run_script(fresh_cluster(), driver) == [0, 1, 2, 4]


def test_failure_in_one_task_does_not_poison_others():
    def bad(ctx):
        raise RuntimeError("dead")

    def good(ctx):
        yield from ctx.compute(1.0)
        return "alive"

    def driver(rt):
        bad_ref = rt.submit(bad)
        good_ref = rt.submit(good)
        value = yield from rt.get(good_ref)
        try:
            yield from rt.get(bad_ref)
        except RuntimeError:
            pass
        return value

    assert run_script(fresh_cluster(), driver, num_cpus=2) == "alive"


# -- resource exhaustion ----------------------------------------------------------------------


def tiny_ram_config():
    config = default_config()
    machine = MachineConfig(num_cpus=8, ram_bytes=100 * 2**20)  # 100 MiB
    topology = dataclasses.replace(config.topology, machine=machine)
    return dataclasses.replace(config, topology=topology)


def test_object_store_put_fails_when_model_exceeds_ram():
    """A 375 MB model cannot be stored on a 100 MiB node."""
    from repro.ml import TransEModel

    config = tiny_ram_config()
    model = TransEModel(["e0"], ["r"], config.models)

    def driver(rt):
        ref = yield from rt.put(model)
        return ref

    with pytest.raises(InsufficientResources):
        run_script(fresh_cluster(config), driver)


def test_compute_requesting_too_many_cores_fails():
    cluster = fresh_cluster()
    node = cluster.workers[0]
    with pytest.raises(InsufficientResources):
        cluster.env.run(until=cluster.env.process(node.compute(1.0, cores=99)))


# -- span hygiene on failing runs --------------------------------------------------


def test_workflow_failure_leaves_no_open_spans():
    """Tracer spans must balance even when an operator dies mid-run.

    Regression test: deploy/decode/encode/gather spans used to leak
    open when an exception unwound the engine's generators.
    """
    from repro.obs import Tracer, tracing

    tracer = Tracer()
    with tracing(tracer):
        cluster = fresh_cluster()
        controller = WorkflowController(cluster, failing_workflow())
        with pytest.raises(OperatorError):
            cluster.env.run(until=cluster.env.process(controller.execute()))
    assert tracer.spans  # the run was traced at all
    open_spans = [span for span in tracer.spans if not span.finished]
    assert open_spans == []


def test_script_failure_leaves_no_open_spans():
    """Task/objectstore spans close even when the task body raises."""
    from repro.obs import Tracer, tracing

    def bad_task(ctx):
        yield from ctx.compute(0.1)
        raise RuntimeError("poisoned")

    def driver(rt):
        value = yield from rt.get(rt.submit(bad_task))
        return value

    tracer = Tracer()
    with tracing(tracer):
        with pytest.raises(RuntimeError, match="poisoned"):
            run_script(fresh_cluster(), driver)
    assert tracer.spans
    open_spans = [span for span in tracer.spans if not span.finished]
    assert open_spans == []


def test_faulted_recovery_run_leaves_no_open_spans():
    """Retry/backoff and restart spans balance across injected faults."""
    from repro.faults import FaultEvent, FaultSchedule, faults_injected
    from repro.obs import Tracer, tracing

    def task(ctx, x):
        yield from ctx.compute(0.5)
        return x

    def driver(rt):
        values = yield from rt.get_all([rt.submit(task, i) for i in range(3)])
        return values

    schedule = FaultSchedule(events=(FaultEvent(0.01, "task", target="task"),))
    tracer = Tracer()
    with faults_injected(schedule), tracing(tracer):
        assert run_script(fresh_cluster(), driver) == [0, 1, 2]
    open_spans = [span for span in tracer.spans if not span.finished]
    assert open_spans == []
    assert any(span.category == "faults.recovery" for span in tracer.spans)
