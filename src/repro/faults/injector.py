"""The runtime half of fault injection: applying a schedule to a run.

A :class:`FaultInjector` wraps one :class:`FaultSchedule` and answers
the questions the engines ask at their *checkpoints* (timed-primitive
boundaries — task dispatch, compute completion, batch consumption,
network-transfer start):

* "should this task execution crash?"          (:meth:`take_task_fault`)
* "should this operator batch crash?"          (:meth:`take_operator_fault`)
* "is this node down right now?"               (:meth:`node_down`)
* "did this node crash while I was computing?" (:meth:`node_crashed_between`)
* "how degraded is the network right now?"     (:meth:`link_factor`)

Everything is pure bookkeeping against the virtual clock, so two runs
of the same workload under the same schedule take identical decisions
at identical virtual timestamps.  The injector follows the tracer's
installation pattern (global install / per-cluster injection / a no-op
:data:`NULL_INJECTOR` default); ``Environment.faults`` carries it to
every instrumentation site.  With an empty schedule ``active`` is
False and every site short-circuits, keeping untraced, unfaulted runs
bit-identical to the seed timings.

Timed effects (node outages, replica loss) are *applied* by a small
simulation process the injector schedules when a cluster attaches it —
replica drops and node-outage bookkeeping happen at their scheduled
virtual instant, not lazily at the next query.
"""

from __future__ import annotations

from contextlib import contextmanager
from fnmatch import fnmatch
from typing import Any, Iterator, List, Optional, Tuple

from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = [
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "install_faults",
    "uninstall_faults",
    "current_injector",
    "faults_injected",
]


class FaultInjector:
    """Applies one :class:`FaultSchedule` to one (or more) runs.

    Like the tracer, one injector may serve several sequential cluster
    runs (an experiment measures many configurations); :meth:`attach`
    resets the consumed-event bookkeeping so every run replays the full
    schedule from virtual time zero.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        #: False for an empty schedule: every check short-circuits and
        #: no virtual time can possibly be charged.
        self.active = bool(schedule)
        self._env: Optional[Any] = None
        self._stores: List[Any] = []
        self._memories: List[Any] = []
        self._pending_tasks: List[FaultEvent] = []
        self._pending_operators: List[FaultEvent] = []
        #: (node, start, end) outage windows, fixed at construction.
        self.node_windows: Tuple[Tuple[str, float, float], ...] = tuple(
            (e.target, e.at_s, e.end_s) for e in schedule.of_kind("node")
        )
        self.link_windows: Tuple[Tuple[float, float, float], ...] = tuple(
            (e.at_s, e.end_s, e.factor) for e in schedule.of_kind("link")
        )
        #: Telemetry mirrored into tracer counters by the engines.
        self.injected = 0
        self.skipped = 0
        #: Recovery attempts (task retries + operator restarts), bumped
        #: by the engines so experiments can report them per run.
        self.retries = 0

    # -- lifecycle ---------------------------------------------------------

    def attach(self, env: Any) -> None:
        """Bind to a fresh environment; restarts the schedule replay.

        Clusters call this at construction (mirroring ``Tracer.attach``).
        Schedules a timer process for node-crash and replica-loss
        events so their effects land at the scheduled virtual time.
        """
        self._env = env
        self._stores = []
        self._memories = []
        self._pending_tasks = list(self.schedule.of_kind("task"))
        self._pending_operators = list(self.schedule.of_kind("operator"))
        if not self.active:
            return
        timed = sorted(
            self.schedule.of_kind("node")
            + self.schedule.of_kind("replica")
            + self.schedule.of_kind("oom"),
            key=lambda e: e.at_s,
        )
        if timed:
            env.process(self._apply_timed(env, timed))

    def register_store(self, store: Any) -> None:
        """Object stores register to receive replica-loss callbacks."""
        if store not in self._stores:
            self._stores.append(store)

    def register_memory(self, memory: Any) -> None:
        """Memory managers register to receive ``oom`` clamp callbacks."""
        if memory not in self._memories:
            self._memories.append(memory)

    def _apply_timed(self, env: Any, events: List[FaultEvent]):
        """Simulation process applying node/replica events on time."""
        for event in events:
            if event.at_s > env.now:
                yield env.timeout(event.at_s - env.now)
            if event.kind == "node":
                dropped = 0
                for store in self._stores:
                    dropped += store.evict_node(event.target)
                self.injected += 1
                tracer = env.tracer
                if tracer.enabled:
                    tracer.metrics.counter("faults.injected", kind="node").inc()
                    tracer.record_complete(
                        f"node-down:{event.target}",
                        category="faults.outage",
                        node=event.target,
                        start_s=event.at_s,
                        end_s=event.end_s,
                        replicas_lost=dropped,
                    )
            elif event.kind == "oom":
                for memory in self._memories:
                    yield from memory.clamp_matching(event.target, event.factor)
                self.injected += 1
                tracer = env.tracer
                if tracer.enabled:
                    tracer.metrics.counter("faults.injected", kind="oom").inc()
                    tracer.record_complete(
                        f"oom:{event.target}",
                        category="faults.oom",
                        node=event.target,
                        start_s=event.at_s,
                        end_s=env.now,
                        factor=event.factor,
                    )
            else:  # replica
                dropped = 0
                for store in self._stores:
                    dropped += store.drop_replica(event.target)
                    if dropped:
                        break
                if dropped:
                    self.injected += 1
                else:
                    self.skipped += 1
                tracer = env.tracer
                if tracer.enabled and dropped:
                    tracer.metrics.counter(
                        "faults.injected", kind="replica"
                    ).inc()

    # -- script-runtime checks --------------------------------------------

    def take_task_fault(self, label: str, now: float) -> Optional[FaultEvent]:
        """Consume the next due task fault matching ``label``, if any."""
        if not self.active:
            return None
        for index, event in enumerate(self._pending_tasks):
            if event.at_s <= now and fnmatch(label, event.target):
                self.injected += 1
                self._count_injected("task")
                return self._pending_tasks.pop(index)
        return None

    def node_down(self, node: str, now: float) -> bool:
        """True while ``node`` is inside one of its outage windows."""
        if not self.active:
            return False
        return any(
            name == node and start <= now < end
            for name, start, end in self.node_windows
        )

    def node_crashed_between(self, node: str, t0: float, t1: float) -> bool:
        """True if ``node`` crashed in ``(t0, t1]`` (kills in-flight work)."""
        if not self.active:
            return False
        return any(
            name == node and t0 < start <= t1
            for name, start, end in self.node_windows
        )

    def node_window_end(self, node: str, now: float) -> Optional[float]:
        """Close of the outage window covering ``now`` on ``node``."""
        for name, start, end in self.node_windows:
            if name == node and start <= now < end:
                return end
        return None

    # -- workflow checks ---------------------------------------------------

    def take_operator_fault(
        self, operator_id: str, now: float
    ) -> Optional[FaultEvent]:
        """Consume the next due operator fault matching ``operator_id``."""
        if not self.active:
            return None
        for index, event in enumerate(self._pending_operators):
            if event.at_s <= now and fnmatch(operator_id, event.target):
                self.injected += 1
                self._count_injected("operator")
                return self._pending_operators.pop(index)
        return None

    def _count_injected(self, kind: str) -> None:
        if self._env is not None and self._env.tracer.enabled:
            self._env.tracer.metrics.counter("faults.injected", kind=kind).inc()

    # -- network checks ----------------------------------------------------

    def link_factor(self, now: float) -> float:
        """Transfer-time multiplier at ``now`` (1.0 when undegraded)."""
        if not self.active:
            return 1.0
        factor = 1.0
        for start, end, window_factor in self.link_windows:
            if start <= now < end:
                factor = max(factor, window_factor)
        return factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector {len(self.schedule)} events, "
            f"{self.injected} injected, {self.skipped} skipped>"
        )


class NullInjector:
    """The do-nothing injector installed by default everywhere.

    ``active`` is False; every check returns the benign answer without
    touching any state, so unfaulted runs charge exactly the same
    virtual time as before the faults subsystem existed.
    """

    active = False
    schedule = FaultSchedule.empty()
    injected = 0
    skipped = 0
    retries = 0
    node_windows: Tuple = ()
    link_windows: Tuple = ()

    def attach(self, env: Any) -> None:
        pass

    def register_store(self, store: Any) -> None:
        pass

    def register_memory(self, memory: Any) -> None:
        pass

    def take_task_fault(self, label: str, now: float) -> Optional[FaultEvent]:
        return None

    def node_down(self, node: str, now: float) -> bool:
        return False

    def node_crashed_between(self, node: str, t0: float, t1: float) -> bool:
        return False

    def node_window_end(self, node: str, now: float) -> Optional[float]:
        return None

    def take_operator_fault(
        self, operator_id: str, now: float
    ) -> Optional[FaultEvent]:
        return None

    def link_factor(self, now: float) -> float:
        return 1.0


#: Shared singleton; ``Environment.faults`` defaults to this.
NULL_INJECTOR = NullInjector()

#: The globally installed injector, if any (see :func:`install_faults`).
_installed: Optional[FaultInjector] = None


def install_faults(schedule_or_injector) -> FaultInjector:
    """Make a schedule/injector the default for clusters built afterwards."""
    global _installed
    if isinstance(schedule_or_injector, FaultSchedule):
        injector = FaultInjector(schedule_or_injector)
    else:
        injector = schedule_or_injector
    _installed = injector
    return injector


def uninstall_faults() -> None:
    """Clear the globally installed injector (back to :data:`NULL_INJECTOR`)."""
    global _installed
    _installed = None


def current_injector():
    """The globally installed injector, or :data:`NULL_INJECTOR`."""
    return _installed if _installed is not None else NULL_INJECTOR


@contextmanager
def faults_injected(schedule: FaultSchedule) -> Iterator[FaultInjector]:
    """Install a fault schedule for the duration of a ``with`` block.

    >>> schedule = FaultSchedule.generate(seed=7, tasks=2)
    >>> with faults_injected(schedule) as injector:
    ...     run = run_dice_script(fresh_cluster(), reports)
    >>> injector.injected
    2
    """
    global _installed
    injector = FaultInjector(schedule)
    previous = _installed
    _installed = injector
    try:
        yield injector
    finally:
        _installed = previous
