"""Deterministic fault injection and recovery for both engines.

The paper's Section III-A contrasts how the two paradigms *report*
failures (cell-level stack traces vs operator-level messages); this
package extends the reproduction to how each paradigm *recovers*:

* a :class:`FaultSchedule` (seeded, serializable) pins node crashes,
  link degradation, transient task/operator exceptions and replica
  loss to virtual timestamps;
* the script runtime (:mod:`repro.rayx`) answers with task retry +
  exponential backoff, replica failover on ``get``, and lineage-based
  object reconstruction;
* the workflow engine (:mod:`repro.workflow`) answers with per-operator
  checkpoint/restart at epoch (batch) boundaries.

Because the schedule and the simulation clock are both deterministic,
recovery timelines are bit-reproducible: the experiment
``repro.experiments.exp_recovery`` turns the paper's qualitative
error-reporting comparison into measured recovery overhead per
paradigm.

Quick use::

    from repro.faults import FaultSchedule, faults_injected

    schedule = FaultSchedule.from_spec("seed=7,tasks=2,nodes=1")
    with faults_injected(schedule) as injector:
        run = run_dice_script(fresh_cluster(), reports)
    print(injector.injected, "faults injected")
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    current_injector,
    faults_injected,
    install_faults,
    uninstall_faults,
)
from repro.faults.schedule import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FAULT_KINDS",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
    "install_faults",
    "uninstall_faults",
    "current_injector",
    "faults_injected",
]
