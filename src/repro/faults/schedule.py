"""Deterministic, serializable fault schedules.

A :class:`FaultSchedule` is an immutable list of :class:`FaultEvent`
records pinned to *virtual* timestamps.  Because the simulation clock is
deterministic, replaying the same schedule against the same workload
produces an identical recovery timeline — the property that makes
script-vs-workflow recovery cost a measurable quantity rather than an
anecdote (the paper's Section III-A error-handling comparison, made
quantitative).

Schedules come from three places:

* :meth:`FaultSchedule.generate` — seeded pseudo-random generation with
  per-kind counts (``random.Random(seed)``; bit-stable across runs);
* :meth:`FaultSchedule.from_spec` — a compact ``key=value`` string for
  the CLI (``--faults "seed=7,tasks=3,nodes=1"``), or a path to a JSON
  file produced by :meth:`FaultSchedule.to_json`;
* explicit construction in tests.

Fault kinds
-----------
``task``
    The next matching script-runtime task execution raises
    :class:`repro.errors.InjectedFault` after ``delay_s`` of progress.
``operator``
    The next consumed batch of the matching workflow operator crashes
    mid-batch; the instance restores from its last checkpoint.
``node``
    The node is down for ``duration_s`` starting at ``at_s``: replicas
    hosted there are lost, in-flight tasks fail at their next timed
    checkpoint, and new dispatches to it fail until the window closes.
``link``
    Network transfers starting inside the window take ``factor`` times
    longer (a flap is a short window with a large factor).
``replica``
    One replica of the matching stored object is dropped at ``at_s``
    (never the last copy of an object without lineage).
``oom``
    The matching node's RAM ceiling is divided by ``factor`` at
    ``at_s``.  With the :mod:`repro.mem` policy enabled, resident
    replicas are spilled to disk until usage fits under the new
    ceiling; with it dormant, the next allocation that does not fit
    fails hard (the seed behaviour on a suddenly smaller machine).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import FaultSpecError

__all__ = ["FaultEvent", "FaultSchedule", "FAULT_KINDS"]

FAULT_KINDS = ("task", "operator", "node", "link", "replica", "oom")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is an ``fnmatch``-style glob matched against task labels
    (``task``), operator ids (``operator``), node names (``node`` /
    ``replica``'s host) or object-ref labels (``replica``).
    """

    at_s: float
    kind: str
    target: str = "*"
    #: Outage / degradation window length (node, link).
    duration_s: float = 0.0
    #: Transfer-time multiplier while a ``link`` window is open.
    factor: float = 1.0
    #: Virtual seconds of progress a poisoned task makes before raising.
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise FaultSpecError(f"fault time must be >= 0, got {self.at_s}")
        if self.duration_s < 0:
            raise FaultSpecError(f"negative duration: {self.duration_s}")
        if self.factor < 1.0:
            raise FaultSpecError(f"link factor must be >= 1, got {self.factor}")
        if self.delay_s < 0:
            raise FaultSpecError(f"negative delay: {self.delay_s}")

    @property
    def end_s(self) -> float:
        """Close of the outage/degradation window (== at_s if none)."""
        return self.at_s + self.duration_s


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None
    #: Free-form provenance (the spec string, generator profile, ...).
    note: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at_s, FAULT_KINDS.index(e.kind)))
        )
        object.__setattr__(self, "events", ordered)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def of_kind(self, kind: str) -> List[FaultEvent]:
        if kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r}")
        return [event for event in self.events if event.kind == kind]

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """A schedule with no events (the injector stays dormant)."""
        return cls()

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_s: float = 60.0,
        tasks: int = 0,
        operators: int = 0,
        nodes: int = 0,
        links: int = 0,
        replicas: int = 0,
        ooms: int = 0,
        oom_factor: float = 4.0,
        node_names: Iterable[str] = ("worker-0", "worker-1", "worker-2", "worker-3"),
        task_target: str = "*",
        operator_target: str = "*",
        replica_target: str = "*",
        outage_s: float = 3.0,
        link_factor: float = 8.0,
        note: str = "",
    ) -> "FaultSchedule":
        """Seeded pseudo-random schedule; identical for identical args.

        Counts are per kind; timestamps are uniform over
        ``[0.05, 0.95] * horizon_s`` so faults land inside the run, not
        at its edges.  Node targets cycle deterministically through
        ``node_names``.
        """
        rng = random.Random(seed)
        names = list(node_names)
        events: List[FaultEvent] = []

        def stamp() -> float:
            return round(rng.uniform(0.05, 0.95) * horizon_s, 6)

        for _ in range(tasks):
            events.append(
                FaultEvent(
                    stamp(),
                    "task",
                    target=task_target,
                    delay_s=round(rng.uniform(0.0, 0.2), 6),
                )
            )
        for _ in range(operators):
            events.append(FaultEvent(stamp(), "operator", target=operator_target))
        for index in range(nodes):
            events.append(
                FaultEvent(
                    stamp(),
                    "node",
                    target=names[index % len(names)],
                    duration_s=round(rng.uniform(0.5, outage_s), 6),
                )
            )
        for _ in range(links):
            events.append(
                FaultEvent(
                    stamp(),
                    "link",
                    duration_s=round(rng.uniform(0.5, outage_s), 6),
                    factor=link_factor,
                )
            )
        for _ in range(replicas):
            events.append(FaultEvent(stamp(), "replica", target=replica_target))
        for index in range(ooms):
            events.append(
                FaultEvent(
                    stamp(),
                    "oom",
                    target=names[index % len(names)],
                    factor=oom_factor,
                )
            )
        return cls(events=tuple(events), seed=seed, note=note)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultSchedule":
        """Parse a CLI spec: ``key=value[,key=value...]`` or a JSON path.

        Keys: ``seed`` (required for key=value form), ``horizon``,
        ``tasks``, ``operators``/``ops``, ``nodes``, ``links``,
        ``replicas``, ``ooms``, ``outage``, ``link_factor``,
        ``oom_factor``, and the target globs
        ``task_target``/``operator_target``/``replica_target``.

        >>> FaultSchedule.from_spec("seed=7,tasks=2,nodes=1").seed
        7
        """
        spec = spec.strip()
        if not spec:
            raise FaultSpecError("empty fault spec")
        candidate = Path(spec)
        if spec.endswith(".json") or candidate.is_file():
            try:
                return cls.from_json(
                    json.loads(candidate.read_text(encoding="utf-8"))
                )
            except OSError as exc:
                raise FaultSpecError(
                    f"cannot read fault schedule {spec!r}: {exc}"
                ) from None
            except json.JSONDecodeError as exc:
                # Without this, a truncated or hand-edited schedule file
                # escaped as a raw json traceback instead of exit-code-2
                # CLI diagnostics.
                raise FaultSpecError(
                    f"fault schedule {spec!r} is not valid JSON: {exc}"
                ) from None
        int_keys = {
            "seed": "seed",
            "tasks": "tasks",
            "operators": "operators",
            "ops": "operators",
            "nodes": "nodes",
            "links": "links",
            "replicas": "replicas",
            "ooms": "ooms",
        }
        float_keys = {
            "horizon": "horizon_s",
            "outage": "outage_s",
            "link_factor": "link_factor",
            "oom_factor": "oom_factor",
        }
        str_keys = {
            "task_target": "task_target",
            "operator_target": "operator_target",
            "replica_target": "replica_target",
        }
        kwargs: Dict[str, Any] = {}
        for part in spec.split(","):
            if "=" not in part:
                raise FaultSpecError(
                    f"bad fault spec fragment {part!r} (want key=value)"
                )
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            try:
                if key in int_keys:
                    kwargs[int_keys[key]] = int(value)
                elif key in float_keys:
                    kwargs[float_keys[key]] = float(value)
                elif key in str_keys:
                    kwargs[str_keys[key]] = value
                else:
                    raise FaultSpecError(f"unknown fault spec key {key!r}")
            except ValueError:
                raise FaultSpecError(
                    f"bad value for fault spec key {key!r}: {value!r}"
                ) from None
        if "seed" not in kwargs:
            raise FaultSpecError("fault spec needs a seed (e.g. 'seed=7,tasks=2')")
        seed = kwargs.pop("seed")
        return cls.generate(seed, note=spec, **kwargs)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable dict; round-trips through :meth:`from_json`."""
        return {
            "seed": self.seed,
            "note": self.note,
            "events": [asdict(event) for event in self.events],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultSchedule":
        try:
            events = tuple(FaultEvent(**record) for record in data["events"])
        except (KeyError, TypeError) as exc:
            raise FaultSpecError(f"malformed fault schedule JSON: {exc}") from None
        return cls(events=events, seed=data.get("seed"), note=data.get("note", ""))

    def describe(self) -> str:
        """Aligned text table of the schedule (the CLI's output)."""
        header = (
            f"fault schedule: {len(self.events)} events"
            f"{f' (seed={self.seed})' if self.seed is not None else ''}"
        )
        lines = [header, f"{'t (virtual s)':>14}  {'kind':<9} {'target':<18} detail"]
        for event in self.events:
            if event.kind == "node":
                detail = f"down for {event.duration_s:.2f}s"
            elif event.kind == "link":
                detail = f"{event.factor:.0f}x slower for {event.duration_s:.2f}s"
            elif event.kind == "task":
                detail = f"crash after {event.delay_s:.3f}s of progress"
            elif event.kind == "operator":
                detail = "crash mid-batch, restore from checkpoint"
            elif event.kind == "oom":
                detail = f"clamp RAM ceiling to 1/{event.factor:g}"
            else:
                detail = "drop one replica"
            lines.append(
                f"{event.at_s:>14.3f}  {event.kind:<9} {event.target:<18} {detail}"
            )
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)
