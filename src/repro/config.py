"""Calibrated cost-model constants — the single source of truth.

Every virtual-time charge in the simulated cluster, the Ray-like script
runtime and the Texera-like workflow engine is computed from the
constants defined here.  Keeping them in one module makes the
calibration auditable: EXPERIMENTS.md documents which constants were
fitted against which numbers reported in the paper.

Units
-----
* time: virtual seconds
* data: bytes
* compute: FLOPs (floating-point operations)

The hardware profile mirrors the paper's testbed (Section IV-A): two
four-machine GCP clusters, each VM with 8 vCPUs and 64 GB RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

GIB = 1024**3
MIB = 1024**2
KIB = 1024


@dataclass(frozen=True)
class MachineConfig:
    """One GCP VM from the paper's testbed."""

    num_cpus: int = 8
    ram_bytes: int = 64 * GIB
    #: Effective per-core throughput for model compute.  The absolute
    #: value is a calibration constant; only ratios between runtimes and
    #: between models matter for the reproduced shapes.
    flops_per_core_per_s: float = 2.0e9


@dataclass(frozen=True)
class NetworkConfig:
    """Intra-cluster network (GCP VMs in one zone)."""

    latency_s: float = 5.0e-4
    bandwidth_bytes_per_s: float = 1.25e9  # ~10 Gbit/s

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` between two distinct nodes."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class SerializationConfig:
    """Costs of encoding/decoding payloads at runtime boundaries.

    The paper (Section III-D, "Runtime overhead") attributes workflow
    overhead to serialization between operators — especially across
    language boundaries (Python <-> Scala via Arrow-like encoding) —
    while a plain Python script pays (almost) nothing between steps.
    """

    #: Fixed per-call overhead of invoking a codec.
    base_s: float = 2.0e-5
    #: Throughput of same-language (Python pickle-like) encoding.
    python_bytes_per_s: float = 1.2e9
    #: Throughput of JVM-side (Scala/Java) encoding.
    jvm_bytes_per_s: float = 2.4e9
    #: Throughput of the cross-language (Arrow-like) bridge.
    cross_language_bytes_per_s: float = 0.8e9
    #: Per-tuple re-boxing cost between Python and JVM object models;
    #: this is why a mixed-language workflow's edge overhead grows with
    #: data size (Table I's vanishing Scala advantage).
    cross_language_per_tuple_s: float = 2.5e-4

    def encode_time(self, nbytes: int, rate: float) -> float:
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        return self.base_s + nbytes / rate


@dataclass(frozen=True)
class ObjectStoreConfig:
    """Ray plasma-like shared object store (Section IV-E, GOTTA).

    The paper observes that Ray "required uploading large objects such
    as models into an object store, which required a lot of memory and
    added execution time for each access".  ``put`` pays a full
    serialize + copy; every ``get`` pays a mapping + deserialize cost
    proportional to object size (this is what penalises the 1.59 GB
    GOTTA model far more than the 375 MB KGE model).
    """

    put_base_s: float = 1.0e-3
    #: Uploading into the store is slow (serialize + copy + seal); this
    #: is the paper's "uploading large objects such as models into an
    #: object store ... added execution time" (Section IV-E).
    put_bytes_per_s: float = 4.0e7
    get_base_s: float = 5.0e-4
    #: Per-access cost of mapping + validating a stored object.
    get_bytes_per_s: float = 3.0e8

    def put_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative object size: {nbytes}")
        return self.put_base_s + nbytes / self.put_bytes_per_s

    def get_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative object size: {nbytes}")
        return self.get_base_s + nbytes / self.get_bytes_per_s


@dataclass(frozen=True)
class RayxConfig:
    """Script-paradigm runtime knobs (paper Section IV-A)."""

    #: The paper set Ray's num_cpus to 1 per worker for the fair
    #: one-worker comparison; Ray then pinned PyTorch to 1 CPU.
    default_num_cpus_per_worker: int = 1
    #: Effective cores PyTorch may use inside one Ray task.
    torch_cores_per_task: int = 1
    #: Fixed cost of launching a remote task (scheduling + dispatch).
    task_dispatch_s: float = 2.0e-3
    #: Driver/cluster startup charged once per script run.
    startup_s: float = 2.0
    #: Recovery knobs (only consulted when a fault schedule is active).
    #: Retries per task on an injected (transient) fault before the
    #: failure propagates to the driver, Ray's ``max_retries`` analogue.
    max_task_retries: int = 5
    #: First retry waits this long; later retries multiply it.
    retry_backoff_base_s: float = 0.5
    retry_backoff_multiplier: float = 2.0


@dataclass(frozen=True)
class WorkflowConfig:
    """Workflow-paradigm engine knobs."""

    #: Controller deploy/initialize cost charged once per execution.
    startup_s: float = 4.5
    #: Additional per-operator deployment cost.
    operator_deploy_s: float = 0.12
    #: Default tuple batch size on inter-operator channels.
    default_batch_size: int = 64
    #: When True, channels re-tune their batch size at runtime from the
    #: observed tuple payload (targeting ``auto_batch_target_bytes`` per
    #: batch) — the paper's "Texera automates the tuning ... batch size
    #: that Texera tunes to the available computational resources"
    #: (Section III-B).  Off by default so calibrated experiment
    #: timings stay exactly reproducible.
    auto_tune_batch_size: bool = False
    #: Target bytes per batch for the auto-tuner.
    auto_batch_target_bytes: int = 64 * 1024
    #: Auto-tuner clamp range.
    min_batch_size: int = 1
    max_batch_size: int = 1024
    #: Channel capacity in batches (bounds in-flight data; gives
    #: back-pressure).
    channel_capacity_batches: int = 4
    #: Per-batch fixed handling cost at each channel endpoint.
    batch_handling_s: float = 1.0e-4
    #: Texera does not pin frameworks: operators may use up to this
    #: many cores for model compute (paper Section IV-A).
    torch_cores_per_operator: int = 8
    #: Intra-operator parallel efficiency for model compute (Amdahl-ish
    #: discount when using multiple cores inside one operator).
    multicore_efficiency: float = 0.285
    #: Run the logical optimizer (``repro.workflow.optimize``) on every
    #: workflow before compilation: operator fusion, dead-column
    #: pruning, language-aware placement hints.  Off by default — the
    #: calibrated experiment timings are pinned against unoptimized
    #: plans.
    optimize: bool = False
    #: Recovery knobs (only consulted when a fault schedule is active).
    #: Cost of snapshotting an operator instance's state at an epoch
    #: boundary (one checkpoint per consumed batch).
    checkpoint_s: float = 2.0e-3
    #: Cost of restarting a crashed instance from its last checkpoint
    #: (re-deploy + state restore) before the epoch replays.
    operator_restart_s: float = 0.25


@dataclass(frozen=True)
class LanguageProfile:
    """Per-tuple execution efficiency of an operator runtime language.

    ``tuple_overhead_s`` is the fixed interpreter cost per tuple;
    ``relative_speed`` scales an operator's declared per-tuple work
    (Scala executes the same relational work faster than Python —
    Table I of the paper).
    """

    name: str
    tuple_overhead_s: float
    relative_speed: float


# Per-tuple interpreter overhead: Python workflow operators cross the
# engine<->interpreter (Arrow-like) bridge per tuple, which is orders of
# magnitude costlier than JVM-native operator dispatch.  This constant
# is what makes the workflow KGE implementation ~30% slower than the
# pandas-based script (paper Fig 13c) while leaving flop-dominated
# tasks (WEF) unaffected.
PYTHON_PROFILE = LanguageProfile("python", tuple_overhead_s=2.0e-4, relative_speed=1.0)
SCALA_PROFILE = LanguageProfile("scala", tuple_overhead_s=2.0e-5, relative_speed=6.0)
JAVA_PROFILE = LanguageProfile("java", tuple_overhead_s=2.5e-5, relative_speed=5.0)

LANGUAGE_PROFILES: Dict[str, LanguageProfile] = {
    "python": PYTHON_PROFILE,
    "scala": SCALA_PROFILE,
    "java": JAVA_PROFILE,
}


@dataclass(frozen=True)
class ModelConfig:
    """Sizes and compute costs of the paper's three model families.

    ``bytes`` values come straight from the paper (Section IV-E): the
    GOTTA BART model is 1.59 GB and the KGE model 375 MB.  FLOP costs
    are calibration constants chosen so the simulated per-item compute
    matches the paper's measured per-item times.
    """

    # WEF: four BERT binary classifiers, fine-tuned.
    bert_bytes: int = 440 * MIB
    bert_flops_per_token_forward: float = 3.1e7
    bert_train_backward_multiplier: float = 2.0
    # GOTTA: BART generative QA.
    bart_bytes: int = int(1.59 * GIB)
    bart_flops_per_token_forward: float = 4.75e8
    # KGE: TransE-style embedding model.
    kge_bytes: int = 375 * MIB
    kge_flops_per_score: float = 2.0e3
    #: Cold-load rate from the testbed's 100 GB HDD; loading the
    #: 1.59 GB GOTTA model from disk is a visible fixed cost in both
    #: paradigms.
    disk_read_bytes_per_s: float = 100 * MIB

    def load_seconds(self, nbytes: int) -> float:
        """Disk-load time for a model of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative model size: {nbytes}")
        return nbytes / self.disk_read_bytes_per_s


@dataclass(frozen=True)
class MemoryConfig:
    """Per-node memory-pressure policy (``repro.mem``).

    With the defaults (``enabled=False``, no RAM override) the manager
    is completely dormant: every allocation takes the seed's direct
    ``Node.allocate_ram`` path and timings stay bit-identical (pinned
    by ``tests/mem/test_timing_pin.py``).  Enabling the policy turns
    hard :class:`repro.errors.InsufficientResources` failures into LRU
    spill-to-disk plus FIFO admission backpressure, modelled on Ray's
    object-spilling and plasma-store admission control.

    Watermarks are fractions of a node's RAM ceiling: above
    ``spill_watermark`` an admission spills least-recently-used
    replicas to disk until usage drops back under it; an allocation
    that still cannot fit under ``admission_watermark`` blocks in a
    FIFO queue until RAM is freed.  An object larger than the admission
    watermark (but not larger than the node) may use the full ceiling —
    otherwise the 1.59 GB GOTTA model could never be admitted on a
    shrunken node.
    """

    #: Master switch for spilling + backpressure.  Off by default so
    #: calibrated experiment timings stay exactly reproducible.
    enabled: bool = False
    #: Spill LRU replicas down toward this fraction of the RAM ceiling.
    spill_watermark: float = 0.80
    #: Block (rather than spill further) above this fraction.
    admission_watermark: float = 0.95
    #: Spill device bandwidth — the testbed's 100 GB HDD, matching
    #: ``ModelConfig.disk_read_bytes_per_s``.
    spill_write_bytes_per_s: float = 100 * MIB
    spill_read_bytes_per_s: float = 100 * MIB
    #: Fixed per-spill/restore cost (file create + seal).
    spill_base_s: float = 2.0e-3
    #: Override every node's RAM ceiling (bytes).  Applied even when
    #: the policy is disabled — this is the knob that shrinks the
    #: testbed so the seed code path visibly dies while the spilling
    #: path completes (``benchmarks/bench_memory.py``).
    node_ram_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.spill_watermark <= 1.0:
            raise ValueError(
                f"spill_watermark must be in (0, 1], got {self.spill_watermark}"
            )
        if not 0.0 < self.admission_watermark <= 1.0:
            raise ValueError(
                "admission_watermark must be in (0, 1], got "
                f"{self.admission_watermark}"
            )
        if self.spill_watermark > self.admission_watermark:
            raise ValueError(
                f"spill_watermark ({self.spill_watermark}) must not exceed "
                f"admission_watermark ({self.admission_watermark})"
            )
        if self.spill_write_bytes_per_s <= 0 or self.spill_read_bytes_per_s <= 0:
            raise ValueError("spill bandwidths must be positive")
        if self.node_ram_bytes is not None and self.node_ram_bytes <= 0:
            raise ValueError(
                f"node_ram_bytes must be positive, got {self.node_ram_bytes}"
            )

    def spill_write_time(self, nbytes: int) -> float:
        """Virtual seconds to spill ``nbytes`` to disk."""
        if nbytes < 0:
            raise ValueError(f"negative spill size: {nbytes}")
        return self.spill_base_s + nbytes / self.spill_write_bytes_per_s

    def spill_read_time(self, nbytes: int) -> float:
        """Virtual seconds to restore ``nbytes`` from disk."""
        if nbytes < 0:
            raise ValueError(f"negative restore size: {nbytes}")
        return self.spill_base_s + nbytes / self.spill_read_bytes_per_s


@dataclass(frozen=True)
class CacheConfig:
    """Lineage-keyed result caching (``repro.cache``).

    With the default (``enabled=False``) the cache is completely
    dormant: no fingerprints are consulted, no lookup costs are
    charged, and timings stay bit-identical to the seed (pinned by
    ``tests/cache/test_timing_pin.py``).  When enabled, every rayx
    task submission and workflow operator batch is fingerprinted from
    the function identity, the lineage of its ``ObjectRef`` arguments
    and ``epoch``; a repeat execution returns the memoized result at
    ``lookup_s`` virtual cost instead of re-running the producer.

    The cache stores only fingerprint metadata — results are always
    rebuilt by the (virtually free) real Python computation — so a hit
    is structurally guaranteed to yield the same values as a miss.
    """

    #: Master switch.  Off by default so calibrated experiment timings
    #: stay exactly reproducible.
    enabled: bool = False
    #: Per-node capacity for cached entries in bytes; ``None`` means
    #: unbounded.  Exceeding it evicts least-recently-hit entries.
    capacity_bytes: Optional[int] = None
    #: Virtual cost of one cache lookup that hits (index probe +
    #: fingerprint comparison).  Misses charge nothing, so an
    #: enabled-but-cold run stays bit-identical to the seed.
    lookup_s: float = 1.0e-4
    #: Generation counter mixed into every fingerprint.  Bumping it
    #: invalidates all previously cached entries at zero cost.
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {self.capacity_bytes}"
            )
        if self.lookup_s < 0:
            raise ValueError(f"lookup_s must be >= 0, got {self.lookup_s}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")


@dataclass(frozen=True)
class JobsConfig:
    """Multi-tenant job service + traffic generator (``repro.jobs``).

    With the default (``enabled=False``) the subsystem is completely
    dormant: nothing in the engines consults it, and a single job
    submitted by one tenant executes its body exactly like a direct
    engine run — bit-identical outputs and virtual timings (pinned by
    ``tests/jobs/test_timing_pin.py``).  Enabling it (CLI ``--jobs`` /
    ``repro jobs SPEC``) drives a seeded open-loop traffic generator
    through the :class:`repro.jobs.JobService` control plane.

    Traffic shape: arrivals are a non-homogeneous Poisson process with
    instantaneous rate ``rate_per_s`` modulated by a diurnal sine
    (amplitude ``diurnal`` over ``diurnal_period_s``) and periodic
    burst windows (the first ``burst_duty`` fraction of every
    ``burst_period_s`` multiplies the rate by ``1 + burst``).
    """

    #: Master switch consulted by the CLI; the service itself runs
    #: whenever it is constructed explicitly.
    enabled: bool = False
    #: Seed for the open-loop traffic generator.
    seed: int = 0
    #: Mean arrival rate in jobs per virtual second.
    rate_per_s: float = 10.0
    #: Arrival-generation horizon in virtual seconds.
    horizon_s: float = 60.0
    #: Tenant population; generated jobs draw tenants uniformly.
    tenants: int = 4
    #: Burst amplitude: inside a burst window the rate is ``x (1+burst)``.
    burst: float = 0.0
    #: Burst window period and duty cycle (fraction of the period).
    burst_period_s: float = 300.0
    burst_duty: float = 0.1
    #: Diurnal amplitude in [0, 1]: rate ``x (1 + diurnal*sin(2pi t/T))``.
    diurnal: float = 0.0
    diurnal_period_s: float = 86400.0
    #: Admission ordering across tenants: ``fifo`` or ``drf``
    #: (weighted hierarchical dominant-resource fairness).
    policy: str = "drf"
    #: Placement policy (``repro.sched``) used to land admitted jobs on
    #: cluster nodes; ``drf`` picks the node with the lowest dominant
    #: resource share after placement.
    placement: str = "drf"
    #: Per-tenant quotas; ``None`` means unlimited.
    quota_running: Optional[int] = None
    quota_cpus: Optional[int] = None
    quota_ram_bytes: Optional[int] = None
    #: Queue capacity; submissions beyond it are rejected (open-loop
    #: traffic counts them as ``jobs.rejected``).  ``None`` = unbounded.
    max_queue: Optional[int] = None
    #: Default per-job resource demand and profile duration.
    cpus: int = 1
    ram_bytes: int = 1 * GIB
    duration_s: float = 1.0
    #: Default job body (see :mod:`repro.jobs.bodies`).
    body: str = "profile"
    #: Admission backpressure watermark as a fraction of each node's
    #: RAM ceiling; ``None`` reuses the resolved
    #: :class:`MemoryConfig.admission_watermark` (``repro.mem``).
    admission_watermark: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {self.rate_per_s}")
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.burst < 0:
            raise ValueError(f"burst must be >= 0, got {self.burst}")
        if self.burst_period_s <= 0 or not 0.0 < self.burst_duty <= 1.0:
            raise ValueError(
                f"burst window needs period > 0 and duty in (0, 1], got "
                f"period={self.burst_period_s}, duty={self.burst_duty}"
            )
        if not 0.0 <= self.diurnal <= 1.0:
            raise ValueError(f"diurnal must be in [0, 1], got {self.diurnal}")
        if self.diurnal_period_s <= 0:
            raise ValueError(
                f"diurnal_period_s must be positive, got {self.diurnal_period_s}"
            )
        if self.policy not in ("fifo", "drf"):
            raise ValueError(
                f"policy must be 'fifo' or 'drf', got {self.policy!r}"
            )
        for name in ("quota_running", "quota_cpus", "quota_ram_bytes", "max_queue"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.cpus < 1:
            raise ValueError(f"cpus must be >= 1, got {self.cpus}")
        if self.ram_bytes < 0:
            raise ValueError(f"ram_bytes must be >= 0, got {self.ram_bytes}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.admission_watermark is not None and not (
            0.0 < self.admission_watermark <= 1.0
        ):
            raise ValueError(
                "admission_watermark must be in (0, 1], got "
                f"{self.admission_watermark}"
            )


@dataclass(frozen=True)
class ElasticConfig:
    """Dynamic cluster membership + autoscaler policy (``repro.elastic``).

    With the default (``enabled=False``) the subsystem is completely
    dormant: the node set stays exactly as built and every direct
    engine run is bit-identical to the seed timings (pinned by
    ``tests/elastic/test_timing_pin.py``).  Enabling it attaches an
    :class:`repro.elastic.Autoscaler` process to the job service that
    watches the quantities behind the ``repro.obs`` gauges — queue
    depth (``jobs.queue_depth``), reserved-vCPU load
    (``sched.node_load``) and RAM high water (``mem.high_water``) —
    and provisions or drains workers accordingly.
    """

    #: Master switch consulted by the CLI and :class:`repro.jobs.JobService`.
    enabled: bool = False
    #: Fleet size bounds (workers; the controller is never scaled).
    min_nodes: int = 1
    max_nodes: int = 8
    #: Gauge-evaluation cadence of the autoscaler process.
    interval_s: float = 1.0
    #: Virtual boot latency paid before a provisioned node joins.
    provision_s: float = 10.0
    #: Scale up when queued jobs per (active + provisioning) worker
    #: exceed this ...
    up_queue_per_node: float = 4.0
    #: ... or when the queue is non-empty and mean reserved-vCPU load
    #: across active workers reaches this fraction ...
    up_load: float = 0.90
    #: ... or when the queue is non-empty and some node's RAM high
    #: water exceeds this fraction of its ceiling.
    up_ram: float = 0.90
    #: A node becomes a scale-down victim after being idle this long.
    idle_s: float = 3.0
    #: Cooldown after a scale-up before scale-down resumes.
    cooldown_s: float = 5.0
    #: Nodes provisioned per scale-up decision.
    step: int = 1
    #: Machine shape provisioned nodes use — a name from
    #: ``repro.elastic.MACHINE_SHAPES`` (default/fast/slow/highmem).
    shape: str = "default"
    #: Drain nodes on scale-down (migrate replicas) rather than
    #: crash-evicting them through the node-kill machinery.
    drain: bool = True

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes must be >= min_nodes, got "
                f"{self.max_nodes} < {self.min_nodes}"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if self.provision_s < 0:
            raise ValueError(f"provision_s must be >= 0, got {self.provision_s}")
        if self.up_queue_per_node <= 0:
            raise ValueError(
                f"up_queue_per_node must be positive, got {self.up_queue_per_node}"
            )
        for name in ("up_load", "up_ram"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.idle_s < 0:
            raise ValueError(f"idle_s must be >= 0, got {self.idle_s}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if not self.shape:
            raise ValueError("shape must be a non-empty shape name")


@dataclass(frozen=True)
class ClusterTopologyConfig:
    """The paper's deployment: 1 coordinator + 4 worker machines."""

    num_workers: int = 4
    machine: MachineConfig = field(default_factory=MachineConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)


@dataclass(frozen=True)
class ReproConfig:
    """Top-level bundle handed to engines and tasks."""

    topology: ClusterTopologyConfig = field(default_factory=ClusterTopologyConfig)
    serialization: SerializationConfig = field(default_factory=SerializationConfig)
    object_store: ObjectStoreConfig = field(default_factory=ObjectStoreConfig)
    rayx: RayxConfig = field(default_factory=RayxConfig)
    workflow: WorkflowConfig = field(default_factory=WorkflowConfig)
    models: ModelConfig = field(default_factory=ModelConfig)
    #: Memory-pressure policy (see :mod:`repro.mem`).  The default is
    #: fully dormant; an explicitly installed policy
    #: (``repro.mem.memory_managed``) takes precedence over this field.
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Placement-policy name consulted by both engines' schedulers (see
    #: :mod:`repro.sched`).  ``None`` falls back to the globally
    #: installed policy (``repro.sched.scheduling``), else the seed-
    #: identical ``round_robin`` default.
    scheduler: Optional[str] = None
    #: Result-caching policy (see :mod:`repro.cache`).  The default is
    #: fully dormant; an explicitly installed cache
    #: (``repro.cache.cached``) takes precedence over this field.
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: Multi-tenant job-service policy (see :mod:`repro.jobs`).  The
    #: default is fully dormant; an explicitly installed config
    #: (``repro.jobs.jobs_enabled``) takes precedence over this field.
    jobs: JobsConfig = field(default_factory=JobsConfig)
    #: Elastic-membership/autoscaler policy (see :mod:`repro.elastic`).
    #: The default is fully dormant; an explicitly installed config
    #: (``repro.elastic.elastic_enabled``) takes precedence over this
    #: field.
    elastic: ElasticConfig = field(default_factory=ElasticConfig)


DEFAULT_CONFIG = ReproConfig()


def default_config() -> ReproConfig:
    """Return the calibrated default configuration.

    The object is frozen; experiments that need variations should build
    a new :class:`ReproConfig` with ``dataclasses.replace``.
    """
    return DEFAULT_CONFIG
