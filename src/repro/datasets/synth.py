"""Shared utilities for synthetic corpus generation.

All generators are seeded and deterministic: the same seed yields the
same corpus bytes, so simulated timings and model outputs are
reproducible run-to-run.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["SyllableNameGenerator", "pick", "pick_many"]

_ONSETS = ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"]
_NUCLEI = ["a", "e", "i", "o", "u", "ae", "ia", "or"]
_CODAS = ["", "n", "r", "s", "l", "x", "th"]


class SyllableNameGenerator:
    """Generate pronounceable, distinctive invented words.

    Used where the corpus needs *unique* answer/entity tokens that
    cannot collide with template vocabulary (FSQA answers, product
    names) — this is what lets tests assert exact-match retrieval.
    """

    def __init__(self, rng: np.random.RandomState) -> None:
        self._rng = rng
        self._seen = set()

    def word(self, syllables: int = 3) -> str:
        """A fresh invented word, unique within this generator."""
        for _ in range(1000):
            parts = []
            for _ in range(syllables):
                parts.append(
                    _ONSETS[self._rng.randint(len(_ONSETS))]
                    + _NUCLEI[self._rng.randint(len(_NUCLEI))]
                    + _CODAS[self._rng.randint(len(_CODAS))]
                )
            candidate = "".join(parts)
            if candidate not in self._seen:
                self._seen.add(candidate)
                return candidate
        raise RuntimeError("name space exhausted; increase syllables")

    def words(self, count: int, syllables: int = 3) -> List[str]:
        return [self.word(syllables) for _ in range(count)]


def pick(rng: np.random.RandomState, pool: Sequence[str]) -> str:
    """Uniformly choose one element."""
    return pool[rng.randint(len(pool))]


def pick_many(
    rng: np.random.RandomState, pool: Sequence[str], count: int
) -> List[str]:
    """Choose ``count`` distinct elements (count capped at pool size)."""
    count = min(count, len(pool))
    indices = rng.choice(len(pool), size=count, replace=False)
    return [pool[i] for i in indices]
