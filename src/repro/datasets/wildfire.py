"""Synthetic wildfire-tweet corpus for the WEF task.

Substitute for the 800 human-expert-labeled climate tweets (paper
Section II-B).  Each tweet carries one to four of the paper's four
framings; the vocabulary is framing-correlated so the WEF classifiers
genuinely learn (tests assert above-chance accuracy), with shared noise
vocabulary so the problem is not trivially separable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.synth import pick, pick_many

__all__ = ["FRAMINGS", "LabeledTweet", "generate_wildfire_tweets", "train_test_split"]

#: The paper's four climate framings, in label order.
FRAMINGS = (
    "links_wildfire_climate",
    "suggests_climate_action",
    "attributes_other_adversity",
    "not_relevant",
)

_FRAMING_VOCAB = {
    "links_wildfire_climate": [
        "wildfire",
        "blaze",
        "warming",
        "climate",
        "drought",
        "heatwave",
        "megafire",
    ],
    "suggests_climate_action": [
        "act",
        "policy",
        "vote",
        "renewables",
        "emissions",
        "divest",
        "legislation",
    ],
    "attributes_other_adversity": [
        "flood",
        "hurricane",
        "famine",
        "storm",
        "sealevel",
        "erosion",
        "heatstroke",
    ],
    "not_relevant": [
        "football",
        "recipe",
        "concert",
        "vacation",
        "puppy",
        "birthday",
        "movie",
    ],
}

_NOISE = [
    "today",
    "just",
    "really",
    "people",
    "news",
    "watch",
    "thread",
    "photo",
    "california",
    "morning",
    "smoke",
    "county",
]


@dataclass(frozen=True)
class LabeledTweet:
    """One expert-labeled tweet: text plus four binary framing labels."""

    tweet_id: str
    text: str
    labels: Tuple[int, int, int, int]

    def label_of(self, framing: str) -> int:
        return self.labels[FRAMINGS.index(framing)]


def generate_wildfire_tweets(
    num_tweets: int = 800, seed: int = 11
) -> List[LabeledTweet]:
    """Generate the corpus (the real study labeled 800 tweets)."""
    if num_tweets < 1:
        raise ValueError(f"num_tweets must be >= 1, got {num_tweets}")
    rng = np.random.RandomState(seed)
    tweets: List[LabeledTweet] = []
    for index in range(num_tweets):
        # 1-4 framings per tweet, as in the paper.
        active = pick_many(rng, FRAMINGS, int(rng.randint(1, 5)))
        words: List[str] = []
        for framing in active:
            words.extend(pick_many(rng, _FRAMING_VOCAB[framing], 3))
        words.extend(pick(rng, _NOISE) for _ in range(4))
        rng.shuffle(words)
        labels = tuple(int(framing in active) for framing in FRAMINGS)
        tweets.append(
            LabeledTweet(f"tweet-{index:04d}", " ".join(words), labels)  # type: ignore[arg-type]
        )
    return tweets


def train_test_split(
    tweets: List[LabeledTweet], train_fraction: float = 0.8
) -> Tuple[List[LabeledTweet], List[LabeledTweet]]:
    """Deterministic prefix split (the corpus order is already random)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    cut = max(1, int(len(tweets) * train_fraction))
    return tweets[:cut], tweets[cut:]
