"""Synthetic few-shot QA corpus with cloze augmentation (GOTTA).

Substitute for GOTTA's FSQA benchmark data (paper Section II-C).  Each
paragraph states several facts using invented entity names; every fact
yields a natural question, a gold answer, and a *cloze* statement with
the answer masked — the augmentation GOTTA adds so the model "must
understand the context beyond the original questions".

Because answers are invented words unique to their paragraph, the
SimBART retriever answers them exactly, making correctness assertable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.synth import SyllableNameGenerator
from repro.ml.models.bart import MASK_TOKEN

__all__ = ["QAExample", "FsqaParagraph", "generate_fsqa"]

_FACT_TEMPLATES = [
    (
        "The capital of {subject} is {answer}.",
        "What is the capital of {subject}?",
    ),
    (
        "The river {subject} flows into lake {answer}.",
        "Which lake does the river {subject} flow into?",
    ),
    (
        "The founder of {subject} was {answer}.",
        "Who founded {subject}?",
    ),
    (
        "The chemical {subject} reacts strongly with {answer}.",
        "What does the chemical {subject} react strongly with?",
    ),
    (
        "The festival of {subject} honors {answer}.",
        "Whom does the festival of {subject} honor?",
    ),
]


@dataclass(frozen=True)
class QAExample:
    """One question with its gold answer and cloze augmentation."""

    question: str
    answer: str
    cloze: str


@dataclass(frozen=True)
class FsqaParagraph:
    """A context paragraph with its question set."""

    paragraph_id: str
    context: str
    examples: List[QAExample]


def generate_fsqa(
    num_paragraphs: int = 16,
    facts_per_paragraph: int = 4,
    seed: int = 17,
) -> List[FsqaParagraph]:
    """Generate paragraphs (the paper evaluates on 1, 4 and 16)."""
    if num_paragraphs < 1:
        raise ValueError(f"num_paragraphs must be >= 1, got {num_paragraphs}")
    if facts_per_paragraph < 1:
        raise ValueError(
            f"facts_per_paragraph must be >= 1, got {facts_per_paragraph}"
        )
    rng = np.random.RandomState(seed)
    names = SyllableNameGenerator(rng)
    paragraphs: List[FsqaParagraph] = []
    for paragraph_number in range(num_paragraphs):
        sentences: List[str] = []
        examples: List[QAExample] = []
        for fact_number in range(facts_per_paragraph):
            fact_template, question_template = _FACT_TEMPLATES[
                (paragraph_number + fact_number) % len(_FACT_TEMPLATES)
            ]
            subject = names.word(2).capitalize()
            answer = names.word(3).capitalize()
            sentence = fact_template.format(subject=subject, answer=answer)
            sentences.append(sentence)
            examples.append(
                QAExample(
                    question=question_template.format(subject=subject),
                    answer=answer,
                    cloze=fact_template.format(subject=subject, answer=MASK_TOKEN),
                )
            )
        paragraphs.append(
            FsqaParagraph(
                f"para-{paragraph_number:03d}", " ".join(sentences), examples
            )
        )
    return paragraphs
