"""Writing the synthetic corpora to disk and loading them back.

The generators in this package are in-memory; these helpers persist
each corpus in its natural on-disk format — the same formats the
paper's pipelines consume:

* MACCROBAT: one ``<doc_id>.txt`` + one ``<doc_id>.ann`` (BRAT) per
  case report, as in the real corpus;
* wildfire tweets / FSQA paragraphs: JSONL;
* the product catalog: CSV.

Round-trips are exact (asserted by tests), so experiments can be run
against on-disk corpora as well as generated ones.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.datasets.amazon import PRODUCT_SCHEMA, Product, catalog_table
from repro.datasets.fsqa import FsqaParagraph, QAExample
from repro.datasets.maccrobat import CaseReport
from repro.datasets.wildfire import LabeledTweet
from repro.errors import StorageError
from repro.storage.brat import parse_annotations, serialize_annotations
from repro.storage.csvio import read_csv, write_csv
from repro.storage.jsonl import read_jsonl, write_jsonl

__all__ = [
    "save_maccrobat",
    "load_maccrobat",
    "save_tweets",
    "load_tweets",
    "save_fsqa",
    "load_fsqa",
    "save_catalog",
    "load_catalog",
]

PathLike = Union[str, Path]


# -- MACCROBAT (txt + ann file pairs) -----------------------------------------


def save_maccrobat(directory: PathLike, reports: List[CaseReport]) -> int:
    """Write one ``.txt``/``.ann`` pair per report; returns the count."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for report in reports:
        (directory / f"{report.doc_id}.txt").write_text(
            report.text, encoding="utf-8"
        )
        (directory / f"{report.doc_id}.ann").write_text(
            serialize_annotations(report.annotations), encoding="utf-8"
        )
    return len(reports)


def load_maccrobat(directory: PathLike) -> List[CaseReport]:
    """Load every ``.txt``/``.ann`` pair from a directory (sorted)."""
    directory = Path(directory)
    reports: List[CaseReport] = []
    for text_path in sorted(directory.glob("*.txt")):
        ann_path = text_path.with_suffix(".ann")
        if not ann_path.exists():
            raise StorageError(f"missing annotation file for {text_path.name}")
        doc_id = text_path.stem
        annotations = parse_annotations(
            doc_id, ann_path.read_text(encoding="utf-8")
        )
        annotations.validate_references()
        reports.append(
            CaseReport(doc_id, text_path.read_text(encoding="utf-8"), annotations)
        )
    if not reports:
        raise StorageError(f"no .txt/.ann pairs found in {directory}")
    return reports


# -- wildfire tweets (JSONL) -------------------------------------------------------


def save_tweets(path: PathLike, tweets: List[LabeledTweet]) -> int:
    return write_jsonl(
        path,
        (
            {"tweet_id": t.tweet_id, "text": t.text, "labels": list(t.labels)}
            for t in tweets
        ),
    )


def load_tweets(path: PathLike) -> List[LabeledTweet]:
    tweets = []
    for record in read_jsonl(path):
        labels = record["labels"]
        if len(labels) != 4:
            raise StorageError(
                f"tweet {record.get('tweet_id')!r} has {len(labels)} labels"
            )
        tweets.append(
            LabeledTweet(record["tweet_id"], record["text"], tuple(labels))
        )
    return tweets


# -- FSQA paragraphs (JSONL) ----------------------------------------------------------


def save_fsqa(path: PathLike, paragraphs: List[FsqaParagraph]) -> int:
    return write_jsonl(
        path,
        (
            {
                "paragraph_id": p.paragraph_id,
                "context": p.context,
                "examples": [
                    {"question": e.question, "answer": e.answer, "cloze": e.cloze}
                    for e in p.examples
                ],
            }
            for p in paragraphs
        ),
    )


def load_fsqa(path: PathLike) -> List[FsqaParagraph]:
    paragraphs = []
    for record in read_jsonl(path):
        examples = [
            QAExample(e["question"], e["answer"], e["cloze"])
            for e in record["examples"]
        ]
        paragraphs.append(
            FsqaParagraph(record["paragraph_id"], record["context"], examples)
        )
    return paragraphs


# -- product catalog (CSV) ---------------------------------------------------------------


def save_catalog(path: PathLike, products: List[Product]) -> int:
    return write_csv(path, catalog_table(products))


def load_catalog(path: PathLike) -> List[Product]:
    table = read_csv(path, PRODUCT_SCHEMA)
    return [
        Product(
            row["product_id"],
            row["name"],
            row["category"],
            row["price"],
            row["in_stock"],
        )
        for row in table
    ]
