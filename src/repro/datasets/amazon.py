"""Synthetic Amazon product catalog + pre-trained KGE model (KGE task).

Substitute for the paper's proprietary Amazon data (Section II-D): a
catalog of candidate products (some out of stock — the KGE task's
availability filter removes them), a set of users, and a "pre-trained"
:class:`~repro.ml.models.kge.TransEModel` over all entities that plays
the 375 MB knowledge-graph embedding model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import ModelConfig, default_config
from repro.datasets.synth import SyllableNameGenerator, pick
from repro.ml.models.kge import TransEModel
from repro.relational import FieldType, Schema, Table

__all__ = [
    "Product",
    "PRODUCT_SCHEMA",
    "PURCHASE_RELATION",
    "generate_catalog",
    "catalog_table",
    "build_kge_model",
    "user_ids",
]

_CATEGORIES = ["electronics", "books", "kitchen", "garden", "toys", "sports"]

#: Relation used for purchase prediction.
PURCHASE_RELATION = "will_purchase"

PRODUCT_SCHEMA = Schema.of(
    product_id=FieldType.STRING,
    name=FieldType.STRING,
    category=FieldType.STRING,
    price=FieldType.FLOAT,
    in_stock=FieldType.BOOL,
)


@dataclass(frozen=True)
class Product:
    """One candidate product."""

    product_id: str
    name: str
    category: str
    price: float
    in_stock: bool


def generate_catalog(
    num_products: int = 6800,
    seed: int = 23,
    out_of_stock_fraction: float = 0.15,
) -> List[Product]:
    """Generate candidates (the paper uses 6.8k and 68k)."""
    if num_products < 1:
        raise ValueError(f"num_products must be >= 1, got {num_products}")
    if not 0.0 <= out_of_stock_fraction < 1.0:
        raise ValueError(
            f"out_of_stock_fraction must be in [0, 1), got {out_of_stock_fraction}"
        )
    rng = np.random.RandomState(seed)
    names = SyllableNameGenerator(rng)
    products: List[Product] = []
    for index in range(num_products):
        products.append(
            Product(
                product_id=f"P{index:06d}",
                name=names.word(2),
                category=pick(rng, _CATEGORIES),
                price=round(float(rng.uniform(3.0, 400.0)), 2),
                in_stock=bool(rng.uniform() >= out_of_stock_fraction),
            )
        )
    return products


def catalog_table(products: List[Product]) -> Table:
    """The catalog as a relational table (both paradigms scan this)."""
    return Table.from_rows(
        PRODUCT_SCHEMA,
        (
            [p.product_id, p.name, p.category, p.price, p.in_stock]
            for p in products
        ),
    )


def user_ids(num_users: int = 16) -> List[str]:
    """Deterministic user entity ids."""
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    return [f"U{index:04d}" for index in range(num_users)]


def build_kge_model(
    products: List[Product],
    users: List[str],
    model_config: ModelConfig = None,
    seed: int = 29,
) -> TransEModel:
    """The "pre-trained" embedding model over users + products."""
    entity_ids = users + [p.product_id for p in products]
    return TransEModel(
        entity_ids,
        [PURCHASE_RELATION],
        model_config or default_config().models,
        seed=seed,
    )
