"""Synthetic MACCROBAT: clinical case reports with BRAT annotations.

Substitute for the 200-document MACCROBAT corpus the DICE task wrangles
(paper Section II-A, Figure 3).  Each generated document is a pair:

* a clinical-narrative text file, and
* an annotation document with entity (``T``) and event (``E``)
  annotations whose character offsets index the text exactly.

The generator guarantees the structural properties DICE relies on:
entity spans slice back to their covered text, every event references a
real entity, and events carry the type/argument variety the task's
filter and join steps discriminate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.synth import pick
from repro.storage.brat import (
    AnnotationDocument,
    EntityAnnotation,
    EventAnnotation,
)

__all__ = ["CaseReport", "generate_maccrobat", "EVENT_TRIGGER_TYPES"]

_SEXES = ["man", "woman"]
_SYMPTOMS = [
    "fever",
    "cough",
    "fatigue",
    "dyspnea",
    "headache",
    "nausea",
    "dizziness",
    "myalgia",
    "rash",
    "palpitations",
]
_CLINICAL_EVENTS = [
    "presented",
    "admitted",
    "discharged",
    "intubated",
    "transferred",
    "evaluated",
]
_MEDICATIONS = [
    "acetaminophen",
    "ibuprofen",
    "amoxicillin",
    "prednisone",
    "metformin",
    "lisinopril",
]
_PROCEDURES = [
    "radiograph",
    "biopsy",
    "endoscopy",
    "echocardiogram",
    "catheterization",
]
_MODIFIERS = ["chronic", "acute", "severe", "mild", "intermittent"]

#: Trigger types that produce event (E) annotations.
EVENT_TRIGGER_TYPES = ("Clinical_event", "Sign_symptom", "Medication", "Procedure")


@dataclass
class CaseReport:
    """One synthetic MACCROBAT document pair."""

    doc_id: str
    text: str
    annotations: AnnotationDocument


class _DocumentBuilder:
    """Accumulates text while recording entity spans."""

    def __init__(self, doc_id: str) -> None:
        self.doc_id = doc_id
        self._pieces: List[str] = []
        self._length = 0
        self.entities: List[EntityAnnotation] = []
        self.events: List[EventAnnotation] = []

    def literal(self, text: str) -> None:
        self._pieces.append(text)
        self._length += len(text)

    def entity(self, text: str, ann_type: str) -> EntityAnnotation:
        start = self._length
        self.literal(text)
        annotation = EntityAnnotation(
            f"T{len(self.entities) + 1}", ann_type, start, self._length, text
        )
        self.entities.append(annotation)
        return annotation

    def event(
        self,
        trigger: EntityAnnotation,
        arguments: Tuple[Tuple[str, str], ...] = (),
    ) -> EventAnnotation:
        annotation = EventAnnotation(
            f"E{len(self.events) + 1}", trigger.ann_type, trigger.key, arguments
        )
        self.events.append(annotation)
        return annotation

    def build(self) -> CaseReport:
        text = "".join(self._pieces)
        return CaseReport(
            self.doc_id,
            text,
            AnnotationDocument(self.doc_id, self.entities, self.events),
        )


def _intro_sentence(builder: _DocumentBuilder, rng: np.random.RandomState) -> None:
    builder.literal("The patient was a ")
    age = builder.entity(f"{rng.randint(18, 90)}-yr-old", "Age")
    builder.literal(" ")
    sex = builder.entity(pick(rng, _SEXES), "Sex")
    builder.literal(" who ")
    event = builder.entity(pick(rng, _CLINICAL_EVENTS), "Clinical_event")
    builder.literal(" with complaints of ")
    symptom_a = builder.entity(pick(rng, _SYMPTOMS), "Sign_symptom")
    builder.literal(" and a ")
    modifier = builder.entity(pick(rng, _MODIFIERS), "Modifier")
    builder.literal(" ")
    symptom_b = builder.entity(pick(rng, _SYMPTOMS), "Sign_symptom")
    builder.literal(". ")
    builder.event(event, (("Patient", age.key), ("Sex", sex.key)))
    builder.event(symptom_a)
    builder.event(symptom_b, (("Modifier", modifier.key),))


def _symptom_sentence(builder: _DocumentBuilder, rng: np.random.RandomState) -> None:
    builder.literal("Examination revealed ")
    modifier = builder.entity(pick(rng, _MODIFIERS), "Modifier")
    builder.literal(" ")
    symptom = builder.entity(pick(rng, _SYMPTOMS), "Sign_symptom")
    builder.literal(". ")
    builder.event(symptom, (("Modifier", modifier.key),))
    # Modifier-triggered events exist in the raw annotations but are
    # not clinical events; DICE's filter step drops them (Figure 4's
    # "filtering event annotations based on certain conditions").
    builder.event(modifier)


def _medication_sentence(builder: _DocumentBuilder, rng: np.random.RandomState) -> None:
    builder.literal("Treatment with ")
    medication = builder.entity(pick(rng, _MEDICATIONS), "Medication")
    builder.literal(" was initiated for the ")
    symptom = builder.entity(pick(rng, _SYMPTOMS), "Sign_symptom")
    builder.literal(". ")
    builder.event(medication, (("Indication", symptom.key),))


def _procedure_sentence(builder: _DocumentBuilder, rng: np.random.RandomState) -> None:
    builder.literal("A ")
    procedure = builder.entity(pick(rng, _PROCEDURES), "Procedure")
    builder.literal(" was performed after the patient ")
    event = builder.entity(pick(rng, _CLINICAL_EVENTS), "Clinical_event")
    builder.literal(". ")
    builder.event(procedure)
    builder.event(event)


def _history_sentence(builder: _DocumentBuilder, rng: np.random.RandomState) -> None:
    # History sentences carry entities with NO events — these exercise
    # the DICE path that keeps entity annotations out of the event join.
    builder.literal("Medical history included ")
    builder.entity(pick(rng, _SYMPTOMS), "History")
    builder.literal(" managed with ")
    builder.entity(pick(rng, _MEDICATIONS), "History")
    builder.literal(". ")


_BODY_SENTENCES = (
    _symptom_sentence,
    _medication_sentence,
    _procedure_sentence,
    _history_sentence,
)


def generate_maccrobat(
    num_docs: int = 200,
    seed: int = 7,
    min_sentences: int = 6,
    max_sentences: int = 12,
) -> List[CaseReport]:
    """Generate ``num_docs`` case reports (the real corpus has 200)."""
    if num_docs < 1:
        raise ValueError(f"num_docs must be >= 1, got {num_docs}")
    if not 1 <= min_sentences <= max_sentences:
        raise ValueError(
            f"bad sentence bounds: [{min_sentences}, {max_sentences}]"
        )
    rng = np.random.RandomState(seed)
    reports: List[CaseReport] = []
    for doc_number in range(num_docs):
        builder = _DocumentBuilder(f"case-{doc_number:04d}")
        _intro_sentence(builder, rng)
        body_count = rng.randint(min_sentences, max_sentences + 1) - 1
        for _ in range(body_count):
            sentence = _BODY_SENTENCES[rng.randint(len(_BODY_SENTENCES))]
            sentence(builder, rng)
        report = builder.build()
        report.annotations.validate_references()
        reports.append(report)
    return reports
