"""Seeded synthetic datasets standing in for the paper's corpora.

See DESIGN.md section 2 for each substitution's rationale.
"""

from repro.datasets.amazon import (
    PRODUCT_SCHEMA,
    PURCHASE_RELATION,
    Product,
    build_kge_model,
    catalog_table,
    generate_catalog,
    user_ids,
)
from repro.datasets.fsqa import FsqaParagraph, QAExample, generate_fsqa
from repro.datasets.persistence import (
    load_catalog,
    load_fsqa,
    load_maccrobat,
    load_tweets,
    save_catalog,
    save_fsqa,
    save_maccrobat,
    save_tweets,
)
from repro.datasets.maccrobat import (
    EVENT_TRIGGER_TYPES,
    CaseReport,
    generate_maccrobat,
)
from repro.datasets.wildfire import (
    FRAMINGS,
    LabeledTweet,
    generate_wildfire_tweets,
    train_test_split,
)

__all__ = [
    "PRODUCT_SCHEMA",
    "PURCHASE_RELATION",
    "Product",
    "build_kge_model",
    "catalog_table",
    "generate_catalog",
    "user_ids",
    "FsqaParagraph",
    "QAExample",
    "generate_fsqa",
    "load_catalog",
    "load_fsqa",
    "load_maccrobat",
    "load_tweets",
    "save_catalog",
    "save_fsqa",
    "save_maccrobat",
    "save_tweets",
    "EVENT_TRIGGER_TYPES",
    "CaseReport",
    "generate_maccrobat",
    "FRAMINGS",
    "LabeledTweet",
    "generate_wildfire_tweets",
    "train_test_split",
]
