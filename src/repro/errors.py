"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at the public-API boundary.  Subsystems
define narrower classes below so tests (and users) can assert on the
precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class EmptySchedule(SimulationError):
    """``Environment.run`` was asked to advance but no events remain."""


class ProcessFailed(SimulationError):
    """A simulation process terminated with an unhandled exception."""


class ClusterError(ReproError):
    """Base class for cluster-topology errors."""


class UnknownNode(ClusterError):
    """A node name was referenced that is not part of the cluster."""


class InsufficientResources(ClusterError):
    """A request asked for more cores/RAM than a node possesses."""


class SchemaError(ReproError):
    """Base class for relational-schema violations."""


class FieldNotFound(SchemaError):
    """A tuple or expression referenced a field absent from the schema."""


class DuplicateField(SchemaError):
    """A schema was constructed with two fields of the same name."""


class TypeMismatch(SchemaError):
    """A tuple value does not conform to its field's declared type."""


class StorageError(ReproError):
    """Base class for dataset file-format errors."""


class AnnotationParseError(StorageError):
    """A BRAT-style annotation line could not be parsed."""


class RayxError(ReproError):
    """Base class for errors raised by the script (Ray-like) runtime."""


class ObjectStoreError(RayxError):
    """An object-store operation failed (missing ref, capacity, ...)."""


class ObjectNotFound(ObjectStoreError):
    """``get`` was called with a ref that was never ``put``."""


class TaskError(RayxError):
    """A remote task raised; the exception is re-raised at ``get``."""


class WorkflowError(ReproError):
    """Base class for errors raised by the workflow (Texera-like) engine."""


class InvalidWorkflow(WorkflowError):
    """The workflow DAG failed validation (cycle, dangling port, ...)."""


class WorkflowSpecError(WorkflowError):
    """A JSON workflow spec was malformed (grammar or reference error)."""


class OperatorError(WorkflowError):
    """An operator raised during execution; reported at operator level.

    Mirrors the paper's observation (Section III-A) that the workflow
    paradigm reports error traces *at the operator level*: the exception
    carries the failing operator's id so users can isolate it.
    """

    def __init__(self, operator_id: str, message: str) -> None:
        super().__init__(f"operator '{operator_id}': {message}")
        self.operator_id = operator_id


class FaultError(ReproError):
    """Base class for the deterministic fault-injection subsystem."""


class InjectedFault(FaultError):
    """A failure injected by a :class:`repro.faults.FaultSchedule`.

    Engines treat this as *transient*: the script runtime retries the
    task with exponential backoff, the workflow engine restores the
    operator instance from its last checkpoint.  ``kind`` names the
    fault class (``task``, ``operator``, ``node``, ``replica``).
    """

    def __init__(self, message: str, kind: str = "task") -> None:
        super().__init__(message)
        self.kind = kind


class FaultSpecError(FaultError):
    """A fault-schedule spec string or JSON document was malformed."""


class ReconstructionError(FaultError):
    """An object lost all replicas and has no lineage to rebuild from."""


class MemoryPressureError(ReproError):
    """Base class for the memory-pressure subsystem (``repro.mem``)."""


class MemSpecError(MemoryPressureError):
    """A ``--mem`` policy spec string was malformed."""


class CacheError(ReproError):
    """Base class for the result-caching subsystem (``repro.cache``)."""


class CacheSpecError(CacheError):
    """A ``--cache`` policy spec string was malformed."""


class SchedError(ReproError):
    """Base class for scheduling/placement errors."""


class UnknownPolicy(SchedError):
    """A placement-policy name that is not in the registry."""


class JobsError(ReproError):
    """Base class for the multi-tenant job service (``repro.jobs``)."""


class JobsSpecError(JobsError):
    """A ``--jobs`` spec string was malformed."""


class UnknownJob(JobsError):
    """A job id was referenced that the queue has never seen."""


class UnknownJobBody(JobsError):
    """A job named a body that is not in the registry."""


class InvalidJobTransition(JobsError):
    """A job state transition outside the state machine was attempted."""


class JobQueueFull(JobsError):
    """A submission was rejected because the queue is at capacity."""


class JobBodyError(JobsError):
    """A job body raised; the job moves to the ``failed`` state."""


class GenError(ReproError):
    """Base class for the workload generator (``repro.gen``)."""


class GenSpecError(GenError):
    """A ``repro gen`` spec string or generator knob was malformed."""


class TrafficInvariantError(JobsError):
    """The traffic generator's thinning majorant was violated.

    Raised defensively: the Lewis-Shedler envelope must dominate the
    instantaneous rate everywhere, or arrivals are silently
    under-sampled.  Seeing this error means a rate-shape change broke
    the ``peak_rate`` bound.
    """


class ElasticError(ReproError):
    """Base class for the elastic-membership subsystem (``repro.elastic``)."""


class ElasticSpecError(ElasticError):
    """An ``--elastic`` spec string was malformed."""


class DrainError(ElasticError):
    """A node drain could not quiesce the node or relocate its data."""


class MLError(ReproError):
    """Base class for model/tokenizer/training errors."""


class NotFittedError(MLError):
    """Inference was attempted on a model that has not been trained."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
