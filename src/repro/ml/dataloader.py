"""Dataset and batching utilities (the Figure 10 shape).

The paper shows the script paradigm explicitly constructing a
``TextDataset`` and wrapping it in a ``DataLoader`` with a user-tuned
batch size; these are the equivalents used by the script-side task
implementations.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Sequence, TypeVar

__all__ = ["TextDataset", "DataLoader"]

T = TypeVar("T")


class TextDataset(Generic[T]):
    """An indexable dataset of examples."""

    def __init__(self, examples: Sequence[T]) -> None:
        self._examples = list(examples)

    def __len__(self) -> int:
        return len(self._examples)

    def __getitem__(self, index: int) -> T:
        return self._examples[index]

    def __iter__(self) -> Iterator[T]:
        return iter(self._examples)


class DataLoader(Generic[T]):
    """Yield fixed-size batches from a dataset.

    ``batch_size`` is the knob the paper says script users "manually
    tune for the given environment" (Section III-B); the workflow
    engine tunes its own batch size instead.
    """

    def __init__(self, dataset: TextDataset[T], batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size

    def __len__(self) -> int:
        """Number of batches."""
        full, rem = divmod(len(self.dataset), self.batch_size)
        return full + (1 if rem else 0)

    def __iter__(self) -> Iterator[List[T]]:
        batch: List[T] = []
        for example in self.dataset:
            batch.append(example)
            if len(batch) == self.batch_size:
                yield batch
                batch = []
        if batch:
            yield batch
