"""A deterministic hashing-trick tokenizer.

Stands in for the BERT/BART WordPiece tokenizers: lowercases, splits on
non-alphanumerics, and maps each token to a bucket by a stable hash.
Deterministic across processes (no salted ``hash``), so model behaviour
and simulated costs are reproducible.
"""

from __future__ import annotations

import re
from typing import List

from repro.workflow.partitioning import stable_hash

__all__ = ["HashingTokenizer"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


class HashingTokenizer:
    """Map text to token ids in ``[0, vocab_size)`` via stable hashing."""

    def __init__(self, vocab_size: int = 8192) -> None:
        if vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {vocab_size}")
        self.vocab_size = vocab_size

    def words(self, text: str) -> List[str]:
        """Lowercased alphanumeric word stream."""
        return _TOKEN_RE.findall(text.lower())

    def tokenize(self, text: str) -> List[int]:
        """Token ids of ``text`` (empty text -> empty list)."""
        return [stable_hash(word) % self.vocab_size for word in self.words(text)]

    def num_tokens(self, text: str) -> int:
        """Token count without materializing ids (cost estimation)."""
        return len(_TOKEN_RE.findall(text.lower()))
