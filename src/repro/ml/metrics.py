"""Evaluation metrics for the tasks' model outputs."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "exact_match",
    "multilabel_scores",
]


def _check_lengths(truth: Sequence, predictions: Sequence) -> None:
    if len(truth) != len(predictions):
        raise ValueError(
            f"length mismatch: {len(truth)} labels vs {len(predictions)} predictions"
        )
    if not truth:
        raise ValueError("metrics need at least one example")


def accuracy(truth: Sequence[int], predictions: Sequence[int]) -> float:
    """Fraction of exact label matches."""
    _check_lengths(truth, predictions)
    return sum(t == p for t, p in zip(truth, predictions)) / len(truth)


def precision(truth: Sequence[int], predictions: Sequence[int]) -> float:
    """TP / (TP + FP); 0.0 when nothing was predicted positive."""
    _check_lengths(truth, predictions)
    tp = sum(1 for t, p in zip(truth, predictions) if t == 1 and p == 1)
    fp = sum(1 for t, p in zip(truth, predictions) if t == 0 and p == 1)
    return tp / (tp + fp) if (tp + fp) else 0.0


def recall(truth: Sequence[int], predictions: Sequence[int]) -> float:
    """TP / (TP + FN); 0.0 when there are no positives."""
    _check_lengths(truth, predictions)
    tp = sum(1 for t, p in zip(truth, predictions) if t == 1 and p == 1)
    fn = sum(1 for t, p in zip(truth, predictions) if t == 1 and p == 0)
    return tp / (tp + fn) if (tp + fn) else 0.0


def f1_score(truth: Sequence[int], predictions: Sequence[int]) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(truth, predictions)
    r = recall(truth, predictions)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def exact_match(truth: Sequence[str], predictions: Sequence[str]) -> float:
    """QA exact-match rate (case/whitespace-insensitive)."""
    _check_lengths(truth, predictions)
    matches = sum(
        t.strip().lower() == p.strip().lower() for t, p in zip(truth, predictions)
    )
    return matches / len(truth)


def multilabel_scores(
    truth: Sequence[Sequence[int]], predictions: Sequence[Sequence[int]]
) -> Dict[str, List[float]]:
    """Per-label accuracy/F1 for a multi-label problem (WEF's shape).

    ``truth[i][j]`` is label j of example i; all rows must have the
    same number of labels.
    """
    _check_lengths(truth, predictions)
    num_labels = len(truth[0])
    for row in list(truth) + list(predictions):
        if len(row) != num_labels:
            raise ValueError("ragged multilabel rows")
    per_label_accuracy = []
    per_label_f1 = []
    for j in range(num_labels):
        t = [row[j] for row in truth]
        p = [row[j] for row in predictions]
        per_label_accuracy.append(accuracy(t, p))
        per_label_f1.append(f1_score(t, p))
    return {"accuracy": per_label_accuracy, "f1": per_label_f1}
