"""ML substrate: tokenizer, models, training, metrics.

The three model families of the paper's tasks — BERT classifiers
(WEF), a BART QA generator (GOTTA), and a TransE knowledge-graph model
(KGE) — implemented as small numpy models that really compute, while
reporting full-scale byte sizes and FLOP costs for the simulation (see
DESIGN.md section 2).
"""

from repro.ml.dataloader import DataLoader, TextDataset
from repro.ml.metrics import (
    accuracy,
    exact_match,
    f1_score,
    multilabel_scores,
    precision,
    recall,
)
from repro.ml.models.bart import MASK_TOKEN, SimBartGenerator
from repro.ml.models.bert import SimBertClassifier
from repro.ml.models.kge import TransEModel
from repro.ml.tokenizer import HashingTokenizer
from repro.ml.train import Trainer, TrainingRun

__all__ = [
    "DataLoader",
    "TextDataset",
    "accuracy",
    "exact_match",
    "f1_score",
    "multilabel_scores",
    "precision",
    "recall",
    "MASK_TOKEN",
    "SimBartGenerator",
    "SimBertClassifier",
    "TransEModel",
    "HashingTokenizer",
    "Trainer",
    "TrainingRun",
]
