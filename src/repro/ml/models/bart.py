"""SimBART: a numpy/heuristic stand-in for the GOTTA BART QA model.

What is real: extractive answering.  Given a question (or a cloze
statement with a ``[MASK]``) and a context paragraph, the model scores
context sentences by word overlap and extracts the answer word — which
is genuinely correct on the synthetic FSQA corpus, so exact-match can
be asserted in tests.

What is simulated: cost.  The model reports the 1.59 GB payload the
paper measured for GOTTA (decisive for the Ray object-store overhead)
and per-token generation FLOPs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster import Sized
from repro.config import ModelConfig
from repro.ml.tokenizer import HashingTokenizer

__all__ = ["SimBartGenerator", "MASK_TOKEN"]

MASK_TOKEN = "[MASK]"

_STOPWORDS = frozenset(
    "the a an of is was are were in on at to and or for with by what which "
    "who whom whose where when why how does do did".split()
)


class SimBartGenerator(Sized):
    """Few-shot QA by sentence retrieval + answer-word extraction."""

    def __init__(self, name: str, model_config: ModelConfig) -> None:
        self.name = name
        self.model_config = model_config
        self.tokenizer = HashingTokenizer()

    # -- cost interface -----------------------------------------------------

    def payload_bytes(self) -> int:
        return self.model_config.bart_bytes

    def generation_flops(self, prompt: str, context: str) -> float:
        """FLOPs of one generate() call: encoder over prompt+context
        plus a short decode."""
        tokens = self.tokenizer.num_tokens(prompt) + self.tokenizer.num_tokens(
            context
        )
        decode_tokens = 8  # short answers
        return (tokens + decode_tokens) * self.model_config.bart_flops_per_token_forward

    # -- real computation -----------------------------------------------------

    def _content_words(self, text: str) -> List[str]:
        return [
            word
            for word in self.tokenizer.words(text.replace(MASK_TOKEN, " "))
            if word not in _STOPWORDS
        ]

    def _split_sentences(self, paragraph: str) -> List[str]:
        return [s.strip() for s in paragraph.split(".") if s.strip()]

    def _best_sentence(self, query: str, context: str) -> Optional[str]:
        query_words = set(self._content_words(query))
        best: Tuple[int, Optional[str]] = (0, None)
        for sentence in self._split_sentences(context):
            overlap = len(query_words & set(self._content_words(sentence)))
            if overlap > best[0]:
                best = (overlap, sentence)
        return best[1]

    def generate(self, question: str, context: str) -> str:
        """Answer a question (or fill a cloze) from the context.

        The answer is the last content word of the best-matching
        context sentence that does not already occur in the question —
        for "The capital of X is Y." and "What is the capital of X?"
        this extracts Y.
        """
        sentence = self._best_sentence(question, context)
        if sentence is None:
            return ""
        question_words = set(self.tokenizer.words(question))
        candidates = [
            word
            for word in self._content_words(sentence)
            if word not in question_words
        ]
        return candidates[-1] if candidates else ""

    def batch_generate(
        self, question_context_pairs: Sequence[Tuple[str, str]]
    ) -> List[str]:
        """Vector form of :meth:`generate` (one forward per pair)."""
        return [self.generate(q, c) for q, c in question_context_pairs]
