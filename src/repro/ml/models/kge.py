"""TransE-style knowledge graph embedding model for the KGE task.

What is real: TransE geometry over seeded random embeddings — scoring
is ``-||h + r - t||``, ranking sorts real scores, and reverse lookup is
an exact nearest-neighbour search, so the task's output (which products
a user is predicted to buy) is deterministic and assertable.

What is simulated: cost.  The model reports the 375 MB payload the
paper cites for the KGE model and per-score FLOPs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import Sized
from repro.config import ModelConfig
from repro.errors import MLError

__all__ = ["TransEModel"]


class TransEModel(Sized):
    """Pre-trained entity/relation embeddings with TransE scoring."""

    def __init__(
        self,
        entity_ids: Sequence[str],
        relation_ids: Sequence[str],
        model_config: ModelConfig,
        dim: int = 32,
        seed: int = 29,
    ) -> None:
        if not entity_ids:
            raise MLError("TransEModel needs at least one entity")
        if len(set(entity_ids)) != len(entity_ids):
            raise MLError("entity ids must be unique")
        self.model_config = model_config
        self.dim = dim
        rng = np.random.RandomState(seed)
        self._entity_index: Dict[str, int] = {
            entity: i for i, entity in enumerate(entity_ids)
        }
        self._entities = list(entity_ids)
        self.entity_embeddings = rng.normal(0.0, 1.0, size=(len(entity_ids), dim))
        self.relation_embeddings: Dict[str, np.ndarray] = {
            relation: rng.normal(0.0, 0.2, size=dim) for relation in relation_ids
        }

    # -- cost interface ------------------------------------------------------

    def payload_bytes(self) -> int:
        return self.model_config.kge_bytes

    def score_flops(self) -> float:
        """FLOPs of scoring one (head, relation, tail) triple."""
        return self.model_config.kge_flops_per_score

    # -- embeddings -------------------------------------------------------------

    @property
    def num_entities(self) -> int:
        return len(self._entities)

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._entity_index

    def embedding_of(self, entity_id: str) -> np.ndarray:
        try:
            return self.entity_embeddings[self._entity_index[entity_id]]
        except KeyError:
            raise MLError(f"unknown entity {entity_id!r}") from None

    def embedding_table(self) -> List[Tuple[str, np.ndarray]]:
        """(entity_id, embedding) pairs — the table the KGE task joins
        products against."""
        return [
            (entity, self.entity_embeddings[i])
            for entity, i in self._entity_index.items()
        ]

    # -- scoring -------------------------------------------------------------------

    def score(
        self, head_id: str, relation: str, tail_embedding: np.ndarray
    ) -> float:
        """TransE plausibility of (head, relation, tail): higher is better."""
        try:
            rel = self.relation_embeddings[relation]
        except KeyError:
            raise MLError(f"unknown relation {relation!r}") from None
        head = self.embedding_of(head_id)
        return -float(np.linalg.norm(head + rel - tail_embedding))

    def rank(
        self,
        head_id: str,
        relation: str,
        candidates: Sequence[Tuple[str, np.ndarray]],
        top_k: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Rank candidate tails by score, best first (stable on ties)."""
        scored = [
            (candidate_id, self.score(head_id, relation, embedding))
            for candidate_id, embedding in candidates
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored if top_k is None else scored[:top_k]

    def reverse_lookup(self, embedding: np.ndarray) -> str:
        """Nearest entity to an embedding (exact L2 search)."""
        distances = np.linalg.norm(self.entity_embeddings - embedding, axis=1)
        return self._entities[int(np.argmin(distances))]
