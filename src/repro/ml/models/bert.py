"""SimBERT: a numpy stand-in for a fine-tuned BERT binary classifier.

What is real: a hashing-trick bag-of-embeddings encoder feeding a
logistic-regression head trained by SGD — the model genuinely learns
(WEF tests assert loss decreases and accuracy beats chance on the
synthetic tweets, whose vocabulary correlates with the labels).

What is simulated: *cost*.  The model reports the byte size and
per-token forward/backward FLOPs of a full BERT-base (calibrated in
:class:`repro.config.ModelConfig`), which is what the engines charge
virtual time for.  See DESIGN.md section 2.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster import Sized
from repro.config import ModelConfig
from repro.errors import NotFittedError
from repro.ml.tokenizer import HashingTokenizer

__all__ = ["SimBertClassifier"]


class SimBertClassifier(Sized):
    """A binary text classifier with BERT-shaped cost reporting."""

    def __init__(
        self,
        name: str,
        model_config: ModelConfig,
        embedding_dim: int = 32,
        vocab_size: int = 8192,
        seed: int = 13,
    ) -> None:
        self.name = name
        self.model_config = model_config
        self.tokenizer = HashingTokenizer(vocab_size)
        rng = np.random.RandomState(seed)
        # Frozen "pre-trained" token embeddings.
        self.embeddings = rng.normal(0.0, 1.0, size=(vocab_size, embedding_dim))
        self.weights = np.zeros(embedding_dim)
        self.bias = 0.0
        self.fitted = False

    # -- cost interface -----------------------------------------------------

    def payload_bytes(self) -> int:
        """Full-model size (used by the object store / network)."""
        return self.model_config.bert_bytes

    def forward_flops(self, text: str) -> float:
        """FLOPs of one forward pass over ``text``."""
        tokens = max(1, self.tokenizer.num_tokens(text))
        return tokens * self.model_config.bert_flops_per_token_forward

    def train_step_flops(self, text: str) -> float:
        """FLOPs of one training step (forward + backward)."""
        return self.forward_flops(text) * (
            1.0 + self.model_config.bert_train_backward_multiplier
        )

    # -- real computation -----------------------------------------------------

    def encode(self, text: str) -> np.ndarray:
        """Mean pooled token embeddings (the [CLS] stand-in)."""
        token_ids = self.tokenizer.tokenize(text)
        if not token_ids:
            return np.zeros(self.embeddings.shape[1])
        return self.embeddings[token_ids].mean(axis=0)

    def predict_proba(self, text: str) -> float:
        """P(label=1 | text)."""
        if not self.fitted:
            raise NotFittedError(f"model {self.name!r} has not been trained")
        logit = float(self.encode(text) @ self.weights + self.bias)
        return 1.0 / (1.0 + np.exp(-logit))

    def predict(self, text: str, threshold: float = 0.5) -> int:
        return int(self.predict_proba(text) >= threshold)

    def train_epoch(
        self, examples: Sequence[Tuple[str, int]], learning_rate: float = 0.5
    ) -> float:
        """One SGD epoch over (text, label) pairs; returns mean loss."""
        if not examples:
            raise ValueError("cannot train on an empty epoch")
        total_loss = 0.0
        for text, label in examples:
            features = self.encode(text)
            logit = float(features @ self.weights + self.bias)
            prob = 1.0 / (1.0 + np.exp(-logit))
            eps = 1e-12
            total_loss += -(
                label * np.log(prob + eps) + (1 - label) * np.log(1 - prob + eps)
            )
            gradient = prob - label
            self.weights -= learning_rate * gradient * features
            self.bias -= learning_rate * gradient
        self.fitted = True
        return total_loss / len(examples)

    def fit(
        self,
        examples: Sequence[Tuple[str, int]],
        epochs: int = 3,
        learning_rate: float = 0.5,
    ) -> List[float]:
        """Train for several epochs; returns the loss curve."""
        return [self.train_epoch(examples, learning_rate) for _ in range(epochs)]
