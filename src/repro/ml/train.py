"""Training loop with FLOP accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import MLError
from repro.ml.models.bert import SimBertClassifier

__all__ = ["TrainingRun", "Trainer"]


@dataclass
class TrainingRun:
    """Outcome of one fine-tuning run."""

    model_name: str
    losses: List[float] = field(default_factory=list)
    total_flops: float = 0.0

    @property
    def epochs(self) -> int:
        return len(self.losses)

    @property
    def converged(self) -> bool:
        """Loose convergence check: final loss below the first."""
        return len(self.losses) >= 2 and self.losses[-1] < self.losses[0]


class Trainer:
    """Fine-tune a :class:`SimBertClassifier`, tracking loss and FLOPs.

    The returned :attr:`TrainingRun.total_flops` is what the engines
    charge as virtual compute for the WEF task.
    """

    def __init__(self, epochs: int = 3, learning_rate: float = 0.5) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        self.epochs = epochs
        self.learning_rate = learning_rate

    def fit(
        self, model: SimBertClassifier, examples: Sequence[Tuple[str, int]]
    ) -> TrainingRun:
        if not examples:
            raise MLError("cannot train on an empty example list")
        run = TrainingRun(model.name)
        for _ in range(self.epochs):
            loss = model.train_epoch(examples, self.learning_rate)
            run.losses.append(loss)
            run.total_flops += sum(
                model.train_step_flops(text) for text, _label in examples
            )
        return run
