"""Immutable schema-checked tuples (named ``tup`` to avoid shadowing
the built-in ``tuple``)."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence, Union

from repro.cluster.serialization import estimate_bytes
from repro.relational.schema import Schema

__all__ = ["Tuple"]


class Tuple:
    """One row of data: values bound to a :class:`Schema`.

    Tuples are immutable; derivation methods return new tuples.  Field
    access works both by name and by position::

        t["text"]   # by name
        t[0]        # by position
    """

    __slots__ = ("schema", "values", "_nbytes")

    def __init__(self, schema: Schema, values: Sequence[Any]) -> None:
        schema.validate(values)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "_nbytes", -1)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Tuple is immutable")

    def __copy__(self) -> "Tuple":
        return self

    def __deepcopy__(self, memo: Dict[int, Any]) -> "Tuple":
        # Immutable (and holding only immutable values), so a deep copy
        # is the object itself; also keeps operator-state checkpoints
        # (repro.workflow recovery) from tripping over __setattr__.
        return self

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, schema: Schema, mapping: Mapping[str, Any]) -> "Tuple":
        """Build a tuple from a field-name mapping (missing -> None)."""
        return cls(schema, [mapping.get(name) for name in schema.names])

    # -- access ----------------------------------------------------------------

    def __getitem__(self, key: Union[str, int]) -> Any:
        if isinstance(key, str):
            return self.values[self.schema.index_of(key)]
        return self.values[key]

    def get(self, name: str, default: Any = None) -> Any:
        """Field value by name, or ``default`` if the field is absent."""
        if name in self.schema:
            return self.values[self.schema.index_of(name)]
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(zip(self.schema.names, self.values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tuple)
            and self.schema == other.schema
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.values))

    # -- derivation ---------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Tuple":
        """Tuple restricted to the given fields."""
        schema = self.schema.project(names)
        return Tuple(schema, [self[name] for name in names])

    def with_value(self, name: str, value: Any) -> "Tuple":
        """Tuple with field ``name`` replaced by ``value``."""
        index = self.schema.index_of(name)
        values = list(self.values)
        values[index] = value
        return Tuple(self.schema, values)

    def concat(self, other: "Tuple", suffix: str = "_right") -> "Tuple":
        """Join-style concatenation of two tuples."""
        schema = self.schema.concat(other.schema, suffix=suffix)
        return Tuple(schema, list(self.values) + list(other.values))

    # -- sizing ------------------------------------------------------------------

    def payload_bytes(self) -> int:
        """Estimated serialized size (values only; schema is shared).

        Cached after the first call: values are immutable, so the
        estimate never changes, and batch accounting in the workflow
        engine asks for it once per channel hop.
        """
        nbytes = self._nbytes
        if nbytes < 0:
            nbytes = estimate_bytes(self.values)
            object.__setattr__(self, "_nbytes", nbytes)
        return nbytes

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.schema.names, self.values)
        )
        return f"Tuple({pairs})"
