"""Relational schemas for tuples flowing through the engines.

Texera operators exchange *tuples* with explicit schemas; the workflow
compiler propagates schemas edge-by-edge so misconfigured workflows fail
at compile time rather than mid-run.  The script runtime reuses the same
tuple/table types so both paradigms compute over identical data.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.errors import DuplicateField, FieldNotFound, TypeMismatch

__all__ = ["FieldType", "Field", "Schema"]


class FieldType(enum.Enum):
    """Value types supported by the tuple model."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    ANY = "any"  # opaque payloads (embeddings, model handles, ...)

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` conforms to this type (None is nullable)."""
        if value is None:
            return True
        if self is FieldType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is FieldType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is FieldType.STRING:
            return isinstance(value, str)
        if self is FieldType.BOOL:
            return isinstance(value, bool)
        return True  # ANY


def _accepts_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _accepts_float(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _accepts_string(value: Any) -> bool:
    return isinstance(value, str)


def _accepts_bool(value: Any) -> bool:
    return isinstance(value, bool)


#: Per-type checker functions (None for ANY: accepts everything).
#: ``Schema.validate`` runs per row on the workflow hot path, so the
#: type dispatch is resolved once per schema instead of per value.
_CHECKERS = {
    FieldType.INT: _accepts_int,
    FieldType.FLOAT: _accepts_float,
    FieldType.STRING: _accepts_string,
    FieldType.BOOL: _accepts_bool,
    FieldType.ANY: None,
}


class Field:
    """A named, typed column."""

    __slots__ = ("name", "ftype")

    def __init__(self, name: str, ftype: FieldType = FieldType.ANY) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"field name must be a non-empty string, got {name!r}")
        if not isinstance(ftype, FieldType):
            raise TypeError(f"ftype must be a FieldType, got {ftype!r}")
        self.name = name
        self.ftype = ftype

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Field)
            and self.name == other.name
            and self.ftype is other.ftype
        )

    def __hash__(self) -> int:
        return hash((self.name, self.ftype))

    def __repr__(self) -> str:
        return f"Field({self.name!r}, {self.ftype.value})"


class Schema:
    """An ordered collection of uniquely named fields."""

    def __init__(self, fields: Iterable[Field]) -> None:
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._index: Dict[str, int] = {}
        for position, field in enumerate(self.fields):
            if field.name in self._index:
                raise DuplicateField(f"duplicate field name {field.name!r}")
            self._index[field.name] = position
        self._checkers = tuple(_CHECKERS[f.ftype] for f in self.fields)
        self._arity = len(self.fields)

    # -- constructors --------------------------------------------------------

    @classmethod
    def of(cls, **name_types: FieldType) -> "Schema":
        """Build a schema from keyword arguments.

        >>> Schema.of(id=FieldType.INT, text=FieldType.STRING)
        """
        return cls(Field(name, ftype) for name, ftype in name_types.items())

    @classmethod
    def untyped(cls, *names: str) -> "Schema":
        """Build a schema of ANY-typed fields from names."""
        return cls(Field(name) for name in names)

    # -- lookups --------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return [field.name for field in self.fields]

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def index_of(self, name: str) -> int:
        """Position of field ``name``; raises :class:`FieldNotFound`."""
        try:
            return self._index[name]
        except KeyError:
            raise FieldNotFound(
                f"field {name!r} not in schema {self.names}"
            ) from None

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    # -- derivation -------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema(self.field(name) for name in names)

    def concat(self, other: "Schema", suffix: str = "_right") -> "Schema":
        """Concatenate two schemas, suffixing colliding right names.

        Mirrors what dataflow engines (and ``pandas.merge``) do when a
        join's two inputs share column names.
        """
        fields = list(self.fields)
        for field in other.fields:
            name = field.name
            if name in self._index:
                name = name + suffix
                if name in self._index or any(f.name == name for f in fields):
                    raise DuplicateField(
                        f"collision for {field.name!r} even after suffixing"
                    )
            fields.append(Field(name, field.ftype))
        return Schema(fields)

    def with_field(self, field: Field) -> "Schema":
        """Schema extended by one appended field."""
        return Schema(list(self.fields) + [field])

    def without(self, *names: str) -> "Schema":
        """Schema with the given fields removed."""
        missing = [name for name in names if name not in self._index]
        if missing:
            raise FieldNotFound(f"fields {missing} not in schema {self.names}")
        drop = set(names)
        return Schema(f for f in self.fields if f.name not in drop)

    def validate(self, values: Sequence[Any]) -> None:
        """Check arity and per-field types of a row of values."""
        if len(values) != self._arity:
            raise TypeMismatch(
                f"expected {len(self.fields)} values for schema {self.names}, "
                f"got {len(values)}"
            )
        position = 0
        for check in self._checkers:
            value = values[position]
            position += 1
            if check is None or value is None or check(value):
                continue
            field = self.fields[position - 1]
            raise TypeMismatch(
                f"field {field.name!r} ({field.ftype.value}) rejects "
                f"{value!r} ({type(value).__name__})"
            )

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.ftype.value}" for f in self.fields)
        return f"Schema({inner})"
