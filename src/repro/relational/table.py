"""In-memory tables: a schema plus an ordered list of tuples."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.schema import Field, FieldType, Schema
from repro.relational.tup import Tuple

__all__ = ["Table"]


class Table:
    """A small relational table used by both engines and the datasets.

    Tables are immutable in spirit: every transformation returns a new
    table.  This is deliberately a *simple* structure — the engines,
    not the table type, are where execution strategy lives.
    """

    def __init__(self, schema: Schema, rows: Iterable[Tuple] = ()) -> None:
        self.schema = schema
        self.rows: List[Tuple] = []
        for row in rows:
            if row.schema != schema:
                raise SchemaError(
                    f"row schema {row.schema!r} does not match table "
                    f"schema {schema!r}"
                )
            self.rows.append(row)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dicts(
        cls, schema: Schema, records: Iterable[Mapping[str, Any]]
    ) -> "Table":
        """Build a table from dict records (missing fields -> None)."""
        return cls(schema, (Tuple.from_dict(schema, record) for record in records))

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from positional value rows."""
        return cls(schema, (Tuple(schema, row) for row in rows))

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Tuple:
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.schema == other.schema
            and self.rows == other.rows
        )

    def is_empty(self) -> bool:
        return not self.rows

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row.values[index] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [row.as_dict() for row in self.rows]

    def head(self, n: int = 5) -> "Table":
        return Table(self.schema, self.rows[:n])

    # -- transformations ----------------------------------------------------------

    def filter(self, predicate: Callable[[Tuple], bool]) -> "Table":
        """Rows satisfying ``predicate``."""
        return Table(self.schema, (row for row in self.rows if predicate(row)))

    def project(self, names: Sequence[str]) -> "Table":
        """Table restricted to the given columns."""
        schema = self.schema.project(names)
        return Table(schema, (Tuple(schema, [row[n] for n in names]) for row in self.rows))

    def map_rows(
        self, schema: Schema, fn: Callable[[Tuple], Sequence[Any]]
    ) -> "Table":
        """Apply ``fn`` to every row, producing rows of ``schema``."""
        return Table(schema, (Tuple(schema, fn(row)) for row in self.rows))

    def with_column(
        self, name: str, fn: Callable[[Tuple], Any], ftype: FieldType = FieldType.ANY
    ) -> "Table":
        """Table extended with a computed column."""
        schema = self.schema.with_field(Field(name, ftype))
        return Table(
            schema,
            (Tuple(schema, list(row.values) + [fn(row)]) for row in self.rows),
        )

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """Rows ordered by one column (stable)."""
        index = self.schema.index_of(name)
        ordered = sorted(self.rows, key=lambda row: row.values[index], reverse=reverse)
        return Table(self.schema, ordered)

    def limit(self, n: int) -> "Table":
        if n < 0:
            raise ValueError(f"limit must be >= 0, got {n}")
        return Table(self.schema, self.rows[:n])

    def concat_rows(self, other: "Table") -> "Table":
        """Union-all of two same-schema tables."""
        if other.schema != self.schema:
            raise SchemaError(
                f"cannot concat tables with schemas {self.schema!r} and "
                f"{other.schema!r}"
            )
        return Table(self.schema, list(self.rows) + list(other.rows))

    def group_by(self, name: str) -> Dict[Any, "Table"]:
        """Partition rows by the value of one column."""
        index = self.schema.index_of(name)
        groups: Dict[Any, List[Tuple]] = {}
        for row in self.rows:
            groups.setdefault(row.values[index], []).append(row)
        return {key: Table(self.schema, rows) for key, rows in groups.items()}

    def distinct(self) -> "Table":
        """Unique rows, first occurrence kept (order-preserving)."""
        seen = set()
        unique: List[Tuple] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Table(self.schema, unique)

    # -- sizing ------------------------------------------------------------------

    def payload_bytes(self) -> int:
        """Estimated serialized size of the table's data."""
        return sum(row.payload_bytes() for row in self.rows)

    def __repr__(self) -> str:
        return f"Table({len(self.rows)} rows, schema={self.schema.names})"
