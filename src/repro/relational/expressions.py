"""Declarative predicates and projections over tuples.

Workflow operators take these objects as *configuration* (the analogue
of what a Texera user types into an operator's property panel), so the
same predicate is reusable from the script implementations — one task
logic, two paradigms.

Every expression is callable on a :class:`repro.relational.Tuple` and
carries a human-readable :meth:`describe` for progress/debug output.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.relational.tup import Tuple

__all__ = [
    "Predicate",
    "column_equals",
    "column_not_equals",
    "column_in",
    "column_not_in",
    "column_greater",
    "column_less",
    "column_is_not_null",
    "all_of",
    "any_of",
    "negate",
    "udf_predicate",
]


class Predicate:
    """A boolean function of a tuple with a description.

    ``columns`` optionally names the input columns the predicate reads
    (None = unknown, e.g. an arbitrary UDF).  The workflow optimizer's
    dead-column pruning consults it; evaluation never does.
    """

    def __init__(
        self,
        fn: Callable[[Tuple], bool],
        description: str,
        columns: Optional[Iterable[str]] = None,
    ) -> None:
        self._fn = fn
        self.description = description
        self.columns = frozenset(columns) if columns is not None else None

    def __call__(self, row: Tuple) -> bool:
        return bool(self._fn(row))

    def describe(self) -> str:
        return self.description

    def __repr__(self) -> str:
        return f"Predicate({self.description})"


def column_equals(name: str, value: Any) -> Predicate:
    """``row[name] == value``"""
    return Predicate(lambda row: row[name] == value, f"{name} == {value!r}", [name])


def column_not_equals(name: str, value: Any) -> Predicate:
    """``row[name] != value``"""
    return Predicate(lambda row: row[name] != value, f"{name} != {value!r}", [name])


def column_in(name: str, values: Iterable[Any]) -> Predicate:
    """``row[name] in values`` (values are frozen into a set)."""
    frozen = frozenset(values)
    return Predicate(
        lambda row: row[name] in frozen, f"{name} in {sorted(frozen)!r}", [name]
    )


def column_not_in(name: str, values: Iterable[Any]) -> Predicate:
    """``row[name] not in values``"""
    frozen = frozenset(values)
    return Predicate(
        lambda row: row[name] not in frozen,
        f"{name} not in {sorted(frozen)!r}",
        [name],
    )


def column_greater(name: str, value: Any) -> Predicate:
    """``row[name] > value``"""
    return Predicate(lambda row: row[name] > value, f"{name} > {value!r}", [name])


def column_less(name: str, value: Any) -> Predicate:
    """``row[name] < value``"""
    return Predicate(lambda row: row[name] < value, f"{name} < {value!r}", [name])


def column_is_not_null(name: str) -> Predicate:
    """``row[name] is not None``"""
    return Predicate(
        lambda row: row[name] is not None, f"{name} is not null", [name]
    )


def _merged_columns(predicates: Sequence[Predicate]):
    """Union of known column sets; None as soon as any part is unknown."""
    merged = set()
    for predicate in predicates:
        if predicate.columns is None:
            return None
        merged |= predicate.columns
    return merged


def all_of(predicates: Sequence[Predicate]) -> Predicate:
    """Conjunction of predicates."""
    preds = list(predicates)
    description = " and ".join(f"({p.describe()})" for p in preds) or "true"
    return Predicate(
        lambda row: all(p(row) for p in preds), description, _merged_columns(preds)
    )


def any_of(predicates: Sequence[Predicate]) -> Predicate:
    """Disjunction of predicates."""
    preds = list(predicates)
    description = " or ".join(f"({p.describe()})" for p in preds) or "false"
    return Predicate(
        lambda row: any(p(row) for p in preds), description, _merged_columns(preds)
    )


def negate(predicate: Predicate) -> Predicate:
    """Logical negation."""
    return Predicate(
        lambda row: not predicate(row),
        f"not ({predicate.describe()})",
        predicate.columns,
    )


def udf_predicate(fn: Callable[[Tuple], bool], description: str = "udf") -> Predicate:
    """Wrap an arbitrary boolean function (the UDF escape hatch)."""
    return Predicate(fn, description)
