"""Relational substrate: schemas, tuples, tables, predicates, joins.

Both paradigms compute over these types, so task outputs are directly
comparable (and asserted equal in the integration tests).
"""

from repro.relational.expressions import (
    Predicate,
    all_of,
    any_of,
    column_equals,
    column_greater,
    column_in,
    column_is_not_null,
    column_less,
    column_not_equals,
    column_not_in,
    negate,
    udf_predicate,
)
from repro.relational.joins import StreamingHashJoin, hash_join, join_schema
from repro.relational.schema import Field, FieldType, Schema
from repro.relational.table import Table
from repro.relational.tup import Tuple

__all__ = [
    "Field",
    "FieldType",
    "Schema",
    "Table",
    "Tuple",
    "Predicate",
    "all_of",
    "any_of",
    "column_equals",
    "column_greater",
    "column_in",
    "column_is_not_null",
    "column_less",
    "column_not_equals",
    "column_not_in",
    "negate",
    "udf_predicate",
    "StreamingHashJoin",
    "hash_join",
    "join_schema",
]
