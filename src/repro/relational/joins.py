"""Join algorithms over tables and tuple streams.

Two shapes are provided:

* :func:`hash_join` — classic build/probe over two complete tables, the
  form the script implementations use (the paper's DICE/KGE scripts
  "load the annotations into memory as a hash table and loop through
  the sentences while probing").
* :class:`StreamingHashJoin` — build side materialized once, probe side
  consumed tuple-at-a-time; this is the operator core the workflow
  engine pipelines.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.tup import Tuple

__all__ = ["hash_join", "StreamingHashJoin", "join_schema"]

_JOIN_KINDS = ("inner", "left", "left_anti", "left_semi")


def join_schema(left: Schema, right: Schema, suffix: str = "_right") -> Schema:
    """Output schema of an inner/left join of two input schemas."""
    return left.concat(right, suffix=suffix)


def _build_index(rows: Iterable[Tuple], key: str) -> Dict[Any, List[Tuple]]:
    index: Dict[Any, List[Tuple]] = {}
    for row in rows:
        index.setdefault(row[key], []).append(row)
    return index


def _null_row(schema: Schema) -> List[None]:
    return [None] * len(schema)


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Join two tables by equality on one key per side.

    ``how`` is one of:

    * ``inner`` — matching pairs only;
    * ``left`` — every left row, right columns null when unmatched;
    * ``left_semi`` — left rows having at least one match (left schema);
    * ``left_anti`` — left rows having no match (left schema).
    """
    if how not in _JOIN_KINDS:
        raise ValueError(f"how must be one of {_JOIN_KINDS}, got {how!r}")
    left.schema.index_of(left_key)
    right.schema.index_of(right_key)

    index = _build_index(right.rows, right_key)

    if how in ("left_semi", "left_anti"):
        keep_matched = how == "left_semi"
        rows = [row for row in left.rows if (row[left_key] in index) == keep_matched]
        return Table(left.schema, rows)

    out_schema = join_schema(left.schema, right.schema, suffix=suffix)
    out_rows: List[Tuple] = []
    for row in left.rows:
        matches = index.get(row[left_key], [])
        if matches:
            for match in matches:
                out_rows.append(Tuple(out_schema, list(row.values) + list(match.values)))
        elif how == "left":
            out_rows.append(
                Tuple(out_schema, list(row.values) + _null_row(right.schema))
            )
    return Table(out_schema, out_rows)


class StreamingHashJoin:
    """Build-once, probe-per-tuple hash join for pipelined execution.

    The build side must be fully consumed before probing begins —
    exactly the blocking/pipelined boundary a dataflow engine sees.  A
    probe yields zero or more output tuples immediately, so downstream
    operators can start before the probe side is exhausted.
    """

    def __init__(
        self,
        build_schema: Schema,
        probe_schema: Schema,
        build_key: str,
        probe_key: str,
        how: str = "inner",
        suffix: str = "_right",
    ) -> None:
        if how not in ("inner", "left"):
            raise ValueError(f"streaming join supports inner/left, got {how!r}")
        build_schema.index_of(build_key)
        probe_schema.index_of(probe_key)
        self.build_key = build_key
        self.probe_key = probe_key
        self.how = how
        self.build_schema = build_schema
        self.probe_schema = probe_schema
        # Probe side is "left" in the output for natural reading order.
        self.output_schema = join_schema(probe_schema, build_schema, suffix=suffix)
        self._index: Dict[Any, List[Tuple]] = {}
        self._build_done = False

    def add_build_tuple(self, row: Tuple) -> None:
        """Insert one build-side tuple into the hash index."""
        if self._build_done:
            raise SchemaError("build side already finished")
        self._index.setdefault(row[self.build_key], []).append(row)

    def finish_build(self) -> None:
        """Mark the build side complete; probing may begin."""
        self._build_done = True

    @property
    def build_size(self) -> int:
        return sum(len(rows) for rows in self._index.values())

    def probe(self, row: Tuple) -> Iterator[Tuple]:
        """Yield join outputs for one probe-side tuple."""
        if not self._build_done:
            raise SchemaError("probe before build side finished")
        matches = self._index.get(row[self.probe_key], [])
        if matches:
            for match in matches:
                yield Tuple(
                    self.output_schema, list(row.values) + list(match.values)
                )
        elif self.how == "left":
            yield Tuple(
                self.output_schema,
                list(row.values) + _null_row(self.build_schema),
            )
