"""Script-paradigm runtime (Ray-like): tasks, object store, scheduler.

Substitute for the paper's Ray cluster; see DESIGN.md section 2.
"""

from repro.rayx.actor import ActorHandle
from repro.rayx.compile import ScriptPlan, ScriptTask, compile_script_plan
from repro.rayx.objectref import ObjectRef
from repro.rayx.objectstore import ObjectStore
from repro.rayx.runtime import RayxRuntime, TaskContext, run_script

__all__ = [
    "ActorHandle",
    "ObjectRef",
    "ObjectStore",
    "RayxRuntime",
    "ScriptPlan",
    "ScriptTask",
    "TaskContext",
    "compile_script_plan",
    "run_script",
]
