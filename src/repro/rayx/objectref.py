"""Futures for the script runtime: object references.

An :class:`ObjectRef` is the handle returned by ``submit`` and ``put``,
analogous to ``ray.ObjectRef``.  It resolves to a value stored in the
shared object store; dereferencing charges object-store and network
costs (see :mod:`repro.rayx.objectstore`).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.sim import Environment, Event

__all__ = ["ObjectRef"]

_ref_counter = itertools.count()


class ObjectRef:
    """A future naming an object that will exist in the object store."""

    def __init__(self, env: Environment, label: str = "object") -> None:
        self.ref_id = f"ref-{next(_ref_counter)}"
        self.label = label
        self.ready: Event = env.event()
        #: Node name owning the primary copy, set on fulfilment.
        self.owner_node: Optional[str] = None
        #: Estimated payload size, set on fulfilment.
        self.nbytes: int = 0
        #: Lineage fingerprint (``repro.cache``), set at submit/put time
        #: when a cache is active.  Survives fault-driven
        #: reconstruction — the rebuilt object is the same computation,
        #: so lineage recovery still hits the cache.
        self.fingerprint: Optional[str] = None

    @property
    def is_ready(self) -> bool:
        return self.ready.triggered

    def fulfil(self, value: Any, owner_node: str, nbytes: int) -> None:
        """Mark the object available on ``owner_node``."""
        self.owner_node = owner_node
        self.nbytes = nbytes
        self.ready.succeed(value)

    def reject(self, exc: BaseException) -> None:
        """Propagate a task failure to anyone dereferencing this ref."""
        self.ready.fail(exc)

    def __repr__(self) -> str:
        state = "ready" if self.is_ready else "pending"
        return f"<ObjectRef {self.ref_id} {self.label!r} {state}>"
