"""Plasma-like shared object store.

The paper's GOTTA analysis (Section IV-E) attributes the script
paradigm's slowdown to Ray's shared object space: "Ray required
uploading large objects such as models into an object store, which
required a lot of memory and added execution time for each access."

The model here:

* ``put`` charges serialize+copy time proportional to object size and
  reserves RAM on the owning node;
* ``get`` from the owning node charges a per-access mapping/validation
  cost proportional to size;
* ``get`` from another node additionally pays a network transfer and
  caches a local copy, so repeated access from the same node pays the
  transfer only once (as Ray's per-node plasma stores do).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Set

from repro.cluster import Cluster, estimate_bytes
from repro.config import ObjectStoreConfig
from repro.errors import ObjectNotFound
from repro.rayx.objectref import ObjectRef

__all__ = ["ObjectStore"]


class _StoredObject:
    __slots__ = ("value", "nbytes", "owner_node", "replicas")

    def __init__(self, value: Any, nbytes: int, owner_node: str) -> None:
        self.value = value
        self.nbytes = nbytes
        self.owner_node = owner_node
        self.replicas: Set[str] = {owner_node}


class ObjectStore:
    """Cluster-wide object store with per-node replica tracking."""

    def __init__(self, cluster: Cluster, config: ObjectStoreConfig) -> None:
        self.cluster = cluster
        self.config = config
        self._objects: Dict[str, _StoredObject] = {}
        # Telemetry used by tests and EXPERIMENTS.md narratives.
        self.put_count = 0
        self.get_count = 0
        self.bytes_stored = 0

    def put(
        self, ref: ObjectRef, value: Any, node_name: str, parent=None
    ) -> Generator:
        """Simulation process storing ``value`` on ``node_name``.

        Fulfils ``ref`` once the copy completes.
        """
        nbytes = estimate_bytes(value)
        tracer = self.cluster.env.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "put",
                category="objectstore",
                node=node_name,
                parent=parent,
                ref=ref.label,
                nbytes=nbytes,
            )
            tracer.metrics.counter("objectstore.put.bytes").add(nbytes)
            tracer.metrics.counter("objectstore.put.count").inc()
        node = self.cluster.node(node_name)
        node.allocate_ram(nbytes)
        yield self.cluster.env.timeout(self.config.put_time(nbytes))
        self._objects[ref.ref_id] = _StoredObject(value, nbytes, node_name)
        self.put_count += 1
        self.bytes_stored += nbytes
        if span is not None:
            tracer.end(span)
        ref.fulfil(value, node_name, nbytes)
        return ref

    def store_result(
        self, ref: ObjectRef, value: Any, node_name: str, parent=None
    ) -> Generator:
        """Store a task result (same cost model as :meth:`put`)."""
        result = yield from self.put(ref, value, node_name, parent=parent)
        return result

    def get(self, ref: ObjectRef, node_name: str, parent=None) -> Generator:
        """Simulation process dereferencing ``ref`` from ``node_name``.

        Waits for the object to exist, pays the transfer if this node
        holds no replica yet, then pays the per-access mapping cost.
        """
        value = yield ref.ready
        stored = self._objects.get(ref.ref_id)
        if stored is None:
            raise ObjectNotFound(f"{ref.ref_id} fulfilled but not stored")
        # The span opens only after the object exists: waiting for a
        # producer is scheduling time, not object-store cost.
        tracer = self.cluster.env.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "get",
                category="objectstore",
                node=node_name,
                parent=parent,
                ref=ref.label,
                nbytes=stored.nbytes,
            )
            tracer.metrics.counter("objectstore.get.bytes").add(stored.nbytes)
            tracer.metrics.counter("objectstore.get.count").inc()
        if node_name not in stored.replicas:
            yield self.cluster.env.process(
                self.cluster.transfer(stored.owner_node, node_name, stored.nbytes)
            )
            self.cluster.node(node_name).allocate_ram(stored.nbytes)
            stored.replicas.add(node_name)
        yield self.cluster.env.timeout(self.config.get_time(stored.nbytes))
        self.get_count += 1
        if span is not None:
            tracer.end(span)
        return value

    def contains(self, ref: ObjectRef) -> bool:
        return ref.ref_id in self._objects

    def nbytes_of(self, ref: ObjectRef) -> int:
        """Stored size of a fulfilled ref."""
        try:
            return self._objects[ref.ref_id].nbytes
        except KeyError:
            raise ObjectNotFound(f"{ref.ref_id} is not in the object store") from None

    def free_all(self) -> None:
        """Release every replica's RAM reservation (runtime shutdown)."""
        for stored in self._objects.values():
            for node_name in stored.replicas:
                self.cluster.node(node_name).free_ram(stored.nbytes)
        self._objects.clear()
