"""Plasma-like shared object store.

The paper's GOTTA analysis (Section IV-E) attributes the script
paradigm's slowdown to Ray's shared object space: "Ray required
uploading large objects such as models into an object store, which
required a lot of memory and added execution time for each access."

The model here:

* ``put`` charges serialize+copy time proportional to object size and
  reserves RAM on the owning node;
* ``get`` from a node holding a replica charges a per-access
  mapping/validation cost proportional to size;
* ``get`` from another node additionally pays a network transfer and
  caches a local copy, so repeated access from the same node pays the
  transfer only once (as Ray's per-node plasma stores do).  Concurrent
  getters on one node share a single in-flight transfer — the second
  dereference waits on the first instead of paying (and reserving RAM
  for) a duplicate copy.

Fault tolerance (``repro.faults``): the transfer source fails over to
any surviving replica when the owner's copy is lost, and an object
whose replicas are *all* lost is rebuilt from recorded task lineage by
the runtime's reconstructor before the ``get`` proceeds.

Memory pressure (``repro.mem``): when the cluster's memory policy is
enabled, every replica reservation goes through the
:class:`repro.mem.MemoryManager` — admissions may spill LRU replicas
to disk or block behind a watermark instead of raising, and a ``get``
of a spilled replica pays the disk read back before the mapping cost.
With the policy dormant (the default) every call site takes the seed's
direct ``Node.allocate_ram`` path.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Any, Callable, Dict, Generator, Optional, Set, Tuple

from repro.cluster import Cluster, estimate_bytes
from repro.config import ObjectStoreConfig
from repro.errors import DrainError, ObjectNotFound, ReconstructionError
from repro.rayx.objectref import ObjectRef

__all__ = ["ObjectStore"]

#: Pseudo-node key marking an in-flight lineage reconstruction.
_REBUILD = "__rebuild__"


class _StoredObject:
    __slots__ = ("value", "nbytes", "owner_node", "replicas", "label", "ref_id")

    def __init__(
        self, value: Any, nbytes: int, owner_node: str, label: str, ref_id: str
    ) -> None:
        self.value = value
        self.nbytes = nbytes
        self.owner_node = owner_node
        self.replicas: Set[str] = {owner_node}
        self.label = label
        self.ref_id = ref_id


class ObjectStore:
    """Cluster-wide object store with per-node replica tracking."""

    def __init__(self, cluster: Cluster, config: ObjectStoreConfig) -> None:
        self.cluster = cluster
        self.config = config
        self._objects: Dict[str, _StoredObject] = {}
        #: One event per in-flight transfer/rebuild, keyed by
        #: ``(ref_id, node)``; late arrivals wait on it instead of
        #: duplicating the work (and the RAM reservation).
        self._inflight: Dict[Tuple[str, str], Any] = {}
        #: ``ref_id -> (fn, args)`` recorded by the runtime at submit
        #: time; the basis for lineage reconstruction.
        self.lineage: Dict[str, Tuple] = {}
        #: Generator function ``(ref) -> value`` installed by the
        #: runtime; re-executes the producing task to rebuild a lost
        #: object (charging its full virtual cost).
        self.reconstructor: Optional[Callable[[ObjectRef], Generator]] = None
        # Telemetry used by tests and EXPERIMENTS.md narratives.
        self.put_count = 0
        self.get_count = 0
        #: Results installed by the cache's free replay (``adopt``) —
        #: stored and RAM-accounted like puts, but never charged.
        self.adopted = 0
        #: Cumulative bytes ever stored (monotonic, for throughput
        #: narratives) versus bytes of replicas currently tracked —
        #: ``bytes_live`` is decremented on overwrite and eviction, so
        #: memory reports do not overstate residency.
        self.bytes_stored = 0
        self.bytes_live = 0
        #: In-flight fetches that found their object overwritten while
        #: the transfer was on the wire; their replica is discarded
        #: instead of being charged against the *old* entry.
        self.stale_fetches = 0
        #: Inter-node replica fetches actually performed, and the
        #: virtual seconds they took — what the locality placement
        #: policy exists to reduce (see ``benchmarks/bench_scheduling``).
        self.transfers = 0
        self.transfer_seconds = 0.0
        self.transfers_deduped = 0
        self.replicas_lost = 0
        self.reconstructions = 0
        #: Replicas shipped off draining nodes (``repro.elastic``) and
        #: the bytes they carried — scale-down's data-movement bill.
        self.migrations = 0
        self.migrated_bytes = 0
        cluster.faults.register_store(self)
        cluster.register_store(self)

    def put(
        self, ref: ObjectRef, value: Any, node_name: str, parent=None
    ) -> Generator:
        """Simulation process storing ``value`` on ``node_name``.

        Fulfils ``ref`` once the copy completes.  Re-``put`` of an
        already-stored ``ref_id`` releases the previous entry's replica
        RAM reservations before the new copy is charged — overwriting
        must not leak node RAM for the rest of the run.
        """
        nbytes = estimate_bytes(value)
        tracer = self.cluster.env.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "put",
                category="objectstore",
                node=node_name,
                parent=parent,
                ref=ref.label,
                nbytes=nbytes,
            )
            tracer.metrics.counter("objectstore.put.bytes").add(nbytes)
            tracer.metrics.counter("objectstore.put.count").inc()
        try:
            previous = self._objects.get(ref.ref_id)
            if previous is not None:
                self._release_entry(previous)
            node = self.cluster.node(node_name)
            mem = self.cluster.memory
            if mem.active:
                yield from mem.allocate(node_name, nbytes, key=ref.ref_id)
            else:
                node.allocate_ram(nbytes)
            try:
                yield self.cluster.env.timeout(self.config.put_time(nbytes))
            except BaseException:
                # The copy was interrupted (fault kill) after the RAM
                # was reserved but before any _StoredObject existed to
                # own it — release here or the node leaks the
                # reservation for the rest of the run (mirrors
                # _fetch_replica's cleanup).
                if mem.active:
                    mem.release(node_name, ref.ref_id)
                else:
                    node.free_ram(nbytes)
                raise
            self._objects[ref.ref_id] = _StoredObject(
                value, nbytes, node_name, ref.label, ref.ref_id
            )
            self.put_count += 1
            self.bytes_stored += nbytes
            self.bytes_live += nbytes
        finally:
            if span is not None:
                tracer.end(span)
        ref.fulfil(value, node_name, nbytes)
        return ref

    def store_result(
        self, ref: ObjectRef, value: Any, node_name: str, parent=None
    ) -> Generator:
        """Store a task result (same cost model as :meth:`put`)."""
        result = yield from self.put(ref, value, node_name, parent=parent)
        return result

    def adopt(
        self, ref: ObjectRef, value: Any, node_name: str
    ) -> Generator:
        """Install a cache-hit result without the serialize+copy charge.

        ``repro.cache``'s hit path replays the (virtually free) real
        computation and lands the value here: the RAM reservation is
        still made — cached results occupy the store and compose with
        ``repro.mem`` spilling exactly like charged puts — but no
        ``put_time`` elapses.  Fulfils ``ref`` like :meth:`put`.
        """
        nbytes = estimate_bytes(value)
        previous = self._objects.get(ref.ref_id)
        if previous is not None:
            self._release_entry(previous)
        mem = self.cluster.memory
        if mem.active:
            yield from mem.allocate(node_name, nbytes, key=ref.ref_id)
        else:
            self.cluster.node(node_name).allocate_ram(nbytes)
        self._objects[ref.ref_id] = _StoredObject(
            value, nbytes, node_name, ref.label, ref.ref_id
        )
        self.adopted += 1
        self.bytes_stored += nbytes
        self.bytes_live += nbytes
        tracer = self.cluster.env.tracer
        if tracer.enabled:
            tracer.metrics.counter("objectstore.adopt.count").inc()
            tracer.metrics.counter("objectstore.adopt.bytes").add(nbytes)
        ref.fulfil(value, node_name, nbytes)
        return ref

    def peek(self, ref: ObjectRef) -> Generator:
        """Dereference ``ref`` without charging any access cost.

        Used by the cache's free replay: the argument was already read
        (and charged) by the run that populated the cache, so the
        replay only needs the Python value.  Waits for the producer
        like :meth:`get` but touches no replicas, pays no transfer and
        no mapping cost.  The value survives replica eviction — only
        :meth:`free_all` forgets it.
        """
        value = yield ref.ready
        stored = self._objects.get(ref.ref_id)
        if stored is None:
            raise ObjectNotFound(f"{ref.ref_id} fulfilled but not stored")
        return stored.value

    def get(self, ref: ObjectRef, node_name: str, parent=None) -> Generator:
        """Simulation process dereferencing ``ref`` from ``node_name``.

        Waits for the object to exist, rebuilds it from lineage if all
        replicas were lost, pays the transfer if this node holds no
        replica yet (joining any transfer already in flight), then pays
        the per-access mapping cost.
        """
        value = yield ref.ready
        stored = self._objects.get(ref.ref_id)
        if stored is None:
            raise ObjectNotFound(f"{ref.ref_id} fulfilled but not stored")
        # The span opens only after the object exists: waiting for a
        # producer is scheduling time, not object-store cost.
        tracer = self.cluster.env.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "get",
                category="objectstore",
                node=node_name,
                parent=parent,
                ref=ref.label,
                nbytes=stored.nbytes,
            )
            tracer.metrics.counter("objectstore.get.bytes").add(stored.nbytes)
            tracer.metrics.counter("objectstore.get.count").inc()
        try:
            while True:
                # Re-resolve after every wait: a re-``put`` may have
                # replaced the entry while a rebuild or transfer was in
                # flight, and accounting against the stale object would
                # double-charge node RAM for the rest of the run.
                stored = self._objects.get(ref.ref_id)
                if stored is None:
                    raise ObjectNotFound(
                        f"{ref.ref_id} disappeared while being dereferenced"
                    )
                if node_name in stored.replicas:
                    break
                if not stored.replicas:
                    yield from self._rebuild(ref, span)
                    continue
                yield from self._fetch_replica(ref, stored, node_name)
            mem = self.cluster.memory
            if mem.active:
                # A spilled replica pays the disk read back (and may
                # spill colder entries) before the mapping cost below.
                yield from mem.ensure_resident(
                    node_name, ref.ref_id, label=stored.label
                )
            yield self.cluster.env.timeout(self.config.get_time(stored.nbytes))
            self.get_count += 1
            # A rebuild re-ran the producer; hand back the fresh value
            # so callers observe exactly what the store holds.
            value = stored.value
        finally:
            if span is not None:
                tracer.end(span)
        return value

    def _fetch_replica(
        self, ref: ObjectRef, stored: _StoredObject, node_name: str
    ) -> Generator:
        """Materialize a local replica on ``node_name`` (one transfer).

        The first getter on a node performs the transfer and reserves
        the RAM; concurrent getters wait on its completion event, so
        one replica is charged exactly once however many processes
        dereference simultaneously.
        """
        key = (ref.ref_id, node_name)
        existing = self._inflight.get(key)
        if existing is not None:
            self.transfers_deduped += 1
            tracer = self.cluster.env.tracer
            if tracer.enabled:
                tracer.metrics.counter("objectstore.get.deduped").inc()
            yield existing
            return
        event = self.cluster.env.event()
        self._inflight[key] = event
        started = self.cluster.env.now
        try:
            source = self._transfer_source(stored)
            yield self.cluster.env.process(
                self.cluster.transfer(source, node_name, stored.nbytes)
            )
            # The transfer yielded: a re-``put`` may have overwritten
            # the entry (releasing its replicas) while the bytes were
            # on the wire.  Charging the replica against the *old*
            # _StoredObject would leak the reservation forever, so the
            # stale copy is simply discarded — the getter's loop
            # re-resolves and fetches the live entry.
            if self._objects.get(ref.ref_id) is stored:
                mem = self.cluster.memory
                if mem.active:
                    yield from mem.allocate(
                        node_name, stored.nbytes, key=ref.ref_id
                    )
                else:
                    self.cluster.node(node_name).allocate_ram(stored.nbytes)
                stored.replicas.add(node_name)
                self.bytes_live += stored.nbytes
            else:
                self.stale_fetches += 1
        except BaseException as exc:
            # ``pop`` (not ``del``): a concurrent ``free_all`` may have
            # cleared the in-flight table while the transfer generator
            # was suspended; a bare ``KeyError`` here would mask the
            # real failure mode (the getter's loop re-resolves and
            # raises :class:`ObjectNotFound`).
            self._inflight.pop(key, None)
            event.fail(exc)
            raise
        self._inflight.pop(key, None)
        event.succeed()
        elapsed = self.cluster.env.now - started
        self.transfers += 1
        self.transfer_seconds += elapsed
        tracer = self.cluster.env.tracer
        if tracer.enabled:
            tracer.metrics.counter("objectstore.transfer.count").inc()
            tracer.metrics.counter("objectstore.transfer.seconds").add(elapsed)

    def _transfer_source(self, stored: _StoredObject) -> str:
        """Pick the replica to fetch from: the owner, else a survivor.

        Replica failover: when the owner's copy was lost (node crash or
        injected replica loss) the transfer reads from the
        lexicographically first surviving replica — deterministic, so
        recovery timelines replay identically.
        """
        faults = self.cluster.env.faults
        now = self.cluster.env.now
        if stored.owner_node in stored.replicas and not faults.node_down(
            stored.owner_node, now
        ):
            return stored.owner_node
        for name in sorted(stored.replicas):
            if not faults.node_down(name, now):
                return name
        # Every replica host is inside an outage window; read from the
        # first one anyway rather than deadlocking (the data survives,
        # the window only kills new work placed there).
        return sorted(stored.replicas)[0]

    def _rebuild(self, ref: ObjectRef, parent=None) -> Generator:
        """Re-create a zero-replica object from its recorded lineage."""
        key = (ref.ref_id, _REBUILD)
        existing = self._inflight.get(key)
        if existing is not None:
            yield existing
            return
        if self.reconstructor is None or ref.ref_id not in self.lineage:
            raise ReconstructionError(
                f"object {ref.label!r} ({ref.ref_id}) lost all replicas and "
                "has no recorded lineage to rebuild from"
            )
        event = self.cluster.env.event()
        self._inflight[key] = event
        try:
            yield from self.reconstructor(ref)
            self.reconstructions += 1
        except BaseException as exc:
            # ``pop`` for the same reason as in ``_fetch_replica``: the
            # table may have been cleared underneath the suspended
            # rebuild generator.
            self._inflight.pop(key, None)
            event.fail(exc)
            raise
        self._inflight.pop(key, None)
        event.succeed()

    def restore(
        self, ref: ObjectRef, value: Any, node_name: str, charge: bool = True
    ) -> Generator:
        """Re-store a rebuilt object on ``node_name`` (reconstruction).

        Charges the full ``put`` cost and re-reserves the RAM; the node
        becomes the object's new owner.  ``charge=False`` (the cache's
        free reconstruction replay) keeps the RAM reservation but skips
        the ``put_time``.
        """
        stored = self._objects.get(ref.ref_id)
        if stored is None:
            raise ObjectNotFound(
                f"cannot restore {ref.label!r} ({ref.ref_id}): "
                "it is not in the object store"
            )
        mem = self.cluster.memory
        if mem.active:
            yield from mem.allocate(node_name, stored.nbytes, key=ref.ref_id)
        else:
            self.cluster.node(node_name).allocate_ram(stored.nbytes)
        if charge:
            yield self.cluster.env.timeout(self.config.put_time(stored.nbytes))
        stored.value = value
        stored.owner_node = node_name
        stored.replicas.add(node_name)
        self.bytes_live += stored.nbytes

    # -- fault hooks (called by repro.faults) -----------------------------------

    def drop_replica(self, target: str) -> int:
        """Drop one replica of the first stored object matching ``target``.

        Chooses deterministically: insertion order over objects, and
        within an object a non-owner replica first (exercising owner
        failover last).  The final copy of an object is only dropped
        when lineage can rebuild it; otherwise the object is skipped.
        Returns the number of replicas dropped (0 or 1).
        """
        for ref_id, stored in self._objects.items():
            if not fnmatch(stored.label, target) or not stored.replicas:
                continue
            if len(stored.replicas) == 1 and ref_id not in self.lineage:
                continue
            non_owners = sorted(stored.replicas - {stored.owner_node})
            victim = non_owners[0] if non_owners else stored.owner_node
            self._evict(ref_id, stored, victim)
            return 1
        return 0

    def evict_node(self, node_name: str) -> int:
        """Drop every replica hosted on ``node_name`` (node crash).

        An object whose *only* replica lived there survives unless
        lineage can rebuild it — dropping it would make the value
        unrecoverable, which no schedule is allowed to do.
        Returns the number of replicas dropped.
        """
        dropped = 0
        for ref_id, stored in self._objects.items():
            if node_name not in stored.replicas:
                continue
            if len(stored.replicas) == 1 and ref_id not in self.lineage:
                continue
            self._evict(ref_id, stored, node_name)
            dropped += 1
        return dropped

    def migrate_node(self, node_name: str, target: Optional[str]) -> Generator:
        """Simulation process relocating every replica off ``node_name``.

        The drain half of the node-kill machinery: a replica that is
        redundant (another node holds a copy) is dropped for free, but a
        *sole* replica is first shipped to ``target`` — paying a spill
        restore when it sits on disk, the inter-node transfer, and the
        target's RAM admission — so no value is lost.  Raises
        :class:`DrainError` when a sole replica exists and no surviving
        target is available.  Returns ``(migrated, dropped)`` counts.
        """
        migrated = dropped = 0
        mem = self.cluster.memory
        for ref_id, stored in list(self._objects.items()):
            if node_name not in stored.replicas:
                continue
            if len(stored.replicas) == 1:
                if target is None:
                    raise DrainError(
                        f"cannot drain {node_name!r}: sole replica of "
                        f"{stored.label!r} has no surviving target node"
                    )
                if mem.active:
                    yield from mem.ensure_resident(
                        node_name, ref_id, label=stored.label
                    )
                yield self.cluster.env.process(
                    self.cluster.transfer(node_name, target, stored.nbytes)
                )
                if mem.active:
                    yield from mem.allocate(target, stored.nbytes, key=ref_id)
                else:
                    self.cluster.node(target).allocate_ram(stored.nbytes)
                stored.replicas.add(target)
                self.bytes_live += stored.nbytes
                migrated += 1
                self.migrated_bytes += stored.nbytes
            else:
                dropped += 1
            self._drop_for_drain(ref_id, stored, node_name)
        self.migrations += migrated
        tracer = self.cluster.env.tracer
        if tracer.enabled and (migrated or dropped):
            tracer.metrics.counter(
                "objectstore.migrated", node=node_name
            ).add(migrated)
        return (migrated, dropped)

    def _drop_for_drain(
        self, ref_id: str, stored: _StoredObject, node_name: str
    ) -> None:
        # _evict minus the replicas_lost accounting: a drained replica
        # was relocated or redundant, not lost.
        stored.replicas.discard(node_name)
        mem = self.cluster.memory
        if mem.active:
            mem.release(node_name, ref_id)
        else:
            self.cluster.node(node_name).free_ram(stored.nbytes)
        self.bytes_live -= stored.nbytes
        if stored.owner_node == node_name and stored.replicas:
            stored.owner_node = sorted(stored.replicas)[0]

    def _evict(self, ref_id: str, stored: _StoredObject, node_name: str) -> None:
        stored.replicas.discard(node_name)
        mem = self.cluster.memory
        if mem.active:
            # The replica may be RAM-resident or spilled to disk; the
            # manager frees whichever representation exists.
            mem.release(node_name, ref_id)
        else:
            self.cluster.node(node_name).free_ram(stored.nbytes)
        self.replicas_lost += 1
        self.bytes_live -= stored.nbytes
        if stored.owner_node == node_name and stored.replicas:
            stored.owner_node = sorted(stored.replicas)[0]

    # -- queries / teardown ------------------------------------------------------

    def contains(self, ref: ObjectRef) -> bool:
        return ref.ref_id in self._objects

    def replicas_of(self, ref: ObjectRef) -> Set[str]:
        """Node names currently holding a replica (copy)."""
        stored = self._objects.get(ref.ref_id)
        return set(stored.replicas) if stored is not None else set()

    def nbytes_of(self, ref: ObjectRef) -> int:
        """Stored size of a fulfilled ref."""
        try:
            return self._objects[ref.ref_id].nbytes
        except KeyError:
            raise ObjectNotFound(f"{ref.ref_id} is not in the object store") from None

    def _release_entry(self, stored: _StoredObject) -> None:
        mem = self.cluster.memory
        for node_name in stored.replicas:
            if mem.active:
                mem.release(node_name, stored.ref_id)
            else:
                self.cluster.node(node_name).free_ram(stored.nbytes)
            self.bytes_live -= stored.nbytes
        stored.replicas.clear()

    def free_all(self) -> None:
        """Release every replica's RAM reservation (runtime shutdown)."""
        for stored in self._objects.values():
            self._release_entry(stored)
        self._objects.clear()
        self._inflight.clear()
        self.lineage.clear()
