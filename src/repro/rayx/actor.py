"""Stateful actors for the script runtime (``ray.remote`` classes).

An actor is an object pinned to one cluster node; method calls are
dispatched as messages and execute *serially* in arrival order (Ray's
actor semantics), each returning an :class:`ObjectRef`.  Actors let
script-paradigm code keep state — e.g. a model loaded once and reused
across calls — without re-reading it from the object store per task.

Usage::

    class Counter:
        def __init__(self):
            self.total = 0

        def add(self, ctx, amount):          # plain or generator method
            yield from ctx.compute(0.01)
            self.total += amount
            return self.total

    def driver(rt):
        counter = rt.create_actor(Counter)
        refs = [counter.call("add", i) for i in range(5)]
        values = yield from rt.get_all(refs)
        counter.kill()
        return values
"""

from __future__ import annotations

import inspect
from typing import Any, Generator, Tuple, Type

from repro.errors import RayxError
from repro.rayx.objectref import ObjectRef
from repro.sim import Store

__all__ = ["ActorHandle"]


class _Kill:
    """Poison pill terminating the actor loop."""

    __slots__ = ()


_KILL = _Kill()


class ActorHandle:
    """Client-side handle of a running actor.

    Created by :meth:`repro.rayx.RayxRuntime.create_actor`; do not
    instantiate directly.
    """

    def __init__(self, runtime, actor_class: Type, init_args: Tuple[Any, ...], node) -> None:
        from repro.rayx.runtime import TaskContext  # local: avoid cycle

        self.runtime = runtime
        self.actor_class = actor_class
        self.node = node
        self.name = f"{actor_class.__name__}@{node.name}"
        self._mailbox = Store(runtime.env)
        self._context = TaskContext(runtime, node)
        self._alive = True
        self.calls_processed = 0
        try:
            self._instance = actor_class(*init_args)
        except Exception as exc:
            raise RayxError(
                f"actor {actor_class.__name__} failed to construct: {exc}"
            ) from exc
        runtime.env.process(self._loop())

    @property
    def is_alive(self) -> bool:
        return self._alive

    # -- client side -------------------------------------------------------------

    def call(self, method_name: str, *args: Any) -> ObjectRef:
        """Invoke ``method_name(ctx, *args)`` on the actor; returns a ref.

        Calls execute serially in submission order.  Top-level
        :class:`ObjectRef` arguments are dereferenced on the actor's
        node before the method body runs, as with tasks.
        """
        if not self._alive:
            raise RayxError(f"actor {self.name} has been killed")
        if not hasattr(self._instance, method_name):
            raise RayxError(
                f"actor {self.actor_class.__name__} has no method {method_name!r}"
            )
        ref = ObjectRef(self.runtime.env, f"{self.name}.{method_name}")
        self._mailbox.put((method_name, args, ref))
        return ref

    def kill(self) -> None:
        """Terminate the actor after the queued calls drain."""
        if self._alive:
            self._alive = False
            self._mailbox.put(_KILL)

    # -- actor loop ----------------------------------------------------------------

    def _loop(self) -> Generator:
        tracer = self.runtime.tracer
        while True:
            get = self._mailbox.get()
            try:
                message = yield get
            except BaseException:
                # Actor killed while blocked on its mailbox: withdraw
                # the get so a granted-but-undelivered message returns
                # to the queue head instead of vanishing with us.
                get.cancel()
                raise
            if isinstance(message, _Kill):
                # The actor's placement slot frees only when it dies.
                self.runtime.scheduler.release(self.node.name)
                return
            method_name, args, ref = message
            span = None
            if tracer.enabled:
                span = tracer.start(
                    f"{self.actor_class.__name__}.{method_name}",
                    category="rayx.actor",
                    node=self.node.name,
                    actor=self.name,
                )
                tracer.metrics.counter("rayx.actor_calls", actor=self.name).inc()
            self._context.span = span
            yield self.runtime.env.timeout(self.runtime.config.rayx.task_dispatch_s)
            try:
                resolved = []
                for arg in args:
                    if isinstance(arg, ObjectRef):
                        value = yield from self.runtime.store.get(
                            arg, self.node.name, parent=span
                        )
                        resolved.append(value)
                    else:
                        resolved.append(arg)
                method = getattr(self._instance, method_name)
                outcome = method(self._context, *resolved)
                if inspect.isgenerator(outcome):
                    result = yield from outcome
                else:
                    result = outcome
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                if span is not None:
                    tracer.end(span, status="failed", error=type(exc).__name__)
                ref.reject(exc)
                continue
            self.calls_processed += 1
            try:
                yield from self.runtime.store.store_result(
                    ref, result, self.node.name, parent=span
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                if span is not None:
                    tracer.end(span, status="failed", error=type(exc).__name__)
                ref.reject(exc)
                continue
            if span is not None:
                tracer.end(span, status="ok")

    def __repr__(self) -> str:
        state = "alive" if self._alive else "killed"
        return f"<ActorHandle {self.name} {state}, {self.calls_processed} calls>"
