"""The script-paradigm runtime: a Ray-like task executor.

This is the substitute for the paper's Ray cluster (Section IV-A,
"Ray-cluster").  A *driver* generator runs on the head node and submits
remote tasks; tasks acquire a slot from a ``num_cpus`` resource pool
(the paper tuned parallelism exclusively through this parameter), run on
worker nodes, read arguments from the shared object store and write
results back to it.

Mirrored Ray behaviours that matter to the reproduced experiments:

* ``num_cpus`` bounds concurrent tasks (1 in the one-worker setting);
* PyTorch-like model compute inside a task is pinned to
  ``RayxConfig.torch_cores_per_task`` cores (1, per the paper: "Ray
  configured the underlying frameworks (PyTorch) to use 1 CPU");
* every argument dereference and result store goes through the object
  store, paying size-proportional costs (decisive for the 1.59 GB
  GOTTA model);
* task launch charges a fixed dispatch cost, and the driver charges a
  one-off cluster startup cost.

Usage::

    def double(ctx, x):
        yield from ctx.compute(0.1)
        return 2 * x

    def driver(rt):
        refs = [rt.submit(double, i) for i in range(4)]
        values = yield from rt.get_all(refs)
        return values

    result = run_script(cluster, driver)
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence

from repro.cache.fingerprint import combine, fingerprint_function, fingerprint_value
from repro.cluster import CONTROLLER, Cluster, Node
from repro.config import ReproConfig
from repro.errors import InjectedFault, RayxError
from repro.rayx.objectref import ObjectRef
from repro.rayx.objectstore import ObjectStore
from repro.sched import PlacementRequest, Scheduler
from repro.sim import Environment, Resource

__all__ = ["TaskContext", "RayxRuntime", "run_script"]


def _locality_refs(args: Sequence[Any]) -> tuple:
    """The ``ObjectRef`` arguments of a task, as placement hints.

    Scans one level into list/tuple arguments — the idiomatic
    ``rt.submit(fn, [model_ref], ...)`` pattern nests the big refs.
    """
    refs: List[ObjectRef] = []
    for arg in args:
        if isinstance(arg, ObjectRef):
            refs.append(arg)
        elif isinstance(arg, (list, tuple)):
            refs.extend(item for item in arg if isinstance(item, ObjectRef))
    return tuple(refs)


def _arg_fingerprint(arg: Any) -> str:
    """Lineage fingerprint of one task argument.

    An ``ObjectRef`` contributes its own lineage fingerprint (set at
    submit/put time), so identical computation chains key identically
    across runs; a ref without one (e.g. an actor result) falls back to
    its unique ``ref_id``, which can never produce a false hit.  Scans
    one level into list/tuple arguments, mirroring
    :func:`_locality_refs`.
    """
    if isinstance(arg, ObjectRef):
        return arg.fingerprint or arg.ref_id
    if isinstance(arg, (list, tuple)):
        return combine(
            "seq",
            type(arg).__name__,
            *(_arg_fingerprint(item) for item in arg),
        )
    return fingerprint_value(arg)


def task_fingerprint(epoch: int, fn: Callable[..., Any], args: Sequence[Any]) -> str:
    """Deterministic fingerprint of one task submission (``repro.cache``)."""
    return combine(
        "task",
        epoch,
        fingerprint_function(fn),
        *(_arg_fingerprint(arg) for arg in args),
    )


class TaskContext:
    """Execution context handed to every task (and the driver).

    Provides timed primitives; the function body does real Python work
    for free and charges virtual time explicitly through these calls —
    the simulation analogue of "the expensive parts are the library
    calls".
    """

    def __init__(self, runtime: "RayxRuntime", node: Node) -> None:
        self.runtime = runtime
        self.node = node
        #: Enclosing trace span (the task's or driver's); object-store
        #: and compute spans recorded through this context nest under it.
        self.span = None
        #: Label consulted for injected *task* faults at compute
        #: boundaries; only retryable task bodies set it (the driver,
        #: actors and reconstruction runs are exempt).
        self.fault_label: Optional[str] = None
        #: Cache-hit replay mode (``repro.cache``): the body's real
        #: Python work still runs (producing the same values a miss
        #: would), but compute charges return immediately and
        #: object-store accesses take the free ``peek``/``adopt`` path.
        self.free = False

    @property
    def node_name(self) -> str:
        return self.node.name

    def compute(self, cpu_seconds: float, cores: int = 1) -> Generator:
        """Occupy ``cores`` of this task's node for ``cpu_seconds``.

        A node crash injected while the computation was in flight
        surfaces here, at the completion checkpoint — the earliest
        timed boundary where a real runtime would observe the loss.
        """
        if self.free:
            return
        tracer = self.runtime.env.tracer
        faults = self.runtime.env.faults
        start = self.runtime.env.now
        span = None
        if tracer.enabled:
            span = tracer.start(
                "compute",
                category="compute",
                node=self.node.name,
                parent=self.span,
                cores=cores,
            )
        try:
            yield from self.node.compute(cpu_seconds, cores=cores)
            if faults.active:
                yield from self._fault_checkpoint(faults, start)
        finally:
            if span is not None:
                tracer.end(span)

    def model_compute(self, flops: float) -> Generator:
        """Run framework (PyTorch-like) compute inside this task.

        Ray pinned the framework to 1 CPU (paper Section IV-A), so the
        duration is FLOPs over single-core throughput regardless of how
        many cores the node has free.
        """
        if self.free:
            return
        config = self.runtime.config
        cores = config.rayx.torch_cores_per_task
        throughput = config.topology.machine.flops_per_core_per_s * cores
        tracer = self.runtime.env.tracer
        faults = self.runtime.env.faults
        start = self.runtime.env.now
        span = None
        if tracer.enabled:
            span = tracer.start(
                "model_compute",
                category="compute",
                node=self.node.name,
                parent=self.span,
                cores=cores,
                flops=flops,
            )
        try:
            yield from self.node.compute(flops / throughput, cores=cores)
            if faults.active:
                yield from self._fault_checkpoint(faults, start)
        finally:
            if span is not None:
                tracer.end(span)

    def _fault_checkpoint(self, faults, start: float) -> Generator:
        """Injection checks at a compute-completion boundary.

        A node crash that happened while the computation was in flight,
        or a due task fault, surfaces here — the earliest timed point
        where a real runtime would observe the loss.
        """
        now = self.runtime.env.now
        if faults.node_crashed_between(self.node.name, start, now):
            raise InjectedFault(
                f"node {self.node.name} crashed mid-compute", kind="node"
            )
        if self.fault_label is not None:
            fault = faults.take_task_fault(self.fault_label, now)
            if fault is not None:
                # The task makes delay_s of further progress, then dies.
                if fault.delay_s > 0:
                    yield self.runtime.env.timeout(fault.delay_s)
                raise InjectedFault(
                    f"injected fault in task {self.fault_label!r}", kind="task"
                )

    def get(self, ref: ObjectRef) -> Generator:
        """Dereference an object ref from this task's node."""
        if self.free:
            value = yield from self.runtime.store.peek(ref)
            return value
        value = yield from self.runtime.store.get(
            ref, self.node.name, parent=self.span
        )
        return value

    def put(self, value: Any, label: str = "object") -> Generator:
        """Store ``value`` in the object store from this node.

        When a result cache is active the value is content-fingerprinted
        and the serialize+copy charge is memoized: a repeat ``put`` of
        identical content (e.g. the KGE model on a warm run) pays only
        the cache lookup, like a content-addressed plasma store.  The
        *live* value is always the one installed, so correctness never
        depends on the fingerprint.
        """
        runtime = self.runtime
        ref = ObjectRef(runtime.env, label)
        cache = runtime.cluster.cache
        if cache.active:
            ref.fingerprint = combine(
                "put", cache.config.epoch, fingerprint_value(value)
            )
        if self.free:
            yield from runtime.store.adopt(ref, value, self.node.name)
        elif (
            ref.fingerprint is not None
            and cache.lookup(ref.fingerprint, tracer=runtime.env.tracer)
            is not None
        ):
            yield from runtime._charge_lookup(ref.label, self.node.name, self.span)
            yield from runtime.store.adopt(ref, value, self.node.name)
        else:
            yield from runtime.store.put(
                ref, value, self.node.name, parent=self.span
            )
        if ref.fingerprint is not None:
            cache.insert(
                ref.fingerprint,
                ref.nbytes,
                self.node.name,
                kind="put",
                tracer=runtime.env.tracer,
            )
        return ref


class RayxRuntime:
    """A running script-paradigm cluster session."""

    def __init__(
        self,
        cluster: Cluster,
        num_cpus: int = 1,
        config: Optional[ReproConfig] = None,
    ) -> None:
        if num_cpus < 1:
            raise ValueError(f"num_cpus must be >= 1, got {num_cpus}")
        self.cluster = cluster
        self.config = config or cluster.config
        self.env: Environment = cluster.env
        self.num_cpus = num_cpus
        self.slots = Resource(self.env, capacity=num_cpus)
        self.store = ObjectStore(cluster, self.config.object_store)
        self.store.reconstructor = self._reconstruct_ref
        #: Placement layer (``repro.sched``): every node decision —
        #: submission, retry resubmission, lineage reconstruction and
        #: actor placement — goes through this scheduler.
        self.scheduler = Scheduler(cluster, config=self.config)
        self.scheduler.store = self.store
        self.driver_context = TaskContext(self, cluster.controller)
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tracer = cluster.tracer
        #: Span covering the driver's lifetime; tasks nest under it.
        self._driver_span = None

    # -- task submission -------------------------------------------------------

    def submit(
        self, fn: Callable[..., Any], *args: Any, label: Optional[str] = None
    ) -> ObjectRef:
        """Launch ``fn(ctx, *args)`` as a remote task; returns its ref.

        ``fn`` may be a generator function (yielding simulation events
        through ``ctx``) or a plain function (runs with zero charged
        compute beyond dispatch and object-store costs).  Top-level
        :class:`ObjectRef` arguments are dereferenced on the task's
        node before the body runs, as Ray does.
        """
        ref = ObjectRef(self.env, label or getattr(fn, "__name__", "task"))
        cache = self.cluster.cache
        cache_node = None
        if cache.active:
            # Fingerprint before placement so the scheduler can steer
            # the task toward its cached result (locality policy only;
            # the default policy ignores the hint and stays
            # seed-identical).  Fingerprinting is pure Python — no
            # virtual time passes.
            ref.fingerprint = task_fingerprint(cache.config.epoch, fn, args)
            cache_node = cache.peek_node(ref.fingerprint)
        node = self.scheduler.place(
            PlacementRequest(
                kind="task",
                label=ref.label,
                refs=_locality_refs(args),
                cache_node=cache_node,
            )
        )
        self.tasks_submitted += 1
        if self.env.faults.active:
            # Lineage, the basis for object reconstruction: enough to
            # re-execute the producer if every replica is lost.  Only
            # recorded under fault injection — clean runs keep zero
            # bookkeeping overhead.
            self.store.lineage[ref.ref_id] = (fn, args)
        self.env.process(self._run_task(fn, args, ref, node))
        return ref

    def _run_task(
        self, fn: Callable[..., Any], args: Sequence[Any], ref: ObjectRef, node: Node
    ) -> Generator:
        tracer = self.tracer
        faults = self.env.faults
        max_retries = self.config.rayx.max_task_retries if faults.active else 0
        attempt = 0
        try:
            while True:
                span = None
                if tracer.enabled:
                    span = tracer.start(
                        ref.label,
                        category="rayx.task",
                        node=node.name,
                        parent=self._driver_span,
                    )
                    if attempt:
                        span.attrs["attempt"] = attempt
                    tracer.metrics.counter("rayx.tasks").inc()
                slot_request = self.slots.request()
                try:
                    yield slot_request
                except BaseException:
                    # Task process killed while queued for (or just
                    # granted) a CPU slot: withdraw so the slot FIFO
                    # neither blocks nor leaks capacity.
                    slot_request.cancel()
                    raise
                if span is not None:
                    # Time spent queued for a num_cpus slot, visible per task.
                    span.attrs["queued_s"] = round(self.env.now - span.start_s, 9)
                retry = False
                try:
                    yield self.env.timeout(self.config.rayx.task_dispatch_s)
                    if faults.active:
                        if faults.node_down(node.name, self.env.now):
                            raise InjectedFault(
                                f"node {node.name} is down", kind="node"
                            )
                        fault = faults.take_task_fault(ref.label, self.env.now)
                        if fault is not None:
                            # The task makes delay_s of progress, then dies.
                            if fault.delay_s > 0:
                                yield self.env.timeout(fault.delay_s)
                            raise InjectedFault(
                                f"injected fault in task {ref.label!r}", kind="task"
                            )
                    context = TaskContext(self, node)
                    context.span = span
                    context.fault_label = ref.label
                    cache = self.cluster.cache
                    if (
                        cache.active
                        and ref.fingerprint is not None
                        and cache.lookup(ref.fingerprint, tracer=tracer)
                        is not None
                    ):
                        # Cache hit: charge the lookup, then re-check
                        # for injected faults that fell due inside the
                        # lookup window — a hit must never mask a
                        # scheduled failure of the producing task.
                        yield from self._charge_lookup(
                            ref.label, node.name, span
                        )
                        if faults.active:
                            fault = faults.take_task_fault(
                                ref.label, self.env.now
                            )
                            if fault is not None:
                                if fault.delay_s > 0:
                                    yield self.env.timeout(fault.delay_s)
                                raise InjectedFault(
                                    f"injected fault in task {ref.label!r}",
                                    kind="task",
                                )
                        context.free = True
                    resolved: List[Any] = []
                    for arg in args:
                        if isinstance(arg, ObjectRef):
                            if context.free:
                                value = yield from self.store.peek(arg)
                            else:
                                value = yield from self.store.get(
                                    arg, node.name, parent=span
                                )
                            resolved.append(value)
                        else:
                            resolved.append(arg)
                    outcome = fn(context, *resolved)
                    if inspect.isgenerator(outcome):
                        result = yield from outcome
                    else:
                        result = outcome
                except InjectedFault as exc:
                    # Only *injected* faults are retried; real exceptions
                    # from task bodies propagate unchanged (below).
                    if attempt < max_retries:
                        if span is not None:
                            tracer.end(span, status="retried", error=exc.kind)
                        retry = True
                    else:
                        if span is not None:
                            tracer.end(
                                span, status="failed", error=type(exc).__name__
                            )
                        ref.reject(exc)
                        return
                except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                    if span is not None:
                        tracer.end(span, status="failed", error=type(exc).__name__)
                    ref.reject(exc)
                    return
                finally:
                    self.slots.release()
                if retry:
                    yield from self._backoff(attempt, ref, node)
                    attempt += 1
                    # Resubmission is a fresh placement decision; the
                    # default policy keeps the task on the same node.
                    self.scheduler.release(node.name)
                    node = self.scheduler.place(
                        PlacementRequest(
                            kind="retry",
                            label=ref.label,
                            refs=_locality_refs(args),
                            prev_node=node.name,
                        )
                    )
                    continue
                break
            try:
                if context.free:
                    yield from self.store.adopt(ref, result, node.name)
                else:
                    yield from self.store.store_result(
                        ref, result, node.name, parent=span
                    )
                if cache.active and ref.fingerprint is not None:
                    # Memoize (or, after a hit, refresh node/size
                    # metadata — refreshes do not count as inserts).
                    cache.insert(
                        ref.fingerprint,
                        ref.nbytes,
                        node.name,
                        kind="task",
                        tracer=tracer,
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                if span is not None:
                    tracer.end(span, status="failed", error=type(exc).__name__)
                ref.reject(exc)
                return
            self.tasks_completed += 1
            if span is not None:
                tracer.end(span, status="ok")
        finally:
            self.scheduler.release(node.name)

    def _backoff(self, attempt: int, ref: ObjectRef, node: Node) -> Generator:
        """Charge the exponential retry backoff on the virtual clock."""
        rayx = self.config.rayx
        delay = rayx.retry_backoff_base_s * (
            rayx.retry_backoff_multiplier**attempt
        )
        faults = self.env.faults
        faults.retries += 1
        tracer = self.tracer
        span = None
        if tracer.enabled:
            tracer.metrics.counter("faults.retries").inc()
            tracer.metrics.counter("faults.recovery.virtual_seconds").add(delay)
            span = tracer.start(
                f"retry-backoff:{ref.label}",
                category="faults.recovery",
                node=node.name,
                parent=self._driver_span,
                attempt=attempt,
            )
        try:
            yield self.env.timeout(delay)
        finally:
            if span is not None:
                tracer.end(span)

    def _charge_lookup(
        self, label: str, node_name: str, parent=None
    ) -> Generator:
        """Charge one cache-hit lookup on the virtual clock."""
        cache = self.cluster.cache
        cost = cache.lookup_s
        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                f"cache.hit:{label}",
                category="cache",
                node=node_name,
                parent=parent,
                lookup_s=cost,
            )
            tracer.metrics.counter("cache.lookup.seconds").add(cost)
        try:
            if cost > 0:
                yield self.env.timeout(cost)
        finally:
            if span is not None:
                tracer.end(span)

    def _reconstruct_ref(self, ref: ObjectRef) -> Generator:
        """Rebuild a lost object by re-executing its producing task.

        Installed as ``store.reconstructor``; runs on the first healthy
        worker, re-dereferences the producer's arguments (recursively
        reconstructing *them* if needed) and re-runs the task body,
        charging its full virtual cost.  Reconstruction runs outside
        the ``num_cpus`` slot pool — it is triggered from inside a
        ``get`` that may itself hold a slot, and waiting for a second
        slot there could deadlock a fully subscribed pool.
        """
        fn, args = self.store.lineage[ref.ref_id]
        cache = self.cluster.cache
        hit = (
            cache.active
            and ref.fingerprint is not None
            and cache.lookup(ref.fingerprint, tracer=self.tracer) is not None
        )
        node = self.scheduler.place(
            PlacementRequest(
                kind="reconstruction",
                label=ref.label,
                refs=_locality_refs(args),
                cache_node=cache.peek_node(ref.fingerprint)
                if ref.fingerprint is not None
                else None,
            )
        )
        tracer = self.tracer
        start = self.env.now
        span = None
        if tracer.enabled:
            span = tracer.start(
                f"reconstruct:{ref.label}",
                category="faults.recovery",
                node=node.name,
                parent=self._driver_span,
                cache_hit=hit,
            )
            tracer.metrics.counter("faults.reconstructions").inc()
        try:
            context = TaskContext(self, node)
            context.span = span
            if hit:
                # The reconstructed object keeps its lineage
                # fingerprint, so recovery replays the producer for
                # free: one lookup charge, no dispatch, no argument
                # dereference costs, no put charge in ``restore``.
                context.free = True
                yield from self._charge_lookup(ref.label, node.name, span)
            else:
                yield self.env.timeout(self.config.rayx.task_dispatch_s)
            resolved: List[Any] = []
            for arg in args:
                if isinstance(arg, ObjectRef):
                    if hit:
                        value = yield from self.store.peek(arg)
                    else:
                        value = yield from self.store.get(
                            arg, node.name, parent=span
                        )
                    resolved.append(value)
                else:
                    resolved.append(arg)
            outcome = fn(context, *resolved)
            if inspect.isgenerator(outcome):
                result = yield from outcome
            else:
                result = outcome
            yield from self.store.restore(ref, result, node.name, charge=not hit)
            if cache.active and ref.fingerprint is not None:
                cache.insert(
                    ref.fingerprint,
                    ref.nbytes,
                    node.name,
                    kind="task",
                    tracer=tracer,
                )
        finally:
            self.scheduler.release(node.name)
            if span is not None:
                tracer.end(span)
            if tracer.enabled:
                tracer.metrics.counter("faults.recovery.virtual_seconds").add(
                    self.env.now - start
                )

    # -- actors --------------------------------------------------------------------

    def create_actor(self, actor_class: type, *init_args: Any):
        """Start a stateful actor on a scheduler-chosen node.

        The placement shares the runtime's scheduler (and, under the
        default policy, its round-robin counter) with task submission.
        Returns an :class:`repro.rayx.ActorHandle`; see its docstring
        for the calling convention.
        """
        from repro.rayx.actor import ActorHandle

        node = self.scheduler.place(
            PlacementRequest(kind="actor", label=actor_class.__name__)
        )
        return ActorHandle(self, actor_class, init_args, node)

    # -- driver-side helpers -----------------------------------------------------

    def put(self, value: Any, label: str = "object") -> Generator:
        """Driver-side ``ray.put``: store from the head node."""
        ref = yield from self.driver_context.put(value, label)
        return ref

    def get(self, ref: ObjectRef) -> Generator:
        """Driver-side ``ray.get`` for one ref."""
        value = yield from self.store.get(
            ref, CONTROLLER, parent=self.driver_context.span
        )
        return value

    def get_all(self, refs: Iterable[ObjectRef]) -> Generator:
        """Driver-side ``ray.get`` for a list of refs (in order)."""
        values: List[Any] = []
        for ref in refs:
            value = yield from self.store.get(
                ref, CONTROLLER, parent=self.driver_context.span
            )
            values.append(value)
        return values

    def wait(self, refs: Sequence[ObjectRef], num_returns: int = 1) -> Generator:
        """Driver-side ``ray.wait``: block until ``num_returns`` refs
        are ready; returns ``(ready, not_ready)`` without fetching.

        Lets drivers process results as they complete instead of
        blocking on the slowest task (the idiom behind dynamic load
        balancing in Ray scripts).
        """
        refs = list(refs)
        if not 1 <= num_returns <= len(refs):
            raise ValueError(
                f"num_returns must be in [1, {len(refs)}], got {num_returns}"
            )
        while True:
            ready = [ref for ref in refs if ref.is_ready]
            if len(ready) >= num_returns:
                not_ready = [ref for ref in refs if not ref.is_ready]
                return ready, not_ready
            try:
                yield self.env.any_of(
                    [ref.ready for ref in refs if not ref.is_ready]
                )
            except BaseException:  # noqa: BLE001
                # A failed ref counts as ready (Ray semantics); its
                # exception re-raises when the caller get()s it.
                continue

    def shutdown(self) -> None:
        """Free object-store RAM reservations."""
        self.store.free_all()


def run_script(
    cluster: Cluster,
    driver: Callable[[RayxRuntime], Generator],
    num_cpus: int = 1,
    config: Optional[ReproConfig] = None,
) -> Any:
    """Execute a script-paradigm driver to completion; returns its result.

    Charges the one-off cluster startup cost, runs the driver
    generator, shuts the runtime down and returns the driver's return
    value.  The caller reads the elapsed virtual time from
    ``cluster.env.now``.
    """
    runtime = RayxRuntime(cluster, num_cpus=num_cpus, config=config)
    tracer = runtime.tracer

    def main() -> Generator:
        startup_span = None
        if tracer.enabled:
            startup_span = tracer.start(
                "startup", category="rayx.startup", node=CONTROLLER
            )
        yield cluster.env.timeout(runtime.config.rayx.startup_s)
        if startup_span is not None:
            tracer.end(startup_span)
        body = driver(runtime)
        if not inspect.isgenerator(body):
            raise RayxError("driver must be a generator function taking (rt)")
        if tracer.enabled:
            runtime._driver_span = tracer.start(
                "driver", category="rayx.driver", node=CONTROLLER
            )
            runtime.driver_context.span = runtime._driver_span
        try:
            result = yield from body
        finally:
            if runtime._driver_span is not None:
                tracer.end(runtime._driver_span)
                runtime._driver_span = None
        return result

    try:
        return cluster.env.run(until=cluster.env.process(main()))
    finally:
        runtime.shutdown()
