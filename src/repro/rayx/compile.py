"""Compile a workflow spec into a Ray-like script plan.

The dual-paradigm half of the spec layer
(:mod:`repro.workflow.spec`): the same ``repro/workflow-spec@1``
document that :func:`repro.workflow.spec.build_workflow` turns into a
pipelined operator DAG compiles here into a *script* — a task graph of
:meth:`RayxRuntime.submit` calls, one task per (operator, worker
instance), exactly the shape a data scientist would hand-write against
Ray (paper Section III-C).

The compilation preserves the paradigm differences the paper measures:

* **No pipelining.**  Each task materialises its operator's entire
  output as one object-store value; consumers block on upstream refs
  (``ray.get`` semantics via top-level ref dereferencing) instead of
  streaming batches.
* **Coarse compute.**  A task accumulates its executor's declared
  charges and settles them in one ``ctx.compute`` / one
  ``ctx.model_compute`` at the end — the script runtime sees operator
  granularity, not tuple granularity.
* **Explicit partitioning.**  Hash / round-robin / broadcast routing,
  which the workflow engine does on the wire, happens *inside* the
  consuming task over the concatenated upstream outputs — the rows a
  worker receives form the same multisets either way.

Row results are therefore identical across paradigms; elapsed virtual
times are not (and are not meant to be).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple as PyTuple

from repro.cluster import Cluster, build_cluster
from repro.config import ReproConfig
from repro.errors import InvalidWorkflow
from repro.rayx.objectref import ObjectRef
from repro.rayx.runtime import RayxRuntime, TaskContext, run_script
from repro.relational import Schema, Table, Tuple
from repro.sim import Environment
from repro.workflow.dag import Workflow
from repro.workflow.operator import LogicalOperator, SourceExecutor
from repro.workflow.partitioning import stable_hash
from repro.workflow.spec.loader import build_workflow
from repro.workflow.spec.model import WorkflowSpec

__all__ = ["ScriptTask", "ScriptPlan", "compile_script_plan"]


@dataclass(frozen=True)
class ScriptTask:
    """One planned ``submit`` call: an operator's worker instance."""

    label: str
    operator_id: str
    worker_index: int
    #: Labels of the upstream tasks whose refs this task receives.
    upstream: PyTuple[str, ...]

    def __repr__(self) -> str:
        deps = ", ".join(self.upstream) or "-"
        return f"<ScriptTask {self.label} <- {deps}>"


def _task_label(operator_id: str, worker_index: int) -> str:
    return f"{operator_id}#{worker_index}"


def _worker_share(
    rows: List[Tuple],
    operator: LogicalOperator,
    port: int,
    worker_index: int,
) -> List[Tuple]:
    """The slice of ``rows`` this worker instance consumes.

    Mirrors :mod:`repro.workflow.partitioning` applied to the
    concatenated upstream output (deterministic producer order), so
    each worker sees the same multiset of rows as its engine
    counterpart's partitioner routes to it.
    """
    num_workers = operator.num_workers
    strategy = operator.partition_strategy(port)
    if strategy == "broadcast":
        return rows
    if num_workers == 1:
        return rows
    if strategy == "hash":
        key = operator.partition_key(port)
        if key is None:
            raise InvalidWorkflow(
                f"operator {operator.operator_id!r}: hash partitioning on "
                f"port {port} without a partition key"
            )
        return [
            row for row in rows if stable_hash(row[key]) % num_workers == worker_index
        ]
    # Round-robin over the concatenated stream.
    return rows[worker_index :: num_workers]


def _make_task(
    operator: LogicalOperator,
    worker_index: int,
    port_ref_counts: Sequence[int],
):
    """Build the remote task body for one (operator, worker) pair.

    The task receives the flattened upstream chunk values (the runtime
    dereferences top-level refs on the task's node, charging the
    object-store transfer), regroups them by input port using
    ``port_ref_counts``, selects this worker's share, and drives the
    executor lifecycle eagerly — charging all accumulated virtual time
    in one settlement at the end.
    """

    def task(ctx: TaskContext, *chunks: List[Tuple]) -> Generator:
        executor = operator.create_executor(worker_index)
        executor.open()
        seconds, flops = executor.pending.take()
        out: List[Tuple] = []
        if isinstance(executor, SourceExecutor):
            cost = operator.tuple_cost_s(0)
            for row in executor.produce():
                extra_s, extra_f = executor.pending.take()
                seconds += cost + extra_s
                flops += extra_f
                out.append(row)
        else:
            offset = 0
            for port, count in enumerate(port_ref_counts):
                incoming = [
                    row
                    for chunk in chunks[offset : offset + count]
                    for row in chunk
                ]
                offset += count
                cost = operator.tuple_cost_s(port)
                for row in _worker_share(incoming, operator, port, worker_index):
                    out.extend(executor.process_tuple(row, port))
                    extra_s, extra_f = executor.pending.take()
                    seconds += cost + extra_s
                    flops += extra_f
                out.extend(executor.on_finish(port))
                extra_s, extra_f = executor.pending.take()
                seconds += extra_s
                flops += extra_f
        executor.close()
        extra_s, extra_f = executor.pending.take()
        seconds += extra_s
        flops += extra_f
        # One coarse settlement: the script paradigm charges at task
        # granularity, not tuple granularity (no pipelining).
        if seconds > 0:
            yield from ctx.compute(seconds)
        if flops > 0:
            yield from ctx.model_compute(flops)
        if operator.is_sink:
            # Sink executors collect rather than emit.
            return list(executor.rows)
        return out

    task.__name__ = _task_label(operator.operator_id, worker_index)
    return task


class ScriptPlan:
    """A workflow compiled to the script paradigm.

    ``tasks`` lists the planned submissions in dependency order;
    :meth:`driver` is a ready-to-run :func:`repro.rayx.run_script`
    driver returning ``{sink_id: Table}``; :meth:`run` is the one-call
    convenience wrapper.
    """

    def __init__(self, workflow: Workflow) -> None:
        self.workflow = workflow
        #: Output schemas per operator (compiling also runs the full
        #: GUI-time validation, so a bad plan fails here, not mid-run).
        self.schemas: Dict[str, Schema] = workflow.compile_schemas()
        self.tasks: List[ScriptTask] = []
        for operator in workflow.topological_order():
            upstream: List[str] = []
            for link in workflow.in_links(operator.operator_id):
                producer = workflow.operators[link.producer_id]
                upstream.extend(
                    _task_label(producer.operator_id, w)
                    for w in range(producer.num_workers)
                )
            for w in range(operator.num_workers):
                self.tasks.append(
                    ScriptTask(
                        label=_task_label(operator.operator_id, w),
                        operator_id=operator.operator_id,
                        worker_index=w,
                        upstream=tuple(upstream),
                    )
                )

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def driver(self, runtime: RayxRuntime) -> Generator:
        """Submit the task graph; gather sink rows into tables."""
        workflow = self.workflow
        refs: Dict[str, List[ObjectRef]] = {}
        for operator in workflow.topological_order():
            in_links = workflow.in_links(operator.operator_id)
            port_ref_counts = [
                workflow.operators[link.producer_id].num_workers
                for link in in_links
            ]
            args: List[ObjectRef] = []
            for link in in_links:
                args.extend(refs[link.producer_id])
            refs[operator.operator_id] = [
                runtime.submit(
                    _make_task(operator, w, port_ref_counts),
                    *args,
                    label=_task_label(operator.operator_id, w),
                )
                for w in range(operator.num_workers)
            ]
        results: Dict[str, Table] = {}
        for sink in workflow.sinks():
            chunks = yield from runtime.get_all(refs[sink.operator_id])
            rows = [row for chunk in chunks for row in chunk]
            results[sink.operator_id] = Table(self.schemas[sink.operator_id], rows)
        return results

    def run(
        self,
        cluster: Optional[Cluster] = None,
        num_cpus: int = 4,
        config: Optional[ReproConfig] = None,
    ) -> Dict[str, Table]:
        """Execute the plan; returns the collected sink tables.

        Builds the paper's testbed cluster when none is given; read
        the elapsed virtual time from ``cluster.env.now``.
        """
        if cluster is None:
            cluster = build_cluster(Environment(), config)
        return run_script(cluster, self.driver, num_cpus=num_cpus, config=config)


def compile_script_plan(
    source: Any, bindings: Optional[Dict[str, Any]] = None
) -> ScriptPlan:
    """Compile a spec (or built workflow) to a :class:`ScriptPlan`.

    ``source`` may be a :class:`WorkflowSpec`, a raw spec document
    (``dict``), or an already-built :class:`Workflow` — the latter lets
    callers compile the output of the logical optimizer.
    """
    if isinstance(source, Workflow):
        workflow = source
    else:
        spec = (
            source
            if isinstance(source, WorkflowSpec)
            else WorkflowSpec.from_json(source)
        )
        workflow = build_workflow(spec, bindings)
    return ScriptPlan(workflow)
