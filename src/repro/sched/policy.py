"""Placement policies: who decides *where* parallel work runs.

The paper tunes parallelism through exactly one knob per paradigm
(Ray's ``num_cpus``, Texera's worker count) but never asks where that
parallelism should land.  This module makes the question first-class:
a :class:`PlacementPolicy` answers one :class:`PlacementRequest` at a
time with a cluster node, consulting the :class:`repro.sched.Scheduler`
for per-node load accounts, object-replica locations and node health
(``repro.faults``).

Policies are pure decision functions against the virtual clock: they
schedule no events and charge no virtual time, so swapping policies
changes *when* work happens, never *what* it computes — a property the
``tests/properties/test_sched_props.py`` hypothesis suite pins down.

The catalogue:

``round_robin``
    The seed behaviour, bit-identical to the pre-``repro.sched`` code:
    the i-th placement (tasks, actors and operator instances share one
    counter) lands on ``workers[i % N]``; retries stay on their
    original node; reconstructions run on the first healthy worker.
``least_loaded``
    The node with the fewest outstanding placements (per the
    scheduler's slot/queue accounting), skipping crashed nodes.
``locality``
    Script paradigm: place a task where its largest ``ObjectRef``
    argument already has (or is about to get) a replica, so concurrent
    dereferences share one object-store transfer instead of paying one
    per node.  Workflow paradigm: align instance *k* of every operator
    on the same node, co-locating hash-partition peers across pipeline
    stages so partitioned channels stay intra-node.
``packed``
    Placement-group ``PACK``: fill the lowest-indexed healthy node up
    to its vCPU count before spilling to the next.
``spread``
    Placement-group ``SPREAD``: balance *cumulative* placements across
    healthy nodes — a fault-aware round-robin.
``drf``
    Dominant-resource-fairness placement for resource-shaped requests
    (the job service's ``job`` kind): land the request on the healthy
    node whose *dominant* resource share — the larger of vCPU and RAM
    utilization — would be lowest after placement.  A resources-aware
    ``least_loaded`` that keeps heterogeneous demands (CPU-heavy vs
    RAM-heavy jobs) from piling onto one node.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Type

from repro.errors import UnknownPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.cluster import Node
    from repro.sched.scheduler import Scheduler

__all__ = [
    "PlacementRequest",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "LocalityPolicy",
    "PackedPolicy",
    "SpreadPolicy",
    "DrfPolicy",
    "POLICIES",
    "DEFAULT_POLICY",
    "make_policy",
    "policy_catalogue",
    "round_robin_index",
    "valid_policy",
]

#: Placement kinds that advance the shared round-robin counter — the
#: seed incremented one counter per task submission, actor creation and
#: operator-instance layout; retries and reconstructions did not.
#: ``job`` placements (the ``repro.jobs`` control plane) run on their
#: own scheduler session and count like fresh submissions.
COUNTED_KINDS = ("task", "actor", "operator", "job")


def round_robin_index(index: int, num_workers: int) -> int:
    """The seed's placement arithmetic: i-th placement -> worker slot."""
    return index % num_workers


class PlacementRequest:
    """One placement decision to be made.

    Engines fill the hints they have: the script runtime passes the
    ``ObjectRef`` arguments of a task (locality), the workflow engine
    passes the operator id and worker index (peer co-location), and
    retry/reconstruction requests carry the node the work previously
    ran on.
    """

    __slots__ = (
        "kind",
        "label",
        "refs",
        "prev_node",
        "operator_id",
        "worker_index",
        "num_workers",
        "cache_node",
        "tenant",
        "cpus",
        "ram_bytes",
        "colocate_key",
        "index",
    )

    def __init__(
        self,
        kind: str,
        label: str = "",
        refs: Sequence = (),
        prev_node: Optional[str] = None,
        operator_id: str = "",
        worker_index: int = 0,
        num_workers: int = 1,
        cache_node: Optional[str] = None,
        tenant: str = "",
        cpus: int = 1,
        ram_bytes: int = 0,
        colocate_key: Optional[str] = None,
    ) -> None:
        if kind not in (
            "task",
            "actor",
            "retry",
            "reconstruction",
            "operator",
            "job",
        ):
            raise ValueError(f"unknown placement kind: {kind!r}")
        self.kind = kind
        self.label = label
        #: ``ObjectRef`` arguments of the task (locality hints).
        self.refs = tuple(refs)
        #: Node the work ran on before (retry / reconstruction).
        self.prev_node = prev_node
        self.operator_id = operator_id
        self.worker_index = worker_index
        self.num_workers = num_workers
        #: Node holding this submission's cached result, if a
        #: ``repro.cache`` lookup would hit (affinity hint — running
        #: there re-adopts the value with zero transfers).  Only the
        #: locality policy consults it; the default policy stays
        #: seed-identical.
        self.cache_node = cache_node
        #: Submitting tenant (``repro.jobs``) — fairness bookkeeping
        #: only; no built-in policy keys placement on it directly.
        self.tenant = tenant
        #: Resource demand of the placement (``job`` kind); the DRF
        #: policy turns these into post-placement dominant shares.
        self.cpus = cpus
        self.ram_bytes = ram_bytes
        #: Co-location group label (workflow optimizer's language-aware
        #: placement): all requests sharing a key land on the node the
        #: first one chose.  None (the default) leaves every policy's
        #: behaviour untouched.
        self.colocate_key = colocate_key
        #: Monotonic placement position, filled in by the scheduler.
        self.index = 0

    def largest_ref(self):
        """The biggest fulfilled ``ObjectRef`` hint, or None."""
        best = None
        for ref in self.refs:
            if getattr(ref, "nbytes", 0) <= 0:
                continue
            if best is None or ref.nbytes > best.nbytes:
                best = ref
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlacementRequest {self.kind}:{self.label or '-'} #{self.index}>"


class PlacementPolicy(abc.ABC):
    """Chooses a worker node for each placement request.

    Implementations must be deterministic functions of the request,
    the scheduler's accounts and the virtual clock — no wall time, no
    randomness — so that runs replay bit-identically.
    """

    #: Registry key (and the CLI ``--scheduler`` name).
    name: str = ""
    #: One-line blurb for the ``repro sched`` listing.
    description: str = ""

    @abc.abstractmethod
    def choose(self, request: PlacementRequest, sched: "Scheduler") -> "Node":
        """The node ``request`` should run on."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def _min_outstanding(candidates: Sequence["Node"], sched: "Scheduler") -> "Node":
    """Least outstanding load; ties broken by total placements, then
    by worker position (stable for any number of workers)."""
    return min(
        candidates,
        key=lambda node: (
            sched.accounts[node.name].outstanding,
            sched.accounts[node.name].total,
            sched.worker_position(node.name),
        ),
    )


class RoundRobinPolicy(PlacementPolicy):
    """The seed's placement, verbatim (the compatibility default).

    Reproduces the pre-``repro.sched`` behaviour bit-identically —
    including its indifference to faults: fresh placements cycle over
    *all* workers (a task may land inside an outage window and pay the
    retry, exactly as before), retries stay put, and only lineage
    reconstruction prefers a healthy worker (the seed's
    ``_healthy_worker``).
    """

    name = "round_robin"
    description = (
        "seed-identical cycle over all workers; retries stay on their node"
    )

    def choose(self, request: PlacementRequest, sched: "Scheduler") -> "Node":
        if request.kind == "retry" and request.prev_node is not None:
            return sched.cluster.node(request.prev_node)
        if request.kind == "reconstruction":
            return sched.first_healthy_worker()
        return sched.workers[round_robin_index(request.index, len(sched.workers))]


class LeastLoadedPolicy(PlacementPolicy):
    """Fewest outstanding placements wins; crashed nodes are skipped."""

    name = "least_loaded"
    description = (
        "healthy node with the fewest outstanding placements (queue-aware)"
    )

    def choose(self, request: PlacementRequest, sched: "Scheduler") -> "Node":
        return _min_outstanding(sched.healthy_workers(), sched)


class LocalityPolicy(PlacementPolicy):
    """Move compute to the data instead of data to the compute.

    Script paradigm: a task is placed where its largest ``ObjectRef``
    argument already has a replica — or where one is already *planned*
    (an earlier placement will have fetched it by running there), so a
    burst of submissions converges on one node and the object store's
    in-flight transfer dedup collapses N model transfers into one.  A
    node is only "local" while it has spare vCPUs; past that the policy
    spills to the least-loaded healthy node (and plans a replica
    there, so the spill target becomes local for the next burst).

    Workflow paradigm: instance *k* of every operator lands on worker
    ``k % N``, aligning hash-partition peers across pipeline stages —
    a tuple hashed to index *k* then moves between co-located
    instances, and the engine short-circuits intra-node transfers.
    """

    name = "locality"
    description = (
        "tasks follow their largest object argument; workflow aligns "
        "hash-partition peers"
    )

    def __init__(self) -> None:
        #: ``ref_id -> node name`` replicas this policy's own placements
        #: will create (a placed task fetches its arguments on arrival).
        self._planned: Dict[str, str] = {}

    def choose(self, request: PlacementRequest, sched: "Scheduler") -> "Node":
        healthy = sched.healthy_workers()
        if request.kind == "operator":
            node = sched.workers[
                round_robin_index(request.worker_index, len(sched.workers))
            ]
            if node in healthy:
                return node
            return _min_outstanding(healthy, sched)
        target = request.largest_ref()
        if target is not None:
            holders = set(sched.replicas_of(target))
            planned = self._planned.get(target.ref_id)
            if planned is not None:
                holders.add(planned)
            local = [node for node in healthy if node.name in holders]
            if local:
                best = _min_outstanding(local, sched)
                if sched.accounts[best.name].outstanding < best.num_cpus:
                    self._planned[target.ref_id] = best.name
                    return best
        if request.cache_node is not None:
            # Cache affinity: the result already lives on this node, so
            # a hit there re-adopts it without any cross-node movement.
            # Weaker than argument locality (checked above) because a
            # miss still has to fetch the arguments.
            for node in healthy:
                if (
                    node.name == request.cache_node
                    and sched.accounts[node.name].outstanding < node.num_cpus
                ):
                    return node
        node = _min_outstanding(healthy, sched)
        if target is not None:
            self._planned[target.ref_id] = node.name
        return node


class PackedPolicy(PlacementPolicy):
    """Placement-group PACK: saturate a node before opening the next.

    Minimizes the number of nodes touched (and hence inter-node
    traffic) at the cost of intra-node queueing once a node's vCPUs
    are oversubscribed.
    """

    name = "packed"
    description = "fill the lowest node up to its vCPUs, then spill (PACK)"

    def choose(self, request: PlacementRequest, sched: "Scheduler") -> "Node":
        healthy = sched.healthy_workers()
        for node in healthy:
            if sched.accounts[node.name].outstanding < node.num_cpus:
                return node
        return _min_outstanding(healthy, sched)


class SpreadPolicy(PlacementPolicy):
    """Placement-group SPREAD: balance cumulative placements.

    A fault-aware round-robin — the historical counts stay balanced
    even when outage windows take nodes out of rotation for a while.
    """

    name = "spread"
    description = "balance cumulative placements across healthy nodes (SPREAD)"

    def choose(self, request: PlacementRequest, sched: "Scheduler") -> "Node":
        return min(
            sched.healthy_workers(),
            key=lambda node: (
                sched.accounts[node.name].total,
                sched.accounts[node.name].outstanding,
                sched.worker_position(node.name),
            ),
        )


class DrfPolicy(PlacementPolicy):
    """Dominant-resource-fairness placement (resource-aware balance).

    For a request demanding ``cpus`` vCPUs and ``ram_bytes`` RAM, each
    healthy node's *dominant share after placement* is the larger of
    its vCPU and RAM utilization once the demand lands there; the node
    with the lowest dominant share wins.  Demands the job service fills
    in make this the placement half of DRF — admission *ordering*
    across tenants is the fair-share half (``repro.jobs.FairShare``).

    Requests without a RAM demand degrade to CPU-utilization balance,
    so the policy is safe for plain engine placements too.
    """

    name = "drf"
    description = (
        "lowest dominant resource share (vCPU vs RAM) after placement (jobs)"
    )

    def choose(self, request: PlacementRequest, sched: "Scheduler") -> "Node":
        def dominant_share_after(node: "Node") -> float:
            cpu_share = (node.cpus.in_use + request.cpus) / node.num_cpus
            ram_share = (
                (node.ram_used + request.ram_bytes) / node.ram_limit
                if node.ram_limit > 0
                else 0.0
            )
            return max(cpu_share, ram_share)

        return min(
            sched.healthy_workers(),
            key=lambda node: (
                dominant_share_after(node),
                sched.accounts[node.name].outstanding,
                sched.worker_position(node.name),
            ),
        )


#: Name -> class, in the order the ``repro sched`` listing prints.
POLICIES: Dict[str, Type[PlacementPolicy]] = {
    policy.name: policy
    for policy in (
        RoundRobinPolicy,
        LeastLoadedPolicy,
        LocalityPolicy,
        PackedPolicy,
        SpreadPolicy,
        DrfPolicy,
    )
}

DEFAULT_POLICY = RoundRobinPolicy.name


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered policy; raises :class:`UnknownPolicy`."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise UnknownPolicy(
            f"unknown placement policy {name!r}; have {', '.join(POLICIES)}"
        ) from None


def policy_catalogue() -> str:
    """The ``repro sched`` listing: one line per registered policy."""
    width = max(len(name) for name in POLICIES)
    lines = ["placement policies (select with --scheduler NAME):"]
    for name, cls in POLICIES.items():
        marker = "*" if name == DEFAULT_POLICY else " "
        lines.append(f" {marker} {name:<{width}}  {cls.description}")
    lines.append("(* default; round_robin reproduces the seed timings bit-identically)")
    return "\n".join(lines)


def valid_policy(name: str) -> bool:
    """True if ``name`` is a registered policy."""
    return name in POLICIES
