"""Pluggable scheduling & placement, shared by both engines.

Until this package existed, every placement decision in the repo was a
hard-coded round-robin call on the cluster — the script runtime's task
submission, its retry/lineage-reconstruction paths, its actor
placement, and the workflow engine's operator-instance layout.
``repro.sched`` extracts those decisions into one swappable layer (the
old ``Cluster`` shim is gone; the arithmetic lives only in the
``round_robin`` policy):

* :class:`PlacementPolicy` — the strategy interface, with a catalogue
  of implementations (``round_robin``, ``least_loaded``, ``locality``,
  ``packed``, ``spread``, ``drf``; see :mod:`repro.sched.policy`);
* :class:`Scheduler` — one per engine session; owns per-node load
  accounts, filters candidates through the fault injector's outage
  windows, and emits every decision to the observability layer.

Selecting a policy follows the tracer/injector pattern:

>>> from repro.sched import scheduling
>>> with scheduling("locality"):
...     run = run_kge_script(fresh_cluster(), dataset, num_cpus=4)

or per-config via ``ReproConfig(scheduler="locality")``, or from the
command line with ``python -m repro fig13d --scheduler locality``
(``python -m repro sched`` prints the catalogue).

The default ``round_robin`` policy reproduces the seed's placement
bit-identically — pinned by ``tests/obs/test_timing_regression.py`` —
and *every* policy produces identical task/workflow outputs (placement
changes timing, never results; pinned by the hypothesis suite in
``tests/properties/test_sched_props.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.sched.policy import (
    DEFAULT_POLICY,
    POLICIES,
    DrfPolicy,
    LeastLoadedPolicy,
    LocalityPolicy,
    PackedPolicy,
    PlacementPolicy,
    PlacementRequest,
    RoundRobinPolicy,
    SpreadPolicy,
    make_policy,
    policy_catalogue,
    valid_policy,
)
from repro.sched.scheduler import NodeAccount, Scheduler

__all__ = [
    "PlacementPolicy",
    "PlacementRequest",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "LocalityPolicy",
    "PackedPolicy",
    "SpreadPolicy",
    "DrfPolicy",
    "NodeAccount",
    "Scheduler",
    "POLICIES",
    "DEFAULT_POLICY",
    "make_policy",
    "policy_catalogue",
    "valid_policy",
    "install_policy",
    "uninstall_policy",
    "current_policy_name",
    "scheduling",
]

#: The globally installed policy name, if any (see :func:`install_policy`).
_installed: Optional[str] = None


def install_policy(name: str) -> str:
    """Make ``name`` the default policy for schedulers built afterwards.

    Validates eagerly (raises :class:`repro.errors.UnknownPolicy`), so
    a typo fails at install time rather than mid-experiment.
    """
    global _installed
    make_policy(name)  # validate
    _installed = name
    return name


def uninstall_policy() -> None:
    """Clear the globally installed policy (back to ``round_robin``)."""
    global _installed
    _installed = None


def current_policy_name() -> Optional[str]:
    """The globally installed policy name, or None."""
    return _installed


@contextmanager
def scheduling(name: str) -> Iterator[str]:
    """Install a placement policy for the duration of a ``with`` block.

    >>> with scheduling("least_loaded"):
    ...     run = run_gotta_script(fresh_cluster(), paragraphs, num_cpus=4)
    """
    global _installed
    previous = _installed
    install_policy(name)
    try:
        yield name
    finally:
        _installed = previous
