"""The scheduler: load accounting around one placement policy.

One :class:`Scheduler` serves one engine session — the script runtime
builds one per :class:`repro.rayx.RayxRuntime`, the workflow engine one
per :class:`repro.workflow.WorkflowController` — so the round-robin
counter and the per-node accounts start fresh with every run, exactly
like the seed's private placement counters did.

The scheduler is the *only* component allowed to take placement
decisions (a repo-wide check enforces it): engines describe the work in
a :class:`PlacementRequest`, the scheduler filters candidates through
the fault injector's outage windows, delegates the choice to its
:class:`PlacementPolicy`, updates the per-node accounts and emits the
decision to the observability layer (``sched.place`` spans,
``sched.placements``/``sched.replacement`` counters and
``sched.node_load`` gauges).  Everything is bookkeeping on the virtual
clock — no events are scheduled, so the default ``round_robin`` policy
keeps every timing bit-identical to the seed.

Policy resolution mirrors the tracer/injector pattern: an explicit
``policy`` argument wins, else :attr:`repro.config.ReproConfig.scheduler`,
else the globally installed policy (see :func:`repro.sched.scheduling`),
else ``round_robin``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Union

from repro.sched.policy import (
    COUNTED_KINDS,
    DEFAULT_POLICY,
    PlacementPolicy,
    PlacementRequest,
    make_policy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.cluster import Cluster, Node
    from repro.config import ReproConfig

__all__ = ["NodeAccount", "Scheduler"]

#: Kinds that re-place work that already ran somewhere (recovery).
REPLACEMENT_KINDS = ("retry", "reconstruction")


class NodeAccount:
    """Per-node slot/queue accounting maintained by the scheduler."""

    __slots__ = ("node_name", "outstanding", "total")

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name
        #: Placements currently alive on the node (placed, not released).
        self.outstanding = 0
        #: Placements ever made on the node (monotonic).
        self.total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NodeAccount {self.node_name}: {self.outstanding} outstanding "
            f"/ {self.total} total>"
        )


class Scheduler:
    """Owns placement for one engine session on one cluster."""

    def __init__(
        self,
        cluster: "Cluster",
        policy: Union[PlacementPolicy, str, None] = None,
        config: Optional["ReproConfig"] = None,
    ) -> None:
        from repro.sched import current_policy_name  # local: avoid cycle

        self.cluster = cluster
        self.env = cluster.env
        config = config or cluster.config
        if isinstance(policy, PlacementPolicy):
            self.policy = policy
        else:
            name = (
                policy
                or getattr(config, "scheduler", None)
                or current_policy_name()
                or DEFAULT_POLICY
            )
            self.policy = make_policy(name)
        self.workers: List["Node"] = list(cluster.workers)
        self._positions: Dict[str, int] = {
            worker.name: position for position, worker in enumerate(self.workers)
        }
        self.accounts: Dict[str, NodeAccount] = {
            worker.name: NodeAccount(worker.name) for worker in self.workers
        }
        #: The engine's object store, when it has one (``repro.rayx``);
        #: gives the locality policy its replica map.
        self.store = None
        self._counter = 0
        #: First-placement node per co-location group (``colocate_key``
        #: hints from the workflow optimizer); later members follow.
        self._colocated: Dict[str, "Node"] = {}
        #: Telemetry mirrored into tracer counters; the replacement
        #: count makes recovery placement observable per run.
        self.placements = 0
        self.replacements = 0
        # Elastic membership (repro.elastic): join/leave events keep
        # the candidate list and the accounts current mid-run.
        cluster.add_membership_listener(self._membership_changed)

    # -- membership (repro.elastic) -----------------------------------------

    def _membership_changed(self, action: str, node: "Node") -> None:
        if action == "add":
            if node.name not in self._positions:
                self.workers.append(node)
                self._positions[node.name] = len(self.workers) - 1
            self.accounts.setdefault(node.name, NodeAccount(node.name))
            return
        self.workers = [w for w in self.workers if w.name != node.name]
        self._positions = {
            worker.name: position for position, worker in enumerate(self.workers)
        }
        # The account stays: in-flight work placed before the drain
        # still calls release(node_name) when it completes.

    # -- views consulted by policies ---------------------------------------

    def worker_position(self, node_name: str) -> int:
        """Stable position of a worker in the cluster's worker list."""
        return self._positions[node_name]

    def healthy_workers(self) -> List["Node"]:
        """Workers outside any fault-injected outage window, in order.

        Falls back to all workers when every node is inside a window —
        placement must never deadlock; the injected outage only delays
        the work placed there.
        """
        faults = self.env.faults
        draining = self.cluster.draining
        if not faults.active and not draining:
            return self.workers
        now = self.env.now
        healthy = [
            worker
            for worker in self.workers
            if worker.name not in draining
            and not faults.node_down(worker.name, now)
        ]
        return healthy or self.workers

    def first_healthy_worker(self) -> "Node":
        """The seed's ``_healthy_worker``: first worker not in an outage."""
        faults = self.env.faults
        draining = self.cluster.draining
        now = self.env.now
        for worker in self.workers:
            if worker.name not in draining and not faults.node_down(
                worker.name, now
            ):
                return worker
        return self.workers[0]

    def replicas_of(self, ref) -> Set[str]:
        """Nodes holding a replica of ``ref`` (empty without a store)."""
        if self.store is None:
            return set()
        return self.store.replicas_of(ref)

    # -- placement ---------------------------------------------------------

    def place(self, request: PlacementRequest) -> "Node":
        """Decide where ``request`` runs; updates accounts and obs."""
        if request.kind in COUNTED_KINDS:
            request.index = self._counter
            self._counter += 1
        if request.colocate_key is not None and request.colocate_key in self._colocated:
            node = self._colocated[request.colocate_key]
        else:
            node = self.policy.choose(request, self)
            if request.colocate_key is not None:
                self._colocated[request.colocate_key] = node
        account = self.accounts.get(node.name)
        if account is not None:
            account.outstanding += 1
            account.total += 1
        self.placements += 1
        replacement = request.kind in REPLACEMENT_KINDS
        if replacement:
            self.replacements += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.counter(
                "sched.placements", policy=self.policy.name, node=node.name
            ).inc()
            if replacement:
                tracer.metrics.counter(
                    "sched.replacement", kind=request.kind
                ).inc()
            if account is not None:
                tracer.metrics.gauge("sched.node_load", node=node.name).set(
                    account.outstanding
                )
            now = self.env.now
            tracer.record_complete(
                f"place:{request.label or request.kind}",
                category="sched.place",
                node=node.name,
                start_s=now,
                end_s=now,
                policy=self.policy.name,
                kind=request.kind,
            )
        return node

    def release(self, node_name: str) -> None:
        """A placement finished; decrement the node's outstanding load."""
        account = self.accounts.get(node_name)
        if account is None:
            return
        if account.outstanding > 0:
            account.outstanding -= 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("sched.node_load", node=node_name).set(
                account.outstanding
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Scheduler policy={self.policy.name!r} "
            f"{self.placements} placements ({self.replacements} replacements)>"
        )
