"""The autoscaler: a periodic process scaling the worker fleet.

One :class:`Autoscaler` serves one :class:`repro.jobs.JobService`.  On
every ``interval_s`` tick it evaluates the quantities behind the
``repro.obs`` gauges — queue depth (``jobs.queue_depth``), reserved
vCPUs per node (``sched.node_load``), RAM high water
(``mem.high_water``) — and either provisions new workers (paying the
configured virtual boot latency before :meth:`Cluster.add_node` lands)
or drains idle ones through :meth:`Cluster.remove_node`.

Reading the sources rather than the gauge objects keeps the policy
usable without an attached tracer; when one *is* attached the decisions
are mirrored into ``elastic.scale_up`` / ``elastic.scale_down``
counters and the ``cluster.nodes`` gauge, so a trace shows cause
(queue/load/RAM rule) and effect (membership) side by side.

Scale-up and scale-down are deliberately asymmetric, the standard
cluster-autoscaler shape: up is eager (any rule trips it, ``step``
nodes at a time), down is cautious (empty queue, a node idle for
``idle_s``, outside the ``cooldown_s`` window after the last scale-up,
one node per tick).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.config import ElasticConfig
from repro.elastic.spec import machine_shape

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.cluster import Node
    from repro.jobs.service import JobService

__all__ = ["Autoscaler"]


class Autoscaler:
    """Watches one job service's signals and scales its cluster."""

    def __init__(self, service: "JobService", config: ElasticConfig) -> None:
        self.service = service
        self.cluster = service.cluster
        self.env = service.env
        self.config = config
        #: Shape provisioned nodes use (resolved eagerly so a bad name
        #: fails at construction, not mid-run).
        self.machine = machine_shape(config.shape)
        # Telemetry.
        self.scale_ups = 0
        self.scale_downs = 0
        #: Nodes currently paying their boot latency.
        self.provisioning = 0
        self._next_index = 0
        self._last_scale_up_s: Optional[float] = None
        #: ``name -> time`` the node was first observed idle.
        self._idle_since: dict = {}
        self._proc = None

    # -- lifecycle ----------------------------------------------------------

    def ensure_started(self) -> None:
        """Start the periodic evaluation process (idempotent)."""
        if self._proc is None:
            self._proc = self.env.process(self._run())

    def _run(self):
        while True:
            yield self.env.timeout(self.config.interval_s)
            self._evaluate()

    # -- signal views -------------------------------------------------------

    def active_workers(self) -> List["Node"]:
        """Workers that are neither draining nor still booting."""
        draining = self.cluster.draining
        return [w for w in self.cluster.workers if w.name not in draining]

    def _population(self) -> int:
        return len(self.active_workers()) + self.provisioning

    # -- the policy ---------------------------------------------------------

    def _evaluate(self) -> None:
        cfg = self.config
        now = self.env.now
        active = self.active_workers()
        population = len(active) + self.provisioning
        depth = self.service.queue.depth

        # Track idleness first so a node that was busy this tick cannot
        # be drained on the same tick it went idle.
        held = self.service._cpus_held
        for node in active:
            busy = (
                held.get(node.name, 0) > 0
                or node.cpus.in_use > 0
                or node.cpus._waiters
            )
            if busy:
                self._idle_since.pop(node.name, None)
            else:
                self._idle_since.setdefault(node.name, now)

        if population < cfg.max_nodes and self._wants_up(active, depth, population):
            self._scale_up(min(cfg.step, cfg.max_nodes - population))
            return

        if (
            depth == 0
            and population > cfg.min_nodes
            and (
                self._last_scale_up_s is None
                or now - self._last_scale_up_s >= cfg.cooldown_s
            )
        ):
            victim = self._pick_victim(active, now)
            if victim is not None:
                self._scale_down(victim)

    def _wants_up(self, active: List["Node"], depth: int, population: int) -> bool:
        cfg = self.config
        if depth > cfg.up_queue_per_node * population:
            return True
        if depth == 0:
            return False
        held = self.service._cpus_held
        total_cpus = sum(node.num_cpus for node in active)
        if total_cpus > 0:
            load = sum(held.get(node.name, 0) for node in active) / total_cpus
            if load >= cfg.up_load:
                return True
        for node in active:
            if node.ram_limit > 0 and node.ram_peak / node.ram_limit >= cfg.up_ram:
                return True
        return False

    def _pick_victim(self, active: List["Node"], now: float) -> Optional["Node"]:
        cfg = self.config
        candidates = [
            node
            for node in active
            if node.name in self._idle_since
            and now - self._idle_since[node.name] >= cfg.idle_s
        ]
        if not candidates:
            return None
        # Retire the youngest idle node first: the seed workers stay,
        # which keeps warm object-store replicas where the early work
        # put them.
        return max(
            candidates, key=lambda node: (self.cluster.joined_at(node.name), node.name)
        )

    # -- actuation ----------------------------------------------------------

    def _scale_up(self, count: int) -> None:
        self._last_scale_up_s = self.env.now
        for _ in range(count):
            name = f"elastic-{self._next_index}"
            self._next_index += 1
            self.provisioning += 1
            self.env.process(self._provision(name))
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.counter("elastic.scale_up").add(count)

    def _provision(self, name: str):
        try:
            yield from self.cluster.provision_node(
                name, machine=self.machine, latency_s=self.config.provision_s
            )
        finally:
            self.provisioning -= 1
        self.scale_ups += 1

    def _scale_down(self, victim: "Node") -> None:
        self._idle_since.pop(victim.name, None)
        self.scale_downs += 1
        self.env.process(
            self.cluster.remove_node(victim.name, drain=self.config.drain)
        )
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.counter("elastic.scale_down").inc()

    # -- dispatcher SOS -----------------------------------------------------

    def request_capacity(self) -> bool:
        """Called by a starved dispatcher: jobs pending, nothing running.

        Returns True when more capacity is coming (nodes provisioning,
        a drain about to return capacity bookkeeping to steady state,
        or a scale-up just triggered here) so the dispatcher should
        wait instead of failing the pending jobs; False when the fleet
        is already at ``max_nodes`` and no help is possible.
        """
        if self.provisioning > 0:
            return True
        if self._population() >= self.config.max_nodes:
            return False
        if self.cluster.draining:
            return True
        self._scale_up(1)
        return True

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict:
        return {
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "provisioning": self.provisioning,
            "final_nodes": len(self.cluster.workers),
            "peak_nodes": self.cluster.peak_workers,
            "shape": self.config.shape,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Autoscaler {self.config.min_nodes}..{self.config.max_nodes} "
            f"{self.scale_ups} up / {self.scale_downs} down>"
        )
