"""Elastic cluster membership + autoscaling: ``repro.elastic``.

The paper's scaling studies (Figs. 13/14) stop at a static 1-4
workers; real deployments of both paradigms run on fleets that grow
and shrink with load.  This package adds that dimension on top of the
layers beneath it:

* :meth:`repro.cluster.Cluster.add_node` /
  :meth:`~repro.cluster.Cluster.remove_node` — dynamic membership with
  virtual provisioning latency and draining (outstanding vCPU requests
  finish, sole object-store replicas migrate to survivors, RAM
  reservations clear) before a node retires;
* :data:`MACHINE_SHAPES` — heterogeneous machine shapes
  (``default``/``fast``/``slow``/``highmem``) for the fleets real
  scientific workflows ask for;
* :class:`Autoscaler` — a periodic process watching the quantities
  behind the ``repro.obs`` gauges (queue depth, ``sched.node_load``,
  ``mem.high_water``) with configurable scale-up/down rules, composing
  with the :mod:`repro.jobs` traffic generator.

Enabling it follows the pattern of every other layer:

>>> from repro.elastic import elastic_enabled
>>> from repro.jobs import JobService, JobsConfig
>>> with elastic_enabled("on,min=1,max=8,provision=3"):
...     summary = JobService(JobsConfig(enabled=True)).simulate()

or from the command line with ``--elastic SPEC`` (composes with
``repro jobs SPEC``); ``python -m repro elastic`` prints the grammar.

Dormant by default: nothing consults this package unless an autoscaler
is explicitly enabled, the node set stays exactly as built, and every
direct engine run is bit-identical to the seed virtual timings (pinned
by ``tests/elastic/test_timing_pin.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.config import ElasticConfig
from repro.elastic.autoscaler import Autoscaler
from repro.elastic.spec import (
    MACHINE_SHAPES,
    describe_elastic,
    elastic_config_from_json,
    elastic_config_to_json,
    machine_shape,
    parse_elastic_spec,
)

__all__ = [
    "ElasticConfig",
    "Autoscaler",
    "MACHINE_SHAPES",
    "machine_shape",
    "parse_elastic_spec",
    "describe_elastic",
    "elastic_config_to_json",
    "elastic_config_from_json",
    "install_elastic",
    "uninstall_elastic",
    "current_elastic_config",
    "elastic_enabled",
]

#: The globally installed config, if any (see :func:`install_elastic`).
_installed: Optional[ElasticConfig] = None


def _coerce(config_or_spec: Union[ElasticConfig, str]) -> ElasticConfig:
    if isinstance(config_or_spec, ElasticConfig):
        return config_or_spec
    return parse_elastic_spec(config_or_spec)


def install_elastic(config_or_spec: Union[ElasticConfig, str]) -> ElasticConfig:
    """Make an elastic config the session default.

    Accepts an :class:`ElasticConfig` or a spec string (validated
    eagerly, so a typo fails at install time rather than mid-run).
    """
    global _installed
    config = _coerce(config_or_spec)
    _installed = config
    return config


def uninstall_elastic() -> None:
    """Clear the globally installed config (back to the dormant default)."""
    global _installed
    _installed = None


def current_elastic_config() -> Optional[ElasticConfig]:
    """The globally installed elastic config, or None."""
    return _installed


@contextmanager
def elastic_enabled(
    config_or_spec: Union[ElasticConfig, str],
) -> Iterator[ElasticConfig]:
    """Install an elastic config for the duration of a ``with`` block.

    >>> with elastic_enabled("on,min=1,max=8") as config:
    ...     config.max_nodes
    8
    """
    global _installed
    config = _coerce(config_or_spec)
    previous = _installed
    _installed = config
    try:
        yield config
    finally:
        _installed = previous
