"""Compact CLI specs for elasticity: ``--elastic "on,min=1,max=8"``.

A spec is a comma-separated list of flags and ``key=value`` pairs,
the same grammar family as ``--mem``, ``--faults`` and ``--jobs``:

==================  ====================================================
``on``              attach the autoscaler to the job service
``off``             keep the subsystem dormant (the default)
``min=N``           fleet floor, workers (1)
``max=N``           fleet ceiling, workers (8)
``interval=F``      gauge-evaluation cadence, virtual seconds (1)
``provision=F``     virtual boot latency per provisioned node (10)
``up=F``            scale up above this many queued jobs per worker (4)
``load=F``          ... or at this reserved-vCPU load with a queue (0.9)
``ram=F``           ... or at this RAM high-water fraction (0.9)
``idle=F``          a node must idle this long to be drained (3)
``cooldown=F``      no scale-down within this of a scale-up (5)
``step=N``          nodes provisioned per scale-up decision (1)
``shape=NAME``      machine shape for new nodes (``default``;
                    also ``fast``, ``slow``, ``highmem``)
``drain=on|off``    drain (migrate replicas) vs crash-evict on
                    scale-down (on)
==================  ====================================================

``repro elastic SPEC`` prints the configuration a spec expands to.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Any, Dict

from repro.config import GIB, ElasticConfig, MachineConfig
from repro.errors import ElasticSpecError

__all__ = [
    "MACHINE_SHAPES",
    "machine_shape",
    "parse_elastic_spec",
    "describe_elastic",
    "elastic_config_to_json",
    "elastic_config_from_json",
]

#: Named machine shapes for heterogeneous fleets.  ``default`` is the
#: paper's testbed VM; the others are the usual cloud families —
#: compute-optimized, burstable, memory-optimized.
MACHINE_SHAPES: Dict[str, MachineConfig] = {
    "default": MachineConfig(),
    "fast": MachineConfig(
        num_cpus=16, ram_bytes=64 * GIB, flops_per_core_per_s=4.0e9
    ),
    "slow": MachineConfig(
        num_cpus=4, ram_bytes=16 * GIB, flops_per_core_per_s=1.0e9
    ),
    "highmem": MachineConfig(
        num_cpus=8, ram_bytes=256 * GIB, flops_per_core_per_s=2.0e9
    ),
}


def machine_shape(name: str) -> MachineConfig:
    """Resolve a shape name; raises :class:`ElasticSpecError`."""
    try:
        return MACHINE_SHAPES[name]
    except KeyError:
        raise ElasticSpecError(
            f"unknown machine shape {name!r} "
            f"(have {', '.join(sorted(MACHINE_SHAPES))})"
        ) from None


def _parse_bool(key: str, value: str) -> bool:
    lowered = value.lower()
    if lowered in ("on", "true", "1", "yes"):
        return True
    if lowered in ("off", "false", "0", "no"):
        return False
    raise ElasticSpecError(
        f"bad value for elastic spec key {key!r}: {value!r} (want on/off)"
    )


def parse_elastic_spec(spec: str) -> ElasticConfig:
    """Parse an ``--elastic`` spec string into an :class:`ElasticConfig`.

    >>> parse_elastic_spec("on,min=2,max=16").max_nodes
    16
    """
    text = spec.strip()
    if not text:
        raise ElasticSpecError("empty elastic spec")
    kwargs: Dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise ElasticSpecError(f"empty fragment in elastic spec {spec!r}")
        if "=" not in part:
            flag = part.lower()
            if flag == "on":
                kwargs["enabled"] = True
            elif flag == "off":
                kwargs["enabled"] = False
            else:
                raise ElasticSpecError(
                    f"unknown elastic spec flag {part!r} (want 'on', 'off' "
                    "or key=value)"
                )
            continue
        key, _, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "min":
                kwargs["min_nodes"] = int(value)
            elif key == "max":
                kwargs["max_nodes"] = int(value)
            elif key == "interval":
                kwargs["interval_s"] = float(value)
            elif key == "provision":
                kwargs["provision_s"] = float(value)
            elif key == "up":
                kwargs["up_queue_per_node"] = float(value)
            elif key == "load":
                kwargs["up_load"] = float(value)
            elif key == "ram":
                kwargs["up_ram"] = float(value)
            elif key == "idle":
                kwargs["idle_s"] = float(value)
            elif key == "cooldown":
                kwargs["cooldown_s"] = float(value)
            elif key == "step":
                kwargs["step"] = int(value)
            elif key == "shape":
                machine_shape(value)  # validate eagerly
                kwargs["shape"] = value
            elif key == "drain":
                kwargs["drain"] = _parse_bool(key, value)
            else:
                raise ElasticSpecError(f"unknown elastic spec key {key!r}")
        except ValueError:
            raise ElasticSpecError(
                f"bad value for elastic spec key {key!r}: {value!r}"
            ) from None
    try:
        return replace(ElasticConfig(), **kwargs)
    except ValueError as exc:
        raise ElasticSpecError(str(exc)) from None


def elastic_config_to_json(config: ElasticConfig) -> Dict[str, Any]:
    """Plain-JSON dump of a config (benchmark documents)."""
    return asdict(config)


def elastic_config_from_json(doc: Dict[str, Any]) -> ElasticConfig:
    """Inverse of :func:`elastic_config_to_json` (validates on construction)."""
    return ElasticConfig(**doc)


def describe_elastic(config: ElasticConfig) -> str:
    """Aligned text description of an elastic config (the CLI's output)."""
    shape = MACHINE_SHAPES.get(config.shape)
    shape_text = config.shape
    if shape is not None:
        shape_text += (
            f" ({shape.num_cpus} vCPU, {shape.ram_bytes // GIB} GiB, "
            f"{shape.flops_per_core_per_s:.1e} FLOP/s/core)"
        )
    lines = [
        "elasticity: "
        + ("autoscaler ON" if config.enabled else "dormant (static cluster)"),
        f"  fleet              {config.min_nodes}..{config.max_nodes} workers",
        f"  cadence            every {config.interval_s:g}s, "
        f"provision latency {config.provision_s:g}s",
        f"  scale up           queue > {config.up_queue_per_node:g}/worker, "
        f"or load >= {config.up_load:.0%}, or RAM >= {config.up_ram:.0%} "
        f"(+{config.step}/decision)",
        f"  scale down         idle >= {config.idle_s:g}s, empty queue, "
        f"cooldown {config.cooldown_s:g}s",
        f"  new-node shape     {shape_text}",
        f"  on scale-down      "
        + ("drain (migrate replicas)" if config.drain else "crash-evict"),
    ]
    return "\n".join(lines)
