"""Lines-of-code counting (the paper's Figure 12a metric).

The paper counts implementation lines of each task under each paradigm
(Jupyter cells vs Texera operator configurations).  Here the metric is
applied to this repository's own implementations: the ``script.py`` and
``workflow.py`` modules of each task, counting logical source lines
(non-blank, non-comment, excluding module docstrings).
"""

from __future__ import annotations

import ast
import inspect
from types import ModuleType
from typing import Union

__all__ = ["count_loc", "count_module_loc"]


def count_loc(source: str) -> int:
    """Logical source lines in ``source``.

    Blank lines and comment-only lines are excluded; docstrings are
    excluded by removing every string-expression statement's span.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ValueError(f"cannot count LoC of invalid Python: {exc}") from exc

    docstring_lines = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        body = getattr(node, "body", [])
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            expr = body[0]
            docstring_lines.update(range(expr.lineno, expr.end_lineno + 1))

    count = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if lineno in docstring_lines:
            continue
        count += 1
    return count


def count_module_loc(module: Union[ModuleType, str]) -> int:
    """Logical source lines of a module (object or import path)."""
    if isinstance(module, str):
        import importlib

        module = importlib.import_module(module)
    return count_loc(inspect.getsource(module))
