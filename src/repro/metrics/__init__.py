"""Measurement utilities: LoC counting and experiment reports."""

from repro.metrics.loc import count_loc, count_module_loc
from repro.metrics.report import ExperimentReport, ExperimentRow

__all__ = ["count_loc", "count_module_loc", "ExperimentReport", "ExperimentRow"]
