"""Result tables for the experiment harness.

An :class:`ExperimentReport` holds measured rows side by side with the
paper's reported numbers and renders the same tables/series the paper
prints — plus a delta column, since the reproduction targets *shapes*
rather than absolute seconds (DESIGN.md section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ExperimentRow", "ExperimentReport"]


@dataclass
class ExperimentRow:
    """One measured point of one experiment."""

    series: str  # e.g. "script", "workflow", "scala-operators"
    x: Any  # e.g. dataset size, worker count, operator count
    measured: float
    paper: Optional[float] = None
    unit: str = "s"

    @property
    def relative_error(self) -> Optional[float]:
        """(measured - paper) / paper, when a paper value exists."""
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / self.paper


@dataclass
class ExperimentReport:
    """All rows of one table/figure reproduction."""

    experiment_id: str  # e.g. "fig13a"
    title: str
    x_label: str
    rows: List[ExperimentRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(
        self,
        series: str,
        x: Any,
        measured: float,
        paper: Optional[float] = None,
        unit: str = "s",
    ) -> ExperimentRow:
        row = ExperimentRow(series, x, measured, paper, unit)
        self.rows.append(row)
        return row

    def series(self, name: str) -> List[ExperimentRow]:
        """Rows of one series, in insertion (x) order."""
        return [row for row in self.rows if row.series == name]

    def measured_series(self, name: str) -> List[float]:
        return [row.measured for row in self.series(name)]

    def max_relative_error(self) -> Optional[float]:
        errors = [
            abs(row.relative_error)
            for row in self.rows
            if row.relative_error is not None
        ]
        return max(errors) if errors else None

    def to_text(self) -> str:
        """Render the report as an aligned text table."""
        header = (
            f"{self.experiment_id}: {self.title}\n"
            f"{'series':<22} {self.x_label:>12} {'measured':>12} "
            f"{'paper':>12} {'delta':>8}"
        )
        lines = [header, "-" * len(header.splitlines()[-1])]
        for row in self.rows:
            paper = f"{row.paper:.2f}" if row.paper is not None else "-"
            error = (
                f"{row.relative_error * 100:+.1f}%"
                if row.relative_error is not None
                else "-"
            )
            lines.append(
                f"{row.series:<22} {str(row.x):>12} {row.measured:>12.2f} "
                f"{paper:>12} {error:>8}"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, Any]]:
        """Rows as plain dicts (for JSON/EXPERIMENTS.md generation)."""
        return [
            {
                "experiment": self.experiment_id,
                "series": row.series,
                "x": row.x,
                "measured": round(row.measured, 3),
                "paper": row.paper,
                "unit": row.unit,
            }
            for row in self.rows
        ]
