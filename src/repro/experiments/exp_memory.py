"""Memory-pressure experiment: spilling vs dying on shrunken RAM.

The paper's testbed gives every machine ample RAM, so neither paradigm
ever hits a memory wall.  This extension asks what happens when the
machines are smaller than the working set: the seed behaviour (a hard
:class:`repro.errors.InsufficientResources` the moment an allocation
does not fit) versus the :mod:`repro.mem` policy (LRU spill-to-disk
plus admission backpressure), which trades virtual disk time for
completion.

Each of the four tasks runs three ways under the script paradigm:

1. **clean** — default config, ample RAM; doubles as the probe that
   records the node-level RAM high-water mark and the largest single
   allocation;
2. **dormant + shrunken RAM** — RAM clamped midway between the largest
   single allocation and the observed peak, spilling disabled: the run
   must die (this is the seed behaviour on a smaller machine);
3. **policy + shrunken RAM** — same clamp with spilling enabled: the
   run must complete, with recorded spills, and produce rows identical
   to the clean run.

The report shows clean time, pressured time and the spill overhead —
the price of finishing at all.  All times are virtual and
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Tuple

from repro.config import MemoryConfig, default_config
from repro.datasets import generate_fsqa, generate_maccrobat, generate_wildfire_tweets
from repro.errors import ExperimentError, InsufficientResources
from repro.experiments.harness import cached_kge_dataset
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.base import TaskRun
from repro.tasks.dice.script import run_dice_script
from repro.tasks.gotta.script import run_gotta_script
from repro.tasks.kge.script import run_kge_script
from repro.tasks.wef.script import run_wef_script

__all__ = ["run_memory", "shrunken_ram_bytes"]


def _output_rows(run: TaskRun) -> List[Tuple]:
    return sorted(tuple(row.values) for row in run.output.rows)


def shrunken_ram_bytes(cluster) -> int:
    """A per-node RAM size that pressures a probed run without starving it.

    Midway between the largest single allocation any node made (the
    floor below which even spilling cannot help — one object must fit
    in RAM to be used) and the highest concurrent usage any node
    reached (above which nothing interesting happens).
    """
    peak = max(node.ram_peak for node in cluster._nodes.values())
    largest = max(node.largest_alloc for node in cluster._nodes.values())
    return (peak + largest) // 2


def run_memory(
    num_docs: int = 120,
    num_paragraphs: int = 4,
    num_candidates: int = 6800,
    universe_size: int = 68000,
    num_tweets: int = 120,
) -> ExperimentReport:
    """Memory-pressure cost on all four tasks (script paradigm).

    For every task the dormant run on shrunken RAM must die with
    :class:`InsufficientResources` and the policy run must complete
    with at least one spill and clean-identical output — both are
    asserted, not just reported.
    """
    report = ExperimentReport(
        "memory",
        "completing on shrunken RAM: LRU spill + backpressure vs the "
        "seed's hard failure (script paradigm, 4 CPUs)",
        x_label="task",
    )
    reports = generate_maccrobat(num_docs=num_docs, seed=7)
    paragraphs = generate_fsqa(num_paragraphs=num_paragraphs, seed=17)
    dataset = cached_kge_dataset(num_candidates, universe_size=universe_size)
    tweets = generate_wildfire_tweets(num_tweets, seed=11)

    cases: List[Tuple[str, Callable]] = [
        ("dice", lambda cl: run_dice_script(cl, reports, num_cpus=4)),
        ("gotta", lambda cl: run_gotta_script(cl, paragraphs, num_cpus=4)),
        ("kge", lambda cl: run_kge_script(cl, dataset, num_cpus=4)),
        ("wef", lambda cl: run_wef_script(cl, tweets, num_cpus=4)),
    ]
    for task, run_fn in cases:
        # The clean run doubles as the RAM probe.
        clean_cluster = fresh_cluster()
        clean = run_fn(clean_cluster)
        ram = shrunken_ram_bytes(clean_cluster)

        dormant = replace(
            default_config(), memory=MemoryConfig(node_ram_bytes=ram)
        )
        try:
            run_fn(fresh_cluster(dormant))
        except InsufficientResources:
            pass
        else:
            raise ExperimentError(
                f"{task}: dormant run on {ram} bytes/node should have died "
                "with InsufficientResources but completed"
            )

        policy = replace(
            default_config(),
            memory=MemoryConfig(enabled=True, node_ram_bytes=ram),
        )
        pressured_cluster = fresh_cluster(policy)
        pressured = run_fn(pressured_cluster)
        memory = pressured_cluster.memory
        if memory.spill_count == 0:
            raise ExperimentError(
                f"{task}: pressured run on {ram} bytes/node recorded no "
                "spills — the clamp did not bite"
            )
        if _output_rows(pressured) != _output_rows(clean):
            raise ExperimentError(
                f"{task}: pressured run produced different output than the "
                "clean run — spilling corrupted the result"
            )
        report.add("clean", task, clean.elapsed_s)
        report.add("pressured", task, pressured.elapsed_s)
        report.add("overhead", task, pressured.elapsed_s - clean.elapsed_s)
        report.notes.append(
            f"{task}: ram={ram} bytes/node; dormant run died "
            f"(InsufficientResources), policy run spilled "
            f"{memory.spill_count}x ({memory.spill_bytes} bytes, "
            f"{memory.spill_seconds:.3f}s), restored {memory.restore_count}x, "
            f"blocked {memory.blocked_count}x; output identical to clean run"
        )
    return report
