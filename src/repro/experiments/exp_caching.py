"""Result-cache experiment: cold vs warm runs on both paradigms.

The paper re-runs every task from scratch for each measurement, so
both paradigms pay the full virtual cost every time.  This extension
asks what an engine-level memo — Ray's object-store reuse on the
script side, Texera's operator result cache on the workflow side —
would recover: with :mod:`repro.cache` installed, a *cold* run pays
exactly the seed cost while populating the lineage-keyed cache, and a
*warm* re-run of the identical pipeline replays every memoized
submission at lookup cost instead of compute cost.

Each of the four tasks runs under both paradigms, three ways:

1. **dormant** — default config; the seed baseline;
2. **cold** — cache installed but empty: must be bit-identical to the
   dormant run (misses charge nothing — this is asserted);
3. **warm** — same cache instance, fresh cluster: must be faster, must
   record hits, and must produce rows identical to the dormant run.

The report shows cold time, warm time and the speedup — the virtual
time an engine-level cache would hand back to an analyst iterating on
the *end* of a pipeline whose *start* has not changed.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.cache import ResultCache, cached
from repro.datasets import generate_fsqa, generate_maccrobat, generate_wildfire_tweets
from repro.errors import ExperimentError
from repro.experiments.harness import cached_kge_dataset
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.base import TaskRun
from repro.tasks.dice.script import run_dice_script
from repro.tasks.dice.workflow import run_dice_workflow
from repro.tasks.gotta.script import run_gotta_script
from repro.tasks.gotta.workflow import run_gotta_workflow
from repro.tasks.kge.script import run_kge_script
from repro.tasks.kge.workflow import run_kge_workflow
from repro.tasks.wef.script import run_wef_script
from repro.tasks.wef.workflow import run_wef_workflow

__all__ = ["run_caching"]


def _output_rows(run: TaskRun) -> List[Tuple]:
    return sorted(tuple(row.values) for row in run.output.rows)


def run_caching(
    num_docs: int = 120,
    num_paragraphs: int = 4,
    num_candidates: int = 6800,
    universe_size: int = 68000,
    num_tweets: int = 120,
) -> ExperimentReport:
    """Cold-vs-warm cache cost on all four tasks, both paradigms.

    For every case the cold run must match the dormant run
    bit-identically, and the warm run must be faster, record cache
    hits and produce dormant-identical output — all four properties
    are asserted, not just reported.
    """
    report = ExperimentReport(
        "caching",
        "lineage-keyed result caching: a warm re-run of an unchanged "
        "pipeline replays memoized work at lookup cost",
        x_label="task/paradigm",
    )
    reports = generate_maccrobat(num_docs=num_docs, seed=7)
    paragraphs = generate_fsqa(num_paragraphs=num_paragraphs, seed=17)
    dataset = cached_kge_dataset(num_candidates, universe_size=universe_size)
    tweets = generate_wildfire_tweets(num_tweets, seed=11)

    cases: List[Tuple[str, Callable]] = [
        ("dice/script", lambda cl: run_dice_script(cl, reports, num_cpus=4)),
        ("dice/workflow", lambda cl: run_dice_workflow(cl, reports, num_workers=4)),
        ("gotta/script", lambda cl: run_gotta_script(cl, paragraphs, num_cpus=4)),
        (
            "gotta/workflow",
            lambda cl: run_gotta_workflow(cl, paragraphs, num_workers=4),
        ),
        ("kge/script", lambda cl: run_kge_script(cl, dataset, num_cpus=4)),
        ("kge/workflow", lambda cl: run_kge_workflow(cl, dataset)),
        ("wef/script", lambda cl: run_wef_script(cl, tweets, num_cpus=4)),
        ("wef/workflow", lambda cl: run_wef_workflow(cl, tweets)),
    ]
    for case, run_fn in cases:
        dormant = run_fn(fresh_cluster())
        cache = ResultCache("on")
        with cached(cache):
            cold = run_fn(fresh_cluster())
            warm = run_fn(fresh_cluster())
        if cold.elapsed_s != dormant.elapsed_s:
            raise ExperimentError(
                f"{case}: cold cached run took {cold.elapsed_s}s, dormant "
                f"took {dormant.elapsed_s}s — misses must charge nothing"
            )
        if not warm.elapsed_s < cold.elapsed_s:
            raise ExperimentError(
                f"{case}: warm run ({warm.elapsed_s}s) was not faster than "
                f"cold ({cold.elapsed_s}s) despite a populated cache"
            )
        if cache.hits == 0:
            raise ExperimentError(
                f"{case}: warm run recorded no cache hits — the lineage "
                "fingerprints of identical submissions diverged"
            )
        if _output_rows(warm) != _output_rows(dormant):
            raise ExperimentError(
                f"{case}: warm run produced different output than the "
                "dormant run — a cache hit replayed the wrong result"
            )
        report.add("cold", case, cold.elapsed_s)
        report.add("warm", case, warm.elapsed_s)
        report.add("speedup", case, cold.elapsed_s / warm.elapsed_s)
        report.notes.append(
            f"{case}: warm hit {cache.hits}x (cold missed {cache.misses}x), "
            f"{cache.hit_rate:.0%} overall hit rate, {len(cache)} entries "
            f"({cache.total_bytes} bytes); cold == dormant bit-identically"
        )
    return report
