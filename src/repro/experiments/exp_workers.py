"""Experiment #4 (paper Section IV-F): number of workers.

Reproduces Figure 14's three panels — DICE (a), GOTTA (b), KGE (c) —
at 1, 2 and 4 workers.  WEF is excluded, as in the paper (it would
become a distributed-training task).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets import generate_fsqa, generate_maccrobat
from repro.experiments.harness import KGE_LARGE, cached_kge_dataset
from repro.experiments.paper_values import FIG14_WORKERS
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.dice import run_dice_script, run_dice_workflow
from repro.tasks.gotta import run_gotta_script, run_gotta_workflow
from repro.tasks.kge import run_kge_script, run_kge_workflow

__all__ = ["run_fig14a", "run_fig14b", "run_fig14c"]

_DEFAULT_WORKERS = (1, 2, 4)


def run_fig14a(
    workers: Optional[Sequence[int]] = None, num_docs: int = 200
) -> ExperimentReport:
    """DICE at 200 file pairs, 1/2/4 workers."""
    report = ExperimentReport(
        "fig14a",
        f"DICE execution time vs #workers ({num_docs} file pairs)",
        x_label="workers",
    )
    paper = FIG14_WORKERS["dice"]
    reports = generate_maccrobat(num_docs=num_docs, seed=7)
    for count in workers or _DEFAULT_WORKERS:
        script = run_dice_script(fresh_cluster(), reports, num_cpus=count)
        report.add("script", count, script.elapsed_s, paper["script"].get(count))
        workflow = run_dice_workflow(fresh_cluster(), reports, num_workers=count)
        report.add("workflow", count, workflow.elapsed_s, paper["workflow"].get(count))
    return report


def run_fig14b(
    workers: Optional[Sequence[int]] = None, num_paragraphs: int = 4
) -> ExperimentReport:
    """GOTTA at 4 paragraphs, 1/2/4 workers."""
    report = ExperimentReport(
        "fig14b",
        f"GOTTA execution time vs #workers ({num_paragraphs} paragraphs)",
        x_label="workers",
    )
    paper = FIG14_WORKERS["gotta"]
    paragraphs = generate_fsqa(num_paragraphs=num_paragraphs, seed=17)
    for count in workers or _DEFAULT_WORKERS:
        script = run_gotta_script(fresh_cluster(), paragraphs, num_cpus=count)
        report.add("script", count, script.elapsed_s, paper["script"].get(count))
        workflow = run_gotta_workflow(fresh_cluster(), paragraphs, num_workers=count)
        report.add("workflow", count, workflow.elapsed_s, paper["workflow"].get(count))
    return report


def run_fig14c(
    workers: Optional[Sequence[int]] = None,
    num_candidates: int = 68000,
    universe_size: int = KGE_LARGE,
) -> ExperimentReport:
    """KGE at 68k products, 1/2/4 workers."""
    report = ExperimentReport(
        "fig14c",
        f"KGE execution time vs #workers ({num_candidates} products)",
        x_label="workers",
    )
    paper = FIG14_WORKERS["kge"]
    dataset = cached_kge_dataset(num_candidates, universe_size)
    for count in workers or _DEFAULT_WORKERS:
        script = run_kge_script(fresh_cluster(), dataset, num_cpus=count)
        report.add("script", count, script.elapsed_s, paper["script"].get(count))
        workflow = run_kge_workflow(fresh_cluster(), dataset, num_workers=count)
        report.add("workflow", count, workflow.elapsed_s, paper["workflow"].get(count))
    return report
