"""Experiment #2 (paper Section IV-D): language efficiency — Table I.

The three-Python-operator KGE workflow against the variant whose join
is implemented by nine Scala operators, at 6.8k and 68k products.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import KGE_LARGE, cached_kge_dataset, kge_paper_scales
from repro.experiments.paper_values import TABLE1_LANGUAGE
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.kge.workflow import run_kge_workflow

__all__ = ["run_table1"]


def run_table1(
    sizes: Optional[Sequence[int]] = None,
    universe_size: int = KGE_LARGE,
) -> ExperimentReport:
    """Reproduce Table I: Scala- vs Python-operator KGE times."""
    report = ExperimentReport(
        "table1",
        "KGE execution time: Scala-based vs Python-based join operators",
        x_label="products",
    )
    for size in sizes or kge_paper_scales():
        dataset = cached_kge_dataset(size, universe_size)
        paper = TABLE1_LANGUAGE.get(size, {})
        scala = run_kge_workflow(
            fresh_cluster(), dataset, num_processing_ops=3, join_language="scala"
        )
        report.add("scala-operators", size, scala.elapsed_s, paper=paper.get("scala"))
        python = run_kge_workflow(
            fresh_cluster(), dataset, num_processing_ops=3, join_language="python"
        )
        report.add(
            "python-operators", size, python.elapsed_s, paper=paper.get("python")
        )
    report.notes.append(
        "expected shape: Scala faster at the small scale; the advantage "
        "collapses to ~1% at the large scale (fixed table-install saving "
        "amortized; cross-language per-tuple bridge grows)"
    )
    return report
