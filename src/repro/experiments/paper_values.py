"""Every number the paper's evaluation section reports, as data.

Sources (all from the ICDE 2024 paper):

* Section IV-C "Experiment #1: Modularity" — Fig 12a (lines of code)
  and Fig 12b (KGE time vs number of operators);
* Section IV-D "Experiment #2: Language Efficiency" — Table I;
* Section IV-E "Experiment #3: Scaling Dataset Size" — Fig 13a-d;
* Section IV-F "Experiment #4: Number of workers" — Fig 14a-c.
"""

from __future__ import annotations

__all__ = [
    "FIG12A_LOC",
    "FIG12B_KGE_OPERATORS",
    "TABLE1_LANGUAGE",
    "FIG13_SCALING",
    "FIG14_WORKERS",
]

#: Fig 12a — lines of code per task and paradigm.
FIG12A_LOC = {
    "dice": {"script": 377, "workflow": 215},
    "wef": {"script": 68, "workflow": 62},
    "gotta": {"script": 120, "workflow": 105},
    "kge": {"script": 128, "workflow": 134},
}

#: Fig 12b — KGE execution time (s) vs number of workflow operators,
#: 6.8k products, 1 worker.  The paper quotes 1, 5 and 6 operators.
FIG12B_KGE_OPERATORS = {1: 138.97, 5: 114.05, 6: 115.143}

#: Table I — KGE execution times (s): Scala vs Python join operators.
TABLE1_LANGUAGE = {
    6800: {"scala": 98.67, "python": 126.28},
    68000: {"scala": 1159.82, "python": 1170.57},
}

#: Fig 13 — execution time (s) as the dataset size increases.
FIG13_SCALING = {
    "dice": {  # x = file pairs
        "script": {10: 14.71, 200: 239.54},
        "workflow": {10: 10.73, 200: 107.83},
    },
    "wef": {  # x = tweets
        "script": {200: 1285.82, 300: 1922.86, 400: 2587.94},
        "workflow": {200: 1264.93, 300: 1896.01, 400: 2525.96},
    },
    "kge": {  # x = products
        "script": {6800: 90.69, 68000: 975.46},
        "workflow": {6800: 135.85, 68000: 1350.50},
    },
    "gotta": {  # x = paragraphs
        "script": {1: 163.22, 4: 463.96, 16: 1389.93},
        "workflow": {1: 64.14, 4: 149.45, 16: 460.13},
    },
}

#: Fig 14 — execution time (s) as the number of workers increases.
#: (WEF is excluded by the paper: it would become distributed training.)
FIG14_WORKERS = {
    "dice": {  # 200 file pairs
        "script": {1: 239.54, 2: 148.04, 4: 85.65},
        "workflow": {1: 107.82, 2: 87.13, 4: 57.21},
    },
    "gotta": {  # 4 paragraphs
        "script": {1: 463.96, 2: 234.68, 4: 139.66},
        "workflow": {1: 149.45, 2: 104.16, 4: 83.37},
    },
    "kge": {  # 68k products
        "script": {1: 975.46, 2: 459.46, 4: 273.89},
        "workflow": {1: 1350.50, 2: 618.39, 4: 383.58},
    },
}
