"""Elasticity experiment (E10): autoscaling cost vs latency.

The paper's scaling studies (Figs. 13/14) hold the cluster fixed at
1-4 workers; this extension asks the operations question that a static
sweep cannot: over a bursty day, what does elasticity buy?

The traffic is E9's asymmetric shape with an asymmetric horizon — the
heavy tenant floods 4-vCPU jobs for a short burst while the light
tenant trickles small jobs for far longer (the burst-then-tail profile
of real shared clusters).  The *same* merged arrival list replays
twice:

* **static-4** — the paper's 4-worker testbed, membership fixed;
* **elastic** — a 1-worker cluster with an :class:`repro.elastic.
  Autoscaler` (bounds ``min..max``), which provisions workers through
  the burst and drains them back down through the tail.

Both runs must complete every job.  The elastic run must beat static-4
on **node-seconds** (machines are only billed while joined — the tail
runs on one node instead of four) at **equal-or-better p99 queue
latency** (the burst gets more than four workers).  The experiment
asserts both; ``benchmarks/bench_elastic.py`` records them in
``BENCH_elastic.json``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster import build_cluster
from repro.config import ElasticConfig, JobsConfig, default_config
from repro.errors import ExperimentError
from repro.experiments.exp_fairshare import _streams
from repro.jobs import JobService
from repro.metrics import ExperimentReport
from repro.sim import Environment

__all__ = ["run_elasticity", "run_scenarios", "ELASTIC_POLICY"]

#: The autoscaler policy under test: aggressive enough to absorb the
#: flood (2 nodes per decision, short cooldown), eager enough on the
#: way down to release the fleet during the trickle tail.
ELASTIC_POLICY = ElasticConfig(
    enabled=True,
    min_nodes=1,
    max_nodes=8,
    interval_s=0.5,
    provision_s=2.0,
    up_queue_per_node=3.0,
    idle_s=1.0,
    cooldown_s=1.0,
    step=2,
)


def _make_cluster(num_workers: int):
    base = default_config()
    config = replace(base, topology=replace(base.topology, num_workers=num_workers))
    return build_cluster(Environment(), config=config)


def run_scenarios(
    flood_s: float,
    tail_s: float,
    heavy_rate: float,
    light_rate: float,
    policy: ElasticConfig = ELASTIC_POLICY,
):
    """Replay the burst-then-tail arrivals on static-4 and elastic.

    Returns ``{"static-4": summary, "elastic": summary}`` — shared by
    the experiment report and ``benchmarks/bench_elastic.py``.
    """
    arrivals = _streams(
        flood_s, heavy_rate, light_rate, light_horizon_s=tail_s
    )
    outcomes = {}
    static = JobService(JobsConfig(enabled=True), cluster=_make_cluster(4))
    outcomes["static-4"] = static.simulate(arrivals=list(arrivals))
    if not static.queue.drained:
        raise ExperimentError("static-4: queue did not drain")
    elastic = JobService(
        JobsConfig(enabled=True),
        cluster=_make_cluster(policy.min_nodes),
        elastic=policy,
    )
    outcomes["elastic"] = elastic.simulate(arrivals=list(arrivals))
    if not elastic.queue.drained:
        raise ExperimentError("elastic: queue did not drain")
    return outcomes


def run_elasticity(
    flood_s: float = 12.0,
    tail_s: float = 60.0,
    heavy_rate: float = 18.0,
    light_rate: float = 2.0,
) -> ExperimentReport:
    """Node-seconds vs p99 queue latency, static-4 vs autoscaled."""
    report = ExperimentReport(
        "elasticity",
        "autoscaling (repro.elastic): cost vs latency when a flood "
        f"({heavy_rate:g}/s for {flood_s:g}s, 4 vCPU jobs) precedes a "
        f"trickle tail ({light_rate:g}/s for {tail_s:g}s)",
        x_label="cluster",
    )
    outcomes = run_scenarios(flood_s, tail_s, heavy_rate, light_rate)
    for label, summary in outcomes.items():
        report.add("node-seconds", label, summary["node_seconds"], unit="s")
        report.add("p99-queue", label, summary["p99_queue_s"] or 0.0, unit="s")
        report.add(
            "completed", label, summary["counts"]["completed"], unit="jobs"
        )
    static, elastic = outcomes["static-4"], outcomes["elastic"]
    if static["counts"]["completed"] != elastic["counts"]["completed"]:
        raise ExperimentError(
            "elasticity changed the number of completed jobs — membership "
            "must only change where and when work runs"
        )
    if elastic["node_seconds"] >= static["node_seconds"]:
        raise ExperimentError(
            "the autoscaled run cost at least as many node-seconds as the "
            f"static cluster ({elastic['node_seconds']:.1f} vs "
            f"{static['node_seconds']:.1f})"
        )
    static_p99 = static["p99_queue_s"] or 0.0
    elastic_p99 = elastic["p99_queue_s"] or 0.0
    if elastic_p99 > static_p99:
        raise ExperimentError(
            "the autoscaled run queued longer at p99 than the static "
            f"cluster ({elastic_p99:.3f}s vs {static_p99:.3f}s)"
        )
    es = elastic["elastic"]
    report.notes.append(
        f"node-seconds: static {static['node_seconds']:.1f} -> elastic "
        f"{elastic['node_seconds']:.1f}; p99 queue: {static_p99:.3f}s -> "
        f"{elastic_p99:.3f}s; completed jobs identical "
        f"({elastic['counts']['completed']})"
    )
    report.notes.append(
        f"autoscaler: {es['scale_ups']} scale-ups, {es['scale_downs']} "
        f"scale-downs, peak {es['peak_nodes']} workers, final "
        f"{es['final_nodes']} (bounds {ELASTIC_POLICY.min_nodes}.."
        f"{ELASTIC_POLICY.max_nodes}, provision "
        f"{ELASTIC_POLICY.provision_s:g}s)"
    )
    return report
