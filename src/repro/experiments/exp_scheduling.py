"""Scheduling experiment: placement-policy comparison per paradigm.

The paper tunes parallelism through one knob per paradigm (Ray's
``num_cpus``, Texera's worker count) and leaves placement to each
system's default.  With placement extracted into :mod:`repro.sched`,
this experiment asks the follow-up question: for the two model-heavy
tasks (KGE's 375 MB and GOTTA's 1.59 GB model, Section IV-E), how much
of each paradigm's time is *placement-sensitive*?

Every registered policy runs the same four configurations — KGE and
GOTTA, script and workflow, four-way parallel — and the report lists
elapsed virtual time per policy side by side.  Placement affects only
where work runs, never what it computes, so every policy's output is
checked against the default policy's; a mismatch fails the experiment.

Expected shape: ``locality`` undercuts ``round_robin`` on the script
runs (tasks follow the model replica instead of pulling a copy to
every node), while workflow runs move far less because operator state
stays put once deployed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.datasets import generate_fsqa
from repro.errors import ExperimentError
from repro.experiments.harness import cached_kge_dataset
from repro.metrics import ExperimentReport
from repro.sched import POLICIES, scheduling
from repro.tasks import fresh_cluster
from repro.tasks.base import TaskRun
from repro.tasks.gotta import run_gotta_script, run_gotta_workflow
from repro.tasks.kge import run_kge_script, run_kge_workflow

__all__ = ["run_scheduling"]


def _output_rows(run: TaskRun) -> List[Tuple]:
    return sorted(tuple(row.values) for row in run.output.rows)


def run_scheduling(
    num_candidates: int = 6800,
    universe_size: int = 68000,
    num_paragraphs: int = 4,
    policies: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    """Elapsed time per placement policy, KGE + GOTTA, both paradigms.

    ``policies`` defaults to the full catalogue; the first one listed
    provides the reference output the others are checked against.
    """
    policies = list(policies or POLICIES)
    report = ExperimentReport(
        "scheduling",
        "placement-policy comparison (repro.sched): elapsed virtual "
        f"seconds on KGE ({num_candidates} candidates) and GOTTA "
        f"({num_paragraphs} paragraphs), 4-way parallel",
        x_label="policy",
    )
    dataset = cached_kge_dataset(num_candidates, universe_size=universe_size)
    paragraphs = generate_fsqa(num_paragraphs=num_paragraphs, seed=17)

    cases = [
        (
            "kge/script",
            lambda: run_kge_script(fresh_cluster(), dataset, num_cpus=4),
        ),
        (
            "kge/workflow",
            lambda: run_kge_workflow(fresh_cluster(), dataset, num_workers=4),
        ),
        (
            "gotta/script",
            lambda: run_gotta_script(fresh_cluster(), paragraphs, num_cpus=4),
        ),
        (
            "gotta/workflow",
            lambda: run_gotta_workflow(fresh_cluster(), paragraphs, num_workers=4),
        ),
    ]
    for series, run_fn in cases:
        reference = None
        timings = {}
        for policy in policies:
            with scheduling(policy):
                run = run_fn()
            rows = _output_rows(run)
            if reference is None:
                reference = rows
            elif rows != reference:
                raise ExperimentError(
                    f"{series}: policy {policy!r} changed the task output — "
                    "placement must affect timing only"
                )
            timings[policy] = run.elapsed_s
            report.add(series, policy, run.elapsed_s)
        fastest = min(timings, key=timings.get)
        report.notes.append(
            f"{series}: outputs identical across {len(policies)} policies; "
            f"fastest {fastest} ({timings[fastest]:.2f}s vs "
            f"round_robin {timings.get('round_robin', timings[fastest]):.2f}s)"
        )
    return report
