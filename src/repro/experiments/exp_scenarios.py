"""Generated-workload scenarios: the paradigm gap per task family.

The paper measures four hand-written tasks; this extension asks how
the script-vs-workflow gap behaves on *generated* workloads whose
shapes the paper tasks don't reach: a streaming micro-batch variant
(``stream``), a Snakemake-style deep chain of >=30 tiny operators
(``smallsteps``) and a raster-tiling job hauling large pixel blobs
(``raster``).  Each family is a ``repro/workflow-spec@1`` document
from :mod:`repro.gen.families`, compiled to both paradigms from the
same bytes.

For every family the experiment runs both paradigms, asserts the
collected row multisets are identical (the correctness contract the
property suites enforce) and reports the two virtual elapsed times
plus their ratio.  The interesting structure is *where* the gap comes
from: at these scales the pipelined engine pays its larger startup
(4.5s + per-operator deploys vs the script runtime's 2s), so the
script paradigm wins overall — but the engine's compute phase overlaps
micro-batch arrival gaps that the script plan serializes, which is why
``stream``'s gap narrows as scale grows.  A handful of random DAGs
from :func:`repro.gen.generator.random_spec` ride along as a validity
canary: every seed must produce identical rows too.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ExperimentError
from repro.metrics import ExperimentReport

__all__ = ["run_scenarios"]


def run_scenarios(
    scale: float = 1.0, seeds: Sequence[int] = (0, 1, 2)
) -> ExperimentReport:
    """Per-family paradigm gap on generated workloads (E11)."""
    # Local import keeps repro.gen dormant for every other experiment.
    from repro.gen import FAMILIES, run_family

    report = ExperimentReport(
        "scenarios",
        "generated workloads (repro.gen): virtual elapsed per paradigm "
        f"across the three task families (scale {scale:g})",
        x_label="family",
    )
    for family in FAMILIES:
        runs = {
            paradigm: run_family(family, seed=0, scale=scale, paradigm=paradigm)
            for paradigm in ("workflow", "script")
        }
        if runs["workflow"].rows != runs["script"].rows:
            raise ExperimentError(
                f"{family}: paradigms disagree on the result rows "
                f"({len(runs['workflow'].rows)} workflow vs "
                f"{len(runs['script'].rows)} script)"
            )
        for paradigm, run in runs.items():
            report.add(paradigm, family, run.elapsed_s)
        gap = runs["workflow"].elapsed_s / runs["script"].elapsed_s
        report.add("workflow/script ratio", family, gap, unit="x")
        report.notes.append(
            f"{family}: {len(runs['workflow'].rows)} rows identical across "
            f"paradigms; gap {gap:.2f}x"
        )
    report.notes.append(
        "the workflow paradigm pays a larger fixed start (engine startup "
        "+ per-operator deploys) at these scales; the gap narrows as "
        "data volume amortizes it"
    )
    report.notes.append(_random_canary(seeds))
    return report


def _random_canary(seeds: Sequence[int]) -> str:
    """Run a few random DAGs through both paradigms; all must agree."""
    from repro.cluster import build_cluster
    from repro.gen import random_spec
    from repro.rayx.compile import compile_script_plan
    from repro.sim import Environment
    from repro.workflow import run_workflow
    from repro.workflow.spec import WorkflowSpec, build_workflow

    import repro.gen.operators  # noqa: F401  (registers custom types)

    def multiset(table) -> Tuple[Tuple[str, ...], ...]:
        return tuple(sorted(tuple(map(str, row.values)) for row in table))

    for seed in seeds:
        spec = WorkflowSpec.from_json(random_spec(seed))
        result = run_workflow(build_cluster(Environment()), build_workflow(spec))
        tables = compile_script_plan(build_workflow(spec)).run(
            cluster=build_cluster(Environment())
        )
        for sink_id, table in tables.items():
            if multiset(result.results[sink_id]) != multiset(table):
                raise ExperimentError(
                    f"random spec seed={seed}: paradigms disagree at "
                    f"sink {sink_id!r}"
                )
    return (
        f"random-DAG canary: {len(list(seeds))} seeded specs produced "
        "identical row multisets under both paradigms"
    )
