"""Extension experiments beyond the paper's evaluation.

Three follow-ups the paper's setup makes natural but does not run:

* :func:`run_wef_workers_extension` — the Figure 14 panel the paper
  excluded: WEF under 1/2/4 workers, using synchronous data-parallel
  training with model averaging (see
  :mod:`repro.tasks.wef.distributed`);
* :func:`run_dice_extended_scaling` — DICE beyond the paper's largest
  corpus (the real MACCROBAT has 200 documents; we extrapolate to
  synthetic 400/800-pair corpora);
* :func:`run_kge_small_scale_workers` — Figure 14c at the *small* KGE
  scale, where fixed costs dominate and the paper's script-wins
  ordering inverts as workers increase.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets import generate_maccrobat, generate_wildfire_tweets
from repro.experiments.harness import cached_kge_dataset
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.dice import run_dice_script, run_dice_workflow
from repro.tasks.kge import run_kge_script, run_kge_workflow
from repro.tasks.wef.distributed import run_wef_distributed
from repro.tasks.wef.script import run_wef_script

__all__ = [
    "run_wef_workers_extension",
    "run_dice_extended_scaling",
    "run_kge_small_scale_workers",
]


def run_wef_workers_extension(
    workers: Optional[Sequence[int]] = None, num_tweets: int = 200
) -> ExperimentReport:
    """The excluded Figure 14 panel: WEF with distributed training."""
    report = ExperimentReport(
        "ext-wef-workers",
        f"WEF distributed training vs #workers ({num_tweets} tweets)",
        x_label="workers",
    )
    tweets = generate_wildfire_tweets(num_tweets, seed=11)
    sequential = run_wef_script(fresh_cluster(), tweets)
    report.add("sequential (paper's setting)", 1, sequential.elapsed_s)
    for count in workers or (1, 2, 4):
        distributed = run_wef_distributed(fresh_cluster(), tweets, num_cpus=count)
        report.add("distributed model-averaging", count, distributed.elapsed_s)
    report.notes.append(
        "the paper excluded this panel because WEF 'becomes a distributed "
        "training task'; with per-epoch model averaging it parallelizes "
        "near-linearly"
    )
    return report


def run_dice_extended_scaling(
    sizes: Optional[Sequence[int]] = None,
) -> ExperimentReport:
    """DICE past the real corpus size: does the gap keep widening?"""
    report = ExperimentReport(
        "ext-dice-scaling",
        "DICE execution time beyond the paper's 200-pair corpus",
        x_label="file pairs",
    )
    for size in sizes or (200, 400, 800):
        reports = generate_maccrobat(num_docs=size, seed=7)
        script = run_dice_script(fresh_cluster(), reports)
        report.add("script", size, script.elapsed_s)
        workflow = run_dice_workflow(fresh_cluster(), reports)
        report.add("workflow", size, workflow.elapsed_s)
    report.notes.append(
        "both curves stay linear, so the paradigms' ratio converges to the "
        "ratio of their marginal costs (~2.2x)"
    )
    return report


def run_kge_small_scale_workers(
    workers: Optional[Sequence[int]] = None,
    num_candidates: int = 6800,
    universe_size: int = 68000,
) -> ExperimentReport:
    """Fig 14c's missing companion: worker scaling at the 6.8k scale."""
    report = ExperimentReport(
        "ext-kge-small-workers",
        f"KGE vs #workers at the small scale ({num_candidates} products)",
        x_label="workers",
    )
    dataset = cached_kge_dataset(num_candidates, universe_size)
    for count in workers or (1, 2, 4):
        script = run_kge_script(fresh_cluster(), dataset, num_cpus=count)
        report.add("script", count, script.elapsed_s)
        workflow = run_kge_workflow(fresh_cluster(), dataset, num_workers=count)
        report.add("workflow", count, workflow.elapsed_s)
    report.notes.append(
        "the workflow's fixed table-install does not parallelize, so its "
        "relative deficit grows as workers shrink the per-tuple work"
    )
    return report
