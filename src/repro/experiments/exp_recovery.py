"""Recovery experiment: fault-injection cost per paradigm.

The paper compares how the two paradigms *report* failures (Section
III-A: cell-level stack traces versus operator-level messages in the
GUI); this experiment extends the comparison to how each paradigm
*recovers*.  The same seeded :class:`repro.faults.FaultSchedule` kinds
are applied to both engines running the same task:

* the script runtime answers with task retry + exponential backoff,
  replica failover and lineage reconstruction (Ray's mechanisms);
* the workflow engine answers with per-operator checkpoint/restart at
  epoch (batch) boundaries (Texera/Flink-style).

Each task runs clean and fault-injected; the faulted output is checked
against the clean output (recovery must not corrupt results), and the
report shows clean time, faulted time and the recovery overhead.  All
times are virtual and, for a fixed seed, bit-reproducible.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.datasets import generate_fsqa, generate_maccrobat
from repro.errors import FaultError
from repro.faults import FaultSchedule, faults_injected
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.base import TaskRun
from repro.tasks.dice import run_dice_script, run_dice_workflow
from repro.tasks.gotta import run_gotta_script, run_gotta_workflow

__all__ = ["run_recovery"]


def _output_rows(run: TaskRun) -> List[Tuple]:
    return sorted(tuple(row.values) for row in run.output.rows)


def run_recovery(
    num_docs: int = 120, num_paragraphs: int = 4, seed: int = 11
) -> ExperimentReport:
    """Recovery cost, script vs workflow, on DICE and GOTTA.

    The schedule horizon is scaled to each clean run's elapsed time so
    faults land while the run is actually in flight.  Script runs face
    task crashes, a node outage, link degradation and replica loss;
    workflow runs face operator crashes and link degradation (the
    engine pins instances, so node outages are a script-side concern —
    see ``docs/fault_tolerance.md``).
    """
    report = ExperimentReport(
        "recovery",
        f"recovery cost under injected faults (seed={seed}, "
        f"{num_docs} file pairs / {num_paragraphs} paragraphs)",
        x_label="task",
    )
    reports = generate_maccrobat(num_docs=num_docs, seed=7)
    paragraphs = generate_fsqa(num_paragraphs=num_paragraphs, seed=17)

    cases = [
        (
            "dice",
            "script",
            lambda: run_dice_script(fresh_cluster(), reports, num_cpus=4),
            dict(tasks=2, nodes=1, links=1, replicas=1),
        ),
        (
            "dice",
            "workflow",
            lambda: run_dice_workflow(fresh_cluster(), reports),
            dict(operators=3, links=1),
        ),
        (
            "gotta",
            "script",
            lambda: run_gotta_script(fresh_cluster(), paragraphs, num_cpus=4),
            dict(tasks=1, nodes=1, replicas=2),
        ),
        (
            "gotta",
            "workflow",
            lambda: run_gotta_workflow(fresh_cluster(), paragraphs),
            dict(operators=2, links=1),
        ),
    ]
    for task, paradigm, run_fn, kinds in cases:
        # One clean run doubles as the horizon probe (faults must land
        # while the run is in flight) and the baseline measurement.
        probe = run_fn()
        schedule = FaultSchedule.generate(
            seed=seed,
            horizon_s=probe.elapsed_s * 0.8,
            note=f"{task}/{paradigm}",
            **kinds,
        )
        with faults_injected(schedule) as injector:
            faulted = run_fn()
        if _output_rows(faulted) != _output_rows(probe):
            raise FaultError(
                f"{task}/{paradigm}: fault-injected run produced different "
                "output than the clean run — recovery corrupted the result"
            )
        report.add(f"{paradigm}-clean", task, probe.elapsed_s)
        report.add(f"{paradigm}-faulted", task, faulted.elapsed_s)
        report.add(
            f"{paradigm}-overhead", task, faulted.elapsed_s - probe.elapsed_s
        )
        report.notes.append(
            f"{task}/{paradigm}: {injector.injected} faults injected, "
            f"{injector.retries} recovery actions, {injector.skipped} "
            "skipped; output identical to clean run"
        )
    return report
