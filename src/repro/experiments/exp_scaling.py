"""Experiment #3 (paper Section IV-E): scaling the dataset size.

Reproduces Figure 13's four panels — DICE (a), WEF (b), KGE (c) and
GOTTA (d) — each comparing the script and workflow paradigms as the
input grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets import generate_fsqa, generate_maccrobat, generate_wildfire_tweets
from repro.experiments.harness import KGE_LARGE, cached_kge_dataset, kge_paper_scales
from repro.experiments.paper_values import FIG13_SCALING
from repro.metrics import ExperimentReport
from repro.tasks import fresh_cluster
from repro.tasks.dice import run_dice_script, run_dice_workflow
from repro.tasks.gotta import run_gotta_script, run_gotta_workflow
from repro.tasks.kge import run_kge_script, run_kge_workflow
from repro.tasks.wef import run_wef_script, run_wef_workflow

__all__ = ["run_fig13a", "run_fig13b", "run_fig13c", "run_fig13d"]


def run_fig13a(sizes: Optional[Sequence[int]] = None) -> ExperimentReport:
    """DICE: 10-200 file pairs."""
    report = ExperimentReport(
        "fig13a", "DICE execution time vs dataset size", x_label="file pairs"
    )
    paper = FIG13_SCALING["dice"]
    for size in sizes or (10, 50, 100, 200):
        reports = generate_maccrobat(num_docs=size, seed=7)
        script = run_dice_script(fresh_cluster(), reports)
        report.add("script", size, script.elapsed_s, paper["script"].get(size))
        workflow = run_dice_workflow(fresh_cluster(), reports)
        report.add("workflow", size, workflow.elapsed_s, paper["workflow"].get(size))
    return report


def run_fig13b(sizes: Optional[Sequence[int]] = None) -> ExperimentReport:
    """WEF: 200-400 labeled tweets."""
    report = ExperimentReport(
        "fig13b", "WEF execution time vs dataset size", x_label="tweets"
    )
    paper = FIG13_SCALING["wef"]
    sizes = tuple(sizes or (200, 300, 400))
    tweets = generate_wildfire_tweets(max(sizes), seed=11)
    for size in sizes:
        subset = tweets[:size]
        script = run_wef_script(fresh_cluster(), subset)
        report.add("script", size, script.elapsed_s, paper["script"].get(size))
        workflow = run_wef_workflow(fresh_cluster(), subset)
        report.add("workflow", size, workflow.elapsed_s, paper["workflow"].get(size))
    return report


def run_fig13c(
    sizes: Optional[Sequence[int]] = None, universe_size: int = KGE_LARGE
) -> ExperimentReport:
    """KGE: 6.8k and 68k candidate products."""
    report = ExperimentReport(
        "fig13c", "KGE execution time vs dataset size", x_label="products"
    )
    paper = FIG13_SCALING["kge"]
    for size in sizes or kge_paper_scales():
        dataset = cached_kge_dataset(size, universe_size)
        script = run_kge_script(fresh_cluster(), dataset)
        report.add("script", size, script.elapsed_s, paper["script"].get(size))
        workflow = run_kge_workflow(fresh_cluster(), dataset)
        report.add("workflow", size, workflow.elapsed_s, paper["workflow"].get(size))
    return report


def run_fig13d(sizes: Optional[Sequence[int]] = None) -> ExperimentReport:
    """GOTTA: 1, 4 and 16 paragraphs."""
    report = ExperimentReport(
        "fig13d", "GOTTA execution time vs dataset size", x_label="paragraphs"
    )
    paper = FIG13_SCALING["gotta"]
    sizes = tuple(sizes or (1, 4, 16))
    paragraphs = generate_fsqa(num_paragraphs=max(sizes), seed=17)
    for size in sizes:
        subset = paragraphs[:size]
        script = run_gotta_script(fresh_cluster(), subset)
        report.add("script", size, script.elapsed_s, paper["script"].get(size))
        workflow = run_gotta_workflow(fresh_cluster(), subset)
        report.add("workflow", size, workflow.elapsed_s, paper["workflow"].get(size))
    return report
