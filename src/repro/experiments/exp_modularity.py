"""Experiment #1 (paper Section IV-C): modularity.

* Figure 12a — lines of code of each task implementation under each
  paradigm.  Measured over this repository's own ``script.py`` /
  ``workflow.py`` modules; the paper's counts (of their Jupyter and
  Texera implementations) ride along for comparison.
* Figure 12b — KGE execution time against the number of workflow
  operators the pipeline is split into (1-6), with the script time as
  the reference line.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import KGE_LARGE, KGE_SMALL, cached_kge_dataset
from repro.experiments.paper_values import FIG12A_LOC, FIG12B_KGE_OPERATORS
from repro.metrics import ExperimentReport, count_module_loc
from repro.tasks import fresh_cluster
from repro.tasks.kge.script import run_kge_script
from repro.tasks.kge.workflow import STAGE_FUSIONS, run_kge_workflow

__all__ = ["run_fig12a", "run_fig12b"]

_TASKS = ("dice", "wef", "gotta", "kge")


def _implementation_loc(task: str, paradigm_module: str) -> int:
    """LoC of one implementation: its module plus the shared task logic."""
    return count_module_loc(f"repro.tasks.{task}.{paradigm_module}") + count_module_loc(
        f"repro.tasks.{task}.common"
    )


def run_fig12a() -> ExperimentReport:
    """Reproduce Figure 12a: total lines of code per implementation.

    Each implementation is counted as its paradigm module plus the
    task's shared ``common.py`` (the task logic both paradigms wire
    up).  Note the DICE workflow also ships the relational ablation
    variant in the same module, which inflates its count relative to
    the paper's single Texera implementation.
    """
    report = ExperimentReport(
        "fig12a",
        "Lines of code per task implementation",
        x_label="task",
    )
    for task in _TASKS:
        report.add(
            "script",
            task,
            _implementation_loc(task, "script"),
            paper=FIG12A_LOC[task]["script"],
            unit="loc",
        )
        report.add(
            "workflow",
            task,
            _implementation_loc(task, "workflow"),
            paper=FIG12A_LOC[task]["workflow"],
            unit="loc",
        )
    report.notes.append(
        "measured = logical lines of this repository's implementations "
        "(paradigm module + shared common.py); paper = the authors' "
        "Jupyter/Texera implementations"
    )
    return report


def run_fig12b(
    num_candidates: int = KGE_SMALL,
    universe_size: int = KGE_LARGE,
    operator_counts: Optional[Sequence[int]] = None,
) -> ExperimentReport:
    """Reproduce Figure 12b: KGE time vs number of operators."""
    report = ExperimentReport(
        "fig12b",
        f"KGE execution time vs #operators ({num_candidates} products, 1 worker)",
        x_label="#operators",
    )
    dataset = cached_kge_dataset(num_candidates, universe_size)
    for count in operator_counts or sorted(STAGE_FUSIONS):
        run = run_kge_workflow(fresh_cluster(), dataset, num_processing_ops=count)
        report.add(
            "workflow",
            count,
            run.elapsed_s,
            paper=FIG12B_KGE_OPERATORS.get(count),
        )
    script = run_kge_script(fresh_cluster(), dataset)
    report.add("script (reference)", "-", script.elapsed_s, paper=90.69)
    return report
