"""Fair-share experiment: FIFO vs DRF admission under asymmetric load.

The paper studies one user at a time; this extension asks the service
question: when a heavy tenant floods the shared cluster while a light
tenant trickles jobs in, what does admission ordering do to the light
tenant's queueing latency?

Two independently seeded open-loop streams (a flood and a trickle, see
:class:`repro.jobs.TrafficGenerator`) are merged into one arrival
sequence and replayed — identically — through a
:class:`repro.jobs.JobService` once per admission policy.  Under
``fifo`` the flood's backlog stands in front of every trickle job;
under ``drf`` the light tenant's near-zero dominant share moves its
jobs to the head of the queue each time capacity frees up, so its p99
queueing latency collapses while the flood (whose jobs dominate the
cluster either way) barely moves — the classic fairness-at-no-cost
result of dominant-resource fairness.

The report lists, per policy: per-tenant p99 queue latency, overall
throughput, and makespan.  Throughput and makespan must be identical
across policies (admission ordering shuffles *who waits*, not the
total work), which the experiment asserts.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import GIB, JobsConfig
from repro.errors import ExperimentError
from repro.jobs import JobService, TrafficGenerator, merge_arrivals
from repro.metrics import ExperimentReport

__all__ = ["run_fairshare"]

#: Tenants of the asymmetric workload.
HEAVY = "team-heavy/flood"
LIGHT = "team-light/trickle"


def _streams(
    horizon_s: float,
    heavy_rate: float,
    light_rate: float,
    light_horizon_s: float = None,
):
    """Two seeded per-tenant streams, merged into one arrival list.

    ``light_horizon_s`` lets the trickle outlive the flood — the
    burst-then-tail shape the elasticity experiment (E10) replays.
    """
    heavy = TrafficGenerator(
        JobsConfig(
            seed=11,
            rate_per_s=heavy_rate,
            horizon_s=horizon_s,
            tenants=1,
            cpus=4,
            ram_bytes=2 * GIB,
            duration_s=1.5,
        )
    ).arrivals()
    light = TrafficGenerator(
        JobsConfig(
            seed=23,
            rate_per_s=light_rate,
            horizon_s=(
                light_horizon_s if light_horizon_s is not None else horizon_s
            ),
            tenants=1,
            cpus=1,
            ram_bytes=1 * GIB,
            duration_s=0.3,
        )
    ).arrivals()
    # The generators both draw "tenant-0"; rebrand per stream so the
    # fair-share ledger sees two hierarchical tenants.
    heavy = [replace(a, spec=replace(a.spec, tenant=HEAVY)) for a in heavy]
    light = [replace(a, spec=replace(a.spec, tenant=LIGHT)) for a in light]
    return merge_arrivals(heavy, light)


def run_fairshare(
    horizon_s: float = 30.0,
    heavy_rate: float = 18.0,
    light_rate: float = 2.0,
) -> ExperimentReport:
    """Per-tenant p99 queue latency, FIFO vs DRF, same arrivals."""
    report = ExperimentReport(
        "fairshare",
        "multi-tenant admission (repro.jobs): p99 queue latency when a "
        f"flood ({heavy_rate:g}/s, 4 vCPU jobs) and a trickle "
        f"({light_rate:g}/s, 1 vCPU jobs) share the cluster",
        x_label="policy",
    )
    arrivals = _streams(horizon_s, heavy_rate, light_rate)
    outcomes = {}
    for policy in ("fifo", "drf"):
        service = JobService(JobsConfig(enabled=True, policy=policy))
        summary = service.simulate(arrivals=list(arrivals))
        if not service.queue.drained:
            raise ExperimentError(f"{policy}: queue did not drain")
        outcomes[policy] = summary
        for tenant in (HEAVY, LIGHT):
            stats = summary["tenants"][tenant]
            report.add(
                f"p99-queue/{tenant.split('/')[0]}",
                policy,
                stats["p99_queue_s"] or 0.0,
            )
        report.add(
            "jobs-per-s", policy, summary["virtual_jobs_per_s"], unit="jobs/s"
        )
    fifo, drf = outcomes["fifo"], outcomes["drf"]
    if fifo["counts"]["completed"] != drf["counts"]["completed"]:
        raise ExperimentError(
            "admission ordering changed the number of completed jobs — "
            "it must only shuffle who waits"
        )
    light_fifo = fifo["tenants"][LIGHT]["p99_queue_s"] or 0.0
    light_drf = drf["tenants"][LIGHT]["p99_queue_s"] or 0.0
    if light_drf > light_fifo:
        raise ExperimentError(
            "DRF made the light tenant wait longer than FIFO did "
            f"({light_drf:.3f}s vs {light_fifo:.3f}s)"
        )
    report.notes.append(
        f"light tenant p99 queue: fifo {light_fifo:.3f}s -> drf "
        f"{light_drf:.3f}s; completed jobs identical "
        f"({drf['counts']['completed']}) — ordering shuffles who waits, "
        "not the total work"
    )
    report.notes.append(
        f"heavy tenant p99 queue: fifo "
        f"{(fifo['tenants'][HEAVY]['p99_queue_s'] or 0.0):.3f}s -> drf "
        f"{(drf['tenants'][HEAVY]['p99_queue_s'] or 0.0):.3f}s"
    )
    return report
