"""Shared plumbing for the experiment reproductions."""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.tasks.kge.common import KgeDataset, make_kge_dataset

__all__ = ["cached_kge_dataset", "kge_paper_scales"]

#: The paper's two KGE candidate-set sizes.
KGE_SMALL = 6800
KGE_LARGE = 68000


@lru_cache(maxsize=4)
def cached_kge_dataset(
    num_candidates: int, universe_size: int = KGE_LARGE
) -> KgeDataset:
    """Build (once) and reuse a KGE dataset.

    Runs never mutate the dataset, so sharing it across the modularity,
    language and scaling experiments is safe and saves the ~2 s
    universe+model construction per call.
    """
    return make_kge_dataset(num_candidates, universe_size=universe_size)


def kge_paper_scales() -> Tuple[int, int]:
    """(6.8k, 68k) — the paper's KGE dataset sizes."""
    return KGE_SMALL, KGE_LARGE
