"""Shared plumbing for the experiment reproductions."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Optional, Tuple

from repro.obs import Tracer, format_breakdown, tracing
from repro.tasks.kge.common import KgeDataset, make_kge_dataset

__all__ = [
    "cached_kge_dataset",
    "kge_paper_scales",
    "run_traced",
    "experiment_breakdown",
]

#: The paper's two KGE candidate-set sizes.
KGE_SMALL = 6800
KGE_LARGE = 68000


@lru_cache(maxsize=4)
def cached_kge_dataset(
    num_candidates: int, universe_size: int = KGE_LARGE
) -> KgeDataset:
    """Build (once) and reuse a KGE dataset.

    Runs never mutate the dataset, so sharing it across the modularity,
    language and scaling experiments is safe and saves the ~2 s
    universe+model construction per call.
    """
    return make_kge_dataset(num_candidates, universe_size=universe_size)


def kge_paper_scales() -> Tuple[int, int]:
    """(6.8k, 68k) — the paper's KGE dataset sizes."""
    return KGE_SMALL, KGE_LARGE


def run_traced(
    experiment_fn: Callable[[], "object"], tracer: Optional[Tracer] = None
) -> Tuple["object", Tracer]:
    """Run one experiment with an observability tracer installed.

    Every cluster the experiment builds records into the tracer as a
    separate labelled run (``gotta/script``, ``gotta/workflow``, ...),
    so the per-figure time breakdown splits each paradigm's virtual
    time by mechanism — e.g. Fig 13d's GOTTA script time into
    object-store put/get versus model compute.

    Returns ``(experiment_report, tracer)``.
    """
    with tracing(tracer) as active:
        report = experiment_fn()
    return report, active


def experiment_breakdown(tracer: Tracer) -> str:
    """The per-run time-breakdown text for a traced experiment."""
    return format_breakdown(tracer)
