"""Reproductions of every table and figure in the paper's evaluation.

==========  ==========================================  ======================
Experiment  Paper artifact                              Entry point
==========  ==========================================  ======================
E1a         Fig 12a (lines of code)                     :func:`run_fig12a`
E1b         Fig 12b (KGE time vs #operators)            :func:`run_fig12b`
E2          Table I (Scala vs Python operators)         :func:`run_table1`
E3a-d       Fig 13a-d (scaling dataset size)            :func:`run_fig13a` ...
E4a-c       Fig 14a-c (number of workers)               :func:`run_fig14a` ...
E5          Recovery under injected faults (extension)  :func:`run_recovery`
E6          Placement-policy comparison (extension)     :func:`run_scheduling`
E7          Memory pressure: spill vs die (extension)   :func:`run_memory`
E8          Result caching: cold vs warm (extension)    :func:`run_caching`
E9          Fair-share admission: FIFO vs DRF (ext.)    :func:`run_fairshare`
E10         Elastic autoscaling: cost vs latency (ext.) :func:`run_elasticity`
E11         Generated-workload scenarios (extension)    :func:`run_scenarios`
==========  ==========================================  ======================

Each returns an :class:`repro.metrics.ExperimentReport` holding the
measured values side by side with the paper's, rendered by
``report.to_text()``.
"""

from repro.experiments.exp_caching import run_caching
from repro.experiments.exp_elastic import run_elasticity
from repro.experiments.exp_fairshare import run_fairshare
from repro.experiments.exp_language import run_table1
from repro.experiments.exp_memory import run_memory
from repro.experiments.exp_modularity import run_fig12a, run_fig12b
from repro.experiments.exp_recovery import run_recovery
from repro.experiments.exp_scenarios import run_scenarios
from repro.experiments.exp_scheduling import run_scheduling
from repro.experiments.exp_scaling import (
    run_fig13a,
    run_fig13b,
    run_fig13c,
    run_fig13d,
)
from repro.experiments.exp_workers import run_fig14a, run_fig14b, run_fig14c

__all__ = [
    "run_table1",
    "run_fig12a",
    "run_fig12b",
    "run_fig13a",
    "run_fig13b",
    "run_fig13c",
    "run_fig13d",
    "run_fig14a",
    "run_fig14b",
    "run_fig14c",
    "run_recovery",
    "run_scheduling",
    "run_memory",
    "run_caching",
    "run_fairshare",
    "run_elasticity",
    "run_scenarios",
]

ALL_EXPERIMENTS = {
    "fig12a": run_fig12a,
    "fig12b": run_fig12b,
    "table1": run_table1,
    "fig13a": run_fig13a,
    "fig13b": run_fig13b,
    "fig13c": run_fig13c,
    "fig13d": run_fig13d,
    "fig14a": run_fig14a,
    "fig14b": run_fig14b,
    "fig14c": run_fig14c,
    "recovery": run_recovery,
    "scheduling": run_scheduling,
    "memory": run_memory,
    "caching": run_caching,
    "fairshare": run_fairshare,
    "elasticity": run_elasticity,
    "scenarios": run_scenarios,
}
