"""Seeded workload generation: random specs + generated task families.

ROADMAP's "scenario diversity" layer.  Everything here produces valid
``repro/workflow-spec@1`` documents (:mod:`repro.workflow.spec`), so a
generated workload is data, not code: it validates, optimizes, and
compiles to *both* paradigms like any hand-written spec.

* :mod:`generator` — the seeded random-DAG generator, parameterized by
  depth / fan-out / selectivity / language mix / data size
  (:class:`GenConfig`); the backbone of the property-based tests.
* :mod:`families` — three curated task families (``stream``,
  ``smallsteps``, ``raster``) exercising paradigm differences the four
  paper tasks don't reach.
* :mod:`operators` — the custom spec types the families reference
  (``micro_batch_source``, ``raster_source``); importing this package
  registers them.
* :mod:`spec` — the ``repro gen`` CLI grammar.

Dormant by default: nothing in the engines imports this package; it
only runs when explicitly invoked (CLI ``gen``, gen-named job bodies,
E11, the property suites).
"""

from repro.gen.families import (
    FAMILIES,
    FamilyRun,
    family_catalogue,
    family_spec,
    run_family,
)
from repro.gen.generator import CATEGORIES, GenConfig, generate_spec, random_spec
from repro.gen.spec import GenRequest, describe_gen, parse_gen_spec

__all__ = [
    "CATEGORIES",
    "FAMILIES",
    "FamilyRun",
    "GenConfig",
    "GenRequest",
    "describe_gen",
    "family_catalogue",
    "family_spec",
    "generate_spec",
    "parse_gen_spec",
    "random_spec",
    "run_family",
]
