"""Seeded random workflow-spec generator.

Produces *valid-by-construction* ``repro/workflow-spec@1`` documents:
every spec is self-contained (declarative configs only — no ``$param``
bindings), so it can be loaded, optimized, and executed under either
paradigm without any runtime context.

The generator is parameterized by a :class:`GenConfig`:

* ``depth`` bounds the number of intermediate stages;
* ``max_sources`` bounds the fan-in (parallel source branches);
* ``fan_out`` is the probability a step merges two branches instead of
  extending one (the DAG's bushiness);
* ``selectivity`` steers how much data filters let through, from
  aggressive pruning (0.0) to pass-almost-everything (1.0);
* ``rows`` bounds the records per source (data size);
* ``languages`` is the language mix drawn for eligible operators.

Determinism guarantees baked into the generation:

* The same :class:`GenConfig` always yields the same document, byte
  for byte — the seed-reproducibility contract (``docs/workloads.md``).
* Record ``id`` values are unique per source and per spec, so
  ``distinct`` keyed on ``id`` selects the same surviving rows
  regardless of arrival order.
* ``score`` values come from ``random.Random.random()`` — ties are
  vanishingly unlikely, so ``sort``/``top_k`` boundaries don't depend
  on arrival order either.
* Order-*sensitive* operators (``limit``, counter-based ``sample``)
  are deliberately absent from the palette: their output rows depend
  on tuple arrival order, which legitimately differs between the
  pipelined engine and the script plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import GenSpecError

__all__ = ["CATEGORIES", "GenConfig", "generate_spec", "random_spec"]

CATEGORIES = ["sign", "symptom", "disorder", "medication"]

#: Unary schema-preserving stages the generator draws from.
_STAGES = ("filter", "distinct", "sort", "top_k", "sample")


@dataclass(frozen=True)
class GenConfig:
    """Knobs of one generated workload (see module docstring)."""

    seed: int = 0
    depth: int = 4
    max_sources: int = 3
    fan_out: float = 0.35
    selectivity: float = 0.5
    rows: int = 12
    languages: Tuple[str, ...] = ("python", "python", "scala", "java")

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise GenSpecError(f"depth must be >= 1, got {self.depth}")
        if self.max_sources < 1:
            raise GenSpecError(
                f"max_sources must be >= 1, got {self.max_sources}"
            )
        if not 0.0 <= self.fan_out <= 1.0:
            raise GenSpecError(
                f"fan_out must be in [0, 1], got {self.fan_out}"
            )
        if not 0.0 <= self.selectivity <= 1.0:
            raise GenSpecError(
                f"selectivity must be in [0, 1], got {self.selectivity}"
            )
        if self.rows < 3:
            raise GenSpecError(f"rows must be >= 3, got {self.rows}")
        if not self.languages:
            raise GenSpecError("languages must name at least one language")


def _records(rng: random.Random, start_id: int, count: int) -> List[Dict[str, Any]]:
    return [
        {
            "id": f"r{start_id + i:04d}",
            "category": rng.choice(CATEGORIES),
            "score": round(rng.random(), 9),
            "count": rng.randint(0, 50),
        }
        for i in range(count)
    ]


def _language(rng: random.Random, config: GenConfig) -> str:
    return rng.choice(config.languages)


def _predicate(rng: random.Random, config: GenConfig) -> Dict[str, Any]:
    # ``selectivity`` slides every threshold toward keep-everything at
    # 1.0 and drop-nearly-everything at 0.0 (scores are uniform [0,1),
    # counts uniform [0,50]).
    keep = config.selectivity
    choice = rng.randrange(4)
    if choice == 0:
        bound = (1.0 - keep) * 1.2
        return {
            "op": "greater",
            "column": "score",
            "value": round(rng.uniform(0.0, min(bound, 1.0)), 3),
        }
    if choice == 1:
        low = max(1, int(10 * keep))
        high = max(low, int(50 * max(keep, 0.2)))
        return {"op": "less", "column": "count", "value": rng.randint(low, high)}
    if choice == 2:
        width = max(1, min(3, round(1 + keep * 2)))
        return {
            "op": "in",
            "column": "category",
            "values": rng.sample(CATEGORIES, rng.randint(1, width)),
        }
    return {
        "op": "not",
        "of": {"op": "equals", "column": "category", "value": rng.choice(CATEGORIES)},
    }


def _stage(rng: random.Random, op_id: str, config: GenConfig) -> Dict[str, Any]:
    kind = rng.choice(_STAGES)
    if kind == "filter":
        stage_config: Dict[str, Any] = {
            "predicate": {"$predicate": _predicate(rng, config)},
            "language": _language(rng, config),
            "num_workers": rng.randint(1, 2),
        }
    elif kind == "distinct":
        # Keyed on the unique id field: deterministic under any order.
        stage_config = {"key": "id", "num_workers": rng.randint(1, 2)}
    elif kind == "sort":
        stage_config = {"key": "score", "reverse": rng.random() < 0.5}
    elif kind == "top_k":
        k = max(1, round(12 * max(config.selectivity, 1 / 12)))
        stage_config = {"key": "score", "k": rng.randint(1, k)}
    else:  # sample, keyed: stable hash of id, order-independent
        one_in = max(1, round(3 * (1.0 - config.selectivity)) + 1)
        stage_config = {"one_in": rng.randint(1, one_in), "key": "id"}
    return {"id": op_id, "type": kind, "config": stage_config}


def generate_spec(config: GenConfig) -> Dict[str, Any]:
    """One random self-contained spec document for ``config``."""
    rng = random.Random(config.seed)
    operators: List[Dict[str, Any]] = []
    links: List[Dict[str, Any]] = []
    counter = 0

    def next_id(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    num_sources = rng.randint(1, config.max_sources)
    frontier: List[str] = []
    next_record = 0
    for _ in range(num_sources):
        count = rng.randint(3, config.rows)
        op_id = next_id("src")
        operators.append(
            {
                "id": op_id,
                "type": "jsonl_source",
                "config": {
                    "records": _records(rng, next_record, count),
                    "schema": {
                        "$schema": {
                            "id": "string",
                            "category": "string",
                            "score": "float",
                            "count": "int",
                        }
                    },
                    "num_workers": rng.randint(1, 2),
                },
            }
        )
        next_record += count
        frontier.append(op_id)

    for _ in range(rng.randint(1, config.depth)):
        if len(frontier) >= 2 and rng.random() < config.fan_out:
            left = frontier.pop(rng.randrange(len(frontier)))
            right = frontier.pop(rng.randrange(len(frontier)))
            op_id = next_id("merge")
            operators.append(
                {"id": op_id, "type": "union", "config": {"num_inputs": 2}}
            )
            links.append({"from": left, "to": op_id, "in": 0})
            links.append({"from": right, "to": op_id, "in": 1})
            frontier.append(op_id)
        else:
            index = rng.randrange(len(frontier))
            upstream = frontier[index]
            op_id = next_id("op")
            operators.append(_stage(rng, op_id, config))
            links.append({"from": upstream, "to": op_id})
            frontier[index] = op_id

    while len(frontier) >= 2:
        left = frontier.pop()
        right = frontier.pop()
        op_id = next_id("merge")
        operators.append({"id": op_id, "type": "union", "config": {"num_inputs": 2}})
        links.append({"from": left, "to": op_id, "in": 0})
        links.append({"from": right, "to": op_id, "in": 1})
        frontier.append(op_id)

    (tail,) = frontier
    if rng.random() < 0.5:
        names = ["id", "category", "score", "count"]
        keep = sorted(
            rng.sample(names, rng.randint(1, len(names))), key=names.index
        )
        op_id = next_id("project")
        operators.append(
            {"id": op_id, "type": "projection", "config": {"columns": keep}}
        )
        links.append({"from": tail, "to": op_id})
        tail = op_id
    sink_id = next_id("view")
    operators.append({"id": sink_id, "type": "sink", "config": {}})
    links.append({"from": tail, "to": sink_id})

    return {
        "spec": "repro/workflow-spec@1",
        "name": f"generated-{config.seed}",
        "operators": operators,
        "links": links,
    }


def random_spec(seed: int, **overrides: Any) -> Dict[str, Any]:
    """One random spec document for ``seed`` (keyword knobs override
    the :class:`GenConfig` defaults)."""
    return generate_spec(GenConfig(seed=seed, **overrides))
