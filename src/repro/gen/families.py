"""The three generated task families (ROADMAP "scenario diversity").

Each family is a seeded builder returning a *self-contained*
``repro/workflow-spec@1`` document, so one spec runs under both
paradigms and the row multisets must agree:

``stream``
    A streaming/incremental micro-batch variant of the DICE mention
    pipeline: records arrive in timed micro-batches through
    ``micro_batch_source`` and flow through filter -> distinct ->
    enrich -> top-k.  The pipelined engine overlaps downstream work
    with the arrival gaps; the script plan materialises the source
    first and pays arrival and compute *sequentially* — the paradigm
    gap the paper could not measure on Texera (Section VI).
``smallsteps``
    A Snakemake-style scientific workflow: one deep chain of >= 30
    short operators (PAPERS.md, "How do users design scientific
    workflows?").  Per-step overhead dominates — the workflow engine
    pays ``operator_deploy_s`` per operator, the script runtime pays
    per-task dispatch — so the family measures paradigm *control-plane*
    cost, not data-plane cost.
``raster``
    A geospatial raster-tiling pipeline: ``raster_source`` synthesises
    multi-KiB pixel blobs that ride the pipeline until a projection
    drops them, then zonal statistics aggregate per zone.  Large-blob
    traffic stresses ``repro.mem`` spill and ``repro.cache`` capacity
    differently than the row-oriented ML tasks.

Determinism: a family document is a pure function of
``(seed, scale)``; all stages are order-independent (keyed distinct,
keyed sampling, tie-free sorts, min/max aggregation — never
order-sensitive float sums), so both paradigms collect identical row
multisets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import repro.gen.operators  # noqa: F401  (registers the custom types)
from repro.errors import GenSpecError
from repro.gen.generator import _records
from repro.workflow.spec.model import SPEC_VERSION

__all__ = [
    "FAMILIES",
    "FamilyRun",
    "family_catalogue",
    "family_spec",
    "run_family",
]

#: Sink id shared by every family document (single collected table).
SINK_ID = "results"

_STREAM_SCHEMA = {
    "$schema": {
        "id": "string",
        "category": "string",
        "score": "float",
        "count": "int",
    }
}

_TILE_STATS_SCHEMA = {
    "$schema": {
        "tile_id": "string",
        "zone": "string",
        "band": "int",
        "mean": "float",
        "pixels": "string",
    }
}


def stream_spec(seed: int = 0, scale: float = 1.0) -> Dict[str, Any]:
    """Micro-batch DICE variant: timed arrivals through the pipeline."""
    rng = random.Random(seed)
    rows = max(24, int(96 * scale))
    records = _records(rng, 0, rows)
    return {
        "spec": SPEC_VERSION,
        "name": f"stream-{seed}",
        "operators": [
            {
                "id": "mention-feed",
                "type": "micro_batch_source",
                "config": {
                    "records": records,
                    "schema": _STREAM_SCHEMA,
                    "batch_size": 8,
                    "interval_s": 0.02,
                },
            },
            {
                "id": "fresh-mentions",
                "type": "filter",
                "config": {
                    "predicate": {
                        "$predicate": {
                            "op": "greater", "column": "score", "value": 0.15,
                        }
                    },
                    "num_workers": 2,
                },
            },
            {
                "id": "dedupe",
                "type": "distinct",
                "config": {"key": "id", "num_workers": 2},
            },
            {
                "id": "enrich",
                "type": "map",
                "config": {
                    "fn": {"$callable": "repro.gen.operators:bump_count_values"},
                    "output_schema": _STREAM_SCHEMA,
                    "per_tuple_work_s": 0.002,
                    "num_workers": 2,
                    "language": "python",
                },
            },
            {
                "id": "trending",
                "type": "top_k",
                "config": {"key": "score", "k": max(8, rows // 6)},
            },
            {"id": SINK_ID, "type": "sink", "config": {}},
        ],
        "links": [
            {"from": "mention-feed", "to": "fresh-mentions"},
            {"from": "fresh-mentions", "to": "dedupe"},
            {"from": "dedupe", "to": "enrich"},
            {"from": "enrich", "to": "trending"},
            {"from": "trending", "to": SINK_ID},
        ],
    }


#: The rotating step palette of the many-small-steps chain.  Every step
#: is schema-preserving and order-independent.
_SMALLSTEP_KINDS = ("filter", "bump", "distinct", "sort", "sample")


def smallsteps_spec(
    seed: int = 0, steps: int = 32, scale: float = 1.0
) -> Dict[str, Any]:
    """Snakemake-style deep chain of >= 30 short operators."""
    rng = random.Random(seed)
    steps = max(30, int(steps * scale))
    rows = max(12, int(40 * scale))
    operators: List[Dict[str, Any]] = [
        {
            "id": "readings",
            "type": "jsonl_source",
            "config": {
                "records": _records(rng, 0, rows),
                "schema": _STREAM_SCHEMA,
            },
        }
    ]
    links: List[Dict[str, Any]] = []
    languages = ("python", "python", "scala", "java")
    tail = "readings"
    for index in range(steps):
        kind = _SMALLSTEP_KINDS[index % len(_SMALLSTEP_KINDS)]
        op_id = f"step{index:02d}-{kind}"
        if kind == "filter":
            op = {
                "id": op_id,
                "type": "filter",
                "config": {
                    "predicate": {
                        "$predicate": {
                            "op": "greater",
                            "column": "score",
                            # Loose thresholds: each rule trims a little,
                            # like QC steps in a scientific pipeline.
                            "value": round(rng.uniform(0.0, 0.05), 3),
                        }
                    },
                    "language": languages[index % len(languages)],
                },
            }
        elif kind == "bump":
            op = {
                "id": op_id,
                "type": "map",
                "config": {
                    "fn": {"$callable": "repro.gen.operators:bump_count_values"},
                    "output_schema": _STREAM_SCHEMA,
                    "language": languages[index % len(languages)],
                },
            }
        elif kind == "distinct":
            op = {"id": op_id, "type": "distinct", "config": {"key": "id"}}
        elif kind == "sort":
            op = {
                "id": op_id,
                "type": "sort",
                "config": {"key": "score", "reverse": index % 2 == 0},
            }
        else:  # sample — keyed, keep-most
            op = {
                "id": op_id,
                "type": "sample",
                "config": {"one_in": 1 if index % 10 else 2, "key": "id"},
            }
        operators.append(op)
        links.append({"from": tail, "to": op_id})
        tail = op_id
    operators.append({"id": SINK_ID, "type": "sink", "config": {}})
    links.append({"from": tail, "to": SINK_ID})
    return {
        "spec": SPEC_VERSION,
        "name": f"smallsteps-{seed}",
        "operators": operators,
        "links": links,
    }


def raster_spec(seed: int = 0, scale: float = 1.0) -> Dict[str, Any]:
    """Geospatial raster tiling: large blobs, zonal statistics."""
    tiles = max(8, int(16 * scale))
    tile_bytes = max(4096, int(65536 * scale))
    return {
        "spec": SPEC_VERSION,
        "name": f"raster-{seed}",
        "operators": [
            {
                "id": "tiles",
                "type": "raster_source",
                "config": {
                    "seed": seed,
                    "tiles": tiles,
                    "tile_bytes": tile_bytes,
                    "num_workers": 2,
                },
            },
            {
                "id": "tile-stats",
                "type": "map",
                "config": {
                    "fn": {"$callable": "repro.gen.operators:tile_stats_values"},
                    "output_schema": _TILE_STATS_SCHEMA,
                    "extra_seconds_fn": {
                        "$callable": "repro.gen.operators:tile_scan_seconds"
                    },
                    "num_workers": 2,
                },
            },
            {
                "id": "bright-tiles",
                "type": "filter",
                "config": {
                    "predicate": {
                        "$predicate": {
                            "op": "greater", "column": "mean", "value": 60.0,
                        }
                    },
                },
            },
            {
                "id": "drop-pixels",
                "type": "projection",
                "config": {"columns": ["tile_id", "zone", "band", "mean"]},
            },
            {
                "id": "zonal-peaks",
                "type": "group_by",
                "config": {
                    "group_key": "zone",
                    "aggregation": "max",
                    "value_field": "mean",
                    "result_field": "peak_brightness",
                    "num_workers": 2,
                },
            },
            {
                "id": "ranked-zones",
                "type": "sort",
                "config": {"key": "peak_brightness", "reverse": True},
            },
            {"id": SINK_ID, "type": "sink", "config": {}},
        ],
        "links": [
            {"from": "tiles", "to": "tile-stats"},
            {"from": "tile-stats", "to": "bright-tiles"},
            {"from": "bright-tiles", "to": "drop-pixels"},
            {"from": "drop-pixels", "to": "zonal-peaks"},
            {"from": "zonal-peaks", "to": "ranked-zones"},
            {"from": "ranked-zones", "to": SINK_ID},
        ],
    }


#: name -> (builder, one-line description).
FAMILIES: Dict[str, Tuple[Callable[..., Dict[str, Any]], str]] = {
    "stream": (
        stream_spec,
        "micro-batch DICE variant: timed arrivals, pipelining gap",
    ),
    "smallsteps": (
        smallsteps_spec,
        "Snakemake-style deep chain of >=30 short operators",
    ),
    "raster": (
        raster_spec,
        "raster tiling: large pixel blobs, zonal statistics",
    ),
}


def family_spec(name: str, seed: int = 0, scale: float = 1.0) -> Dict[str, Any]:
    """The spec document of family ``name`` at ``(seed, scale)``."""
    try:
        builder, _ = FAMILIES[name]
    except KeyError:
        raise GenSpecError(
            f"unknown family {name!r} (have: {sorted(FAMILIES)})"
        ) from None
    return builder(seed=seed, scale=scale)


def family_catalogue() -> str:
    """One line per family, for the CLI and docs."""
    width = max(len(name) for name in FAMILIES)
    return "\n".join(
        f"  {name:<{width}}  {description}"
        for name, (_, description) in FAMILIES.items()
    )


@dataclass(frozen=True)
class FamilyRun:
    """One paradigm execution of one family document."""

    family: str
    paradigm: str
    elapsed_s: float
    #: Sorted multiset of stringified sink rows (paradigm-comparable).
    rows: Tuple[Tuple[str, ...], ...]


def _row_multiset(table) -> Tuple[Tuple[str, ...], ...]:
    return tuple(sorted(tuple(map(str, row.values)) for row in table))


def run_family(
    name: str,
    seed: int = 0,
    scale: float = 1.0,
    paradigm: str = "workflow",
    cluster=None,
) -> FamilyRun:
    """Run family ``name`` under one paradigm on a fresh (or given)
    cluster; returns elapsed virtual time and the sink row multiset."""
    from repro.cluster import build_cluster
    from repro.sim import Environment
    from repro.workflow import run_workflow
    from repro.workflow.spec import build_workflow
    from repro.workflow.spec.model import WorkflowSpec

    doc = family_spec(name, seed=seed, scale=scale)
    spec = WorkflowSpec.from_json(doc)
    if paradigm == "workflow":
        cluster = cluster or build_cluster(Environment())
        result = run_workflow(cluster, build_workflow(spec))
        return FamilyRun(
            family=name,
            paradigm=paradigm,
            elapsed_s=result.elapsed_s,
            rows=_row_multiset(result.table(SINK_ID)),
        )
    if paradigm == "script":
        from repro.rayx.compile import compile_script_plan

        cluster = cluster or build_cluster(Environment())
        started = cluster.env.now
        tables = compile_script_plan(spec).run(cluster=cluster)
        return FamilyRun(
            family=name,
            paradigm=paradigm,
            elapsed_s=cluster.env.now - started,
            rows=_row_multiset(tables[SINK_ID]),
        )
    raise GenSpecError(
        f"unknown paradigm {paradigm!r} (have: script, workflow)"
    )
