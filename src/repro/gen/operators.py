"""Custom spec-addressable operators for the generated task families.

Two sources extend the palette through the public registry hook
(:func:`repro.workflow.spec.register_operator_type`), the same
extension API the KGE stage operator and the WEF ensemble trainer use:

* ``micro_batch_source`` — emits its records in timed micro-batches,
  charging an inter-batch arrival delay.  Under the pipelined engine
  downstream operators overlap those delays (work proceeds while the
  next batch "arrives"); the script plan materialises the whole source
  first and pays every delay up front — the streaming paradigm gap the
  paper could not measure on Texera (Section VI).
* ``raster_source`` — deterministically synthesises large raster tiles
  (multi-KiB pixel payloads) from a seed, so specs stay small while
  runs move big blobs that stress ``repro.mem`` spill and
  ``repro.cache`` capacity in ways the ML tasks don't.

The module also hosts the named UDFs the family specs reference via
``{"$callable": "repro.gen.operators:..."}`` — module-level functions
so the specs remain self-contained (importable without bindings).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Sequence

from repro.errors import InvalidWorkflow
from repro.relational import Field, FieldType, Schema, Table, Tuple
from repro.workflow.language import OperatorLanguage
from repro.workflow.operator import SourceExecutor
from repro.workflow.operators import TableSource
from repro.workflow.spec import register_operator_type

__all__ = [
    "MicroBatchSource",
    "RasterTileSource",
    "raster_records",
    "tile_stats_values",
    "tile_scan_seconds",
    "bump_count_values",
]


class _MicroBatchScanExecutor(SourceExecutor):
    def __init__(
        self,
        rows: Sequence[Tuple],
        per_tuple_cost_s: float,
        batch_size: int,
        interval_s: float,
    ) -> None:
        super().__init__()
        self._rows = rows
        self._per_tuple_cost_s = per_tuple_cost_s
        self._batch_size = batch_size
        self._interval_s = interval_s

    def produce(self) -> Iterable[Tuple]:
        for index, row in enumerate(self._rows):
            if index % self._batch_size == 0:
                # The arrival gap before this micro-batch lands.
                self.charge(self._interval_s)
            self.charge(self._per_tuple_cost_s)
            yield row


class MicroBatchSource(TableSource):
    """A source whose records arrive in timed micro-batches.

    ``interval_s`` of virtual time is charged before each batch of
    ``batch_size`` records — the cadence of an incremental feed.  The
    output batch size is pinned to ``batch_size`` so each micro-batch
    is flushed downstream as soon as it lands instead of being
    coalesced into engine-default mega-batches.
    """

    def __init__(
        self,
        operator_id: str,
        records: Iterable[dict],
        schema: Schema,
        batch_size: int = 8,
        interval_s: float = 0.05,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 5.0e-7,
    ) -> None:
        if batch_size < 1:
            raise InvalidWorkflow(
                f"micro_batch_source {operator_id!r}: batch_size must be >= 1"
            )
        if interval_s < 0:
            raise InvalidWorkflow(
                f"micro_batch_source {operator_id!r}: negative interval_s"
            )
        table = Table.from_dicts(schema, records)
        super().__init__(
            operator_id, table, language, num_workers, per_tuple_work_s
        )
        self.batch_size = batch_size
        self.interval_s = interval_s
        self.with_output_batch_size(batch_size)

    def create_executor(self, worker_index: int = 0):
        rows = self.table.rows[worker_index :: self.num_workers]
        return _MicroBatchScanExecutor(
            rows, self.tuple_cost_s(), self.batch_size, self.interval_s
        )


#: Schema of one synthesised raster tile.  ``pixels`` carries the blob.
RASTER_FIELDS = {
    "tile_id": "string",
    "zone": "string",
    "band": "int",
    "pixels": "string",
}


def raster_records(
    seed: int, tiles: int, tile_bytes: int, zones: int = 4, bands: int = 2
) -> List[Dict[str, Any]]:
    """Deterministic tile records for ``seed`` (also used by tests).

    Payloads are synthesised from the seed at construction time so the
    *spec* stays a few hundred bytes while the *run* moves
    ``tiles x tile_bytes`` of pixel data.
    """
    rng = random.Random(seed)
    records = []
    for index in range(tiles):
        # 16 hex chars per draw; repeat up to the payload size.
        unit = f"{rng.getrandbits(64):016x}"
        payload = (unit * (tile_bytes // 16 + 1))[:tile_bytes]
        records.append(
            {
                "tile_id": f"t{index:04d}",
                "zone": f"z{rng.randrange(zones)}",
                "band": rng.randrange(bands),
                "pixels": payload,
            }
        )
    return records


class RasterTileSource(TableSource):
    """Scan a deterministically synthesised raster-tile collection.

    The config is tiny (``seed``/``tiles``/``tile_bytes``); the data is
    not.  ``per_tuple_work_s`` defaults higher than the row sources —
    decoding a tile costs more than parsing a JSON record.
    """

    def __init__(
        self,
        operator_id: str,
        seed: int = 0,
        tiles: int = 16,
        tile_bytes: int = 65536,
        zones: int = 4,
        bands: int = 2,
        language: OperatorLanguage = OperatorLanguage.PYTHON,
        num_workers: int = 1,
        per_tuple_work_s: float = 2.0e-5,
    ) -> None:
        if tiles < 1:
            raise InvalidWorkflow(
                f"raster_source {operator_id!r}: tiles must be >= 1"
            )
        if tile_bytes < 16:
            raise InvalidWorkflow(
                f"raster_source {operator_id!r}: tile_bytes must be >= 16"
            )
        schema = Schema(
            [Field(name, FieldType(ftype)) for name, ftype in RASTER_FIELDS.items()]
        )
        table = Table.from_dicts(
            schema, raster_records(seed, tiles, tile_bytes, zones, bands)
        )
        super().__init__(
            operator_id, table, language, num_workers, per_tuple_work_s
        )
        self.seed = seed
        self.tiles = tiles
        self.tile_bytes = tile_bytes


# -- named UDFs referenced by family specs ($callable forms) -----------------


def tile_stats_values(row: Tuple) -> List[Any]:
    """Per-tile statistics: mean of a strided pixel sample.

    Keeps ``pixels`` in the output row on purpose — the blob rides the
    whole pipeline until the projection drops it, which is exactly the
    memory-pressure shape raster pipelines exhibit.
    """
    pixels = row["pixels"]
    sample = pixels[::257] or pixels[:1]
    mean = sum(ord(char) for char in sample) / len(sample)
    return [row["tile_id"], row["zone"], row["band"], mean, pixels]


def tile_scan_seconds(row: Tuple) -> float:
    """Data-dependent decode cost: proportional to the payload size."""
    return 2.0e-9 * len(row["pixels"])


def bump_count_values(row: Tuple) -> List[Any]:
    """Schema-preserving unit of work for the many-small-steps chain."""
    return [row["id"], row["category"], row["score"], row["count"] + 1]


# The spec layer refers to the custom sources by these type names — the
# extension hook GUI systems expose as "install a custom operator".
register_operator_type("micro_batch_source", MicroBatchSource)
register_operator_type("raster_source", RasterTileSource)
