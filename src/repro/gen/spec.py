"""The ``repro gen`` spec grammar: comma-separated flags and pairs.

Mirrors the other subsystem spec surfaces (``--mem``, ``--jobs``, ...):
a compact string expands to a :class:`GenRequest`, malformed specs
raise :class:`repro.errors.GenSpecError`, and the CLI prints the
grammar with every error (exit 2, never a traceback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import GenSpecError
from repro.gen.families import FAMILIES
from repro.gen.generator import GenConfig

__all__ = ["GenRequest", "parse_gen_spec", "describe_gen"]


@dataclass(frozen=True)
class GenRequest:
    """One parsed ``repro gen`` invocation."""

    #: First seed; ``count`` consecutive seeds are generated.
    seed: int = 0
    count: int = 1
    #: A family name, or None for the random generator.
    family: Optional[str] = None
    #: Family scale factor (ignored by the random generator).
    scale: float = 1.0
    #: Random-generator knobs (ignored by families).
    config: GenConfig = GenConfig()
    #: Execute each document under both paradigms and diff the rows.
    run: bool = True
    #: Write the document(s) to PATH (count>1 appends ``-SEED``).
    emit: Optional[str] = None


def _positive_int(key: str, raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise GenSpecError(f"{key}: expected an integer, got {raw!r}") from None
    if value < 0:
        raise GenSpecError(f"{key}: must be >= 0, got {value}")
    return value


def _fraction(key: str, raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise GenSpecError(f"{key}: expected a number, got {raw!r}") from None
    return value


def parse_gen_spec(text: str) -> GenRequest:
    """Expand a spec string into a :class:`GenRequest`.

    Grammar (all parts optional, comma-separated)::

        seed=N,count=N,family=NAME,scale=F,
        depth=N,sources=N,fanout=F,selectivity=F,rows=N,
        run=on|off,emit=PATH
    """
    fields = {
        "seed": 0,
        "count": 1,
        "family": None,
        "scale": 1.0,
        "run": True,
        "emit": None,
    }
    knobs = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        if "=" not in part:
            raise GenSpecError(
                f"expected key=value, got {part!r} "
                f"(flags like 'on' belong to other subsystems)"
            )
        key, _, raw = part.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key == "seed":
            fields["seed"] = _positive_int(key, raw)
        elif key == "count":
            count = _positive_int(key, raw)
            if count < 1:
                raise GenSpecError(f"count: must be >= 1, got {count}")
            fields["count"] = count
        elif key == "family":
            if raw not in FAMILIES:
                raise GenSpecError(
                    f"unknown family {raw!r} (have: {sorted(FAMILIES)})"
                )
            fields["family"] = raw
        elif key == "scale":
            scale = _fraction(key, raw)
            if scale <= 0:
                raise GenSpecError(f"scale: must be > 0, got {scale}")
            fields["scale"] = scale
        elif key == "run":
            if raw not in ("on", "off"):
                raise GenSpecError(f"run: expected on or off, got {raw!r}")
            fields["run"] = raw == "on"
        elif key == "emit":
            if not raw:
                raise GenSpecError("emit: expected a file path")
            fields["emit"] = raw
        elif key == "depth":
            knobs["depth"] = _positive_int(key, raw)
        elif key == "sources":
            knobs["max_sources"] = _positive_int(key, raw)
        elif key == "fanout":
            knobs["fan_out"] = _fraction(key, raw)
        elif key == "selectivity":
            knobs["selectivity"] = _fraction(key, raw)
        elif key == "rows":
            knobs["rows"] = _positive_int(key, raw)
        else:
            raise GenSpecError(
                f"unknown key {key!r} (valid: seed, count, family, scale, "
                f"depth, sources, fanout, selectivity, rows, run, emit)"
            )
    config = GenConfig(seed=fields["seed"], **knobs)
    return GenRequest(
        seed=fields["seed"],
        count=fields["count"],
        family=fields["family"],
        scale=fields["scale"],
        config=config,
        run=fields["run"],
        emit=fields["emit"],
    )


def describe_gen(request: GenRequest) -> str:
    """Human-readable expansion of a parsed request."""
    source = request.family or "random"
    lines = [
        "workload generator",
        f"  source       {source}",
        f"  seeds        {request.seed}"
        + (f"..{request.seed + request.count - 1}" if request.count > 1 else ""),
        f"  run          {'both paradigms, diff rows' if request.run else 'validate + compile only'}",
    ]
    if request.family is None:
        config = request.config
        lines.insert(
            2,
            f"  knobs        depth={config.depth} sources={config.max_sources} "
            f"fan_out={config.fan_out} selectivity={config.selectivity} "
            f"rows={config.rows}",
        )
    else:
        lines.insert(2, f"  scale        {request.scale}")
    if request.emit:
        lines.append(f"  emit         {request.emit}")
    return "\n".join(lines)
