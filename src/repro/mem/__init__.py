"""Memory pressure, made survivable: ``repro.mem``.

The paper's GOTTA analysis (Section IV-E) blames the script paradigm's
slowdown on Ray's shared object store, which "required a lot of memory
and added execution time for each access".  The seed modelled RAM as a
hard-fail high-water counter — a plan that did not fit raised
:class:`repro.errors.InsufficientResources` — so memory pressure was
the one paper phenomenon the simulation could not reproduce.  This
package adds the missing layer:

* :class:`MemoryManager` — per-node admission control with LRU
  spill-to-disk for object-store replicas and FIFO blocking
  backpressure for everything else (workflow channel buffers included);
* :class:`repro.config.MemoryConfig` — watermarks, spill bandwidth and
  a per-node RAM override, resolvable per cluster;
* an ``oom`` fault kind (``repro.faults``) clamping a node's RAM at a
  virtual timestamp.

Selecting a policy follows the tracer/injector/scheduler pattern:

>>> from repro.mem import memory_managed
>>> with memory_managed("on,ram=2GiB"):
...     run = run_gotta_script(fresh_cluster(), paragraphs)

or per-config via ``ReproConfig(memory=MemoryConfig(...))``, or from
the command line with ``python -m repro fig13d --mem on,ram=2GiB``
(``python -m repro mem`` prints the spec grammar).

With the default config the manager is dormant and every timing stays
bit-identical to the seed — pinned by ``tests/mem/test_timing_pin.py``
the same way ``repro.obs``/``repro.faults``/``repro.sched`` are.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.config import MemoryConfig
from repro.mem.manager import MemoryManager
from repro.mem.spec import describe_memory, format_size, parse_mem_spec, parse_size

__all__ = [
    "MemoryConfig",
    "MemoryManager",
    "parse_mem_spec",
    "parse_size",
    "format_size",
    "describe_memory",
    "install_memory",
    "uninstall_memory",
    "current_memory_config",
    "memory_managed",
]

#: The globally installed policy, if any (see :func:`install_memory`).
_installed: Optional[MemoryConfig] = None


def _coerce(config_or_spec: Union[MemoryConfig, str]) -> MemoryConfig:
    if isinstance(config_or_spec, MemoryConfig):
        return config_or_spec
    return parse_mem_spec(config_or_spec)


def install_memory(config_or_spec: Union[MemoryConfig, str]) -> MemoryConfig:
    """Make a memory policy the default for clusters built afterwards.

    Accepts a :class:`MemoryConfig` or a spec string (validated
    eagerly, so a typo fails at install time rather than mid-run).
    """
    global _installed
    config = _coerce(config_or_spec)
    _installed = config
    return config


def uninstall_memory() -> None:
    """Clear the globally installed policy (back to the dormant default)."""
    global _installed
    _installed = None


def current_memory_config() -> Optional[MemoryConfig]:
    """The globally installed memory policy, or None."""
    return _installed


@contextmanager
def memory_managed(
    config_or_spec: Union[MemoryConfig, str]
) -> Iterator[MemoryConfig]:
    """Install a memory policy for the duration of a ``with`` block.

    >>> with memory_managed(MemoryConfig(enabled=True)) as policy:
    ...     run = run_kge_script(fresh_cluster(), dataset)
    """
    global _installed
    config = _coerce(config_or_spec)
    previous = _installed
    _installed = config
    try:
        yield config
    finally:
        _installed = previous
