"""Per-node memory accounting: LRU spill-to-disk + admission backpressure.

One :class:`MemoryManager` serves one cluster.  It sits between the
engines and ``Node.allocate_ram``/``free_ram`` and, when its policy is
enabled, turns "the plan does not fit" from a hard
:class:`repro.errors.InsufficientResources` failure into the behaviour
a real runtime exhibits under pressure:

* **LRU spill** — object-store replicas are *spillable*: when an
  admission would push a node past the spill watermark, the least
  recently used resident replicas are written to the node's disk
  (paying a bandwidth-proportional virtual cost), releasing their RAM.
  A later ``get`` of a spilled replica pays the disk read back before
  the usual mapping cost (:meth:`ensure_resident`).
* **Admission backpressure** — allocations queue FIFO per node; the
  queue head spills what it can and then *blocks* on a simulation
  event until enough RAM is freed.  FIFO ordering over the
  deterministic event queue keeps pressured runs bit-reproducible.
* **Anonymous allocations** — workflow channel buffers reserve RAM
  without a spillable identity (``key=None``); they are released
  explicitly when the consumer drains the batch
  (:meth:`free_anonymous`).

With the policy disabled (the default) no call site ever reaches this
class — every allocation keeps the seed's direct ``Node`` arithmetic
and timings stay bit-identical (``tests/mem/test_timing_pin.py``).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Any, Deque, Dict, Generator, List, Optional

from repro.config import MemoryConfig
from repro.errors import InsufficientResources, MemoryPressureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster

__all__ = ["MemoryManager"]


class _NodeMemory:
    """Bookkeeping for one node: LRU residency, spill set, wait queues."""

    __slots__ = (
        "resident",
        "spilled",
        "restoring",
        "queue",
        "turn_waiters",
        "free_waiters",
        "anonymous_bytes",
    )

    def __init__(self) -> None:
        #: ``key -> nbytes`` for RAM-resident tracked allocations, in
        #: least-recently-used order (head = next spill victim).
        self.resident: "OrderedDict[str, int]" = OrderedDict()
        #: ``key -> nbytes`` for allocations currently on disk.
        self.spilled: Dict[str, int] = {}
        #: In-flight restores, so concurrent getters of one spilled
        #: replica share a single disk read (mirrors the object store's
        #: in-flight transfer dedup).
        self.restoring: Dict[str, Any] = {}
        #: FIFO admission tickets; only the head may admit or spill.
        self.queue: Deque[object] = deque()
        #: Events waiting for the queue head to change.
        self.turn_waiters: List[Any] = []
        #: Events waiting for RAM to be freed.
        self.free_waiters: List[Any] = []
        #: Untracked (non-spillable) bytes, e.g. channel buffers.
        self.anonymous_bytes: int = 0


class MemoryManager:
    """Admission control + spilling for one cluster's nodes.

    Constructed by :class:`repro.cluster.Cluster` for every run (the
    resolved :class:`repro.config.MemoryConfig` decides whether it is
    ``active``).  A ``node_ram_bytes`` override shrinks every node's
    RAM ceiling at construction even when the policy itself is off —
    that is how experiments compare the seed hard-fail path against the
    spilling path on identical hardware.
    """

    def __init__(self, cluster: "Cluster", config: MemoryConfig) -> None:
        self.cluster = cluster
        self.config = config
        self.env = cluster.env
        #: True only when the spill/backpressure policy is on; every
        #: call site guards with ``if mem.active:`` so a dormant
        #: manager costs nothing (the bit-identical-timings contract).
        self.active = bool(config.enabled)
        self._states: Dict[str, _NodeMemory] = {
            name: _NodeMemory() for name in cluster.node_names()
        }
        if config.node_ram_bytes is not None:
            for name in cluster.node_names():
                node = cluster.node(name)
                node.ram_limit = min(node.ram_limit, int(config.node_ram_bytes))
        # Telemetry (virtual; mirrored into tracer counters when a
        # tracer is enabled).
        self.spill_count = 0
        self.spill_bytes = 0
        self.spill_seconds = 0.0
        self.restore_count = 0
        self.restore_bytes = 0
        self.restore_seconds = 0.0
        self.blocked_count = 0
        self.blocked_seconds = 0.0

    # -- membership (repro.elastic) ----------------------------------------

    def add_node(self, name: str) -> None:
        """Track a node that joined the cluster mid-run.

        Called by :meth:`Cluster.add_node`; the ``node_ram_bytes``
        override applies to late joiners exactly as it did at
        construction, so the fleet stays homogeneous in policy even
        when heterogeneous in shape.
        """
        self._states[name] = _NodeMemory()
        if self.config.node_ram_bytes is not None:
            node = self.cluster.node(name)
            node.ram_limit = min(node.ram_limit, int(self.config.node_ram_bytes))

    def remove_node(self, name: str) -> None:
        """Forget a drained node's bookkeeping.

        The drain is responsible for emptying the node first; leftover
        tracked state here means data would silently vanish, so fail
        loudly instead.
        """
        state = self._states.pop(name, None)
        if state is None:
            return
        if (
            state.resident
            or state.spilled
            or state.restoring
            or state.queue
            or state.free_waiters
        ):
            raise MemoryPressureError(
                f"node {name!r} removed with tracked memory state: "
                f"{len(state.resident)} resident, {len(state.spilled)} spilled, "
                f"{len(state.queue)} queued"
            )

    # -- watermark arithmetic ----------------------------------------------

    def _spill_target(self, node: Any) -> int:
        return int(self.config.spill_watermark * node.ram_limit)

    def _admission_limit(self, node: Any, nbytes: int) -> int:
        limit = int(self.config.admission_watermark * node.ram_limit)
        if nbytes > limit:
            # Oversized-object escape hatch: an object bigger than the
            # watermark (but not the node) may use the full ceiling,
            # else it could never be admitted at all.
            return node.ram_limit
        return limit

    # -- admission ----------------------------------------------------------

    def allocate(
        self, node_name: str, nbytes: int, key: Optional[str] = None
    ) -> Generator:
        """Simulation process admitting ``nbytes`` on ``node_name``.

        Joins the node's FIFO admission queue; at the head, spills LRU
        residents down toward the spill watermark and then blocks until
        the allocation fits under the admission watermark.  On success
        the RAM is reserved: under ``key`` as a spillable resident
        (most recently used), or anonymously (non-spillable) when
        ``key`` is None.

        Admitting with zero contention and free RAM yields no events,
        so an enabled-but-unpressured run charges zero extra time.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        node = self.cluster.node(node_name)
        nm = self._states[node_name]
        if nbytes > node.ram_limit:
            raise InsufficientResources(
                f"node {node_name!r}: allocation of {nbytes} bytes exceeds "
                f"the node's RAM ceiling ({node.ram_limit} bytes); no amount "
                "of spilling can admit it"
            )
        ticket = object()
        nm.queue.append(ticket)
        waited_from: Optional[float] = None
        try:
            while nm.queue[0] is not ticket:
                event = self.env.event()
                nm.turn_waiters.append(event)
                if waited_from is None:
                    waited_from = self.env.now
                    self.blocked_count += 1
                yield event
            while True:
                yield from self._spill_for(nm, node, nbytes)
                if node.ram_used + nbytes <= self._admission_limit(node, nbytes):
                    break
                event = self.env.event()
                nm.free_waiters.append(event)
                if waited_from is None:
                    waited_from = self.env.now
                    self.blocked_count += 1
                yield event
        finally:
            # Leave the queue even when interrupted (fault kill while
            # blocked) — a stranded ticket would deadlock the node.
            nm.queue.remove(ticket)
            self._wake(nm.turn_waiters)
        if waited_from is not None:
            elapsed = self.env.now - waited_from
            self.blocked_seconds += elapsed
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.metrics.counter("mem.blocked.count", node=node_name).inc()
                tracer.metrics.counter(
                    "mem.blocked.seconds", node=node_name
                ).add(elapsed)
        node.allocate_ram(nbytes)
        if key is None:
            nm.anonymous_bytes += nbytes
        else:
            nm.resident[key] = nbytes
            nm.resident.move_to_end(key)

    def release(self, node_name: str, key: str) -> None:
        """Drop a tracked allocation: free its RAM, or forget its spill.

        Safe to call whether the entry is resident, spilled, or (after
        an interrupted admission) unknown.
        """
        nm = self._states[node_name]
        if key in nm.resident:
            nbytes = nm.resident.pop(key)
            self.cluster.node(node_name).free_ram(nbytes)
            self._wake(nm.free_waiters)
        elif key in nm.spilled:
            del nm.spilled[key]

    def free_anonymous(self, node_name: str, nbytes: int) -> None:
        """Release an anonymous (non-spillable) reservation."""
        nm = self._states[node_name]
        nm.anonymous_bytes -= nbytes
        self.cluster.node(node_name).free_ram(nbytes)
        self._wake(nm.free_waiters)

    # -- residency ----------------------------------------------------------

    def touch(self, node_name: str, key: str) -> None:
        """Mark a resident entry most recently used (access bookkeeping)."""
        nm = self._states[node_name]
        if key in nm.resident:
            nm.resident.move_to_end(key)

    def is_spilled(self, node_name: str, key: str) -> bool:
        return key in self._states[node_name].spilled

    def ensure_resident(
        self, node_name: str, key: str, label: Optional[str] = None
    ) -> Generator:
        """Simulation process restoring ``key`` from disk if spilled.

        Resident entries are just touched (LRU bump) at zero cost.  A
        spilled entry pays the disk read plus re-admission (which may
        itself spill colder entries); concurrent restores of one entry
        share a single read.  Unknown keys are ignored — the entry was
        released or never tracked.
        """
        nm = self._states[node_name]
        if key in nm.resident:
            nm.resident.move_to_end(key)
            return
        pending = nm.restoring.get(key)
        if pending is not None:
            yield pending
            return
        if key not in nm.spilled:
            return
        event = self.env.event()
        nm.restoring[key] = event
        nbytes = nm.spilled.pop(key)
        try:
            yield from self.allocate(node_name, nbytes, key=key)
            cost = self.config.spill_read_time(nbytes)
            tracer = self.env.tracer
            span = None
            if tracer.enabled:
                span = tracer.start(
                    "restore",
                    category="mem",
                    node=node_name,
                    key=label if label is not None else key,
                    nbytes=nbytes,
                )
                tracer.metrics.counter("objectstore.restore.count").inc()
                tracer.metrics.counter("objectstore.restore.bytes").add(nbytes)
                tracer.metrics.counter("objectstore.restore.seconds").add(cost)
            try:
                yield self.env.timeout(cost)
            finally:
                if span is not None:
                    tracer.end(span)
            self.restore_count += 1
            self.restore_bytes += nbytes
            self.restore_seconds += cost
        except BaseException as exc:
            del nm.restoring[key]
            event.fail(exc)
            raise
        del nm.restoring[key]
        event.succeed()

    # -- spilling -----------------------------------------------------------

    def _spill_for(self, nm: _NodeMemory, node: Any, nbytes: int) -> Generator:
        """Spill LRU entries until ``nbytes`` fits under the watermark."""
        target = self._spill_target(node)
        while node.ram_used + nbytes > target and nm.resident:
            yield from self._spill_one(nm, node)

    def _spill_one(self, nm: _NodeMemory, node: Any) -> Generator:
        """Write the least recently used resident entry to disk."""
        key, nbytes = next(iter(nm.resident.items()))
        del nm.resident[key]
        cost = self.config.spill_write_time(nbytes)
        tracer = self.env.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "spill", category="mem", node=node.name, key=key, nbytes=nbytes
            )
            tracer.metrics.counter("objectstore.spill.count").inc()
            tracer.metrics.counter("objectstore.spill.bytes").add(nbytes)
            tracer.metrics.counter("objectstore.spill.seconds").add(cost)
        try:
            yield self.env.timeout(cost)
        finally:
            if span is not None:
                tracer.end(span)
        node.free_ram(nbytes)
        nm.spilled[key] = nbytes
        self.spill_count += 1
        self.spill_bytes += nbytes
        self.spill_seconds += cost
        self._wake(nm.free_waiters)

    # -- fault hook (oom) ----------------------------------------------------

    def clamp_matching(self, target: str, factor: float) -> Generator:
        """Apply an ``oom`` fault: clamp every matching node's RAM.

        Called by :class:`repro.faults.FaultInjector` at the event's
        virtual timestamp.  Node names are matched with ``fnmatch``
        globs, like every other fault target.
        """
        for name in self.cluster.node_names():
            if fnmatch(name, target):
                yield from self.clamp(name, factor)

    def clamp(self, node_name: str, factor: float) -> Generator:
        """Divide ``node_name``'s RAM ceiling by ``factor``.

        With the policy active, residents are spilled until usage fits
        under the new ceiling (the kernel reclaiming under OOM
        pressure).  With it inactive the ceiling just drops — existing
        reservations stay (usage may exceed the new ceiling) and the
        next allocation that does not fit raises, which is exactly the
        seed's hard-fail behaviour under a shrunken node.
        """
        if factor < 1.0:
            raise ValueError(f"oom clamp factor must be >= 1, got {factor}")
        node = self.cluster.node(node_name)
        nm = self._states[node_name]
        node.ram_limit = max(1, int(node.ram_limit / factor))
        if self.active:
            while node.ram_used > node.ram_limit and nm.resident:
                yield from self._spill_one(nm, node)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _wake(waiters: List[Any]) -> None:
        while waiters:
            waiters.pop(0).succeed()

    # -- introspection -------------------------------------------------------

    def resident_keys(self, node_name: str) -> List[str]:
        """Resident keys in LRU order (head = next spill victim)."""
        return list(self._states[node_name].resident)

    def spilled_keys(self, node_name: str) -> List[str]:
        return list(self._states[node_name].spilled)

    def anonymous_bytes(self, node_name: str) -> int:
        return self._states[node_name].anonymous_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "dormant"
        return (
            f"<MemoryManager {state}: {self.spill_count} spills, "
            f"{self.restore_count} restores, {self.blocked_count} blocked>"
        )
