"""Compact CLI specs for memory policies: ``--mem "on,ram=2GiB"``.

A spec is a comma-separated list of flags and ``key=value`` pairs:

=============  ===================================================
``on`` 	       enable spilling + admission backpressure
``off``        keep the policy dormant (RAM override still applies)
``ram=SIZE``   clamp every node's RAM ceiling (``2GiB``, ``512MiB``)
``spill=F``    spill watermark, fraction of the ceiling (0.80)
``admit=F``    admission watermark, fraction of the ceiling (0.95)
``write_bw=S`` spill-device write bandwidth per second (``100MiB``)
``read_bw=S``  spill-device read bandwidth per second (``100MiB``)
``base=T``     fixed per-spill/restore seconds (0.002)
=============  ===================================================

Sizes accept binary suffixes (``KiB``/``MiB``/``GiB``, also the loose
``KB``/``MB``/``GB`` spellings, treated as binary) or plain byte
counts.  ``repro mem SPEC`` prints the policy a spec expands to.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict

from repro.config import GIB, KIB, MIB, MemoryConfig
from repro.errors import MemSpecError

__all__ = ["parse_mem_spec", "parse_size", "format_size", "describe_memory"]

_SIZE_SUFFIXES = {
    "kib": KIB,
    "kb": KIB,
    "k": KIB,
    "mib": MIB,
    "mb": MIB,
    "m": MIB,
    "gib": GIB,
    "gb": GIB,
    "g": GIB,
}


def parse_size(text: str) -> int:
    """Parse ``"2GiB"`` / ``"512MiB"`` / ``"1048576"`` into bytes."""
    raw = text.strip()
    lowered = raw.lower()
    multiplier = 1
    for suffix, value in sorted(_SIZE_SUFFIXES.items(), key=lambda kv: -len(kv[0])):
        if lowered.endswith(suffix):
            lowered = lowered[: -len(suffix)]
            multiplier = value
            break
    try:
        quantity = float(lowered)
    except ValueError:
        raise MemSpecError(f"bad size {text!r} (want e.g. '2GiB', '512MiB')") from None
    if quantity <= 0:
        raise MemSpecError(f"size must be positive: {text!r}")
    return int(quantity * multiplier)


def format_size(nbytes: int) -> str:
    """Human-readable binary size (exact where possible)."""
    for suffix, value in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if nbytes >= value:
            quantity = nbytes / value
            if quantity == int(quantity):
                return f"{int(quantity)}{suffix}"
            return f"{quantity:.2f}{suffix}"
    return f"{nbytes}B"


def parse_mem_spec(spec: str) -> MemoryConfig:
    """Parse a ``--mem`` spec string into a :class:`MemoryConfig`.

    >>> parse_mem_spec("on,ram=2GiB").enabled
    True
    """
    text = spec.strip()
    if not text:
        raise MemSpecError("empty memory spec")
    kwargs: Dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise MemSpecError(f"empty fragment in memory spec {spec!r}")
        if "=" not in part:
            flag = part.lower()
            if flag == "on":
                kwargs["enabled"] = True
            elif flag == "off":
                kwargs["enabled"] = False
            else:
                raise MemSpecError(
                    f"unknown memory spec flag {part!r} (want 'on', 'off' or "
                    "key=value)"
                )
            continue
        key, _, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "ram":
                kwargs["node_ram_bytes"] = parse_size(value)
            elif key == "spill":
                kwargs["spill_watermark"] = float(value)
            elif key == "admit":
                kwargs["admission_watermark"] = float(value)
            elif key == "write_bw":
                kwargs["spill_write_bytes_per_s"] = float(parse_size(value))
            elif key == "read_bw":
                kwargs["spill_read_bytes_per_s"] = float(parse_size(value))
            elif key == "base":
                kwargs["spill_base_s"] = float(value)
            else:
                raise MemSpecError(f"unknown memory spec key {key!r}")
        except ValueError:
            raise MemSpecError(
                f"bad value for memory spec key {key!r}: {value!r}"
            ) from None
    try:
        return replace(MemoryConfig(), **kwargs)
    except ValueError as exc:
        raise MemSpecError(str(exc)) from None


def describe_memory(config: MemoryConfig) -> str:
    """Aligned text description of a policy (the CLI's output)."""
    lines = [
        "memory policy: "
        + ("spilling + backpressure ON" if config.enabled else "dormant (seed path)"),
        f"  node RAM ceiling   {format_size(config.node_ram_bytes) if config.node_ram_bytes is not None else 'testbed default (64GiB)'}",
        f"  spill watermark    {config.spill_watermark:.0%} of ceiling",
        f"  admit watermark    {config.admission_watermark:.0%} of ceiling",
        f"  spill write bw     {format_size(int(config.spill_write_bytes_per_s))}/s",
        f"  spill read bw      {format_size(int(config.spill_read_bytes_per_s))}/s",
        f"  per-spill base     {config.spill_base_s * 1e3:.1f}ms",
    ]
    if not config.enabled and config.node_ram_bytes is not None:
        lines.append(
            "  (RAM override applies even while dormant: allocations that "
            "do not fit fail hard)"
        )
    return "\n".join(lines)
