"""WEF under the workflow paradigm (Texera substitute).

The Figure 5 ensemble as a workflow: a tweet source feeds a custom
ensemble-training operator that fine-tunes the four framing models,
emitting one (model, epoch, loss) row per epoch into the results sink.

The four fine-tunings run *sequentially inside one operator* with
``framework_cores=1``: the paper observes that "WEF did not use a
distributed training algorithm, each paradigm was executing it with no
parallelism" (Section IV-E), and indeed measured near-identical times
on both platforms (Figure 13b).  Had the ensemble been split into four
concurrent training operators, the workflow would have finished ~4x
earlier — which the paper's numbers rule out.

The module doubles as the repository's example of a *custom* logical
operator built on the public extension API
(:class:`repro.workflow.LogicalOperator`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.cluster import Cluster
from repro.datasets.wildfire import FRAMINGS, LabeledTweet
from repro.relational import Schema, Tuple
from repro.tasks.base import PARADIGM_WORKFLOW, TaskRun, run_trace_of, task_spec
from repro.tasks.wef.common import (
    LOSS_SCHEMA,
    WEF_COSTS,
    make_framing_model,
    tweets_table,
)
from repro.workflow import LogicalOperator, OperatorExecutor, Workflow, run_workflow
from repro.workflow.spec import (
    SPEC_VERSION,
    build_workflow,
    param_form,
    register_operator_type,
)

__all__ = [
    "EnsembleTrainOperator",
    "build_wef_workflow",
    "run_wef_workflow",
    "wef_spec_dict",
]


class _EnsembleTrainExecutor(OperatorExecutor):
    def __init__(self, operator: "EnsembleTrainOperator") -> None:
        super().__init__()
        self._op = operator
        self._rows: List[Tuple] = []

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        self._rows.append(row)
        return ()

    def on_finish(self, port: int) -> Iterable[Tuple]:
        out: List[Tuple] = []
        for index, framing in enumerate(FRAMINGS):
            model = make_framing_model(index)
            pairs = [
                (row["text"], row[f"label_{index}"]) for row in self._rows
            ]
            for epoch in range(self._op.epochs):
                loss = model.train_epoch(pairs, self._op.learning_rate)
                self.charge_flops(
                    sum(model.train_step_flops(text) for text, _ in pairs)
                )
                out.append(Tuple(LOSS_SCHEMA, [model.name, epoch, loss]))
            self._op.trained_models[framing] = model
        return out


class EnsembleTrainOperator(LogicalOperator):
    """Blocking operator fine-tuning the four WEF framing models.

    Sequential SGD over the collected tweets; ``framework_cores=1``
    because per-example gradient steps do not parallelize (same reason
    Ray's 1-CPU pinning costs the script nothing here).
    """

    def __init__(
        self,
        operator_id: str,
        epochs: int = WEF_COSTS.epochs,
        learning_rate: float = WEF_COSTS.learning_rate,
    ) -> None:
        super().__init__(
            operator_id,
            num_workers=1,
            per_tuple_work_s=1.0e-6,
            framework_cores=1,
        )
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.trained_models = {}

    @property
    def is_blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        schema.index_of("text")
        for index in range(len(FRAMINGS)):
            schema.index_of(f"label_{index}")
        return LOSS_SCHEMA

    def create_executor(self, worker_index: int = 0):
        return _EnsembleTrainExecutor(self)


# The spec layer refers to the custom operator by this type name — the
# extension hook GUI systems expose as "install a custom operator".
register_operator_type("wef_ensemble_train", EnsembleTrainOperator)


def wef_spec_dict() -> Dict[str, Any]:
    """The Figure 5 ensemble-training DAG as a spec document."""
    return {
        "spec": SPEC_VERSION,
        "name": "wef",
        "operators": [
            {
                "id": "tweets",
                "type": "table_source",
                "config": {"table": param_form("tweets")},
            },
            {
                "id": "train-framing-ensemble",
                "type": "wef_ensemble_train",
                "config": {},
            },
            {"id": "training-summary", "type": "sink", "config": {}},
        ],
        "links": [
            {"from": "tweets", "to": "train-framing-ensemble", "out": 0, "in": 0},
            {
                "from": "train-framing-ensemble",
                "to": "training-summary",
                "out": 0,
                "in": 0,
            },
        ],
    }


def build_wef_workflow(tweets: Sequence[LabeledTweet]) -> Workflow:
    """Compile the WEF spec with the tweet table bound at runtime."""
    spec = task_spec("wef.json", wef_spec_dict)
    return build_workflow(spec, {"tweets": tweets_table(tweets)})


def run_wef_workflow(cluster: Cluster, tweets: Sequence[LabeledTweet]) -> TaskRun:
    """Run the workflow-paradigm WEF task; returns its :class:`TaskRun`."""
    wf = build_wef_workflow(tweets)
    cluster.tracer.label_run("wef/workflow")
    result = run_workflow(cluster, wf)
    train = wf.operators["train-framing-ensemble"]
    return TaskRun(
        task="wef",
        paradigm=PARADIGM_WORKFLOW,
        output=result.table("training-summary"),
        elapsed_s=result.elapsed_s,
        num_workers=1,
        trace=run_trace_of(cluster),
        extras={
            "num_tweets": len(tweets),
            "models": dict(train.trained_models),
            "num_operators": wf.num_operators,
        },
    )
