"""Distributed WEF training — the case the paper excluded.

The paper drops WEF from the worker-scaling experiment because "under
this setting WEF becomes a distributed training task, which is not the
focus of this work" (Section IV-F).  This module implements that
excluded case as an extension: synchronous data-parallel fine-tuning
with per-epoch model averaging on the script runtime.

Each epoch: the driver broadcasts the current weights, every worker
runs one SGD epoch over its shard (charging its share of the FLOPs in
parallel), and the driver averages the returned parameters — classic
local-SGD/model-averaging.  The math is real: the averaged classifier
genuinely converges (tests assert above-chance held-out accuracy), it
just follows a different trajectory than sequential SGD.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cluster import Cluster
from repro.datasets.wildfire import FRAMINGS, LabeledTweet
from repro.rayx import TaskContext, run_script
from repro.relational import Table
from repro.tasks.base import PARADIGM_SCRIPT, TaskRun, run_trace_of
from repro.tasks.wef.common import (
    LOSS_SCHEMA,
    WEF_COSTS,
    make_framing_model,
    training_pairs,
)

__all__ = ["run_wef_distributed"]


def _train_shard(ctx: TaskContext, framing_index: int, weights, bias, shard):
    """Remote task: one local SGD epoch from the broadcast parameters."""
    model = make_framing_model(framing_index)
    model.weights = np.array(weights)
    model.bias = bias
    model.fitted = True
    loss = model.train_epoch(shard, WEF_COSTS.learning_rate)
    yield from ctx.model_compute(
        sum(model.train_step_flops(text) for text, _ in shard)
    )
    return model.weights, model.bias, loss, len(shard)


def _shards(pairs: Sequence, pieces: int) -> List[List]:
    shards = [list(pairs[i::pieces]) for i in range(pieces)]
    return [shard for shard in shards if shard]


def run_wef_distributed(
    cluster: Cluster, tweets: Sequence[LabeledTweet], num_cpus: int = 2
) -> TaskRun:
    """Data-parallel WEF fine-tuning with per-epoch model averaging."""
    if num_cpus < 1:
        raise ValueError(f"num_cpus must be >= 1, got {num_cpus}")

    def driver(rt):
        rows = []
        models = {}
        for index, framing in enumerate(FRAMINGS):
            pairs = training_pairs(tweets, index)
            shards = _shards(pairs, num_cpus)
            model = make_framing_model(index)
            for epoch in range(WEF_COSTS.epochs):
                refs = [
                    rt.submit(
                        _train_shard,
                        index,
                        model.weights.tolist(),
                        model.bias,
                        shard,
                        label=f"{framing}-shard",
                    )
                    for shard in shards
                ]
                results = yield from rt.get_all(refs)
                total = sum(count for _w, _b, _l, count in results)
                # Example-weighted parameter average (local SGD).
                model.weights = sum(
                    np.asarray(w) * (count / total)
                    for w, _b, _l, count in results
                )
                model.bias = sum(b * (count / total) for _w, b, _l, count in results)
                model.fitted = True
                mean_loss = sum(
                    loss * (count / total) for _w, _b, loss, count in results
                )
                rows.append([framing, epoch, float(mean_loss)])
            models[framing] = model
        return Table.from_rows(LOSS_SCHEMA, rows), models

    cluster.tracer.label_run("wef-distributed/script")
    start = cluster.env.now
    output, models = run_script(cluster, driver, num_cpus=num_cpus)
    return TaskRun(
        task="wef-distributed",
        paradigm=PARADIGM_SCRIPT,
        output=output,
        elapsed_s=cluster.env.now - start,
        num_workers=num_cpus,
        trace=run_trace_of(cluster),
        extras={"num_tweets": len(tweets), "models": models},
    )
