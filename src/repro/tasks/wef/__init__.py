"""WEF: wildfire-framing ensemble training (paper Section II-B)."""

from repro.tasks.wef.common import LOSS_SCHEMA, WEF_COSTS, reference_wef
from repro.tasks.wef.script import run_wef_script
from repro.tasks.wef.workflow import (
    EnsembleTrainOperator,
    build_wef_workflow,
    run_wef_workflow,
)

__all__ = [
    "LOSS_SCHEMA",
    "WEF_COSTS",
    "reference_wef",
    "run_wef_script",
    "EnsembleTrainOperator",
    "build_wef_workflow",
    "run_wef_workflow",
]
