"""WEF under the script paradigm (Jupyter + Ray substitute).

One remote task per framing model.  With the paper's ``num_cpus=1``
setting the four fine-tunings run back-to-back; Ray pins the framework
to one core, so each training step costs its full single-core FLOPs.
Each trained model artifact is written to the object store (440 MB
BERT), which is the script side's small overhead versus the workflow
(Figure 13b's few-percent gap).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cluster import Cluster
from repro.datasets.wildfire import FRAMINGS, LabeledTweet
from repro.rayx import TaskContext, run_script
from repro.relational import Table
from repro.tasks.base import PARADIGM_SCRIPT, TaskRun, run_trace_of
from repro.tasks.wef.common import (
    LOSS_SCHEMA,
    WEF_COSTS,
    make_framing_model,
    training_pairs,
)

__all__ = ["run_wef_script"]


def _train_framing(ctx: TaskContext, framing_index: int, tweets: Sequence[LabeledTweet]):
    """Remote task: fine-tune one framing model; store the artifact."""
    model = make_framing_model(framing_index)
    pairs = training_pairs(tweets, framing_index)
    losses: List[float] = []
    for _epoch in range(WEF_COSTS.epochs):
        # Real SGD epoch; charged at single-core (Ray-pinned) speed.
        losses.append(model.train_epoch(pairs, WEF_COSTS.learning_rate))
        yield from ctx.model_compute(
            sum(model.train_step_flops(text) for text, _ in pairs)
        )
    # Returning the model stores the trained 440 MB artifact in the
    # object store (the script side's overhead vs the workflow).
    return model.name, losses, model


def run_wef_script(
    cluster: Cluster, tweets: Sequence[LabeledTweet], num_cpus: int = 1
) -> TaskRun:
    """Run the script-paradigm WEF task; returns its :class:`TaskRun`."""

    def driver(rt):
        refs = [
            rt.submit(_train_framing, index, tweets, label=f"train-{FRAMINGS[index]}")
            for index in range(len(FRAMINGS))
        ]
        results = yield from rt.get_all(refs)
        rows = []
        models = {}
        for name, losses, model in results:
            models[name] = model
            for epoch, loss in enumerate(losses):
                rows.append([name, epoch, loss])
        return Table.from_rows(LOSS_SCHEMA, rows), models

    cluster.tracer.label_run("wef/script")
    start = cluster.env.now
    output, models = run_script(cluster, driver, num_cpus=num_cpus)
    return TaskRun(
        task="wef",
        paradigm=PARADIGM_SCRIPT,
        output=output,
        elapsed_s=cluster.env.now - start,
        num_workers=num_cpus,
        trace=run_trace_of(cluster),
        extras={"num_tweets": len(tweets), "models": models},
    )
