"""WEF (Task 2, model training): shared logic and cost model.

Wildfire Experience Framing fine-tunes four binary BERT classifiers —
one per climate framing — over expert-labeled tweets (paper Section
II-B, Figure 5).  Both paradigms train the *same* four models on the
same example order, so losses and post-training predictions are
bit-identical across paradigms (tests assert it); only the virtual time
differs.

Timing notes (paper Section IV-E): WEF is CPU-bound sequential SGD, so
neither paradigm parallelizes it — the workflow trains with
``framework_cores=1`` just like Ray's pinned PyTorch — and the two
platforms land within a few percent of each other (Figure 13b).  The
script's small extra cost is the Ray-side handling of the four trained
model artifacts through the object store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import ModelConfig, default_config
from repro.datasets.wildfire import FRAMINGS, LabeledTweet
from repro.ml.models.bert import SimBertClassifier
from repro.relational import FieldType, Schema, Table

__all__ = [
    "WefCosts",
    "WEF_COSTS",
    "TWEET_SCHEMA",
    "LOSS_SCHEMA",
    "tweets_table",
    "make_framing_model",
    "training_pairs",
    "reference_wef",
]


@dataclass(frozen=True)
class WefCosts:
    """Calibrated knobs for WEF."""

    #: Fine-tuning epochs per framing model.
    epochs: int = 3
    #: SGD learning rate.
    learning_rate: float = 0.5
    #: Per-framing-model seed offset (so the four models differ).
    seed_base: int = 100


WEF_COSTS = WefCosts()

TWEET_SCHEMA = Schema.of(
    tweet_id=FieldType.STRING,
    text=FieldType.STRING,
    label_0=FieldType.INT,
    label_1=FieldType.INT,
    label_2=FieldType.INT,
    label_3=FieldType.INT,
)

#: Both paradigms emit one row per (model, epoch).
LOSS_SCHEMA = Schema.of(
    model_name=FieldType.STRING,
    epoch=FieldType.INT,
    loss=FieldType.FLOAT,
)


def tweets_table(tweets: Sequence[LabeledTweet]) -> Table:
    """Tweets as a relational table with one column per framing label."""
    return Table.from_rows(
        TWEET_SCHEMA,
        ([t.tweet_id, t.text, *t.labels] for t in tweets),
    )


def make_framing_model(
    framing_index: int, model_config: ModelConfig = None
) -> SimBertClassifier:
    """The pre-trained BERT for one framing, deterministic per index."""
    if not 0 <= framing_index < len(FRAMINGS):
        raise ValueError(f"framing_index must be in [0, 4), got {framing_index}")
    return SimBertClassifier(
        name=FRAMINGS[framing_index],
        model_config=model_config or default_config().models,
        seed=WEF_COSTS.seed_base + framing_index,
    )


def training_pairs(
    tweets: Sequence[LabeledTweet], framing_index: int
) -> List[tuple]:
    """(text, binary label) pairs for one framing model."""
    return [(t.text, t.labels[framing_index]) for t in tweets]


def reference_wef(
    tweets: Sequence[LabeledTweet], epochs: int = None
) -> Dict[str, List[float]]:
    """Train the ensemble directly; returns per-model loss curves.

    The correctness oracle: both paradigms must produce exactly these
    losses, since they run the same SGD over the same order.
    """
    epochs = epochs or WEF_COSTS.epochs
    curves: Dict[str, List[float]] = {}
    for index, framing in enumerate(FRAMINGS):
        model = make_framing_model(index)
        curves[framing] = model.fit(
            training_pairs(tweets, index),
            epochs=epochs,
            learning_rate=WEF_COSTS.learning_rate,
        )
    return curves
