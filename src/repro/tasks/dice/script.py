"""DICE under the script paradigm (Jupyter + Ray substitute).

Mirrors the approach the paper sketches for the Notebook version
(Section III-B): load the annotations into in-memory hash tables and
loop over events probing them, then probe the per-document sentence
list for the containing sentence.  With ``num_cpus > 1`` the file pairs
are partitioned across remote tasks (the "manually build the support
infrastructure — data partitioning, result aggregation" the paper
describes), and the driver concatenates partial results serially.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.cluster import Cluster
from repro.datasets.maccrobat import CaseReport
from repro.rayx import TaskContext, run_script
from repro.relational import Table
from repro.storage.textio import split_sentences
from repro.tasks.base import PARADIGM_SCRIPT, TaskRun, run_trace_of
from repro.tasks.dice.common import (
    DICE_COSTS,
    OUTPUT_SCHEMA,
    entity_rows,
    event_rows,
    link_stage,
    resolve_stage,
)

__all__ = ["run_dice_script"]


def _wrangle_chunk(ctx: TaskContext, reports: Sequence[CaseReport]):
    """Remote task: full DICE wrangle over a partition of file pairs.

    The stages run back-to-back per pair — the sequential notebook
    cells — so the task pays the *sum* of the stage costs.
    """
    costs = DICE_COSTS
    out_rows: List[List[Any]] = []
    for report in reports:
        # Cell 1: parse the annotation file into entity/event tables.
        yield from ctx.compute(costs.parse_annotations_per_file_s)
        entities = {
            row[1]: row for row in entity_rows(report.doc_id, report.annotations)
        }
        events = event_rows(report.doc_id, report.annotations)

        # Cell 2: parse the text file and split sentences.
        yield from ctx.compute(costs.parse_text_per_file_s)
        sentences = split_sentences(report.doc_id, report.text)

        # Cell 3: filter events, resolve triggers/arguments against the
        # entity hash table.
        yield from ctx.compute(costs.wrangle_per_event_s * len(events))
        resolved = resolve_stage(entities, events)

        # Cell 4: probe the sentence list for each event's sentence.
        rows, candidates = link_stage(report.doc_id, resolved, sentences)
        yield from ctx.compute(
            costs.link_per_event_s * len(resolved)
            + costs.link_per_candidate_s * candidates
        )
        out_rows.extend(rows)
    return out_rows


def _chunk(reports: Sequence[CaseReport], pieces: int) -> List[List[CaseReport]]:
    chunks = [list(reports[i::pieces]) for i in range(pieces)]
    return [chunk for chunk in chunks if chunk]


def run_dice_script(
    cluster: Cluster, reports: Sequence[CaseReport], num_cpus: int = 1
) -> TaskRun:
    """Run the script-paradigm DICE task; returns its :class:`TaskRun`."""

    def driver(rt):
        chunks = _chunk(reports, num_cpus)
        refs = [
            rt.submit(_wrangle_chunk, chunk, label="dice-chunk") for chunk in chunks
        ]
        partials = yield from rt.get_all(refs)
        # Driver-side aggregation: the serial tail of the script.
        rows = [row for partial in partials for row in partial]
        yield from rt.driver_context.compute(DICE_COSTS.collect_per_row_s * len(rows))
        return Table.from_rows(OUTPUT_SCHEMA, rows)

    cluster.tracer.label_run("dice/script")
    start = cluster.env.now
    output = run_script(cluster, driver, num_cpus=num_cpus)
    return TaskRun(
        task="dice",
        paradigm=PARADIGM_SCRIPT,
        output=output,
        elapsed_s=cluster.env.now - start,
        num_workers=num_cpus,
        trace=run_trace_of(cluster),
        extras={"file_pairs": len(reports)},
    )
