"""DICE under the workflow paradigm (Texera substitute).

A faithful rendering of Figure 4 as an operator DAG: annotation and
text files are processed by separate branches, events are filtered and
split on "has arguments", the argument subset is joined with entities,
rejoined (union) with the held-out subset, and everything is linked to
its sentence by a doc-level join plus containment filter.

The stage cost constants are the same ones the script pays
(:class:`repro.tasks.dice.common.DiceCosts`); the workflow's advantage
in Figure 13a comes purely from pipelined execution.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster import Cluster
from repro.datasets.maccrobat import CaseReport
from repro.relational import FieldType, Schema, Tuple, udf_predicate
from repro.tasks.base import PARADIGM_WORKFLOW, TaskRun, run_trace_of
from repro.storage.textio import split_sentences
from repro.tasks.dice.common import (
    DICE_COSTS,
    ENTITY_SCHEMA,
    EVENT_SCHEMA,
    OUTPUT_SCHEMA,
    SENTENCE_SCHEMA,
    entity_rows,
    event_rows,
    file_pairs_table,
    has_argument,
    is_clinical_event,
    link_stage,
    resolve_stage,
    sentence_rows,
)
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import (
    FilterOperator,
    FlatMapOperator,
    HashJoinOperator,
    MapOperator,
    SinkOperator,
    TableSource,
    UnionOperator,
)

__all__ = [
    "build_dice_workflow",
    "build_dice_workflow_relational",
    "run_dice_workflow",
]

#: Events with their trigger entity resolved.
TRIGGERED_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    event_key=FieldType.STRING,
    trigger_type=FieldType.STRING,
    trigger_text=FieldType.STRING,
    trigger_start=FieldType.INT,
    trigger_end=FieldType.INT,
    arg_role=FieldType.STRING,
    arg_key=FieldType.STRING,
)

#: Both branches normalized, ready for sentence linking.
LINKED_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    event_key=FieldType.STRING,
    trigger_type=FieldType.STRING,
    trigger_text=FieldType.STRING,
    trigger_start=FieldType.INT,
    trigger_end=FieldType.INT,
    arg_role=FieldType.STRING,
    arg_text=FieldType.STRING,
)


def _to_triggered(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["text"],
        row["start"],
        row["end"],
        row["arg_role"],
        row["arg_key"],
    ]


def _arg_to_linked(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["trigger_text"],
        row["trigger_start"],
        row["trigger_end"],
        row["arg_role"],
        row["text"],  # resolved argument entity text
    ]


def _noarg_to_linked(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["trigger_text"],
        row["trigger_start"],
        row["trigger_end"],
        row["arg_role"],
        None,
    ]


def _contained(row: Tuple) -> bool:
    return (
        row["sentence_start"] <= row["trigger_start"]
        and row["trigger_end"] <= row["sentence_end"]
    )


def _to_output(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["trigger_text"],
        row["arg_role"],
        row["arg_text"],
        row["sentence_index"],
        row["sentence_text"],
    ]


#: Document bundles flowing through the default (paper-style) DAG.
PAIR_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    annotations=FieldType.ANY,
    text=FieldType.ANY,
)
PARSED_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    entities=FieldType.ANY,  # dict: entity_key -> ENTITY row
    events=FieldType.ANY,  # list of EVENT rows
    text=FieldType.ANY,
)
SPLIT_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    entities=FieldType.ANY,
    events=FieldType.ANY,
    sentences=FieldType.ANY,
)
RESOLVED_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    resolved=FieldType.ANY,
    sentences=FieldType.ANY,
)


def build_dice_workflow(
    reports: Sequence[CaseReport], num_workers: int = 1
) -> Workflow:
    """The paper-style DICE DAG: per-document bundles through UDF stages.

    Matches what the paper describes for the Texera implementation
    (Section III-B): Texera "requires passing copies of both the list
    of sentences and annotation table through each operator in which
    they are needed" — so each operator carries the per-document state
    forward in its output tuples.  No stage blocks globally, so the
    workflow's marginal cost is its bottleneck stage (sentence
    linking), which is the pipelining story of Figure 13a.
    """
    costs = DICE_COSTS
    wf = Workflow("dice")

    ann_src = wf.add_operator(
        TableSource(
            "ann-files",
            file_pairs_table(reports, "annotations"),
            per_tuple_work_s=costs.source_per_file_s,
        ).with_output_batch_size(1)
    )
    text_src = wf.add_operator(
        TableSource(
            "text-files",
            file_pairs_table(reports, "text"),
            per_tuple_work_s=costs.source_per_file_s,
        ).with_output_batch_size(1)
    )
    pair = wf.add_operator(
        HashJoinOperator(
            "pair-files",
            build_key="doc_id",
            probe_key="doc_id",
            num_workers=num_workers,
            per_tuple_work_s=1.0e-5,
        ).with_output_batch_size(1)
    )
    parse = wf.add_operator(
        MapOperator(
            "parse-annotations",
            PARSED_BUNDLE_SCHEMA,
            lambda row: [
                row["doc_id"],
                {e[1]: e for e in entity_rows(row["doc_id"], row["content_right"])},
                event_rows(row["doc_id"], row["content_right"]),
                row["content"],
            ],
            num_workers=num_workers,
            per_tuple_work_s=costs.parse_annotations_per_file_s,
        ).with_output_batch_size(1)
    )
    split = wf.add_operator(
        MapOperator(
            "split-sentences",
            SPLIT_BUNDLE_SCHEMA,
            lambda row: [
                row["doc_id"],
                row["entities"],
                row["events"],
                split_sentences(row["doc_id"], row["text"]),
            ],
            num_workers=num_workers,
            per_tuple_work_s=costs.parse_text_per_file_s,
        ).with_output_batch_size(1)
    )
    wrangle = wf.add_operator(
        MapOperator(
            "filter-and-join-events",
            RESOLVED_BUNDLE_SCHEMA,
            lambda row: [
                row["doc_id"],
                resolve_stage(row["entities"], row["events"]),
                row["sentences"],
            ],
            num_workers=num_workers,
            per_tuple_work_s=0.0,
            extra_seconds_fn=lambda row: costs.wrangle_per_event_s
            * len(row["events"]),
        ).with_output_batch_size(1)
    )
    link = wf.add_operator(
        FlatMapOperator(
            "link-sentences",
            OUTPUT_SCHEMA,
            lambda row: link_stage(row["doc_id"], row["resolved"], row["sentences"])[0],
            num_workers=num_workers,
            per_tuple_work_s=0.0,
            extra_seconds_fn=lambda row: costs.link_per_event_s
            * len(row["resolved"])
            + costs.link_per_candidate_s
            * link_stage(row["doc_id"], row["resolved"], row["sentences"])[1],
        ).with_output_batch_size(16)
    )
    sink = wf.add_operator(
        SinkOperator("view-results", per_tuple_work_s=costs.sink_per_row_s)
    )

    wf.link(ann_src, pair, input_port=0)  # build: annotation files
    wf.link(text_src, pair, input_port=1)  # probe: text files
    wf.link(pair, parse)
    wf.link(parse, split)
    wf.link(split, wrangle)
    wf.link(wrangle, link)
    wf.link(link, sink)
    return wf


def build_dice_workflow_relational(
    reports: Sequence[CaseReport], num_workers: int = 1
) -> Workflow:
    """Figure 4 as a fully relational DAG (ablation variant).

    Every wrangling step is its own filter/join/union operator.  This
    variant demonstrates the operator palette, but its two global hash
    joins are pipeline breakers on the build side, so it is *slower*
    than the document-bundle style the paper's Texera implementation
    used (see :func:`build_dice_workflow`); the ablation benchmark
    quantifies the difference.
    """
    costs = DICE_COSTS
    wf = Workflow("dice")

    # File-level tuples are heavy (a whole report each): stream them in
    # single-file batches so downstream stages pipeline at file grain.
    ann_src = wf.add_operator(
        TableSource(
            "ann-files", file_pairs_table(reports, "annotations")
        ).with_output_batch_size(1)
    )
    text_src = wf.add_operator(
        TableSource(
            "text-files", file_pairs_table(reports, "text")
        ).with_output_batch_size(1)
    )
    extract_entities = wf.add_operator(
        FlatMapOperator(
            "extract-entities",
            ENTITY_SCHEMA,
            lambda row: entity_rows(row["doc_id"], row["content"]),
            num_workers=num_workers,
            per_tuple_work_s=costs.parse_annotations_per_file_s * 0.6,
        ).with_output_batch_size(16)
    )
    extract_events = wf.add_operator(
        FlatMapOperator(
            "extract-events",
            EVENT_SCHEMA,
            lambda row: event_rows(row["doc_id"], row["content"]),
            num_workers=num_workers,
            per_tuple_work_s=costs.parse_annotations_per_file_s * 0.4,
        ).with_output_batch_size(16)
    )
    split = wf.add_operator(
        FlatMapOperator(
            "split-sentences",
            SENTENCE_SCHEMA,
            lambda row: sentence_rows(row["doc_id"], row["content"]),
            num_workers=num_workers,
            per_tuple_work_s=costs.parse_text_per_file_s,
        ).with_output_batch_size(16)
    )
    keep_clinical = wf.add_operator(
        FilterOperator(
            "filter-clinical-events",
            udf_predicate(is_clinical_event, "trigger_type is clinical"),
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.15,
        )
    )
    join_trigger = wf.add_operator(
        HashJoinOperator(
            "join-trigger-entity",
            build_key="entity_key",
            probe_key="trigger_key",
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.45,
        )
    )
    to_triggered = wf.add_operator(
        MapOperator(
            "normalize-triggered",
            TRIGGERED_SCHEMA,
            _to_triggered,
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.05,
        )
    )
    with_args = wf.add_operator(
        FilterOperator(
            "filter-has-arguments",
            udf_predicate(has_argument, "arg_key is not null"),
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.05,
        )
    )
    without_args = wf.add_operator(
        FilterOperator(
            "filter-held-out",
            udf_predicate(lambda r: not has_argument(r), "arg_key is null"),
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.05,
        )
    )
    join_args = wf.add_operator(
        HashJoinOperator(
            "join-argument-entity",
            build_key="entity_key",
            probe_key="arg_key",
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.25,
        )
    )
    arg_branch = wf.add_operator(
        MapOperator(
            "normalize-arguments",
            LINKED_SCHEMA,
            _arg_to_linked,
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.05,
        )
    )
    noarg_branch = wf.add_operator(
        MapOperator(
            "pad-held-out",
            LINKED_SCHEMA,
            _noarg_to_linked,
            num_workers=num_workers,
            per_tuple_work_s=costs.wrangle_per_event_s * 0.05,
        )
    )
    rejoin = wf.add_operator(UnionOperator("rejoin-held-out", num_workers=num_workers))
    link = wf.add_operator(
        HashJoinOperator(
            "link-sentences",
            build_key="doc_id",
            probe_key="doc_id",
            num_workers=num_workers,
            per_tuple_work_s=costs.link_per_event_s,
        )
    )
    contained = wf.add_operator(
        FilterOperator(
            "filter-containment",
            udf_predicate(_contained, "trigger span within sentence"),
            num_workers=num_workers,
            per_tuple_work_s=costs.link_per_candidate_s,
        )
    )
    shape_output = wf.add_operator(
        MapOperator(
            "format-maccrobat-ee",
            OUTPUT_SCHEMA,
            _to_output,
            num_workers=num_workers,
            per_tuple_work_s=costs.link_per_candidate_s * 0.2,
        )
    )
    sink = wf.add_operator(
        SinkOperator("view-results", per_tuple_work_s=costs.collect_per_row_s)
    )

    wf.link(ann_src, extract_entities)
    wf.link(ann_src, extract_events)
    wf.link(text_src, split)
    wf.link(extract_events, keep_clinical)
    wf.link(extract_entities, join_trigger, input_port=0)  # build
    wf.link(keep_clinical, join_trigger, input_port=1)  # probe
    wf.link(join_trigger, to_triggered)
    wf.link(to_triggered, with_args)
    wf.link(to_triggered, without_args)
    wf.link(extract_entities, join_args, input_port=0)  # build (reused)
    wf.link(with_args, join_args, input_port=1)  # probe
    wf.link(join_args, arg_branch)
    wf.link(arg_branch, rejoin, input_port=0)
    wf.link(noarg_branch, rejoin, input_port=1)
    wf.link(without_args, noarg_branch)
    wf.link(split, link, input_port=0)  # build: sentences
    wf.link(rejoin, link, input_port=1)  # probe: events
    wf.link(link, contained)
    wf.link(contained, shape_output)
    wf.link(shape_output, sink)
    return wf


def run_dice_workflow(
    cluster: Cluster,
    reports: Sequence[CaseReport],
    num_workers: int = 1,
    style: str = "document",
) -> TaskRun:
    """Run the workflow-paradigm DICE task; returns its :class:`TaskRun`.

    ``style`` picks the DAG: ``"document"`` (paper-style bundles,
    default) or ``"relational"`` (pure operator-palette ablation).
    """
    if style == "document":
        wf = build_dice_workflow(reports, num_workers=num_workers)
    elif style == "relational":
        wf = build_dice_workflow_relational(reports, num_workers=num_workers)
    else:
        raise ValueError(f"unknown DICE workflow style {style!r}")
    cluster.tracer.label_run("dice/workflow")
    result = run_workflow(cluster, wf)
    return TaskRun(
        task="dice",
        paradigm=PARADIGM_WORKFLOW,
        output=result.table("view-results"),
        elapsed_s=result.elapsed_s,
        num_workers=num_workers,
        trace=run_trace_of(cluster),
        extras={
            "file_pairs": len(reports),
            "num_operators": wf.num_operators,
            "progress": result.progress.snapshot(),
        },
    )
