"""DICE under the workflow paradigm (Texera substitute).

A faithful rendering of Figure 4 as an operator DAG: annotation and
text files are processed by separate branches, events are filtered and
split on "has arguments", the argument subset is joined with entities,
rejoined (union) with the held-out subset, and everything is linked to
its sentence by a doc-level join plus containment filter.

The stage cost constants are the same ones the script pays
(:class:`repro.tasks.dice.common.DiceCosts`); the workflow's advantage
in Figure 13a comes purely from pipelined execution.

Both DAG variants are *specs*: the canonical JSON documents live in
``examples/workflows/dice.json`` / ``dice_relational.json`` and this
module is a thin wrapper that loads them with the runtime bindings
(the parsed reports and the worker count).  The ``*_spec_dict``
generators below produce the identical documents — tests pin file ==
generator, so the JSON cannot drift from the Python-side schemas and
cost constants.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.cluster import Cluster
from repro.datasets.maccrobat import CaseReport
from repro.relational import FieldType, Schema, Tuple
from repro.storage.textio import split_sentences
from repro.tasks.base import PARADIGM_WORKFLOW, TaskRun, run_trace_of, task_spec
from repro.tasks.dice.common import (
    DICE_COSTS,
    ENTITY_SCHEMA,
    EVENT_SCHEMA,
    OUTPUT_SCHEMA,
    SENTENCE_SCHEMA,
    entity_rows,
    event_rows,
    file_pairs_table,
    has_argument,
    is_clinical_event,
    link_stage,
    resolve_stage,
    sentence_rows,
)
from repro.workflow import Workflow
from repro.workflow import run_workflow
from repro.workflow.spec import (
    SPEC_VERSION,
    build_workflow,
    callable_form,
    param_form,
    schema_form,
    udf_predicate_form,
)

__all__ = [
    "build_dice_workflow",
    "build_dice_workflow_relational",
    "dice_spec_dict",
    "dice_relational_spec_dict",
    "run_dice_workflow",
]

#: Events with their trigger entity resolved.
TRIGGERED_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    event_key=FieldType.STRING,
    trigger_type=FieldType.STRING,
    trigger_text=FieldType.STRING,
    trigger_start=FieldType.INT,
    trigger_end=FieldType.INT,
    arg_role=FieldType.STRING,
    arg_key=FieldType.STRING,
)

#: Both branches normalized, ready for sentence linking.
LINKED_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    event_key=FieldType.STRING,
    trigger_type=FieldType.STRING,
    trigger_text=FieldType.STRING,
    trigger_start=FieldType.INT,
    trigger_end=FieldType.INT,
    arg_role=FieldType.STRING,
    arg_text=FieldType.STRING,
)


def _to_triggered(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["text"],
        row["start"],
        row["end"],
        row["arg_role"],
        row["arg_key"],
    ]


def _arg_to_linked(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["trigger_text"],
        row["trigger_start"],
        row["trigger_end"],
        row["arg_role"],
        row["text"],  # resolved argument entity text
    ]


def _noarg_to_linked(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["trigger_text"],
        row["trigger_start"],
        row["trigger_end"],
        row["arg_role"],
        None,
    ]


def _contained(row: Tuple) -> bool:
    return (
        row["sentence_start"] <= row["trigger_start"]
        and row["trigger_end"] <= row["sentence_end"]
    )


def _not_has_argument(row: Tuple) -> bool:
    return not has_argument(row)


def _to_output(row: Tuple):
    return [
        row["doc_id"],
        row["event_key"],
        row["trigger_type"],
        row["trigger_text"],
        row["arg_role"],
        row["arg_text"],
        row["sentence_index"],
        row["sentence_text"],
    ]


#: Document bundles flowing through the default (paper-style) DAG.
PAIR_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    annotations=FieldType.ANY,
    text=FieldType.ANY,
)
PARSED_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    entities=FieldType.ANY,  # dict: entity_key -> ENTITY row
    events=FieldType.ANY,  # list of EVENT rows
    text=FieldType.ANY,
)
SPLIT_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    entities=FieldType.ANY,
    events=FieldType.ANY,
    sentences=FieldType.ANY,
)
RESOLVED_BUNDLE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    resolved=FieldType.ANY,
    sentences=FieldType.ANY,
)


# -- bundle-stage UDFs (spec-addressable; formerly inline lambdas) ------------


def _parse_bundle(row: Tuple):
    return [
        row["doc_id"],
        {e[1]: e for e in entity_rows(row["doc_id"], row["content_right"])},
        event_rows(row["doc_id"], row["content_right"]),
        row["content"],
    ]


def _split_bundle(row: Tuple):
    return [
        row["doc_id"],
        row["entities"],
        row["events"],
        split_sentences(row["doc_id"], row["text"]),
    ]


def _wrangle_bundle(row: Tuple):
    return [
        row["doc_id"],
        resolve_stage(row["entities"], row["events"]),
        row["sentences"],
    ]


def _wrangle_seconds(row: Tuple) -> float:
    return DICE_COSTS.wrangle_per_event_s * len(row["events"])


def _link_rows(row: Tuple):
    return link_stage(row["doc_id"], row["resolved"], row["sentences"])[0]


def _link_seconds(row: Tuple) -> float:
    return DICE_COSTS.link_per_event_s * len(row["resolved"]) + (
        DICE_COSTS.link_per_candidate_s
        * link_stage(row["doc_id"], row["resolved"], row["sentences"])[1]
    )


# -- relational-stage UDFs ----------------------------------------------------


def _entity_rows_of(row: Tuple):
    return entity_rows(row["doc_id"], row["content"])


def _event_rows_of(row: Tuple):
    return event_rows(row["doc_id"], row["content"])


def _sentence_rows_of(row: Tuple):
    return sentence_rows(row["doc_id"], row["content"])


# -- the spec documents -------------------------------------------------------


def dice_spec_dict() -> Dict[str, Any]:
    """The paper-style DICE DAG: per-document bundles through UDF stages.

    Matches what the paper describes for the Texera implementation
    (Section III-B): Texera "requires passing copies of both the list
    of sentences and annotation table through each operator in which
    they are needed" — so each operator carries the per-document state
    forward in its output tuples.  No stage blocks globally, so the
    workflow's marginal cost is its bottleneck stage (sentence
    linking), which is the pipelining story of Figure 13a.
    """
    costs = DICE_COSTS
    return {
        "spec": SPEC_VERSION,
        "name": "dice",
        "operators": [
            {
                "id": "ann-files",
                "type": "table_source",
                "config": {
                    "table": param_form("ann_files"),
                    "per_tuple_work_s": costs.source_per_file_s,
                    "output_batch_size": 1,
                },
            },
            {
                "id": "text-files",
                "type": "table_source",
                "config": {
                    "table": param_form("text_files"),
                    "per_tuple_work_s": costs.source_per_file_s,
                    "output_batch_size": 1,
                },
            },
            {
                "id": "pair-files",
                "type": "hash_join",
                "config": {
                    "build_key": "doc_id",
                    "probe_key": "doc_id",
                    "num_workers": param_form("num_workers"),
                    "per_tuple_work_s": 1.0e-5,
                    "output_batch_size": 1,
                },
            },
            {
                "id": "parse-annotations",
                "type": "map",
                "config": {
                    "output_schema": schema_form(PARSED_BUNDLE_SCHEMA),
                    "fn": callable_form(_parse_bundle),
                    "num_workers": param_form("num_workers"),
                    "per_tuple_work_s": costs.parse_annotations_per_file_s,
                    "output_batch_size": 1,
                },
            },
            {
                "id": "split-sentences",
                "type": "map",
                "config": {
                    "output_schema": schema_form(SPLIT_BUNDLE_SCHEMA),
                    "fn": callable_form(_split_bundle),
                    "num_workers": param_form("num_workers"),
                    "per_tuple_work_s": costs.parse_text_per_file_s,
                    "output_batch_size": 1,
                },
            },
            {
                "id": "filter-and-join-events",
                "type": "map",
                "config": {
                    "output_schema": schema_form(RESOLVED_BUNDLE_SCHEMA),
                    "fn": callable_form(_wrangle_bundle),
                    "num_workers": param_form("num_workers"),
                    "per_tuple_work_s": 0.0,
                    "extra_seconds_fn": callable_form(_wrangle_seconds),
                    "output_batch_size": 1,
                },
            },
            {
                "id": "link-sentences",
                "type": "flat_map",
                "config": {
                    "output_schema": schema_form(OUTPUT_SCHEMA),
                    "fn": callable_form(_link_rows),
                    "num_workers": param_form("num_workers"),
                    "per_tuple_work_s": 0.0,
                    "extra_seconds_fn": callable_form(_link_seconds),
                    "output_batch_size": 16,
                },
            },
            {
                "id": "view-results",
                "type": "sink",
                "config": {"per_tuple_work_s": costs.sink_per_row_s},
            },
        ],
        "links": [
            {"from": "ann-files", "to": "pair-files", "out": 0, "in": 0},
            {"from": "text-files", "to": "pair-files", "out": 0, "in": 1},
            {"from": "pair-files", "to": "parse-annotations", "out": 0, "in": 0},
            {"from": "parse-annotations", "to": "split-sentences", "out": 0, "in": 0},
            {
                "from": "split-sentences",
                "to": "filter-and-join-events",
                "out": 0,
                "in": 0,
            },
            {
                "from": "filter-and-join-events",
                "to": "link-sentences",
                "out": 0,
                "in": 0,
            },
            {"from": "link-sentences", "to": "view-results", "out": 0, "in": 0},
        ],
    }


def dice_relational_spec_dict() -> Dict[str, Any]:
    """Figure 4 as a fully relational DAG (ablation variant).

    Every wrangling step is its own filter/join/union operator.  This
    variant demonstrates the operator palette, but its two global hash
    joins are pipeline breakers on the build side, so it is *slower*
    than the document-bundle style the paper's Texera implementation
    used (see :func:`dice_spec_dict`); the ablation benchmark
    quantifies the difference.
    """
    costs = DICE_COSTS
    workers = param_form("num_workers")
    return {
        "spec": SPEC_VERSION,
        "name": "dice",
        "operators": [
            # File-level tuples are heavy (a whole report each): stream
            # them in single-file batches so downstream stages pipeline
            # at file grain.
            {
                "id": "ann-files",
                "type": "table_source",
                "config": {
                    "table": param_form("ann_files"),
                    "output_batch_size": 1,
                },
            },
            {
                "id": "text-files",
                "type": "table_source",
                "config": {
                    "table": param_form("text_files"),
                    "output_batch_size": 1,
                },
            },
            {
                "id": "extract-entities",
                "type": "flat_map",
                "config": {
                    "output_schema": schema_form(ENTITY_SCHEMA),
                    "fn": callable_form(_entity_rows_of),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.parse_annotations_per_file_s * 0.6,
                    "output_batch_size": 16,
                },
            },
            {
                "id": "extract-events",
                "type": "flat_map",
                "config": {
                    "output_schema": schema_form(EVENT_SCHEMA),
                    "fn": callable_form(_event_rows_of),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.parse_annotations_per_file_s * 0.4,
                    "output_batch_size": 16,
                },
            },
            {
                "id": "split-sentences",
                "type": "flat_map",
                "config": {
                    "output_schema": schema_form(SENTENCE_SCHEMA),
                    "fn": callable_form(_sentence_rows_of),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.parse_text_per_file_s,
                    "output_batch_size": 16,
                },
            },
            {
                "id": "filter-clinical-events",
                "type": "filter",
                "config": {
                    "predicate": udf_predicate_form(
                        is_clinical_event, "trigger_type is clinical"
                    ),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.15,
                },
            },
            {
                "id": "join-trigger-entity",
                "type": "hash_join",
                "config": {
                    "build_key": "entity_key",
                    "probe_key": "trigger_key",
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.45,
                },
            },
            {
                "id": "normalize-triggered",
                "type": "map",
                "config": {
                    "output_schema": schema_form(TRIGGERED_SCHEMA),
                    "fn": callable_form(_to_triggered),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.05,
                },
            },
            {
                "id": "filter-has-arguments",
                "type": "filter",
                "config": {
                    "predicate": udf_predicate_form(
                        has_argument, "arg_key is not null"
                    ),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.05,
                },
            },
            {
                "id": "filter-held-out",
                "type": "filter",
                "config": {
                    "predicate": udf_predicate_form(
                        _not_has_argument, "arg_key is null"
                    ),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.05,
                },
            },
            {
                "id": "join-argument-entity",
                "type": "hash_join",
                "config": {
                    "build_key": "entity_key",
                    "probe_key": "arg_key",
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.25,
                },
            },
            {
                "id": "normalize-arguments",
                "type": "map",
                "config": {
                    "output_schema": schema_form(LINKED_SCHEMA),
                    "fn": callable_form(_arg_to_linked),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.05,
                },
            },
            {
                "id": "pad-held-out",
                "type": "map",
                "config": {
                    "output_schema": schema_form(LINKED_SCHEMA),
                    "fn": callable_form(_noarg_to_linked),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.wrangle_per_event_s * 0.05,
                },
            },
            {
                "id": "rejoin-held-out",
                "type": "union",
                "config": {"num_workers": workers},
            },
            {
                "id": "link-sentences",
                "type": "hash_join",
                "config": {
                    "build_key": "doc_id",
                    "probe_key": "doc_id",
                    "num_workers": workers,
                    "per_tuple_work_s": costs.link_per_event_s,
                },
            },
            {
                "id": "filter-containment",
                "type": "filter",
                "config": {
                    "predicate": udf_predicate_form(
                        _contained, "trigger span within sentence"
                    ),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.link_per_candidate_s,
                },
            },
            {
                "id": "format-maccrobat-ee",
                "type": "map",
                "config": {
                    "output_schema": schema_form(OUTPUT_SCHEMA),
                    "fn": callable_form(_to_output),
                    "num_workers": workers,
                    "per_tuple_work_s": costs.link_per_candidate_s * 0.2,
                },
            },
            {
                "id": "view-results",
                "type": "sink",
                "config": {"per_tuple_work_s": costs.collect_per_row_s},
            },
        ],
        "links": [
            {"from": "ann-files", "to": "extract-entities", "out": 0, "in": 0},
            {"from": "ann-files", "to": "extract-events", "out": 0, "in": 0},
            {"from": "text-files", "to": "split-sentences", "out": 0, "in": 0},
            {
                "from": "extract-events",
                "to": "filter-clinical-events",
                "out": 0,
                "in": 0,
            },
            # build: entities
            {
                "from": "extract-entities",
                "to": "join-trigger-entity",
                "out": 0,
                "in": 0,
            },
            # probe: clinical events
            {
                "from": "filter-clinical-events",
                "to": "join-trigger-entity",
                "out": 0,
                "in": 1,
            },
            {
                "from": "join-trigger-entity",
                "to": "normalize-triggered",
                "out": 0,
                "in": 0,
            },
            {
                "from": "normalize-triggered",
                "to": "filter-has-arguments",
                "out": 0,
                "in": 0,
            },
            {
                "from": "normalize-triggered",
                "to": "filter-held-out",
                "out": 0,
                "in": 0,
            },
            # build: entities (reused)
            {
                "from": "extract-entities",
                "to": "join-argument-entity",
                "out": 0,
                "in": 0,
            },
            # probe: events with arguments
            {
                "from": "filter-has-arguments",
                "to": "join-argument-entity",
                "out": 0,
                "in": 1,
            },
            {
                "from": "join-argument-entity",
                "to": "normalize-arguments",
                "out": 0,
                "in": 0,
            },
            {
                "from": "normalize-arguments",
                "to": "rejoin-held-out",
                "out": 0,
                "in": 0,
            },
            {"from": "pad-held-out", "to": "rejoin-held-out", "out": 0, "in": 1},
            {"from": "filter-held-out", "to": "pad-held-out", "out": 0, "in": 0},
            # build: sentences
            {"from": "split-sentences", "to": "link-sentences", "out": 0, "in": 0},
            # probe: events
            {"from": "rejoin-held-out", "to": "link-sentences", "out": 0, "in": 1},
            {
                "from": "link-sentences",
                "to": "filter-containment",
                "out": 0,
                "in": 0,
            },
            {
                "from": "filter-containment",
                "to": "format-maccrobat-ee",
                "out": 0,
                "in": 0,
            },
            {
                "from": "format-maccrobat-ee",
                "to": "view-results",
                "out": 0,
                "in": 0,
            },
        ],
    }


def _bindings(reports: Sequence[CaseReport], num_workers: int) -> Dict[str, Any]:
    return {
        "ann_files": file_pairs_table(reports, "annotations"),
        "text_files": file_pairs_table(reports, "text"),
        "num_workers": num_workers,
    }


def build_dice_workflow(
    reports: Sequence[CaseReport], num_workers: int = 1
) -> Workflow:
    """Compile the paper-style DICE spec with runtime bindings."""
    spec = task_spec("dice.json", dice_spec_dict)
    return build_workflow(spec, _bindings(reports, num_workers))


def build_dice_workflow_relational(
    reports: Sequence[CaseReport], num_workers: int = 1
) -> Workflow:
    """Compile the relational-ablation DICE spec with runtime bindings."""
    spec = task_spec("dice_relational.json", dice_relational_spec_dict)
    return build_workflow(spec, _bindings(reports, num_workers))


def run_dice_workflow(
    cluster: Cluster,
    reports: Sequence[CaseReport],
    num_workers: int = 1,
    style: str = "document",
) -> TaskRun:
    """Run the workflow-paradigm DICE task; returns its :class:`TaskRun`.

    ``style`` picks the DAG: ``"document"`` (paper-style bundles,
    default) or ``"relational"`` (pure operator-palette ablation).
    """
    if style == "document":
        wf = build_dice_workflow(reports, num_workers=num_workers)
    elif style == "relational":
        wf = build_dice_workflow_relational(reports, num_workers=num_workers)
    else:
        raise ValueError(f"unknown DICE workflow style {style!r}")
    cluster.tracer.label_run("dice/workflow")
    result = run_workflow(cluster, wf)
    return TaskRun(
        task="dice",
        paradigm=PARADIGM_WORKFLOW,
        output=result.table("view-results"),
        elapsed_s=result.elapsed_s,
        num_workers=num_workers,
        trace=run_trace_of(cluster),
        extras={
            "file_pairs": len(reports),
            "num_operators": wf.num_operators,
            "progress": result.progress.snapshot(),
        },
    )
