"""DICE: the MACCROBAT-EE data wrangling task (paper Section II-A)."""

from repro.tasks.dice.common import DICE_COSTS, OUTPUT_SCHEMA, reference_dice
from repro.tasks.dice.script import run_dice_script
from repro.tasks.dice.workflow import (
    build_dice_workflow,
    build_dice_workflow_relational,
    run_dice_workflow,
)

__all__ = [
    "DICE_COSTS",
    "OUTPUT_SCHEMA",
    "reference_dice",
    "run_dice_script",
    "build_dice_workflow",
    "build_dice_workflow_relational",
    "run_dice_workflow",
]
