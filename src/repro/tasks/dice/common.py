"""DICE (Task 1, data wrangling): shared logic and cost model.

The task reproduces Figure 4 of the paper: MACCROBAT annotation files
and text files are processed separately; event annotations are filtered
(only clinical trigger types survive), the subset carrying arguments is
joined with entity annotations to resolve them, rejoined with the
held-out argument-less subset, triggers are resolved against entities,
and every event is finally linked to the sentence containing its
trigger span — producing MACCROBAT-EE rows.

Everything here is paradigm-neutral: the script and workflow modules
wire these same functions into their engines, so both paradigms compute
identical outputs (asserted in tests) at different virtual costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Sequence

from repro.datasets.maccrobat import EVENT_TRIGGER_TYPES, CaseReport
from repro.relational import FieldType, Schema, Table, Tuple
from repro.storage.brat import AnnotationDocument
from repro.storage.textio import Sentence, split_sentences

__all__ = [
    "DiceCosts",
    "DICE_COSTS",
    "FILE_SCHEMA",
    "ENTITY_SCHEMA",
    "EVENT_SCHEMA",
    "SENTENCE_SCHEMA",
    "OUTPUT_SCHEMA",
    "file_pairs_table",
    "entity_rows",
    "event_rows",
    "sentence_rows",
    "is_clinical_event",
    "has_argument",
    "reference_dice",
]


@dataclass(frozen=True)
class DiceCosts:
    """Calibrated virtual costs of the DICE stages.

    The same stage constants drive both paradigms: the script pays the
    *sum* of stages per file pair (sequential cells), the workflow pays
    each stage in its own pipelined operator, so its marginal cost is
    the *bottleneck* stage — the execution model, not the constants,
    produces the paper's Figure 13a gap.

    Values were fitted so the script side reproduces the paper's
    ~1.18 s/pair slope and the workflow side its ~0.51 s/pair slope
    (bottleneck = sentence linking).  The per-file parse costs are
    dominated by DICE's ML-based feature extraction over each report,
    which is why they dwarf pure text parsing.
    """

    parse_annotations_per_file_s: float = 0.33
    parse_text_per_file_s: float = 0.075
    #: Filtering + trigger/argument joins, per raw event row.
    wrangle_per_event_s: float = 0.012
    #: Sentence linking, per resolved event probed against sentences.
    link_per_event_s: float = 0.0385
    #: Containment check per (event, sentence) candidate pair.
    link_per_candidate_s: float = 0.0006
    #: Script driver-side result aggregation, per output row (serial).
    collect_per_row_s: float = 0.008
    #: Workflow source scan, per file (serial disk read).
    source_per_file_s: float = 0.012
    #: Workflow sink collection, per output row (single worker).
    sink_per_row_s: float = 0.015


DICE_COSTS = DiceCosts()


# -- schemas -------------------------------------------------------------------

FILE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    content=FieldType.ANY,  # parsed AnnotationDocument / raw text
)

ENTITY_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    entity_key=FieldType.STRING,  # "doc:T3" composite join key
    ann_type=FieldType.STRING,
    start=FieldType.INT,
    end=FieldType.INT,
    text=FieldType.STRING,
)

EVENT_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    event_key=FieldType.STRING,
    trigger_type=FieldType.STRING,
    trigger_key=FieldType.STRING,  # "doc:T3"
    arg_role=FieldType.STRING,  # None when the event has no arguments
    arg_key=FieldType.STRING,  # None when the event has no arguments
)

SENTENCE_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    sentence_index=FieldType.INT,
    sentence_start=FieldType.INT,
    sentence_end=FieldType.INT,
    sentence_text=FieldType.STRING,
)

#: MACCROBAT-EE: each event (with resolved trigger/argument) linked to
#: its sentence.
OUTPUT_SCHEMA = Schema.of(
    doc_id=FieldType.STRING,
    event_key=FieldType.STRING,
    trigger_type=FieldType.STRING,
    trigger_text=FieldType.STRING,
    arg_role=FieldType.STRING,
    arg_text=FieldType.STRING,
    sentence_index=FieldType.INT,
    sentence_text=FieldType.STRING,
)


# -- row builders (paradigm-neutral parsing) ------------------------------------


def file_pairs_table(reports: Sequence[CaseReport], kind: str) -> Table:
    """The raw input "files" as a table: one row per report.

    ``kind`` is ``"annotations"`` (content = AnnotationDocument) or
    ``"text"`` (content = raw report text).
    """
    if kind == "annotations":
        rows = ([r.doc_id, r.annotations] for r in reports)
    elif kind == "text":
        rows = ([r.doc_id, r.text] for r in reports)
    else:
        raise ValueError(f"kind must be 'annotations' or 'text', got {kind!r}")
    return Table.from_rows(FILE_SCHEMA, rows)


def entity_rows(doc_id: str, annotations: AnnotationDocument) -> List[List[Any]]:
    """ENTITY_SCHEMA rows of one annotation document."""
    return [
        [doc_id, f"{doc_id}:{e.key}", e.ann_type, e.start, e.end, e.text]
        for e in annotations.entities
    ]


def event_rows(doc_id: str, annotations: AnnotationDocument) -> List[List[Any]]:
    """EVENT_SCHEMA rows: one row per (event, argument); events without
    arguments yield a single row with null argument fields."""
    rows: List[List[Any]] = []
    for event in annotations.events:
        trigger_key = f"{doc_id}:{event.trigger_ref}"
        if event.arguments:
            for role, ref in event.arguments:
                rows.append(
                    [doc_id, event.key, event.trigger_type, trigger_key, role,
                     f"{doc_id}:{ref}"]
                )
        else:
            rows.append(
                [doc_id, event.key, event.trigger_type, trigger_key, None, None]
            )
    return rows


def sentence_rows(doc_id: str, text: str) -> List[List[Any]]:
    """SENTENCE_SCHEMA rows of one report text."""
    return [
        [doc_id, s.index, s.start, s.end, s.text]
        for s in split_sentences(doc_id, text)
    ]


# -- predicates --------------------------------------------------------------------


def is_clinical_event(row: Tuple) -> bool:
    """DICE's event filter: keep clinical trigger types only."""
    return row["trigger_type"] in EVENT_TRIGGER_TYPES


def has_argument(row: Tuple) -> bool:
    """Split condition: events carrying an argument reference."""
    return row["arg_key"] is not None


# -- per-document stage functions (shared by both paradigms) ----------------------------


def resolve_stage(
    entities_by_key: dict, events: Iterable[Sequence[Any]]
) -> List[tuple]:
    """Filter clinical events and resolve trigger/argument references.

    ``entities_by_key`` maps composite entity keys to ENTITY_SCHEMA
    rows; ``events`` are EVENT_SCHEMA rows.  Returns tuples of
    ``(event_key, trigger_type, trigger_row, arg_role, arg_text)``.
    """
    resolved = []
    for _doc_id, event_key, trigger_type, trigger_key, arg_role, arg_key in events:
        if trigger_type not in EVENT_TRIGGER_TYPES:
            continue
        trigger = entities_by_key[trigger_key]
        arg_text = entities_by_key[arg_key][5] if arg_key else None
        resolved.append((event_key, trigger_type, trigger, arg_role, arg_text))
    return resolved


def link_stage(
    doc_id: str, resolved: Sequence[tuple], sentences: Sequence[Sentence]
) -> tuple:
    """Link each resolved event to its containing sentence.

    Returns ``(output_rows, candidates_checked)`` — the candidate count
    drives the containment-check cost in both paradigms.
    """
    out_rows: List[List[Any]] = []
    candidates = 0
    for event_key, trigger_type, trigger, arg_role, arg_text in resolved:
        for sentence in sentences:
            candidates += 1
            if sentence.contains_span(trigger[3], trigger[4]):
                out_rows.append(
                    [
                        doc_id,
                        event_key,
                        trigger_type,
                        trigger[5],
                        arg_role,
                        arg_text,
                        sentence.index,
                        sentence.text,
                    ]
                )
                break
    return out_rows, candidates


# -- reference implementation (correctness oracle) -------------------------------------


def reference_dice(reports: Sequence[CaseReport]) -> Table:
    """Direct single-pass implementation of the whole wrangle.

    Used by tests as the oracle both engine implementations must match,
    and by the quickstart example as "what DICE computes".
    """
    out_rows: List[Tuple] = []
    for report in reports:
        entities = report.annotations.entity_index()
        sentences = split_sentences(report.doc_id, report.text)
        for event in report.annotations.events:
            if event.trigger_type not in EVENT_TRIGGER_TYPES:
                continue
            trigger = entities[event.trigger_ref]
            sentence = next(
                (
                    s
                    for s in sentences
                    if s.contains_span(trigger.start, trigger.end)
                ),
                None,
            )
            if sentence is None:
                continue
            arguments: Iterable = event.arguments or ((None, None),)
            for role, ref in arguments:
                arg_text = entities[ref].text if ref else None
                out_rows.append(
                    Tuple(
                        OUTPUT_SCHEMA,
                        [
                            report.doc_id,
                            event.key,
                            event.trigger_type,
                            trigger.text,
                            role,
                            arg_text,
                            sentence.index,
                            sentence.text,
                        ],
                    )
                )
    return Table(OUTPUT_SCHEMA, out_rows)
