"""The paper's four data science tasks, each under both paradigms.

===========  =====================  ==========================================
Task         Stage                  Entry points
===========  =====================  ==========================================
DICE         data wrangling         :func:`repro.tasks.dice.run_dice_script`,
                                    :func:`repro.tasks.dice.run_dice_workflow`
WEF          model training         :func:`repro.tasks.wef.run_wef_script`,
                                    :func:`repro.tasks.wef.run_wef_workflow`
GOTTA        one-step inference     :func:`repro.tasks.gotta.run_gotta_script`,
                                    :func:`repro.tasks.gotta.run_gotta_workflow`
KGE          multi-step inference   :func:`repro.tasks.kge.run_kge_script`,
                                    :func:`repro.tasks.kge.run_kge_workflow`
===========  =====================  ==========================================
"""

from repro.tasks.base import PARADIGM_SCRIPT, PARADIGM_WORKFLOW, TaskRun, fresh_cluster

__all__ = ["PARADIGM_SCRIPT", "PARADIGM_WORKFLOW", "TaskRun", "fresh_cluster"]
