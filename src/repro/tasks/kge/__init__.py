"""KGE: knowledge-graph purchase prediction (paper Section II-D)."""

from repro.tasks.kge.common import (
    KGE_COSTS,
    RESULT_SCHEMA,
    KgeDataset,
    make_kge_dataset,
    reference_kge,
)
from repro.tasks.kge.script import run_kge_script
from repro.tasks.kge.workflow import (
    STAGE_FUSIONS,
    KgeStageOperator,
    build_kge_workflow,
    run_kge_workflow,
)

__all__ = [
    "KGE_COSTS",
    "RESULT_SCHEMA",
    "KgeDataset",
    "make_kge_dataset",
    "reference_kge",
    "run_kge_script",
    "STAGE_FUSIONS",
    "KgeStageOperator",
    "build_kge_workflow",
    "run_kge_workflow",
]
