"""KGE (Task 4, multi-step inference): shared logic and cost model.

The Figure 7 pipeline: candidate Amazon products are filtered for
availability, matched with their embeddings from a 375 MB knowledge
graph model, scored against the target user, ranked, and fed through a
reverse lookup that recovers the recommended products from their
embeddings.

Experiment surface
------------------
* the standard comparison (Fig 13c / 14c) runs the 5-stage pipeline;
* Fig 12b varies how the five stages are fused into 1–6 operators
  (:mod:`repro.tasks.kge.workflow` builds every fusion);
* Table I swaps the Python table-join operator for a nine-operator
  Scala chain (:func:`repro.tasks.kge.workflow.build_kge_workflow`
  with ``join_language="scala"``).

The dataset trick that reproduces Table I's *vanishing* Scala
advantage: the embedding table is the **whole product universe**
(fixed, the 375 MB model), independent of how many candidates are
scored — so the language of the table-loading join changes a *fixed*
cost, which is ~25 % of a 6.8k-candidate run but ~1 % of a 68k run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


from repro.config import ModelConfig, default_config
from repro.datasets.amazon import (
    PURCHASE_RELATION,
    Product,
    build_kge_model,
    catalog_table,
    generate_catalog,
    user_ids,
)
from repro.ml.models.kge import TransEModel
from repro.relational import FieldType, Schema, Table

__all__ = [
    "KgeCosts",
    "KGE_COSTS",
    "KgeDataset",
    "make_kge_dataset",
    "EMBEDDED_SCHEMA",
    "SCORED_SCHEMA",
    "RESULT_SCHEMA",
    "reference_kge",
]


@dataclass(frozen=True)
class KgeCosts:
    """Calibrated per-stage virtual costs.

    Script-side constants reflect vectorized pandas/numpy steps (the
    paper's Section III-D point that the script "simply calls
    dataframe.merge"); workflow-side constants reflect per-tuple
    Python UDF execution, which is what makes the workflow KGE ~30 %
    slower (Fig 13c) despite identical logic.
    """

    top_k: int = 10

    # script (vectorized) per-candidate costs
    script_table_build_per_entity_s: float = 0.00005
    script_filter_per_product_s: float = 0.0004
    script_join_per_product_s: float = 0.0016
    script_score_per_product_s: float = 0.0112
    script_rank_per_product_s: float = 0.0010
    script_lookup_per_result_s: float = 0.0050

    # workflow (per-tuple UDF) declared works
    wf_filter_work_s: float = 0.0004
    wf_join_probe_work_s: float = 0.0028
    wf_score_work_s: float = 0.0200
    wf_rank_work_s: float = 0.0008
    wf_lookup_work_s: float = 0.0004
    #: Python join operator: open()-time embedding-table install,
    #: per universe entity (the fixed cost Table I's Scala swap saves).
    py_table_load_per_entity_s: float = 0.00042
    #: Scala chain: declared per-entity work of streaming the table.
    scala_table_work_per_entity_s: float = 0.00015


KGE_COSTS = KgeCosts()


EMBEDDED_SCHEMA = Schema.of(
    product_id=FieldType.STRING,
    name=FieldType.STRING,
    price=FieldType.FLOAT,
    embedding=FieldType.ANY,
)

SCORED_SCHEMA = Schema.of(
    product_id=FieldType.STRING,
    name=FieldType.STRING,
    embedding=FieldType.ANY,
    score=FieldType.FLOAT,
)

RESULT_SCHEMA = Schema.of(
    rank=FieldType.INT,
    product_id=FieldType.STRING,
    name=FieldType.STRING,
    score=FieldType.FLOAT,
)


@dataclass
class KgeDataset:
    """Everything one KGE run needs."""

    universe: List[Product]
    candidates: List[Product]
    candidates_table: Table
    model: TransEModel
    user_id: str
    names: Dict[str, str]  # product_id -> display name

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


def make_kge_dataset(
    num_candidates: int,
    universe_size: int = 68000,
    seed: int = 23,
    model_config: ModelConfig = None,
) -> KgeDataset:
    """Build the catalog universe, candidate subset and KGE model.

    The model (and hence the embedding table the join loads) always
    covers the whole universe — its size is the paper's fixed 375 MB
    regardless of the candidate count.
    """
    if not 1 <= num_candidates <= universe_size:
        raise ValueError(
            f"num_candidates must be in [1, {universe_size}], got {num_candidates}"
        )
    universe = generate_catalog(universe_size, seed=seed)
    candidates = universe[:num_candidates]
    users = user_ids(16)
    model = build_kge_model(universe, users, model_config or default_config().models)
    return KgeDataset(
        universe=universe,
        candidates=candidates,
        candidates_table=catalog_table(candidates),
        model=model,
        user_id=users[0],
        names={p.product_id: p.name for p in universe},
    )


def reference_kge(dataset: KgeDataset) -> Table:
    """Direct implementation of Figure 7 (correctness oracle)."""
    model = dataset.model
    in_stock = [p for p in dataset.candidates if p.in_stock]
    scored = [
        (
            p,
            model.embedding_of(p.product_id),
            model.score(
                dataset.user_id,
                PURCHASE_RELATION,
                model.embedding_of(p.product_id),
            ),
        )
        for p in in_stock
    ]
    scored.sort(key=lambda item: (-item[2], item[0].product_id))
    rows = []
    for position, (product, embedding, score) in enumerate(
        scored[: KGE_COSTS.top_k], start=1
    ):
        recovered = model.reverse_lookup(embedding)
        rows.append([position, recovered, dataset.names[recovered], score])
    return Table.from_rows(RESULT_SCHEMA, rows)
