"""KGE under the script paradigm (Jupyter + Ray substitute).

The driver loads the 375 MB KGE model, uploads it to the object store,
and submits one scoring task per ``num_cpus`` partition of the
candidates.  Each task dereferences the model, builds the embedding
lookup table in memory (vectorized — the paper's
``dataframe.merge``), filters, joins, scores and keeps a partial
top-K.  The driver merges partial top-Ks, takes the global top-K and
reverse-looks-up the recommended products.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cluster import Cluster
from repro.datasets.amazon import PURCHASE_RELATION, Product
from repro.rayx import TaskContext, run_script
from repro.relational import Table
from repro.tasks.base import PARADIGM_SCRIPT, TaskRun, run_trace_of
from repro.tasks.kge.common import KGE_COSTS, RESULT_SCHEMA, KgeDataset

__all__ = ["run_kge_script"]


def _score_chunk(ctx: TaskContext, model_refs, user_id: str, products: Sequence[Product]):
    """Remote task: score one candidate partition, return partial top-K."""
    costs = KGE_COSTS
    model = yield from ctx.get(model_refs[0])

    # Load the embedding table into memory (hash table, vectorized).
    yield from ctx.compute(costs.script_table_build_per_entity_s * model.num_entities)

    # Filter: drop unavailable candidates.
    yield from ctx.compute(costs.script_filter_per_product_s * len(products))
    in_stock = [p for p in products if p.in_stock]

    # Join: probe the embedding table (pandas merge).
    yield from ctx.compute(costs.script_join_per_product_s * len(in_stock))
    embedded = [(p, model.embedding_of(p.product_id)) for p in in_stock]

    # Score + partial rank.
    yield from ctx.compute(
        (costs.script_score_per_product_s + costs.script_rank_per_product_s)
        * len(embedded)
    )
    scored = [
        (p.product_id, emb, model.score(user_id, PURCHASE_RELATION, emb))
        for p, emb in embedded
    ]
    scored.sort(key=lambda item: (-item[2], item[0]))
    return scored[: costs.top_k]


def _chunk(products: Sequence[Product], pieces: int) -> List[List[Product]]:
    chunks = [list(products[i::pieces]) for i in range(pieces)]
    return [chunk for chunk in chunks if chunk]


def run_kge_script(
    cluster: Cluster, dataset: KgeDataset, num_cpus: int = 1
) -> TaskRun:
    """Run the script-paradigm KGE task; returns its :class:`TaskRun`."""
    costs = KGE_COSTS
    models_config = cluster.config.models

    def driver(rt):
        model = dataset.model
        yield from rt.driver_context.compute(
            models_config.load_seconds(model.payload_bytes())
        )
        model_ref = yield from rt.put(model, label="kge-model")
        refs = [
            rt.submit(_score_chunk, [model_ref], dataset.user_id, chunk,
                      label="kge-chunk")
            for chunk in _chunk(dataset.candidates, num_cpus)
        ]
        partials = yield from rt.get_all(refs)
        # Merge partial top-Ks, global rank, reverse lookup.
        merged = sorted(
            (item for partial in partials for item in partial),
            key=lambda item: (-item[2], item[0]),
        )[: costs.top_k]
        yield from rt.driver_context.compute(
            costs.script_lookup_per_result_s * len(merged)
        )
        rows = []
        for position, (_product_id, embedding, score) in enumerate(merged, start=1):
            recovered = model.reverse_lookup(embedding)
            rows.append([position, recovered, dataset.names[recovered], score])
        return Table.from_rows(RESULT_SCHEMA, rows)

    cluster.tracer.label_run("kge/script")
    start = cluster.env.now
    output = run_script(cluster, driver, num_cpus=num_cpus)
    return TaskRun(
        task="kge",
        paradigm=PARADIGM_SCRIPT,
        output=output,
        elapsed_s=cluster.env.now - start,
        num_workers=num_cpus,
        trace=run_trace_of(cluster),
        extras={"num_candidates": dataset.num_candidates},
    )
