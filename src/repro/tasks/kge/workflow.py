"""KGE under the workflow paradigm (Texera substitute).

Figure 7's five logical stages — availability filter, embedding-table
join, scoring, ranking, reverse lookup — rendered as workflow
operators, with two experiment axes:

* **Modularity (Fig 12b):** ``num_processing_ops`` fuses the stages
  into 1–6 operators.  Fused stages execute back-to-back inside one
  operator (no pipelining between them); split stages pipeline but add
  per-edge serialization.  The 6-operator variant splits the filter in
  two (availability / relevance), which adds overhead without moving
  the bottleneck — the paper's diminishing-returns point.
* **Language (Table I):** ``join_language="scala"`` replaces the
  single Python join with the paper's nine Scala operators
  implementing the same logic.  The Python join pays a fixed
  open()-time table install (the full product universe); the Scala
  chain streams the same table ~7x cheaper but adds two cross-language
  edges whose per-tuple bridge cost grows with the candidate count —
  which is why the Scala advantage collapses at 68k (Table I).

Each (fusion, language) variant is a spec document produced by
:func:`kge_spec_dict`; the default (5 ops, Python join) is committed
as ``examples/workflows/kge.json`` and pinned by a unit test.  The
dataset, model config and worker count bind at load time via
``$param``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.cluster import Cluster
from repro.datasets.amazon import PRODUCT_SCHEMA, PURCHASE_RELATION
from repro.errors import InvalidWorkflow
from repro.relational import FieldType, Schema, Table, Tuple
from repro.tasks.base import PARADIGM_WORKFLOW, TaskRun, run_trace_of, task_spec
from repro.tasks.kge.common import (
    EMBEDDED_SCHEMA,
    KGE_COSTS,
    RESULT_SCHEMA,
    SCORED_SCHEMA,
    KgeDataset,
)
from repro.workflow import LogicalOperator, OperatorExecutor, Workflow, run_workflow
from repro.workflow.language import OperatorLanguage
from repro.workflow.spec import (
    SPEC_VERSION,
    WorkflowSpec,
    build_workflow,
    callable_form,
    param_form,
    register_operator_type,
    schema_form,
)

__all__ = [
    "KgeStageOperator",
    "build_kge_workflow",
    "kge_spec_dict",
    "run_kge_workflow",
    "STAGE_FUSIONS",
]

#: Canonical stage order of Figure 7.
_STAGE_ORDER = ("filter", "join", "score", "rank", "lookup")

#: How ``num_processing_ops`` fuses the stages.
STAGE_FUSIONS: Dict[int, PyTuple[PyTuple[str, ...], ...]] = {
    1: (("filter", "join", "score", "rank", "lookup"),),
    2: (("filter",), ("join", "score", "rank", "lookup")),
    3: (("filter",), ("join",), ("score", "rank", "lookup")),
    4: (("filter",), ("join",), ("score",), ("rank", "lookup")),
    5: (("filter",), ("join",), ("score",), ("rank",), ("lookup",)),
    6: (
        ("filter_stock",),
        ("filter_relevance",),
        ("join",),
        ("score",),
        ("rank",),
        ("lookup",),
    ),
}

_STAGE_OUTPUT_SCHEMA = {
    "filter": PRODUCT_SCHEMA,
    "filter_stock": PRODUCT_SCHEMA,
    "filter_relevance": PRODUCT_SCHEMA,
    "join": EMBEDDED_SCHEMA,
    "score": SCORED_SCHEMA,
    "rank": SCORED_SCHEMA,
    "lookup": RESULT_SCHEMA,
}


class _KgeStageExecutor(OperatorExecutor):
    def __init__(self, operator: "KgeStageOperator") -> None:
        super().__init__()
        self._op = operator
        self._ranked_buffer: List[dict] = []

    def open(self) -> None:
        op = self._op
        costs = KGE_COSTS
        model_load = op.dataset.model.payload_bytes() / (
            op.models_config.disk_read_bytes_per_s
        )
        if "join" in op.stages:
            # Install the full-universe embedding table in-process.
            self.charge(
                model_load
                + costs.py_table_load_per_entity_s * op.dataset.model.num_entities
            )
        elif "score" in op.stages:
            # The scoring operator needs the model itself.
            self.charge(model_load)

    # -- per-tuple stages ---------------------------------------------------

    def _apply_streaming(self, record: dict) -> Optional[dict]:
        """Run this operator's pre-rank stages on one record."""
        op = self._op
        costs = KGE_COSTS
        model = op.dataset.model
        for stage in op.stages:
            if stage == "rank":
                break
            if stage == "filter":
                self.charge(costs.wf_filter_work_s)
                if not record["in_stock"]:
                    return None
            elif stage == "filter_stock":
                self.charge(costs.wf_filter_work_s * 0.5)
                if not record["in_stock"]:
                    return None
            elif stage == "filter_relevance":
                self.charge(costs.wf_filter_work_s * 0.5)
                if record["price"] <= 0:
                    return None
            elif stage == "join":
                self.charge(costs.wf_join_probe_work_s)
                record["embedding"] = model.embedding_of(record["product_id"])
            elif stage == "score":
                self.charge(costs.wf_score_work_s)
                record["score"] = model.score(
                    op.dataset.user_id, PURCHASE_RELATION, record["embedding"]
                )
        return record

    def _emit_record(self, record: dict) -> Tuple:
        schema = self._op.emit_schema
        return Tuple(schema, [record[name] for name in schema.names])

    def _lookup(self, record: dict, position: int) -> dict:
        self.charge(KGE_COSTS.wf_lookup_work_s)
        model = self._op.dataset.model
        recovered = model.reverse_lookup(record["embedding"])
        return {
            "rank": position,
            "product_id": recovered,
            "name": self._op.dataset.names[recovered],
            "score": record["score"],
        }

    def process_tuple(self, row: Tuple, port: int) -> Iterable[Tuple]:
        op = self._op
        record = self._apply_streaming(dict(row.as_dict()))
        if record is None:
            return
        if "rank" in op.stages:
            self.charge(KGE_COSTS.wf_rank_work_s)
            self._ranked_buffer.append(record)
            return
        if op.stages == ("lookup",):
            # Standalone lookup operator: position = arrival order
            # (input is already the ranked top-K).
            yield self._emit_record(self._lookup(record, len(self._ranked_buffer) + 1))
            self._ranked_buffer.append(record)
            return
        yield self._emit_record(record)

    def on_finish(self, port: int) -> Iterable[Tuple]:
        op = self._op
        if "rank" not in op.stages:
            return
        self._ranked_buffer.sort(
            key=lambda record: (-record["score"], record["product_id"])
        )
        top = self._ranked_buffer[: KGE_COSTS.top_k]
        if "lookup" in op.stages:
            for position, record in enumerate(top, start=1):
                yield self._emit_record(self._lookup(record, position))
        else:
            for record in top:
                yield self._emit_record(record)


class KgeStageOperator(LogicalOperator):
    """One fused group of Figure 7 stages."""

    def __init__(
        self,
        operator_id: str,
        dataset: KgeDataset,
        stages: Sequence[str],
        models_config,
        num_workers: int = 1,
    ) -> None:
        unknown = [s for s in stages if s not in _STAGE_OUTPUT_SCHEMA]
        if unknown:
            raise InvalidWorkflow(f"unknown KGE stages {unknown}")
        # Ranking is blocking and lookup relies on ranked arrival
        # order, so both run single-worker.
        serial = "rank" in stages or tuple(stages) == ("lookup",)
        super().__init__(
            operator_id,
            OperatorLanguage.PYTHON,
            num_workers=1 if serial else num_workers,
            per_tuple_work_s=0.0,
        )
        self.dataset = dataset
        self.stages = tuple(stages)
        self.models_config = models_config
        self.emit_schema = _STAGE_OUTPUT_SCHEMA[self.stages[-1]]

    @property
    def is_blocking(self) -> bool:
        return "rank" in self.stages

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return self.emit_schema

    def create_executor(self, worker_index: int = 0):
        return _KgeStageExecutor(self)


register_operator_type("kge_stage", KgeStageOperator)

#: Schema of the Scala chain's streamed embedding table.
_TABLE_SCHEMA = Schema.of(entity_id=FieldType.STRING, embedding=FieldType.ANY)


def _table_values(row: Tuple):
    return [row["entity_id"], row["embedding"]]


def _embedded_values(row: Tuple):
    return [row["product_id"], row["name"], row["price"], row["embedding"]]


def _row_values(row: Tuple):
    return list(row.values)


def _scala_join_operators(num_workers_form: Any) -> List[Dict[str, Any]]:
    """The paper's nine Scala operators implementing the table join."""
    costs = KGE_COSTS
    return [
        # 1-3: stream, project and partition the full embedding table.
        {
            "id": "scala-embedding-table",
            "type": "table_source",
            "config": {
                "table": param_form("embedding_table"),
                "language": "scala",
                "per_tuple_work_s": costs.scala_table_work_per_entity_s,
            },
        },
        {
            "id": "scala-project-table",
            "type": "projection",
            "config": {
                "columns": ["entity_id", "embedding"],
                "language": "scala",
                "per_tuple_work_s": 1.0e-5,
            },
        },
        {
            "id": "scala-partition-table",
            "type": "map",
            "config": {
                "output_schema": schema_form(_TABLE_SCHEMA),
                "fn": callable_form(_table_values),
                "language": "scala",
                "per_tuple_work_s": 1.0e-5,
                "num_workers": num_workers_form,
            },
        },
        # 4: the join itself.
        {
            "id": "scala-hash-join",
            "type": "hash_join",
            "config": {
                "build_key": "entity_id",
                "probe_key": "product_id",
                "language": "scala",
                "per_tuple_work_s": 6.0e-5,
                "build_extra_work_s": 2.0e-5,
                "num_workers": num_workers_form,
            },
        },
        # 5-9: normalize the join output back to the pipeline's shape.
        {
            "id": "scala-normalize",
            "type": "map",
            "config": {
                "output_schema": schema_form(EMBEDDED_SCHEMA),
                "fn": callable_form(_embedded_values),
                "language": "scala",
                "per_tuple_work_s": 1.0e-5,
                "num_workers": num_workers_form,
            },
        },
        {
            "id": "scala-validate",
            "type": "filter",
            "config": {
                "predicate": {
                    "$predicate": {"op": "is_not_null", "column": "embedding"}
                },
                "language": "scala",
                "per_tuple_work_s": 1.0e-5,
                "num_workers": num_workers_form,
            },
        },
        {
            "id": "scala-cast",
            "type": "map",
            "config": {
                "output_schema": schema_form(EMBEDDED_SCHEMA),
                "fn": callable_form(_row_values),
                "language": "scala",
                "per_tuple_work_s": 1.0e-5,
                "num_workers": num_workers_form,
            },
        },
        {
            "id": "scala-dedup-check",
            "type": "map",
            "config": {
                "output_schema": schema_form(EMBEDDED_SCHEMA),
                "fn": callable_form(_row_values),
                "language": "scala",
                "per_tuple_work_s": 1.0e-5,
                "num_workers": num_workers_form,
            },
        },
        {
            "id": "scala-format",
            "type": "projection",
            "config": {
                "columns": ["product_id", "name", "price", "embedding"],
                "language": "scala",
                "per_tuple_work_s": 1.0e-5,
                "num_workers": num_workers_form,
            },
        },
    ]


_SCALA_CHAIN_LINKS = [
    {"from": "scala-embedding-table", "to": "scala-project-table", "out": 0, "in": 0},
    {"from": "scala-project-table", "to": "scala-partition-table", "out": 0, "in": 0},
    # build: embedding table
    {"from": "scala-partition-table", "to": "scala-hash-join", "out": 0, "in": 0},
    {"from": "scala-hash-join", "to": "scala-normalize", "out": 0, "in": 0},
    {"from": "scala-normalize", "to": "scala-validate", "out": 0, "in": 0},
    {"from": "scala-validate", "to": "scala-cast", "out": 0, "in": 0},
    {"from": "scala-cast", "to": "scala-dedup-check", "out": 0, "in": 0},
    {"from": "scala-dedup-check", "to": "scala-format", "out": 0, "in": 0},
]


def kge_spec_dict(
    num_processing_ops: int = 5, join_language: str = "python"
) -> Dict[str, Any]:
    """The Figure 7 DAG for one (fusion, language) point as a spec."""
    if num_processing_ops not in STAGE_FUSIONS:
        raise InvalidWorkflow(
            f"num_processing_ops must be in {sorted(STAGE_FUSIONS)}, "
            f"got {num_processing_ops}"
        )
    if join_language not in ("python", "scala"):
        raise InvalidWorkflow(f"join_language must be python or scala")
    if join_language == "scala" and num_processing_ops != 3:
        raise InvalidWorkflow(
            "the Scala variant replaces the join of the 3-operator "
            "implementation (paper Section IV-D); use num_processing_ops=3"
        )
    workers = param_form("num_workers")
    operators: List[Dict[str, Any]] = [
        {
            "id": "candidates",
            "type": "table_source",
            "config": {"table": param_form("candidates"), "num_workers": 1},
        }
    ]
    links: List[Dict[str, Any]] = []
    upstream = "candidates"
    for group in STAGE_FUSIONS[num_processing_ops]:
        if join_language == "scala" and group == ("join",):
            operators.extend(_scala_join_operators(workers))
            links.extend(_SCALA_CHAIN_LINKS)
            # probe: products
            links.append(
                {"from": upstream, "to": "scala-hash-join", "out": 0, "in": 1}
            )
            upstream = "scala-format"
            continue
        stage_id = "-".join(group)
        operators.append(
            {
                "id": stage_id,
                "type": "kge_stage",
                "config": {
                    "dataset": param_form("dataset"),
                    "stages": list(group),
                    "models_config": param_form("models_config"),
                    "num_workers": workers,
                },
            }
        )
        links.append({"from": upstream, "to": stage_id, "out": 0, "in": 0})
        upstream = stage_id
    operators.append({"id": "recommendations", "type": "sink", "config": {}})
    links.append({"from": upstream, "to": "recommendations", "out": 0, "in": 0})
    return {
        "spec": SPEC_VERSION,
        "name": f"kge-{num_processing_ops}ops-{join_language}",
        "operators": operators,
        "links": links,
    }


def _default_kge_spec_dict() -> Dict[str, Any]:
    return kge_spec_dict(5, "python")


def build_kge_workflow(
    dataset: KgeDataset,
    num_processing_ops: int = 5,
    join_language: str = "python",
    num_workers: int = 1,
    models_config=None,
) -> Workflow:
    """Compile the Figure 7 spec with the requested fusion/language."""
    from repro.config import default_config

    models_config = models_config or default_config().models
    if (num_processing_ops, join_language) == (5, "python"):
        spec = task_spec("kge.json", _default_kge_spec_dict)
    else:
        spec = WorkflowSpec.from_json(kge_spec_dict(num_processing_ops, join_language))
    bindings: Dict[str, Any] = {
        "candidates": dataset.candidates_table,
        "dataset": dataset,
        "models_config": models_config,
        "num_workers": num_workers,
    }
    if join_language == "scala":
        bindings["embedding_table"] = Table.from_rows(
            _TABLE_SCHEMA,
            ([eid, emb] for eid, emb in dataset.model.embedding_table()),
        )
    return build_workflow(spec, bindings)


def run_kge_workflow(
    cluster: Cluster,
    dataset: KgeDataset,
    num_processing_ops: int = 5,
    join_language: str = "python",
    num_workers: int = 1,
) -> TaskRun:
    """Run the workflow-paradigm KGE task; returns its :class:`TaskRun`."""
    wf = build_kge_workflow(
        dataset,
        num_processing_ops=num_processing_ops,
        join_language=join_language,
        num_workers=num_workers,
        models_config=cluster.config.models,
    )
    cluster.tracer.label_run("kge/workflow")
    result = run_workflow(cluster, wf)
    return TaskRun(
        task="kge",
        paradigm=PARADIGM_WORKFLOW,
        output=result.table("recommendations"),
        elapsed_s=result.elapsed_s,
        num_workers=num_workers,
        trace=run_trace_of(cluster),
        extras={
            "num_candidates": dataset.num_candidates,
            "num_processing_ops": num_processing_ops,
            "join_language": join_language,
            "num_operators": wf.num_operators,
        },
    )
