"""Shared plumbing for the four paper tasks.

Each task lives in its own subpackage with three modules:

* ``common.py`` — the task's data logic as pure functions (one source
  of truth for *what* is computed), a reference implementation used as
  the correctness oracle, and the task's calibrated cost constants;
* ``script.py`` — the script-paradigm implementation on
  :mod:`repro.rayx` (the paper's Jupyter Notebook + Ray side);
* ``workflow.py`` — the workflow-paradigm implementation on
  :mod:`repro.workflow` (the paper's Texera side).

Both implementations of a task produce the same rows — integration
tests assert it — while accumulating different virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.cluster import Cluster, build_cluster
from repro.config import ReproConfig, default_config
from repro.obs.tracer import Tracer
from repro.relational import Table
from repro.sim import Environment
from repro.workflow.spec import WorkflowSpec, read_spec

__all__ = [
    "TaskRun",
    "fresh_cluster",
    "run_trace_of",
    "task_spec",
    "PARADIGM_SCRIPT",
    "PARADIGM_WORKFLOW",
]

#: Where the canonical task workflow specs live in a source checkout.
TASK_SPEC_DIR = Path(__file__).resolve().parents[3] / "examples" / "workflows"


def task_spec(
    filename: str, fallback: Callable[[], Dict[str, Any]]
) -> WorkflowSpec:
    """Load a task's canonical spec from ``examples/workflows/``.

    The committed JSON file is the source of truth in a checkout; when
    the package runs without the examples tree (e.g. installed
    elsewhere), ``fallback()`` regenerates the identical document — a
    unit test per task pins file == fallback so the two cannot drift.
    """
    path = TASK_SPEC_DIR / filename
    if path.is_file():
        return read_spec(path)
    return WorkflowSpec.from_json(fallback())

PARADIGM_SCRIPT = "script"
PARADIGM_WORKFLOW = "workflow"


@dataclass
class TaskRun:
    """Outcome of running one task under one paradigm."""

    task: str
    paradigm: str
    output: Table
    elapsed_s: float
    #: Parallelism setting (Ray num_cpus / Texera workers per operator).
    num_workers: int = 1
    #: Task-specific extras (losses, exact-match, operator count, ...).
    extras: Dict[str, Any] = field(default_factory=dict)
    #: The tracer that observed this run (None when tracing was off);
    #: feed it to :func:`repro.obs.format_breakdown` or
    #: :func:`repro.obs.write_chrome_trace`.
    trace: Optional[Tracer] = None

    def __repr__(self) -> str:
        return (
            f"<TaskRun {self.task}/{self.paradigm} "
            f"workers={self.num_workers} {self.elapsed_s:.2f}s "
            f"rows={len(self.output)}>"
        )


def fresh_cluster(
    config: Optional[ReproConfig] = None, tracer: Optional[Tracer] = None
) -> Cluster:
    """A new simulated testbed with its clock at zero.

    Every measurement in the experiment harness runs on a fresh
    cluster, mirroring how the paper timed each configuration from
    submission to completion.  ``tracer`` injects an observability
    tracer for this run; by default the globally installed tracer (or
    the no-op null tracer) is used.
    """
    return build_cluster(Environment(), config or default_config(), tracer=tracer)


def run_trace_of(cluster: Cluster) -> Optional[Tracer]:
    """The cluster's tracer if it recorded anything, else None.

    Task runners store this on :attr:`TaskRun.trace` so callers can
    tell "traced" from "untraced" runs without poking at the null
    tracer singleton.
    """
    return cluster.tracer if cluster.tracer.enabled else None
