"""GOTTA (Task 3, one-step inference): shared logic and cost model.

GOTTA answers few-shot questions with a 1.59 GB BART model after
augmenting the data with cloze statements (paper Section II-C, Figure
6).  The inference items are one row per (paragraph, prompt): each fact
contributes its natural question *and* its cloze form, and the model
runs one forward pass per item.

The timing story (paper Section IV-E) is entirely about where the big
model lives: the script uploads it into Ray's object store and pays a
per-access cost, and Ray pins PyTorch to 1 CPU; the workflow loads the
model once per worker and runs the forward pass unpinned across cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.config import ModelConfig, default_config
from repro.datasets.fsqa import FsqaParagraph
from repro.ml.metrics import exact_match
from repro.ml.models.bart import SimBartGenerator
from repro.relational import FieldType, Schema, Table

__all__ = [
    "GottaCosts",
    "GOTTA_COSTS",
    "ITEM_SCHEMA",
    "PREDICTION_SCHEMA",
    "inference_items",
    "items_table",
    "make_bart",
    "reference_gotta",
]


@dataclass(frozen=True)
class GottaCosts:
    """Calibrated knobs for GOTTA."""

    #: Extra per-worker model initialization in the workflow engine
    #: (installing the 1.59 GB model into the operator's process),
    #: on top of the disk read.
    worker_model_init_s: float = 16.5
    #: Per-item prompt/batch construction (the Figure 10 plumbing).
    prepare_per_item_s: float = 0.002
    #: Driver/controller-side answer evaluation, per item.
    evaluate_per_item_s: float = 0.001


GOTTA_COSTS = GottaCosts()

ITEM_SCHEMA = Schema.of(
    paragraph_id=FieldType.STRING,
    kind=FieldType.STRING,  # "question" | "cloze"
    prompt=FieldType.STRING,
    context=FieldType.STRING,
    gold=FieldType.STRING,
)

PREDICTION_SCHEMA = Schema.of(
    paragraph_id=FieldType.STRING,
    kind=FieldType.STRING,
    prompt=FieldType.STRING,
    gold=FieldType.STRING,
    prediction=FieldType.STRING,
    correct=FieldType.BOOL,
)


def make_bart(model_config: ModelConfig = None) -> SimBartGenerator:
    """The fine-tuned BART QA model (1.59 GB per the paper)."""
    return SimBartGenerator("gotta-bart", model_config or default_config().models)


def inference_items(paragraphs: Sequence[FsqaParagraph]) -> List[List]:
    """ITEM_SCHEMA rows: question + cloze per fact, paragraph order."""
    rows: List[List] = []
    for paragraph in paragraphs:
        for example in paragraph.examples:
            rows.append(
                [paragraph.paragraph_id, "question", example.question,
                 paragraph.context, example.answer]
            )
            rows.append(
                [paragraph.paragraph_id, "cloze", example.cloze,
                 paragraph.context, example.answer]
            )
    return rows


def items_table(paragraphs: Sequence[FsqaParagraph]) -> Table:
    """The inference items as a relational table."""
    return Table.from_rows(ITEM_SCHEMA, inference_items(paragraphs))


def reference_gotta(paragraphs: Sequence[FsqaParagraph]) -> Table:
    """Direct inference over all items (correctness oracle)."""
    model = make_bart()
    rows = []
    for pid, kind, prompt, context, gold in inference_items(paragraphs):
        prediction = model.generate(prompt, context)
        correct = prediction.strip().lower() == gold.strip().lower()
        rows.append([pid, kind, prompt, gold, prediction, correct])
    return Table.from_rows(PREDICTION_SCHEMA, rows)


def exact_match_of(output: Table) -> float:
    """Exact-match rate of a PREDICTION_SCHEMA table."""
    return exact_match(output.column("gold"), output.column("prediction"))
