"""GOTTA under the script paradigm (Jupyter + Ray substitute).

The driver loads the 1.59 GB BART from disk, uploads it into the
object store (``ray.put``), and submits one inference task per
paragraph.  Each task dereferences the model — paying the transfer the
first time its node sees the object, and the per-access mapping cost
every time — builds its batched inputs (the explicit Figure 10
construction), and runs one pinned single-core forward pass per item.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cluster import Cluster
from repro.datasets.fsqa import FsqaParagraph
from repro.ml.dataloader import DataLoader, TextDataset
from repro.rayx import TaskContext, run_script
from repro.relational import Table
from repro.tasks.base import PARADIGM_SCRIPT, TaskRun, run_trace_of
from repro.tasks.gotta.common import (
    GOTTA_COSTS,
    PREDICTION_SCHEMA,
    exact_match_of,
    inference_items,
    make_bart,
)

__all__ = ["run_gotta_script"]


def _infer_paragraph(ctx: TaskContext, model_refs, items: Sequence[List]):
    """Remote task: answer one paragraph's question/cloze items."""
    model = yield from ctx.get(model_refs[0])
    # Explicit batched dataset construction (Figure 10).
    loader = DataLoader(TextDataset(list(items)), batch_size=8)
    yield from ctx.compute(GOTTA_COSTS.prepare_per_item_s * len(items))
    rows = []
    for batch in loader:
        for pid, kind, prompt, context, gold in batch:
            # One pinned single-core forward pass per item.
            yield from ctx.model_compute(model.generation_flops(prompt, context))
            prediction = model.generate(prompt, context)
            correct = prediction.strip().lower() == gold.strip().lower()
            rows.append([pid, kind, prompt, gold, prediction, correct])
    return rows


def run_gotta_script(
    cluster: Cluster, paragraphs: Sequence[FsqaParagraph], num_cpus: int = 1
) -> TaskRun:
    """Run the script-paradigm GOTTA task; returns its :class:`TaskRun`."""
    models_config = cluster.config.models

    def driver(rt):
        # Load the model from disk, then upload it to the object store.
        model = make_bart(models_config)
        yield from rt.driver_context.compute(
            models_config.load_seconds(model.payload_bytes())
        )
        model_ref = yield from rt.put(model, label="gotta-bart")
        by_paragraph = {}
        for item in inference_items(paragraphs):
            by_paragraph.setdefault(item[0], []).append(item)
        refs = [
            rt.submit(_infer_paragraph, [model_ref], items, label=f"infer-{pid}")
            for pid, items in by_paragraph.items()
        ]
        partials = yield from rt.get_all(refs)
        rows = [row for partial in partials for row in partial]
        yield from rt.driver_context.compute(
            GOTTA_COSTS.evaluate_per_item_s * len(rows)
        )
        return Table.from_rows(PREDICTION_SCHEMA, rows)

    cluster.tracer.label_run("gotta/script")
    start = cluster.env.now
    output = run_script(cluster, driver, num_cpus=num_cpus)
    return TaskRun(
        task="gotta",
        paradigm=PARADIGM_SCRIPT,
        output=output,
        elapsed_s=cluster.env.now - start,
        num_workers=num_cpus,
        trace=run_trace_of(cluster),
        extras={
            "num_paragraphs": len(paragraphs),
            "exact_match": exact_match_of(output),
        },
    )
