"""GOTTA: few-shot QA inference with cloze augmentation (Section II-C)."""

from repro.tasks.gotta.common import (
    GOTTA_COSTS,
    PREDICTION_SCHEMA,
    exact_match_of,
    reference_gotta,
)
from repro.tasks.gotta.script import run_gotta_script
from repro.tasks.gotta.workflow import build_gotta_workflow, run_gotta_workflow

__all__ = [
    "GOTTA_COSTS",
    "PREDICTION_SCHEMA",
    "exact_match_of",
    "reference_gotta",
    "run_gotta_script",
    "build_gotta_workflow",
    "run_gotta_workflow",
]
