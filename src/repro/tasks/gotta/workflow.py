"""GOTTA under the workflow paradigm (Texera substitute).

An item source streams (prompt, context) rows into a model operator
that loads BART once per worker instance — disk read plus in-process
installation, the model "loaded ... and distributed through the
network to each worker" of the paper's Section IV-E — and runs the
forward pass *unpinned* (Texera does not restrict PyTorch's cores),
which is the other half of the workflow side's GOTTA advantage.

The DAG itself is a spec: the canonical JSON lives in
``examples/workflows/gotta.json`` and :func:`gotta_spec_dict` below
regenerates the identical document (pinned by a unit test).  Runtime
data — the item table, worker count and the measured model-load cost —
enters through ``$param`` bindings.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.cluster import Cluster
from repro.datasets.fsqa import FsqaParagraph
from repro.relational import Tuple
from repro.tasks.base import PARADIGM_WORKFLOW, TaskRun, run_trace_of, task_spec
from repro.tasks.gotta.common import (
    GOTTA_COSTS,
    PREDICTION_SCHEMA,
    exact_match_of,
    items_table,
    make_bart,
)
from repro.workflow import Workflow, run_workflow
from repro.workflow.spec import (
    SPEC_VERSION,
    build_workflow,
    callable_form,
    param_form,
    schema_form,
)

__all__ = ["build_gotta_workflow", "gotta_spec_dict", "run_gotta_workflow"]


def _apply(model, row: Tuple):
    prediction = model.generate(row["prompt"], row["context"])
    correct = prediction.strip().lower() == row["gold"].strip().lower()
    return [
        row["paragraph_id"],
        row["kind"],
        row["prompt"],
        row["gold"],
        prediction,
        correct,
    ]


def _generation_flops(model, row: Tuple) -> float:
    return model.generation_flops(row["prompt"], row["context"])


def gotta_spec_dict() -> Dict[str, Any]:
    """The Figure 6 inference DAG as a spec document."""
    return {
        "spec": SPEC_VERSION,
        "name": "gotta",
        "operators": [
            {
                "id": "qa-items",
                "type": "table_source",
                "config": {
                    "table": param_form("items"),
                    "output_batch_size": 8,
                },
            },
            # Model load cost per worker instance: disk read + installation.
            {
                "id": "bart-generate",
                "type": "model_apply",
                "config": {
                    "output_schema": schema_form(PREDICTION_SCHEMA),
                    "loader": callable_form(make_bart),
                    "apply_fn": callable_form(_apply),
                    "flops_fn": callable_form(_generation_flops),
                    "load_seconds": param_form("load_seconds"),
                    "num_workers": param_form("num_workers"),
                    "per_tuple_work_s": GOTTA_COSTS.prepare_per_item_s,
                    "output_batch_size": 8,
                },
            },
            {
                "id": "predictions",
                "type": "sink",
                "config": {"per_tuple_work_s": GOTTA_COSTS.evaluate_per_item_s},
            },
        ],
        "links": [
            {"from": "qa-items", "to": "bart-generate", "out": 0, "in": 0},
            {"from": "bart-generate", "to": "predictions", "out": 0, "in": 0},
        ],
    }


def build_gotta_workflow(
    paragraphs: Sequence[FsqaParagraph],
    num_workers: int = 1,
    load_seconds: float = None,
) -> Workflow:
    """Compile the GOTTA spec with runtime bindings."""
    spec = task_spec("gotta.json", gotta_spec_dict)
    return build_workflow(
        spec,
        {
            "items": items_table(paragraphs),
            "num_workers": num_workers,
            "load_seconds": load_seconds,
        },
    )


def run_gotta_workflow(
    cluster: Cluster, paragraphs: Sequence[FsqaParagraph], num_workers: int = 1
) -> TaskRun:
    """Run the workflow-paradigm GOTTA task; returns its :class:`TaskRun`."""
    models_config = cluster.config.models
    load_seconds = (
        models_config.load_seconds(make_bart(models_config).payload_bytes())
        + GOTTA_COSTS.worker_model_init_s
    )
    wf = build_gotta_workflow(
        paragraphs, num_workers=num_workers, load_seconds=load_seconds
    )
    cluster.tracer.label_run("gotta/workflow")
    result = run_workflow(cluster, wf)
    output = result.table("predictions")
    return TaskRun(
        task="gotta",
        paradigm=PARADIGM_WORKFLOW,
        output=output,
        elapsed_s=result.elapsed_s,
        num_workers=num_workers,
        trace=run_trace_of(cluster),
        extras={
            "num_paragraphs": len(paragraphs),
            "exact_match": exact_match_of(output),
            "num_operators": wf.num_operators,
        },
    )
