"""GOTTA under the workflow paradigm (Texera substitute).

An item source streams (prompt, context) rows into a model operator
that loads BART once per worker instance — disk read plus in-process
installation, the model "loaded ... and distributed through the
network to each worker" of the paper's Section IV-E — and runs the
forward pass *unpinned* (Texera does not restrict PyTorch's cores),
which is the other half of the workflow side's GOTTA advantage.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster import Cluster
from repro.datasets.fsqa import FsqaParagraph
from repro.relational import Tuple
from repro.tasks.base import PARADIGM_WORKFLOW, TaskRun, run_trace_of
from repro.tasks.gotta.common import (
    GOTTA_COSTS,
    PREDICTION_SCHEMA,
    exact_match_of,
    items_table,
    make_bart,
)
from repro.workflow import Workflow, run_workflow
from repro.workflow.operators import ModelApplyOperator, SinkOperator, TableSource

__all__ = ["build_gotta_workflow", "run_gotta_workflow"]


def _apply(model, row: Tuple):
    prediction = model.generate(row["prompt"], row["context"])
    correct = prediction.strip().lower() == row["gold"].strip().lower()
    return [
        row["paragraph_id"],
        row["kind"],
        row["prompt"],
        row["gold"],
        prediction,
        correct,
    ]


def build_gotta_workflow(
    paragraphs: Sequence[FsqaParagraph],
    num_workers: int = 1,
    load_seconds: float = None,
) -> Workflow:
    """Assemble the Figure 6 inference DAG."""
    wf = Workflow("gotta")
    source = wf.add_operator(
        TableSource("qa-items", items_table(paragraphs)).with_output_batch_size(8)
    )
    # Model load cost per worker instance: disk read + installation.
    generate = wf.add_operator(
        ModelApplyOperator(
            "bart-generate",
            PREDICTION_SCHEMA,
            loader=make_bart,
            apply_fn=_apply,
            flops_fn=lambda model, row: model.generation_flops(
                row["prompt"], row["context"]
            ),
            load_seconds=load_seconds,
            num_workers=num_workers,
            per_tuple_work_s=GOTTA_COSTS.prepare_per_item_s,
        ).with_output_batch_size(8)
    )
    sink = wf.add_operator(
        SinkOperator("predictions", per_tuple_work_s=GOTTA_COSTS.evaluate_per_item_s)
    )
    wf.link(source, generate)
    wf.link(generate, sink)
    return wf


def run_gotta_workflow(
    cluster: Cluster, paragraphs: Sequence[FsqaParagraph], num_workers: int = 1
) -> TaskRun:
    """Run the workflow-paradigm GOTTA task; returns its :class:`TaskRun`."""
    models_config = cluster.config.models
    load_seconds = (
        models_config.load_seconds(make_bart(models_config).payload_bytes())
        + GOTTA_COSTS.worker_model_init_s
    )
    wf = build_gotta_workflow(
        paragraphs, num_workers=num_workers, load_seconds=load_seconds
    )
    cluster.tracer.label_run("gotta/workflow")
    result = run_workflow(cluster, wf)
    output = result.table("predictions")
    return TaskRun(
        task="gotta",
        paradigm=PARADIGM_WORKFLOW,
        output=output,
        elapsed_s=result.elapsed_s,
        num_workers=num_workers,
        trace=run_trace_of(cluster),
        extras={
            "num_paragraphs": len(paragraphs),
            "exact_match": exact_match_of(output),
            "num_operators": wf.num_operators,
        },
    )
