"""Discrete-event simulation kernel (simpy-style, deterministic).

Public surface::

    from repro.sim import Environment, Resource, Store

    env = Environment()

    def worker(env, cpus):
        req = cpus.request()
        yield req
        yield env.timeout(2.5)      # 2.5 virtual seconds of work
        cpus.release()

    cpus = Resource(env, capacity=8)
    env.process(worker(env, cpus))
    env.run()
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.resources import Resource, ResourceRequest, Store, drain

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Resource",
    "ResourceRequest",
    "Store",
    "drain",
]
